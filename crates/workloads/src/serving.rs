//! Latency-SLO key-value serving: an open-loop tier with a p99 gate.
//!
//! Each of the `p` ranks is a serving replica receiving its own
//! open-loop Poisson request stream (arrivals do not slow down when the
//! server falls behind — the property that makes tail latency explode
//! past saturation). Request service is [`GUPS`]-profile work — random
//! reads against the store — priced by the roofline, so a PIM node
//! track serves the same stream with a fraction of the PC track's
//! service time. Network time is the fabric round trip from a client
//! half the machine away.
//!
//! Arrivals are pre-generated with [`SplitMix64`] and pre-scheduled
//! into the sharded engine keyed `(server << 32) | seq`; each server's
//! queue evolves by the Lindley recursion inside its shard and no event
//! ever crosses shards, so any shard count replays the identical
//! `(time, key)` order — the same determinism contract as the program
//! executor, held by `tests/workloads.rs`.

use crate::{phase_ps, Fabric, WorkloadResult};
use polaris_arch::kernels::GUPS;
use polaris_arch::node::NodeModel;
use polaris_obs::metrics::Histogram;
use polaris_simnet::rng::SplitMix64;
use polaris_simnet::shard::{Partition, ShardCtx, ShardSim, ShardWorld};
use polaris_simnet::time::{SimDuration, SimTime, PS_PER_SEC};

#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServingConfig {
    /// Requests per replica.
    pub requests_per_server: u32,
    /// Open-loop arrival rate per replica, requests/second.
    pub rate_hz: f64,
    /// Store-lookup flops per request (GUPS profile).
    pub flops_per_req: f64,
    /// Request / response payload bytes.
    pub req_bytes: u64,
    pub resp_bytes: u64,
    /// Arrival-stream seed.
    pub seed: u64,
    /// The SLO the p99 is gated against.
    pub slo: SimDuration,
}

impl Default for ServingConfig {
    fn default() -> Self {
        ServingConfig {
            requests_per_server: 256,
            rate_hz: 8_000.0,
            flops_per_req: 2e3,
            req_bytes: 512,
            resp_bytes: 2048,
            seed: 0x5E12_F00D,
            slo: SimDuration::from_us(500),
        }
    }
}

#[derive(Clone, Copy)]
enum SEv {
    /// One request reaches `server`'s queue.
    Request { server: u32 },
}

#[derive(Clone)]
struct ServeWorld {
    base: u32,
    /// Per local server: queue free time (ps), busy-time sum (ps).
    busy_until: Vec<u64>,
    busy_sum: Vec<u64>,
    /// Per local server: service + fabric round-trip cost (ps).
    service_ps: Vec<u64>,
    net_ps: Vec<u64>,
    /// Request latencies (queueing + service + network), ps.
    latencies: Vec<u64>,
    last_finish: u64,
}

impl ShardWorld for ServeWorld {
    type Event = SEv;

    fn handle(&mut self, ctx: &mut ShardCtx<'_, SEv>, event: SEv) {
        let SEv::Request { server } = event;
        let now = ctx.now().0;
        let l = (server - self.base) as usize;
        let start = now.max(self.busy_until[l]);
        let finish = start + self.service_ps[l];
        self.busy_until[l] = finish;
        self.busy_sum[l] += self.service_ps[l];
        self.latencies.push(finish - now + self.net_ps[l]);
        self.last_finish = self.last_finish.max(finish + self.net_ps[l]);
    }
}

/// Run the serving tier: `p` replicas of `node` over `fabric`, sharded
/// across `jobs` engine shards. Bit-identical at any `jobs` value.
pub fn run(cfg: &ServingConfig, node: &NodeModel, fabric: &Fabric, p: u32, jobs: u32) -> WorkloadResult {
    assert!(p > 0, "at least one replica");
    let link = fabric.link();
    let service = phase_ps(node, &GUPS, cfg.flops_per_req);
    let part = Partition::block(p, jobs.max(1));
    let worlds: Vec<ServeWorld> = (0..part.nshards)
        .map(|sh| {
            let ranks = part.ranks_of(sh);
            let base = ranks.start;
            let (mut service_ps, mut net_ps) = (Vec::new(), Vec::new());
            for s in ranks {
                // Round trip from a client half the machine away.
                let far = (s + p / 2) % p;
                let net = if far == s {
                    link.message_time(cfg.req_bytes, 1).0 + link.message_time(cfg.resp_bytes, 1).0
                } else {
                    let c = fabric.path_cost(s, far);
                    link.message_time(cfg.req_bytes, c.hops).0
                        + link.message_time(cfg.resp_bytes, c.hops).0
                        + 2 * c.extra_ps
                };
                service_ps.push(service);
                net_ps.push(net);
            }
            let n = service_ps.len();
            ServeWorld {
                base,
                busy_until: vec![0; n],
                busy_sum: vec![0; n],
                service_ps,
                net_ps,
                latencies: Vec::new(),
                last_finish: 0,
            }
        })
        .collect();

    let mut sim = ShardSim::uniform(worlds, SimDuration::from_us(1));
    for s in 0..p {
        // Per-server Poisson stream; the stream is a pure function of
        // (seed, server), independent of sharding.
        let mut rng = SplitMix64::new(cfg.seed ^ ((s as u64) << 20) ^ 0x5E12_71E2);
        let mut t_ps = 0u64;
        for seq in 0..cfg.requests_per_server {
            let u = rng.next_f64();
            let gap_s = -(1.0 - u).ln() / cfg.rate_hz;
            t_ps += (gap_s * PS_PER_SEC as f64).ceil().max(1.0) as u64;
            sim.schedule(
                part.shard_of(s),
                SimTime(t_ps),
                ((s as u64) << 32) | seq as u64,
                SEv::Request { server: s },
            );
        }
    }
    sim.run(jobs > 1, None);

    let hist = Histogram::new();
    let mut completion = 0u64;
    let mut compute = 0u64;
    let mut requests = 0u64;
    for w in sim.worlds() {
        completion = completion.max(w.last_finish);
        compute = compute.max(w.busy_sum.iter().copied().max().unwrap_or(0));
        requests += w.latencies.len() as u64;
        for &l in &w.latencies {
            hist.record(l);
        }
    }
    WorkloadResult {
        completion: SimDuration(completion),
        messages: 2 * requests,
        payload_bytes: requests * (cfg.req_bytes + cfg.resp_bytes),
        compute: SimDuration(compute),
        useful_flops: cfg.flops_per_req * requests as f64,
        p99: Some(SimDuration(hist.quantile(0.99))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polaris_arch::device::Projection;
    use polaris_arch::node::{NodeKind, NodeModel};
    use polaris_simnet::link::Generation;

    fn node(kind: NodeKind) -> NodeModel {
        NodeModel::build(kind, &Projection::default().at(2006))
    }

    #[test]
    fn open_loop_tail_grows_with_load() {
        let fabric = Fabric::crossbar(Generation::GigabitEthernet, 8);
        let pc = node(NodeKind::Pc);
        let light = ServingConfig { rate_hz: 1_000.0, ..ServingConfig::default() };
        let heavy = ServingConfig { rate_hz: 30_000.0, ..ServingConfig::default() };
        let lo = run(&light, &pc, &fabric, 8, 1).p99.unwrap();
        let hi = run(&heavy, &pc, &fabric, 8, 1).p99.unwrap();
        assert!(hi > lo, "p99 {lo:?} -> {hi:?}");
    }

    #[test]
    fn pim_track_serves_the_same_stream_faster() {
        let fabric = Fabric::crossbar(Generation::GigabitEthernet, 8);
        let cfg = ServingConfig::default();
        let pc = run(&cfg, &node(NodeKind::Pc), &fabric, 8, 1);
        let pim = run(&cfg, &node(NodeKind::Pim), &fabric, 8, 1);
        // GUPS-profile service: PIM's latency advantage shows directly.
        assert!(pim.p99.unwrap() < pc.p99.unwrap());
    }

    #[test]
    fn shard_count_does_not_change_the_tail() {
        let fabric = Fabric::dragonfly(Generation::Optical, 32);
        let cfg = ServingConfig::default();
        let pc = node(NodeKind::Pc);
        let base = run(&cfg, &pc, &fabric, 32, 1);
        for jobs in [2u32, 4] {
            let r = run(&cfg, &pc, &fabric, 32, jobs);
            assert_eq!(r, base, "jobs={jobs}");
        }
    }
}
