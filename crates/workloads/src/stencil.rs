//! Halo-exchange stencil: the astrophysics Beowulf workload.
//!
//! Each rank owns an `n^dims` block of a periodic global grid. One
//! iteration is a 7-point (3-D) or 5-point (2-D) update — 8 flops per
//! point, the [`STENCIL7`] kernel's operational profile — followed by a
//! face exchange with the `2*dims` torus neighbours: nonblocking sends
//! of every face, then blocking receives. The compile-time decomposition
//! mirrors what the 512-CPU astrophysics runs did: ranks arranged in a
//! near-cubic processor grid so faces stay as small as possible.
//!
//! The comm-to-compute ratio this produces on 2002 commodity hardware
//! (gigabit-class links, ~5 GF PCs) sits in the 5–30% band those
//! production runs reported; `tests/workloads.rs` pins that band.

use crate::{phase_ps, Compiled};
use polaris_arch::kernels::STENCIL7;
use polaris_arch::node::NodeModel;
use polaris_collectives::simx::SchedOp;

#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StencilConfig {
    /// Decomposition dimensionality: 2 or 3.
    pub dims: u32,
    /// Local subgrid side length (points per rank = `side^dims`).
    pub side: u64,
    /// Stencil sweeps.
    pub iters: u32,
    /// Flops per grid point per sweep (7-point update: 8).
    pub flops_per_point: f64,
    /// Bytes per grid point on the wire (double precision).
    pub bytes_per_point: u64,
}

impl Default for StencilConfig {
    fn default() -> Self {
        // 256^3 points per rank: the per-node working set of the
        // astrophysics runs, and the size at which a 2002 PC on
        // gigabit-class Ethernet lands in their measured comm band.
        StencilConfig {
            dims: 3,
            side: 256,
            iters: 4,
            flops_per_point: 8.0,
            bytes_per_point: 8,
        }
    }
}

/// Factor `p` into `dims` near-equal factors (largest-divisor greedy),
/// the processor grid of the decomposition. Product is always exactly
/// `p`.
pub fn grid_dims(p: u32, dims: u32) -> Vec<u32> {
    let mut out = Vec::with_capacity(dims as usize);
    let mut rem = p.max(1);
    for i in 0..dims {
        let left = dims - i;
        if left == 1 {
            out.push(rem);
            break;
        }
        let target = (rem as f64).powf(1.0 / left as f64).round().max(1.0) as u32;
        let mut best = 1;
        for q in 1..=rem {
            if rem.is_multiple_of(q) && q <= target {
                best = q;
            }
        }
        out.push(best);
        rem /= best;
    }
    out
}

/// Compile the stencil for `p` ranks of `node`.
pub fn compile(cfg: &StencilConfig, node: &NodeModel, p: u32) -> Compiled {
    assert!(cfg.dims == 2 || cfg.dims == 3, "2-D or 3-D only");
    let grid = grid_dims(p, cfg.dims);
    let points = cfg.side.pow(cfg.dims);
    let face_bytes = cfg.side.pow(cfg.dims - 1) * cfg.bytes_per_point;
    let work = phase_ps(node, &STENCIL7, cfg.flops_per_point * points as f64);

    let coord = |rank: u32| -> Vec<u32> {
        let mut c = Vec::with_capacity(grid.len());
        let mut r = rank;
        for &g in &grid {
            c.push(r % g);
            r /= g;
        }
        c
    };
    let rank_of = |c: &[u32]| -> u32 {
        let mut r = 0u32;
        for (i, &g) in grid.iter().enumerate().rev() {
            r = r * g + c[i];
        }
        r
    };

    let programs = (0..p)
        .map(|rank| {
            let me = coord(rank);
            // Periodic torus neighbours, skipping singleton dimensions
            // (a face with yourself is a local copy, not a message).
            let mut neighbours = Vec::new();
            for (dim, &g) in grid.iter().enumerate() {
                if g < 2 {
                    continue;
                }
                for step in [1, g - 1] {
                    let mut c = me.clone();
                    c[dim] = (c[dim] + step) % g;
                    let n = rank_of(&c);
                    if n != rank {
                        neighbours.push(n);
                    }
                }
            }
            let mut ops = Vec::with_capacity(cfg.iters as usize * (1 + 2 * neighbours.len()));
            for _ in 0..cfg.iters {
                ops.push(SchedOp::Work { ps: work });
                for &n in &neighbours {
                    ops.push(SchedOp::Send { to: n, bytes: face_bytes });
                }
                for &n in &neighbours {
                    ops.push(SchedOp::Recv { from: n });
                }
            }
            ops
        })
        .collect();

    Compiled {
        programs,
        useful_flops: cfg.flops_per_point * points as f64 * p as f64 * cfg.iters as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polaris_arch::device::Projection;
    use polaris_arch::node::NodeKind;

    fn pc2002() -> NodeModel {
        NodeModel::build(NodeKind::Pc, &Projection::default().at(2002))
    }

    #[test]
    fn grid_dims_factor_exactly_and_near_cubically() {
        for p in [1u32, 2, 8, 12, 64, 100, 512] {
            for d in [2u32, 3] {
                let g = grid_dims(p, d);
                assert_eq!(g.len(), d as usize);
                assert_eq!(g.iter().product::<u32>(), p, "p={p} d={d} {g:?}");
            }
        }
        assert_eq!(grid_dims(64, 3), vec![4, 4, 4]);
        assert_eq!(grid_dims(512, 3), vec![8, 8, 8]);
        assert_eq!(grid_dims(64, 2), vec![8, 8]);
    }

    #[test]
    fn sends_and_recvs_pair_up() {
        let cfg = StencilConfig { side: 8, iters: 1, ..StencilConfig::default() };
        let c = compile(&cfg, &pc2002(), 27);
        // Globally, every send has a matching recv on its target.
        let mut sent = std::collections::HashMap::new();
        let mut recvd = std::collections::HashMap::new();
        for (r, ops) in c.programs.iter().enumerate() {
            for op in ops {
                match *op {
                    SchedOp::Send { to, .. } => *sent.entry((r as u32, to)).or_insert(0u32) += 1,
                    SchedOp::Recv { from } => *recvd.entry((from, r as u32)).or_insert(0u32) += 1,
                    _ => {}
                }
            }
        }
        assert_eq!(sent, recvd);
        // 3-D interior decomposition: 6 neighbours each.
        assert!(sent.len() >= 27 * 6 / 2);
    }

    #[test]
    fn no_rank_messages_itself() {
        for p in [1u32, 2, 4, 64] {
            let cfg = StencilConfig { side: 4, iters: 1, ..StencilConfig::default() };
            for (r, ops) in compile(&cfg, &pc2002(), p).programs.iter().enumerate() {
                for op in ops {
                    if let SchedOp::Send { to, .. } = *op {
                        assert_ne!(to, r as u32, "p={p}");
                    }
                }
            }
        }
    }
}
