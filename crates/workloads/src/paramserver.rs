//! Parameter-server push/pull: the asynchronous-looking pattern, run
//! synchronously per step so it stays a deterministic schedule.
//!
//! Ranks `0..servers` are parameter servers, the rest are workers. Each
//! step a worker computes its gradients ([`DGEMM`] profile), pushes one
//! shard to every server (nonblocking sends), then pulls the updated
//! shards back (blocking receives). A server drains one push from every
//! worker, applies the update ([`DAXPY`] profile — streaming vector
//! work), and sends every worker its shard back. The incast at each
//! server — `workers` messages converging on one downlink — is exactly
//! what the partitioned-crossbar queueing model prices.

use crate::{phase_ps, Compiled};
use polaris_arch::kernels::{DAXPY, DGEMM};
use polaris_arch::node::NodeModel;
use polaris_collectives::simx::SchedOp;

#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParamServerConfig {
    /// Parameter-server ranks (must leave at least one worker).
    pub servers: u32,
    /// Synchronous steps.
    pub steps: u32,
    /// Bytes pushed per worker per server per step (one shard).
    pub shard_bytes: u64,
    /// Gradient-computation flops per worker per step.
    pub flops_per_step: f64,
    /// Update-apply flops per server per step.
    pub apply_flops: f64,
}

impl Default for ParamServerConfig {
    fn default() -> Self {
        ParamServerConfig {
            servers: 4,
            steps: 4,
            shard_bytes: 1 << 20,
            flops_per_step: 1e8,
            apply_flops: 1e7,
        }
    }
}

/// Compile the push/pull loop for `p` ranks of `node`.
pub fn compile(cfg: &ParamServerConfig, node: &NodeModel, p: u32) -> Compiled {
    let servers = cfg.servers.min(p.saturating_sub(1)).max(1);
    let workers = p - servers;
    let grad = phase_ps(node, &DGEMM, cfg.flops_per_step);
    let apply = phase_ps(node, &DAXPY, cfg.apply_flops);

    let programs = (0..p)
        .map(|rank| {
            let mut ops = Vec::new();
            if rank < servers {
                for _ in 0..cfg.steps {
                    for w in 0..workers {
                        ops.push(SchedOp::Recv { from: servers + w });
                    }
                    ops.push(SchedOp::Work { ps: apply });
                    for w in 0..workers {
                        ops.push(SchedOp::Send { to: servers + w, bytes: cfg.shard_bytes });
                    }
                }
            } else {
                for _ in 0..cfg.steps {
                    ops.push(SchedOp::Work { ps: grad });
                    for s in 0..servers {
                        ops.push(SchedOp::Send { to: s, bytes: cfg.shard_bytes });
                    }
                    for s in 0..servers {
                        ops.push(SchedOp::Recv { from: s });
                    }
                }
            }
            ops
        })
        .collect();

    Compiled {
        programs,
        useful_flops: (cfg.flops_per_step * workers as f64 + cfg.apply_flops * servers as f64)
            * cfg.steps as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Fabric;
    use polaris_arch::device::Projection;
    use polaris_arch::node::{NodeKind, NodeModel};
    use polaris_collectives::simx::ExecParams;
    use polaris_simnet::link::Generation;

    fn pc2002() -> NodeModel {
        NodeModel::build(NodeKind::Pc, &Projection::default().at(2002))
    }

    #[test]
    fn push_pull_completes_without_deadlock() {
        let cfg = ParamServerConfig { steps: 2, ..ParamServerConfig::default() };
        let c = compile(&cfg, &pc2002(), 16);
        let fabric = Fabric::crossbar(Generation::GigabitEthernet, 16);
        let (res, _) = fabric.run(c.programs, ExecParams::default(), 2);
        // 2 steps x 12 workers x 4 servers x (push + pull).
        assert_eq!(res.messages, 2 * 12 * 4 * 2);
    }

    #[test]
    fn degenerate_two_rank_cluster_still_works() {
        let cfg = ParamServerConfig { servers: 4, steps: 1, ..ParamServerConfig::default() };
        let c = compile(&cfg, &pc2002(), 2);
        // Clamped to one server, one worker.
        let fabric = Fabric::crossbar(Generation::GigabitEthernet, 2);
        let (res, _) = fabric.run(c.programs, ExecParams::default(), 1);
        assert_eq!(res.messages, 2);
    }
}
