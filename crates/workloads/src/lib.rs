//! Application workload compilers: from arch kernels to DES traffic.
//!
//! The keynote's trans-Petaflops argument is about *delivered*
//! application performance, not peak. This crate closes that loop: it
//! compiles five representative cluster applications into per-rank
//! [`SchedOp`] programs whose compute phases are priced by the roofline
//! model ([`polaris_arch::roofline::attainable`]) and whose
//! communication runs through the sharded conservative-parallel engine
//! over a real interconnect topology ([`fabric::Fabric`]). A node track
//! (PC, blade, CMP, PIM) therefore changes the virtual-time length of
//! every compute phase, and an interconnect generation changes every
//! message — the resulting *effective* FLOP/s curves are what figure
//! F14 feeds back into [`polaris_arch::projection`].
//!
//! The five workloads:
//!
//! * [`stencil`] — iterative halo exchange on a 2-D/3-D decomposition
//!   (the 512-CPU astrophysics Beowulf profile),
//! * [`training`] — bulk-synchronous data-parallel training, allreduce
//!   bound, hierarchical on grouped fabrics,
//! * [`paramserver`] — parameter-server push/pull,
//! * [`shuffle`] — MapReduce-style all-to-all shuffle,
//! * [`serving`] — a latency-SLO key-value tier with open-loop Poisson
//!   arrivals and a p99 gate.
//!
//! Every generator is a pure function of its config, and every run goes
//! through [`simulate_programs_sharded`] (or, for serving, a dedicated
//! `ShardWorld`) — bit-identical at any `--jobs`/shard count, which
//! `tests/workloads.rs` holds as an oracle.

pub mod fabric;
pub mod paramserver;
pub mod serving;
pub mod shuffle;
pub mod stencil;
pub mod training;

use polaris_arch::kernels::Kernel;
use polaris_arch::node::NodeModel;
use polaris_arch::roofline;
use polaris_collectives::simx::{ExecParams, SchedOp};
use polaris_simnet::time::{SimDuration, PS_PER_SEC};

pub use fabric::Fabric;

/// Virtual-time cost, in picoseconds, of performing `flops` of `kernel`
/// work on `node` — the bridge from the roofline model to
/// [`SchedOp::Work`]. Always at least 1 ps so a compute phase never
/// collapses into a zero-length event.
pub fn phase_ps(node: &NodeModel, kernel: &Kernel, flops: f64) -> u64 {
    let rate = roofline::attainable(node, kernel);
    ((flops / rate) * PS_PER_SEC as f64).ceil().max(1.0) as u64
}

/// The workload suite of figure F14.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// 3-D halo-exchange stencil (astrophysics Beowulf profile).
    Stencil,
    /// Bulk-synchronous data-parallel training (allreduce bound).
    Training,
    /// Parameter-server push/pull.
    ParamServer,
    /// MapReduce shuffle (all-to-all).
    Shuffle,
    /// Latency-SLO key-value serving (open-loop, p99 gate).
    Serving,
}

impl WorkloadKind {
    pub const ALL: [WorkloadKind; 5] = [
        WorkloadKind::Stencil,
        WorkloadKind::Training,
        WorkloadKind::ParamServer,
        WorkloadKind::Shuffle,
        WorkloadKind::Serving,
    ];

    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::Stencil => "stencil",
            WorkloadKind::Training => "training",
            WorkloadKind::ParamServer => "param-server",
            WorkloadKind::Shuffle => "shuffle",
            WorkloadKind::Serving => "serving",
        }
    }
}

/// A compiled workload: per-rank programs plus the accounting the
/// simulator cannot reconstruct from timing alone.
pub struct Compiled {
    /// `programs[r]` is rank `r`'s operation list.
    pub programs: Vec<Vec<SchedOp>>,
    /// Application-useful flops across all ranks (excludes reduction
    /// arithmetic spliced in by collective schedules).
    pub useful_flops: f64,
}

/// What one workload run produced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadResult {
    /// Virtual time the slowest rank finished.
    pub completion: SimDuration,
    pub messages: u64,
    pub payload_bytes: u64,
    /// Virtual time the busiest rank spent in local work (roofline
    /// phases plus spliced reduction arithmetic).
    pub compute: SimDuration,
    /// Application-useful flops across all ranks.
    pub useful_flops: f64,
    /// p99 request latency, serving tier only.
    pub p99: Option<SimDuration>,
}

impl WorkloadResult {
    /// Fraction of the critical path spent *not* computing — the
    /// comm-to-compute ratio the astrophysics paper reports.
    pub fn comm_fraction(&self) -> f64 {
        if self.completion.0 == 0 {
            return 0.0;
        }
        (1.0 - self.compute.0 as f64 / self.completion.0 as f64).clamp(0.0, 1.0)
    }

    /// Delivered application FLOP/s across the whole run — the
    /// "effective, not peak" number F14 plots.
    pub fn effective_flops(&self) -> f64 {
        if self.completion.0 == 0 {
            return 0.0;
        }
        self.useful_flops / self.completion.as_secs()
    }
}

/// Busiest rank's total local-work virtual time: roofline-priced
/// [`SchedOp::Work`] plus [`SchedOp::Compute`] at the executor's
/// reduction throughput.
fn max_compute_ps(programs: &[Vec<SchedOp>], params: &ExecParams) -> u64 {
    programs
        .iter()
        .map(|ops| {
            ops.iter()
                .map(|op| match *op {
                    SchedOp::Work { ps } => ps,
                    SchedOp::Compute { bytes } => {
                        SimDuration::from_secs_f64(bytes as f64 / params.compute_bps as f64).0
                    }
                    _ => 0,
                })
                .sum::<u64>()
        })
        .max()
        .unwrap_or(0)
}

/// Run a compiled workload over a fabric, sharded across `jobs` engine
/// shards. Bit-identical at any `jobs` value.
pub fn run_compiled(compiled: Compiled, fabric: &Fabric, jobs: u32) -> WorkloadResult {
    let params = ExecParams::default();
    let compute = SimDuration(max_compute_ps(&compiled.programs, &params));
    let (res, _) = fabric.run(compiled.programs, params, jobs);
    WorkloadResult {
        completion: res.completion,
        messages: res.messages,
        payload_bytes: res.payload_bytes,
        compute,
        useful_flops: compiled.useful_flops,
        p99: None,
    }
}

/// Run one suite workload at its figure-scale default config: `p` ranks
/// of `node` over `fabric`, sharded across `jobs` engine shards.
pub fn run_workload(
    kind: WorkloadKind,
    node: &NodeModel,
    fabric: &Fabric,
    p: u32,
    jobs: u32,
) -> WorkloadResult {
    match kind {
        WorkloadKind::Stencil => {
            run_compiled(stencil::compile(&stencil::StencilConfig::default(), node, p), fabric, jobs)
        }
        WorkloadKind::Training => run_compiled(
            training::compile(&training::TrainingConfig::for_fabric(fabric), node, p),
            fabric,
            jobs,
        ),
        WorkloadKind::ParamServer => run_compiled(
            paramserver::compile(&paramserver::ParamServerConfig::default(), node, p),
            fabric,
            jobs,
        ),
        WorkloadKind::Shuffle => {
            run_compiled(shuffle::compile(&shuffle::ShuffleConfig::default(), node, p), fabric, jobs)
        }
        WorkloadKind::Serving => {
            serving::run(&serving::ServingConfig::default(), node, fabric, p, jobs)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polaris_arch::device::Projection;
    use polaris_arch::kernels::{DGEMM, GUPS};
    use polaris_arch::node::NodeKind;

    fn node(kind: NodeKind, year: u32) -> NodeModel {
        NodeModel::build(kind, &Projection::default().at(year))
    }

    #[test]
    fn phase_ps_inverts_the_roofline() {
        let n = node(NodeKind::Pc, 2002);
        // One second of peak DGEMM work takes one second of virtual time.
        let ps = phase_ps(&n, &DGEMM, roofline::attainable(&n, &DGEMM));
        assert_eq!(ps, PS_PER_SEC);
        // GUPS on the same node is latency-bound: far slower per flop.
        assert!(phase_ps(&n, &GUPS, 1e6) > phase_ps(&n, &DGEMM, 1e6));
        // Never zero.
        assert_eq!(phase_ps(&n, &DGEMM, 0.0), 1);
    }

    #[test]
    fn node_tracks_produce_different_phase_lengths() {
        let pc = node(NodeKind::Pc, 2006);
        let cmp = node(NodeKind::SmpOnChip, 2006);
        let pim = node(NodeKind::Pim, 2006);
        // CMP wins dense work; PIM wins random access.
        assert!(phase_ps(&cmp, &DGEMM, 1e9) < phase_ps(&pc, &DGEMM, 1e9));
        assert!(phase_ps(&pim, &GUPS, 1e6) < phase_ps(&pc, &GUPS, 1e6));
    }

    #[test]
    fn every_workload_runs_and_accounts() {
        let n = node(NodeKind::Pc, 2002);
        let fabric = Fabric::crossbar(polaris_simnet::link::Generation::GigabitEthernet, 8);
        for kind in WorkloadKind::ALL {
            let r = run_workload(kind, &n, &fabric, 8, 1);
            assert!(r.completion > SimDuration::ZERO, "{}", kind.name());
            assert!(r.useful_flops > 0.0, "{}", kind.name());
            assert!(r.messages > 0, "{}", kind.name());
            let cf = r.comm_fraction();
            assert!((0.0..=1.0).contains(&cf), "{} comm {cf}", kind.name());
            assert!(r.effective_flops() > 0.0, "{}", kind.name());
            assert_eq!(r.p99.is_some(), kind == WorkloadKind::Serving);
        }
    }
}
