//! Interconnect fabrics for workload runs: a link generation plus a
//! topology-derived per-message route cost.
//!
//! The sharded executor charges endpoint queueing itself; what a fabric
//! contributes is the contention-free route cost of each `(src, dst)`
//! pair — the hop count fed to [`LinkModel::message_time`], and for the
//! circuit-switched variant a fixed reconfiguration latency on every
//! cross-group message. Hop counts come from the real [`Topology`]
//! arithmetic (the same O(1) routing the packet-level network uses), so
//! a fat tree's pod locality and a dragonfly's group locality shape
//! workload completion times exactly as they shape F6/F13.

use polaris_collectives::parsim::{simulate_programs_sharded, PathCost, PathModel};
use polaris_collectives::simx::{ExecParams, SchedOp, SimResult};
use polaris_simnet::circuit::CircuitSchedulerConfig;
use polaris_simnet::link::{Generation, LinkModel};
use polaris_simnet::shard::ShardRunStats;
use polaris_simnet::topology::{Topology, TopologyKind};

/// A named interconnect: link generation + route-cost model.
#[derive(Clone)]
pub struct Fabric {
    name: String,
    gen: Generation,
    link: LinkModel,
    path: PathModel,
    /// Hosts per locality group (dragonfly group; the whole machine
    /// otherwise) — lets workloads align hierarchy with the fabric.
    group_size: u32,
    hosts: u32,
}

impl Fabric {
    fn from_topology(name: &str, gen: Generation, topo: Topology) -> Fabric {
        let group_size = topo.group_size();
        let hosts = topo.hosts();
        let path = PathModel::new(move |s, d| PathCost {
            hops: topo.hops(s, d).max(1),
            extra_ps: 0,
        });
        Fabric {
            name: format!("{name}/{}", gen.name()),
            gen,
            link: gen.link_model(),
            path,
            group_size,
            hosts,
        }
    }

    /// Ideal single-switch crossbar: every route is two hops.
    pub fn crossbar(gen: Generation, p: u32) -> Fabric {
        Fabric::from_topology("crossbar", gen, Topology::new(TopologyKind::Crossbar { hosts: p }))
    }

    /// Smallest k-ary fat tree (partial pods allowed) with `p` hosts.
    pub fn fat_tree(gen: Generation, p: u32) -> Fabric {
        let mut k = 4u32;
        while k * (k / 2) * (k / 2) < p {
            k += 2;
        }
        let per_pod = (k / 2) * (k / 2);
        let pods = p.div_ceil(per_pod).max(1);
        Fabric::from_topology(
            "fat-tree",
            gen,
            Topology::new(TopologyKind::FatTreePods { k, pods }),
        )
    }

    /// Dragonfly of 16-host groups (4 routers x 4 hosts), minimal
    /// routing.
    pub fn dragonfly(gen: Generation, p: u32) -> Fabric {
        Fabric::from_topology("dragonfly", gen, Topology::new(dragonfly_kind(p)))
    }

    /// Dragonfly whose global links are circuit-switched: a cross-group
    /// message rides a freshly scheduled end-to-end circuit — two hops
    /// of wire, but a full optical reconfiguration latency up front.
    /// Intra-group traffic routes as in [`Fabric::dragonfly`].
    pub fn dragonfly_circuits(gen: Generation, p: u32) -> Fabric {
        let topo = Topology::new(dragonfly_kind(p));
        let group_size = topo.group_size();
        let hosts = topo.hosts();
        let reconfig_ps = CircuitSchedulerConfig::default().reconfig.as_ps();
        let path = PathModel::new(move |s, d| {
            if topo.group_of(s) != topo.group_of(d) {
                PathCost { hops: 2, extra_ps: reconfig_ps }
            } else {
                PathCost { hops: topo.hops(s, d).max(1), extra_ps: 0 }
            }
        });
        Fabric {
            name: format!("dragonfly-circuit/{}", gen.name()),
            gen,
            link: gen.link_model(),
            path,
            group_size,
            hosts,
        }
    }

    /// The interconnect-generation sweep of figure F14: one fabric per
    /// era, from the 2002 commodity baseline to circuit-augmented
    /// optics.
    pub fn standard(p: u32) -> Vec<Fabric> {
        vec![
            Fabric::crossbar(Generation::GigabitEthernet, p),
            Fabric::fat_tree(Generation::InfiniBand4x, p),
            Fabric::dragonfly(Generation::Optical, p),
            Fabric::dragonfly_circuits(Generation::Optical, p),
        ]
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn generation(&self) -> Generation {
        self.gen
    }

    pub fn link(&self) -> LinkModel {
        self.link
    }

    pub fn group_size(&self) -> u32 {
        self.group_size
    }

    pub fn hosts(&self) -> u32 {
        self.hosts
    }

    /// Contention-free route cost between two ranks.
    pub fn path_cost(&self, src: u32, dst: u32) -> PathCost {
        self.path.cost(src, dst)
    }

    /// Execute per-rank programs over this fabric, sharded across
    /// `jobs` engine shards. Bit-identical at any `jobs` value.
    pub fn run(
        &self,
        programs: Vec<Vec<SchedOp>>,
        params: ExecParams,
        jobs: u32,
    ) -> (SimResult, ShardRunStats) {
        simulate_programs_sharded(programs, params, self.link, Some(self.path.clone()), jobs)
    }
}

fn dragonfly_kind(p: u32) -> TopologyKind {
    TopologyKind::Dragonfly {
        groups: p.div_ceil(16).max(2),
        routers_per_group: 4,
        hosts_per_router: 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fabrics_cover_the_requested_ranks() {
        for p in [8u32, 64, 100, 512] {
            for f in Fabric::standard(p) {
                assert!(f.hosts() >= p, "{} hosts {} < {p}", f.name(), f.hosts());
                // Every distinct pair routes with at least one hop.
                let c = f.path_cost(0, p - 1);
                assert!(c.hops >= 1, "{}", f.name());
            }
        }
    }

    #[test]
    fn locality_is_visible_in_route_costs() {
        let df = Fabric::dragonfly(Generation::Optical, 64);
        // Same router < same group < cross group.
        let near = df.path_cost(0, 1).hops;
        let group = df.path_cost(0, 5).hops;
        let far = df.path_cost(0, 63).hops;
        assert!(near <= group && group <= far, "{near} {group} {far}");
        assert!(far > near);

        let ft = Fabric::fat_tree(Generation::InfiniBand4x, 64);
        assert!(ft.path_cost(0, 1).hops < ft.path_cost(0, 63).hops);
    }

    #[test]
    fn circuits_charge_reconfig_only_across_groups() {
        let dfc = Fabric::dragonfly_circuits(Generation::Optical, 64);
        assert_eq!(dfc.path_cost(0, 1).extra_ps, 0);
        let cross = dfc.path_cost(0, 63);
        assert_eq!(cross.hops, 2);
        assert_eq!(
            cross.extra_ps,
            CircuitSchedulerConfig::default().reconfig.as_ps()
        );
    }
}
