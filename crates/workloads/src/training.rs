//! Bulk-synchronous data-parallel training: compute a step's gradients
//! (dense [`DGEMM`]-profile work), then allreduce the model — the
//! allreduce-bound pattern.
//!
//! On grouped fabrics (dragonfly), the allreduce is hierarchical, the
//! same shape as [`polaris_collectives::hier`]: a binomial reduce
//! inside each group, recursive doubling among the group leaders, then
//! a binomial broadcast back down. On flat fabrics it is plain
//! recursive doubling. Both splice the *exact* schedules
//! [`polaris_collectives::simx::schedule`] generates — the ones
//! cross-checked against the executable algorithms — with ranks
//! remapped into group-local numbering.

use crate::{phase_ps, Compiled, Fabric};
use polaris_arch::kernels::DGEMM;
use polaris_arch::node::NodeModel;
use polaris_collectives::allreduce::AllreduceAlgo;
use polaris_collectives::bcast::BcastAlgo;
use polaris_collectives::simx::{schedule, Collective, SchedOp};

#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainingConfig {
    /// Synchronous steps.
    pub steps: u32,
    /// Model (gradient vector) size in bytes.
    pub model_bytes: u64,
    /// Dense flops per rank per step.
    pub flops_per_step: f64,
    /// Hosts per hierarchy group; `0` or `1` means flat allreduce.
    pub group_size: u32,
}

impl Default for TrainingConfig {
    fn default() -> Self {
        TrainingConfig {
            steps: 4,
            model_bytes: 1 << 24,
            flops_per_step: 2e8,
            group_size: 0,
        }
    }
}

impl TrainingConfig {
    /// Default config with the hierarchy aligned to the fabric's
    /// locality groups (flat when the fabric has a single group).
    pub fn for_fabric(fabric: &Fabric) -> TrainingConfig {
        TrainingConfig { group_size: fabric.group_size(), ..TrainingConfig::default() }
    }
}

fn remap(ops: Vec<SchedOp>, f: impl Fn(u32) -> u32) -> impl Iterator<Item = SchedOp> {
    ops.into_iter().map(move |op| match op {
        SchedOp::Send { to, bytes } => SchedOp::Send { to: f(to), bytes },
        SchedOp::Recv { from } => SchedOp::Recv { from: f(from) },
        other => other,
    })
}

/// Splice rank `rank`'s allreduce schedule for this config into `ops`.
fn splice_allreduce(ops: &mut Vec<SchedOp>, cfg: &TrainingConfig, rank: u32, p: u32) {
    let gs = cfg.group_size;
    let flat = gs < 2 || gs >= p || !p.is_multiple_of(gs);
    if flat {
        ops.extend(schedule(
            Collective::Allreduce(AllreduceAlgo::RecursiveDoubling),
            rank,
            p,
            cfg.model_bytes,
        ));
        return;
    }
    let groups = p / gs;
    let (g, local) = (rank / gs, rank % gs);
    let global = |lr: u32| g * gs + lr;
    // Stage 1: reduce to the group leader (group-local rank 0).
    ops.extend(remap(
        schedule(Collective::ReduceBinomial, local, gs, cfg.model_bytes),
        global,
    ));
    // Stage 2: leaders allreduce among themselves.
    if local == 0 {
        ops.extend(remap(
            schedule(
                Collective::Allreduce(AllreduceAlgo::RecursiveDoubling),
                g,
                groups,
                cfg.model_bytes,
            ),
            |leader| leader * gs,
        ));
    }
    // Stage 3: broadcast back down inside the group.
    ops.extend(remap(
        schedule(Collective::Bcast(BcastAlgo::Binomial), local, gs, cfg.model_bytes),
        global,
    ));
}

/// Compile the training loop for `p` ranks of `node`.
pub fn compile(cfg: &TrainingConfig, node: &NodeModel, p: u32) -> Compiled {
    let work = phase_ps(node, &DGEMM, cfg.flops_per_step);
    let programs = (0..p)
        .map(|rank| {
            let mut ops = Vec::new();
            for _ in 0..cfg.steps {
                ops.push(SchedOp::Work { ps: work });
                splice_allreduce(&mut ops, cfg, rank, p);
            }
            ops
        })
        .collect();
    Compiled {
        programs,
        useful_flops: cfg.flops_per_step * p as f64 * cfg.steps as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polaris_arch::device::Projection;
    use polaris_arch::node::{NodeKind, NodeModel};
    use polaris_collectives::simx::ExecParams;
    use polaris_simnet::link::Generation;

    fn pc2002() -> NodeModel {
        NodeModel::build(NodeKind::Pc, &Projection::default().at(2002))
    }

    #[test]
    fn hierarchical_and_flat_both_complete() {
        let node = pc2002();
        for gs in [0u32, 8] {
            let cfg = TrainingConfig {
                steps: 2,
                model_bytes: 1 << 16,
                group_size: gs,
                ..TrainingConfig::default()
            };
            let c = compile(&cfg, &node, 32);
            let fabric = Fabric::crossbar(Generation::InfiniBand4x, 32);
            let (res, _) = fabric.run(c.programs, ExecParams::default(), 2);
            assert!(res.messages > 0, "gs={gs}");
        }
    }

    #[test]
    fn hierarchy_moves_fewer_cross_group_bytes() {
        let node = pc2002();
        let p = 64u32;
        let gs = 16u32;
        let cross_bytes = |cfg: &TrainingConfig| {
            compile(cfg, &node, p)
                .programs
                .iter()
                .enumerate()
                .flat_map(|(r, ops)| {
                    let r = r as u32;
                    ops.iter().filter_map(move |op| match *op {
                        SchedOp::Send { to, bytes } if to / gs != r / gs => Some(bytes),
                        _ => None,
                    })
                })
                .sum::<u64>()
        };
        let flat = cross_bytes(&TrainingConfig { group_size: 0, ..TrainingConfig::default() });
        let hier = cross_bytes(&TrainingConfig { group_size: gs, ..TrainingConfig::default() });
        assert!(hier < flat / 2, "hier {hier} vs flat {flat}");
    }

    #[test]
    fn uneven_group_sizes_fall_back_to_flat() {
        let node = pc2002();
        // 24 ranks, group size 16: not divisible, must still terminate.
        let cfg = TrainingConfig {
            steps: 1,
            model_bytes: 1 << 12,
            group_size: 16,
            ..TrainingConfig::default()
        };
        let c = compile(&cfg, &node, 24);
        let fabric = Fabric::crossbar(Generation::GigabitEthernet, 24);
        let (res, _) = fabric.run(c.programs, ExecParams::default(), 1);
        assert!(res.messages > 0);
    }
}
