//! MapReduce shuffle: map locally, exchange every pair's partition
//! all-to-all, reduce locally.
//!
//! The map and reduce phases are [`FFT`]-profile work (mixed-intensity
//! record processing with some pointer chasing); the shuffle itself
//! splices the pairwise all-to-all schedule — the bisection-bandwidth
//! stress test, which is exactly why this workload separates fat trees
//! from oversubscribed fabrics in F14.

use crate::{phase_ps, Compiled};
use polaris_arch::kernels::FFT;
use polaris_arch::node::NodeModel;
use polaris_collectives::simx::{schedule, Collective, SchedOp};

#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShuffleConfig {
    /// Map-shuffle-reduce rounds.
    pub rounds: u32,
    /// Bytes each rank sends to each other rank per round.
    pub bytes_per_pair: u64,
    /// Map flops per rank per round.
    pub map_flops: f64,
    /// Reduce flops per rank per round.
    pub reduce_flops: f64,
}

impl Default for ShuffleConfig {
    fn default() -> Self {
        ShuffleConfig {
            rounds: 2,
            bytes_per_pair: 1 << 16,
            map_flops: 5e8,
            reduce_flops: 2e8,
        }
    }
}

/// Compile the shuffle for `p` ranks of `node`.
pub fn compile(cfg: &ShuffleConfig, node: &NodeModel, p: u32) -> Compiled {
    let map = phase_ps(node, &FFT, cfg.map_flops);
    let reduce = phase_ps(node, &FFT, cfg.reduce_flops);
    let programs = (0..p)
        .map(|rank| {
            let mut ops = Vec::new();
            for _ in 0..cfg.rounds {
                ops.push(SchedOp::Work { ps: map });
                ops.extend(schedule(
                    Collective::AlltoallPairwise,
                    rank,
                    p,
                    cfg.bytes_per_pair,
                ));
                ops.push(SchedOp::Work { ps: reduce });
            }
            ops
        })
        .collect();
    Compiled {
        programs,
        useful_flops: (cfg.map_flops + cfg.reduce_flops) * p as f64 * cfg.rounds as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Fabric;
    use polaris_arch::device::Projection;
    use polaris_arch::node::{NodeKind, NodeModel};
    use polaris_collectives::simx::ExecParams;
    use polaris_simnet::link::Generation;

    fn pc2002() -> NodeModel {
        NodeModel::build(NodeKind::Pc, &Projection::default().at(2002))
    }

    #[test]
    fn shuffle_is_all_to_all() {
        let cfg = ShuffleConfig { rounds: 1, ..ShuffleConfig::default() };
        let p = 16u32;
        let c = compile(&cfg, &pc2002(), p);
        let fabric = Fabric::crossbar(Generation::GigabitEthernet, p);
        let (res, _) = fabric.run(c.programs, ExecParams::default(), 2);
        assert_eq!(res.messages, (p * (p - 1)) as u64);
        assert_eq!(res.payload_bytes, (p * (p - 1)) as u64 * cfg.bytes_per_pair);
    }
}
