//! ULFM-style failure-aware collectives.
//!
//! [`FtComm`] wraps a messaging [`Endpoint`] with the three ingredients
//! fault-tolerant MPI (ULFM) prescribes:
//!
//! * **absorption** — a send to or receive from a dead rank does not
//!   block or panic: the operation is recorded in the attempt's observed
//!   failure set and the collective keeps moving, so every survivor
//!   drains out of a broken round instead of deadlocking;
//! * **agreement** — [`FtComm::agree`] runs a dissemination OR-gossip
//!   over the surviving group (each round also re-polling fabric-level
//!   liveness, the perfect failure detector the virtual fabric provides)
//!   so that all survivors reach the same verdict on whether the attempt
//!   was contaminated;
//! * **shrink** — [`FtComm::shrink`] removes the agreed-dead ranks from
//!   the group and bumps the **epoch**, which salts every subsequent tag
//!   so stale frames from an aborted attempt can never match a retry's
//!   receives.
//!
//! [`ft_allreduce`] and [`ft_bcast`] compose these into retry loops:
//! snapshot the input, attempt the collective over the current group,
//! agree, and on contamination shrink and re-run from the snapshot. The
//! result on survivors is the reduction over the surviving ranks'
//! contributions — exactly what a shrink-and-continue application wants.

use crate::allreduce::{allreduce_with, AllreduceAlgo};
use crate::bcast::{bcast_with, BcastAlgo};
use crate::comm::{Comm, COLL_TAG_BASE};
use crate::op::{Reducible, ReduceOp};
use polaris_msg::prelude::{Endpoint, MatchSpec, MsgError};
use std::collections::BTreeSet;
use std::time::{Duration, Instant};

/// Tag namespace for the agreement rounds (salted per epoch like all
/// FtComm traffic, so attempts never cross-talk).
const TAG_AGREE: u64 = COLL_TAG_BASE + 40;

/// Epoch salt position: collective tags live in the low bits, the top
/// bit marks the collective namespace, so bits 40.. are free.
const EPOCH_SHIFT: u64 = 40;

/// Why a fault-tolerant collective could not produce a result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FtError {
    /// This endpoint itself is dead; it cannot participate further.
    Down,
    /// The broadcast root is among the dead.
    RootFailed(u32),
    /// The group kept shrinking until no retry could succeed.
    RetriesExhausted,
}

impl std::fmt::Display for FtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FtError::Down => write!(f, "local endpoint is down"),
            FtError::RootFailed(r) => write!(f, "broadcast root rank {r} failed"),
            FtError::RetriesExhausted => write!(f, "retry budget exhausted"),
        }
    }
}

impl std::error::Error for FtError {}

/// What a successful fault-tolerant collective went through.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FtReport {
    /// Epoch the successful attempt ran in (0 = no failures absorbed).
    pub epoch: u32,
    /// World ranks removed by shrinks along the way, in removal order.
    pub removed: Vec<u32>,
}

/// A shrinkable communicator over surviving ranks.
///
/// Implements [`Comm`] so every existing collective algorithm runs over
/// it unchanged; ranks seen by the algorithm are *virtual* (dense
/// positions within the surviving group) and are translated to world
/// ranks at the wire.
pub struct FtComm<'a> {
    ep: &'a mut Endpoint,
    /// Surviving world ranks, sorted; always contains the local rank
    /// while the endpoint is up.
    group: Vec<u32>,
    epoch: u32,
    /// World ranks observed dead during the current attempt.
    observed: BTreeSet<u32>,
    down: bool,
    /// Abort a blocking wait after this long: a correct absorb path
    /// never blocks for long, so a stall is a harness bug worth a loud
    /// panic rather than a silent hang.
    pub stall_timeout: Duration,
    /// Test hook: crash the endpoint after this many comm operations.
    crash_after: Option<u32>,
}

impl<'a> FtComm<'a> {
    pub fn new(ep: &'a mut Endpoint) -> Self {
        let group: Vec<u32> = (0..ep.size()).collect();
        FtComm {
            ep,
            group,
            epoch: 0,
            observed: BTreeSet::new(),
            down: false,
            stall_timeout: Duration::from_secs(30),
            crash_after: None,
        }
    }

    /// Surviving world ranks, sorted.
    pub fn group(&self) -> &[u32] {
        &self.group
    }

    /// Current epoch (bumped by every [`FtComm::shrink`]).
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Whether the local endpoint has failed.
    pub fn is_down(&self) -> bool {
        self.down
    }

    /// Fault injection for tests: after `ops` more comm operations, the
    /// local endpoint calls [`Endpoint::fail`] mid-collective.
    pub fn crash_after(&mut self, ops: u32) {
        self.crash_after = Some(ops);
    }

    fn salt(&self, tag: u64) -> u64 {
        tag ^ ((self.epoch as u64) << EPOCH_SHIFT)
    }

    fn world(&self, vr: u32) -> u32 {
        self.group[vr as usize]
    }

    /// Service the test crash hook; returns true if the endpoint just
    /// went down.
    fn tick_crash(&mut self) -> bool {
        if let Some(n) = self.crash_after {
            if n == 0 {
                self.crash_after = None;
                self.ep.fail();
                self.down = true;
                return true;
            }
            self.crash_after = Some(n - 1);
        }
        false
    }

    /// Fold fabric-level liveness (the perfect failure detector the
    /// virtual fabric provides) into the observed set.
    fn poll_ground_truth(&mut self) {
        if self.down {
            return;
        }
        self.ep.detect_failures();
        let me = self.ep.rank();
        for i in 0..self.group.len() {
            let g = self.group[i];
            if g != me && !self.ep.peer_alive(g) {
                self.observed.insert(g);
            }
        }
    }

    fn absorb(&mut self, e: MsgError) {
        match e {
            MsgError::PeerFailed(p) => {
                self.observed.insert(p);
            }
            MsgError::EndpointDown => self.down = true,
            other => panic!("unexpected collective transport error: {other:?}"),
        }
    }

    /// Agreement: do all survivors think this attempt was clean?
    ///
    /// Runs ⌈log₂ m⌉ dissemination rounds OR-ing everyone's observed
    /// failure sets, re-polling ground truth between rounds. Returns
    /// true if any failure was observed group-wide.
    pub fn agree(&mut self) -> bool {
        self.poll_ground_truth();
        let m = self.group.len() as u32;
        if m > 1 && !self.down {
            let me_vr = self.rank();
            let world = self.ep.size() as usize;
            let mut step = 1u32;
            let mut round = 0u64;
            while step < m {
                let to = (me_vr + step) % m;
                let from = (me_vr + m - step) % m;
                let payload = encode_set(&self.observed);
                let got = self.sendrecv_bytes(
                    to,
                    &payload,
                    from,
                    TAG_AGREE + round,
                    4 * (world + 1),
                );
                for r in decode_set(&got) {
                    if r != self.ep.rank() {
                        self.observed.insert(r);
                    }
                }
                self.poll_ground_truth();
                step <<= 1;
                round += 1;
            }
        }
        !self.observed.is_empty()
    }

    /// ULFM `MPI_Comm_shrink`: drop the agreed-dead ranks from the
    /// group, enter a fresh epoch, and return the removed world ranks.
    pub fn shrink(&mut self) -> Vec<u32> {
        self.poll_ground_truth();
        let dead: Vec<u32> = self
            .group
            .iter()
            .copied()
            .filter(|g| self.observed.contains(g))
            .collect();
        self.group.retain(|g| !self.observed.contains(g));
        self.epoch += 1;
        self.observed.clear();
        dead
    }
}

fn encode_set(s: &BTreeSet<u32>) -> Vec<u8> {
    let mut v = Vec::with_capacity(4 * (s.len() + 1));
    v.extend_from_slice(&(s.len() as u32).to_le_bytes());
    for r in s {
        v.extend_from_slice(&r.to_le_bytes());
    }
    v
}

fn decode_set(b: &[u8]) -> Vec<u32> {
    if b.len() < 4 {
        return Vec::new();
    }
    let n = u32::from_le_bytes(b[..4].try_into().unwrap()) as usize;
    (0..n)
        .filter_map(|i| {
            let at = 4 + 4 * i;
            b.get(at..at + 4)
                .map(|w| u32::from_le_bytes(w.try_into().unwrap()))
        })
        .collect()
}

impl Comm for FtComm<'_> {
    fn rank(&self) -> u32 {
        let me = self.ep.rank();
        self.group
            .iter()
            .position(|&g| g == me)
            .expect("local rank left the group") as u32
    }

    fn size(&self) -> u32 {
        self.group.len() as u32
    }

    fn send_bytes(&mut self, dst: u32, tag: u64, data: &[u8]) {
        if self.tick_crash() {
            return;
        }
        let dst = self.world(dst);
        if self.down || self.observed.contains(&dst) {
            return;
        }
        let buf = match self.ep.alloc(data.len()) {
            Ok(b) => b,
            Err(e) => return self.absorb(e),
        };
        let mut buf = buf;
        buf.fill_from(data);
        let req = match self.ep.isend(dst, self.salt(tag), buf) {
            Ok(r) => r,
            Err(e) => return self.absorb(e),
        };
        let deadline = Instant::now() + self.stall_timeout;
        loop {
            match self.ep.test_send(req) {
                Ok(Some(b)) => {
                    self.ep.release(b);
                    return;
                }
                Ok(None) => {}
                Err(e) => return self.absorb(e),
            }
            self.ep.detect_failures();
            assert!(Instant::now() < deadline, "FT send to {dst} stalled");
        }
    }

    fn recv_bytes(&mut self, src: u32, tag: u64, max_len: usize) -> Vec<u8> {
        if self.tick_crash() {
            return vec![0; max_len];
        }
        let src = self.world(src);
        if self.down || self.observed.contains(&src) {
            return vec![0; max_len];
        }
        let buf = match self.ep.alloc(max_len.max(1)) {
            Ok(b) => b,
            Err(e) => {
                self.absorb(e);
                return vec![0; max_len];
            }
        };
        let req = match self.ep.irecv(MatchSpec::exact(src, self.salt(tag)), buf) {
            Ok(r) => r,
            Err(e) => {
                self.absorb(e);
                return vec![0; max_len];
            }
        };
        let deadline = Instant::now() + self.stall_timeout;
        loop {
            match self.ep.test_recv(req) {
                Ok(Some((b, info))) => {
                    let mut v = b.to_vec();
                    v.truncate(info.len);
                    self.ep.release(b);
                    return v;
                }
                Ok(None) => {}
                Err(e) => {
                    self.absorb(e);
                    return vec![0; max_len];
                }
            }
            self.ep.detect_failures();
            assert!(Instant::now() < deadline, "FT recv from {src} stalled");
        }
    }

    fn sendrecv_bytes(
        &mut self,
        dst: u32,
        data: &[u8],
        src: u32,
        tag: u64,
        max_len: usize,
    ) -> Vec<u8> {
        if self.tick_crash() {
            return vec![0; max_len];
        }
        let dst_w = self.world(dst);
        if self.down {
            return vec![0; max_len];
        }
        // Post the send without blocking on it, then drive the receive;
        // each side absorbs its own failures independently.
        let sreq = if self.observed.contains(&dst_w) {
            None
        } else {
            match self.ep.alloc(data.len()) {
                Ok(mut b) => {
                    b.fill_from(data);
                    match self.ep.isend(dst_w, self.salt(tag), b) {
                        Ok(r) => Some(r),
                        Err(e) => {
                            self.absorb(e);
                            None
                        }
                    }
                }
                Err(e) => {
                    self.absorb(e);
                    None
                }
            }
        };
        let out = self.recv_bytes(src, tag, max_len);
        if let Some(req) = sreq {
            let deadline = Instant::now() + self.stall_timeout;
            loop {
                match self.ep.test_send(req) {
                    Ok(Some(b)) => {
                        self.ep.release(b);
                        break;
                    }
                    Ok(None) => {}
                    Err(e) => {
                        self.absorb(e);
                        break;
                    }
                }
                self.ep.detect_failures();
                assert!(Instant::now() < deadline, "FT sendrecv to {dst_w} stalled");
            }
        }
        out
    }
}

/// Allreduce that survives rank failures: attempt over the current
/// group, agree on contamination, shrink and retry from a snapshot of
/// the input. On success every survivor holds the reduction over the
/// surviving ranks' contributions.
pub fn ft_allreduce<T: Reducible>(
    ftc: &mut FtComm,
    algo: AllreduceAlgo,
    op: ReduceOp,
    data: &mut [T],
) -> Result<FtReport, FtError> {
    let snapshot = data.to_vec();
    let mut removed = Vec::new();
    let max_attempts = ftc.ep.size() + 1;
    for _ in 0..max_attempts {
        data.copy_from_slice(&snapshot);
        allreduce_with(ftc, algo, op, data);
        if ftc.is_down() {
            return Err(FtError::Down);
        }
        let contaminated = ftc.agree();
        // The local endpoint can die *during* agreement; that outranks
        // whatever verdict the rounds produced.
        if ftc.is_down() {
            return Err(FtError::Down);
        }
        if !contaminated {
            return Ok(FtReport {
                epoch: ftc.epoch(),
                removed,
            });
        }
        removed.extend(ftc.shrink());
        if ftc.size() <= 1 {
            // Lone survivor: the reduction is its own contribution.
            data.copy_from_slice(&snapshot);
            return Ok(FtReport {
                epoch: ftc.epoch(),
                removed,
            });
        }
    }
    Err(FtError::RetriesExhausted)
}

/// Broadcast that survives non-root rank failures. `root` is a world
/// rank; if it dies the broadcast cannot be saved and
/// [`FtError::RootFailed`] is returned on all survivors.
pub fn ft_bcast(
    ftc: &mut FtComm,
    algo: BcastAlgo,
    root: u32,
    data: &mut [u8],
) -> Result<FtReport, FtError> {
    let is_root = ftc.ep.rank() == root;
    let snapshot = data.to_vec();
    let mut removed = Vec::new();
    let max_attempts = ftc.ep.size() + 1;
    for _ in 0..max_attempts {
        let Some(root_vr) = ftc.group().iter().position(|&g| g == root) else {
            return Err(FtError::RootFailed(root));
        };
        if is_root {
            data.copy_from_slice(&snapshot);
        }
        bcast_with(ftc, algo, root_vr as u32, data);
        if ftc.is_down() {
            return Err(FtError::Down);
        }
        let contaminated = ftc.agree();
        if ftc.is_down() {
            return Err(FtError::Down);
        }
        if !contaminated {
            return Ok(FtReport {
                epoch: ftc.epoch(),
                removed,
            });
        }
        removed.extend(ftc.shrink());
        if removed.contains(&root) {
            return Err(FtError::RootFailed(root));
        }
        if ftc.size() <= 1 {
            if is_root {
                data.copy_from_slice(&snapshot);
            }
            return Ok(FtReport {
                epoch: ftc.epoch(),
                removed,
            });
        }
    }
    Err(FtError::RetriesExhausted)
}

/// Typed convenience: snapshot-preserving fault-tolerant sum/min/max.
pub fn ft_allreduce_elems<T: Reducible>(
    ftc: &mut FtComm,
    op: ReduceOp,
    data: &mut [T],
) -> Result<FtReport, FtError> {
    ft_allreduce(ftc, AllreduceAlgo::RecursiveDoubling, op, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::run_world;
    use polaris_msg::prelude::MsgConfig;

    /// Outcome each rank reports from an FT collective test.
    type RankOutcome = Result<(Vec<u64>, FtReport), FtError>;

    fn ft_sum_world(
        p: u32,
        n: usize,
        algo: AllreduceAlgo,
        crashes: Vec<(u32, u32)>, // (rank, crash after N ops)
    ) -> Vec<RankOutcome> {
        run_world(p, MsgConfig::default(), move |mut ep| {
            let r = ep.rank() as u64;
            let mut data: Vec<u64> = (0..n as u64).map(|i| r + i * 3).collect();
            let mut ftc = FtComm::new(&mut ep);
            ftc.stall_timeout = Duration::from_secs(10);
            if let Some(&(_, ops)) = crashes.iter().find(|(cr, _)| *cr == ftc.ep.rank()) {
                ftc.crash_after(ops);
            }
            ft_allreduce(&mut ftc, algo, ReduceOp::Sum, &mut data).map(|rep| (data, rep))
        })
    }

    fn expected_sum(survivors: &[u64], n: usize) -> Vec<u64> {
        let rank_sum: u64 = survivors.iter().sum();
        let p = survivors.len() as u64;
        (0..n as u64).map(|i| rank_sum + 3 * i * p).collect()
    }

    #[test]
    fn clean_run_matches_plain_allreduce() {
        for algo in [AllreduceAlgo::RecursiveDoubling, AllreduceAlgo::Ring] {
            let out = ft_sum_world(4, 16, algo, vec![]);
            let expect = expected_sum(&[0, 1, 2, 3], 16);
            for (r, o) in out.iter().enumerate() {
                let (data, rep) = o.as_ref().expect("clean run succeeds");
                assert_eq!(rep.epoch, 0, "no shrink on a clean fabric");
                assert!(rep.removed.is_empty());
                assert_eq!(data, &expect, "rank {r} under {algo:?}");
            }
        }
    }

    #[test]
    fn allreduce_survives_crash_before_collective() {
        let out = ft_sum_world(4, 8, AllreduceAlgo::RecursiveDoubling, vec![(2, 0)]);
        let expect = expected_sum(&[0, 1, 3], 8);
        for (r, o) in out.iter().enumerate() {
            if r == 2 {
                assert_eq!(o, &Err(FtError::Down));
            } else {
                let (data, rep) = o.as_ref().expect("survivor succeeds");
                assert_eq!(rep.removed, vec![2]);
                assert!(rep.epoch >= 1);
                assert_eq!(data, &expect, "survivor rank {r}");
            }
        }
    }

    #[test]
    fn allreduce_survives_crash_mid_collective() {
        for algo in [AllreduceAlgo::Ring, AllreduceAlgo::RecursiveDoubling] {
            let out = ft_sum_world(5, 12, algo, vec![(1, 3)]);
            let expect = expected_sum(&[0, 2, 3, 4], 12);
            for (r, o) in out.iter().enumerate() {
                if r == 1 {
                    assert_eq!(o, &Err(FtError::Down), "{algo:?}");
                } else {
                    let (data, rep) = o.as_ref().expect("survivor succeeds");
                    assert_eq!(rep.removed, vec![1], "{algo:?}");
                    assert_eq!(data, &expect, "survivor rank {r} under {algo:?}");
                }
            }
        }
    }

    #[test]
    fn allreduce_survives_two_crashes() {
        let out = ft_sum_world(6, 10, AllreduceAlgo::Ring, vec![(1, 2), (4, 5)]);
        let expect = expected_sum(&[0, 2, 3, 5], 10);
        for (r, o) in out.iter().enumerate() {
            if r == 1 || r == 4 {
                assert_eq!(o, &Err(FtError::Down));
            } else {
                let (data, rep) = o.as_ref().expect("survivor succeeds");
                let mut removed = rep.removed.clone();
                removed.sort_unstable();
                assert_eq!(removed, vec![1, 4]);
                assert_eq!(data, &expect, "survivor rank {r}");
            }
        }
    }

    #[test]
    fn shrink_to_lone_survivor() {
        let out = ft_sum_world(2, 4, AllreduceAlgo::RecursiveDoubling, vec![(0, 1)]);
        let expect = expected_sum(&[1], 4);
        assert_eq!(out[0], Err(FtError::Down));
        let (data, rep) = out[1].as_ref().expect("lone survivor succeeds");
        assert_eq!(rep.removed, vec![0]);
        assert_eq!(data, &expect);
    }

    #[test]
    fn bcast_survives_non_root_crash() {
        let out = run_world(4, MsgConfig::default(), move |mut ep| {
            let rank = ep.rank();
            let mut data = if rank == 0 {
                b"chaos-proof payload".to_vec()
            } else {
                vec![0u8; 19]
            };
            let mut ftc = FtComm::new(&mut ep);
            ftc.stall_timeout = Duration::from_secs(10);
            if rank == 3 {
                ftc.crash_after(1);
            }
            ft_bcast(&mut ftc, BcastAlgo::Binomial, 0, &mut data).map(|rep| (data, rep))
        });
        for (r, o) in out.iter().enumerate() {
            if r == 3 {
                assert_eq!(o, &Err(FtError::Down));
            } else {
                let (data, rep) = o.as_ref().expect("survivor succeeds");
                assert_eq!(rep.removed, vec![3]);
                assert_eq!(&data[..], b"chaos-proof payload", "rank {r}");
            }
        }
    }

    #[test]
    fn bcast_reports_root_failure() {
        let out = run_world(3, MsgConfig::default(), move |mut ep| {
            let rank = ep.rank();
            let mut data = if rank == 0 { vec![7u8; 8] } else { vec![0u8; 8] };
            let mut ftc = FtComm::new(&mut ep);
            ftc.stall_timeout = Duration::from_secs(10);
            if rank == 0 {
                ftc.crash_after(0);
            }
            ft_bcast(&mut ftc, BcastAlgo::Binomial, 0, &mut data).err()
        });
        assert_eq!(out[0], Some(FtError::Down));
        for o in &out[1..] {
            assert_eq!(o, &Some(FtError::RootFailed(0)));
        }
    }

    #[test]
    fn agreement_set_encoding_roundtrips() {
        let s: BTreeSet<u32> = [3, 17, 999].into_iter().collect();
        assert_eq!(decode_set(&encode_set(&s)), vec![3, 17, 999]);
        assert!(decode_set(&encode_set(&BTreeSet::new())).is_empty());
        // Absorbed (all-zero) agreement payloads decode as empty.
        assert!(decode_set(&[0u8; 16]).is_empty());
    }
}
