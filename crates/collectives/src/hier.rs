//! Topology-aware hierarchical allreduce for group-structured fabrics.
//!
//! On a Dragonfly, a flat recursive-doubling allreduce is hostile to
//! the wiring: every round with `mask >= group_size` makes all `S`
//! hosts of a group exchange with the *same* partner group, and the
//! Dragonfly provides exactly one global cable per group pair — `S`
//! messages serialize over one wire, every round, `log2(groups)` times.
//!
//! The hierarchical schedule restructures the collective around the
//! topology: (1) a binomial reduce inside each group delivers the group
//! sum to a leader, (2) the `G` leaders allreduce among themselves —
//! over the packet fabric, or over *reserved optical circuits* obtained
//! from the [`CircuitScheduler`] — and (3) a binomial broadcast fans
//! the result back out inside each group. Only one message per group
//! crosses the global wires per round.
//!
//! All three stages are deterministic and shard-count invariant: the
//! local stages run through [`simulate_collective_sharded`] (bit-equal
//! at any `jobs`), and the circuit stage is closed arithmetic over the
//! scheduler — so `jobs = 1, 2, 4` produce identical picosecond
//! results, which `tests/parallel_determinism.rs` holds as an oracle.

use crate::allreduce::AllreduceAlgo;
use crate::bcast::BcastAlgo;
use crate::parsim::simulate_collective_sharded;
use crate::simx::{Collective, ExecParams};
use polaris_simnet::circuit::{CircuitScheduler, CircuitSchedulerConfig};
use polaris_simnet::link::LinkModel;
use polaris_simnet::time::{SimDuration, SimTime};

/// How the inter-group (leader) stage moves bytes.
#[derive(Debug, Clone, Copy)]
pub enum InterGroup {
    /// Recursive doubling over the packet fabric (global links shared
    /// with everything else, but no reconfiguration cost).
    Packet,
    /// Reserved optical circuits: each round's pairwise exchanges
    /// reserve point-to-point circuits from the scheduler, paying
    /// reconfiguration once per reservation and running at circuit
    /// bandwidth with zero packet contention.
    Circuits(CircuitSchedulerConfig),
}

/// Timing breakdown of one hierarchical allreduce.
#[derive(Debug, Clone, Copy)]
pub struct HierResult {
    /// End-to-end completion (sum of the three stage barriers).
    pub completion: SimDuration,
    /// Stage 1: binomial reduce to the group leader.
    pub local_reduce: SimDuration,
    /// Stage 2: allreduce among the `groups` leaders.
    pub inter_group: SimDuration,
    /// Stage 3: binomial broadcast from the leader.
    pub local_bcast: SimDuration,
    /// Messages crossing group boundaries (leader traffic only).
    pub global_messages: u64,
}

/// Simulate a hierarchical allreduce of `bytes` over `groups` groups of
/// `group_size` hosts each. `link` models the electrical fabric used by
/// the local stages (and the leader stage when `inter` is
/// [`InterGroup::Packet`]); `jobs` shards the local-stage simulation.
///
/// Every group runs the identical local schedule on disjoint hosts, so
/// the local stages are simulated once for a representative group —
/// that is what makes a 1M-host figure tractable — while the leader
/// stage covers all `groups` leaders.
pub fn simulate_hier_allreduce(
    groups: u32,
    group_size: u32,
    bytes: u64,
    params: ExecParams,
    link: LinkModel,
    inter: InterGroup,
    jobs: u32,
) -> HierResult {
    assert!(groups >= 1 && group_size >= 1);
    let local_reduce = if group_size > 1 {
        simulate_collective_sharded(
            group_size,
            Collective::ReduceBinomial,
            bytes,
            params,
            link,
            jobs,
        )
        .completion
    } else {
        SimDuration::ZERO
    };
    let local_bcast = if group_size > 1 {
        simulate_collective_sharded(
            group_size,
            Collective::Bcast(BcastAlgo::Binomial),
            bytes,
            params,
            link,
            jobs,
        )
        .completion
    } else {
        SimDuration::ZERO
    };
    let (inter_group, global_messages) = match inter {
        InterGroup::Packet => {
            if groups > 1 {
                let r = simulate_collective_sharded(
                    groups,
                    Collective::Allreduce(AllreduceAlgo::RecursiveDoubling),
                    bytes,
                    params,
                    link,
                    jobs,
                );
                (r.completion, r.messages)
            } else {
                (SimDuration::ZERO, 0)
            }
        }
        InterGroup::Circuits(cfg) => circuit_allreduce_time(groups, bytes, params, cfg),
    };
    HierResult {
        completion: local_reduce + inter_group + local_bcast,
        local_reduce,
        inter_group,
        local_bcast,
        global_messages,
    }
}

/// Recursive-doubling allreduce among `groups` leaders where every
/// pairwise exchange runs over a reserved circuit. Drives a real
/// [`CircuitScheduler`] so capacity, reconfiguration latency, and the
/// reserve/transfer/release discipline are all honored (and its event
/// ledger exercised); requires a power-of-two group count, which every
/// F13 Dragonfly configuration satisfies.
///
/// Within a round the `groups` directed transfers are packed into waves
/// of at most `max_circuits` concurrent reservations; a wave's circuits
/// reserve together, transfer in parallel, and release before the next
/// wave reserves. Deterministic: iteration order is leader-ascending.
pub fn circuit_allreduce_time(
    groups: u32,
    bytes: u64,
    params: ExecParams,
    cfg: CircuitSchedulerConfig,
) -> (SimDuration, u64) {
    if groups <= 1 {
        return (SimDuration::ZERO, 0);
    }
    assert!(
        groups.is_power_of_two(),
        "circuit inter-group stage requires a power-of-two group count, got {groups}"
    );
    assert!(cfg.max_circuits >= 1, "need at least one circuit");
    let mut s = CircuitScheduler::new(cfg);
    let compute = SimDuration::from_secs_f64(bytes as f64 / params.compute_bps as f64);
    let mut t = SimTime::ZERO;
    let mut messages = 0u64;
    let mut mask = 1u32;
    while mask < groups {
        // One round: every leader g exchanges with g ^ mask. The 2·G/2
        // directed transfers pack into capacity-bounded waves.
        let mut g = 0u32;
        let mut round_end = t;
        while g < groups {
            let wave_start = t;
            let mut wave = Vec::with_capacity(cfg.max_circuits);
            while g < groups && wave.len() < cfg.max_circuits {
                let res = s
                    .try_reserve(wave_start, g, g ^ mask)
                    .expect("wave sized to capacity");
                wave.push(res);
                g += 1;
            }
            let mut wave_end = wave_start;
            for res in &wave {
                let arrival = s.transfer(wave_start, res, bytes).expect("circuit active");
                wave_end = wave_end.max(arrival);
                messages += 1;
            }
            for res in &wave {
                s.release(wave_end, res).expect("circuit active");
            }
            round_end = round_end.max(wave_end);
            t = wave_end;
        }
        // Round barrier: send/recv overhead at the leader plus the
        // reduction arithmetic, then the next round may start.
        t = round_end + params.overhead + params.overhead + compute;
        mask <<= 1;
    }
    debug_assert_eq!(s.active_count(), 0, "all circuits released");
    (t.since(SimTime::ZERO), messages)
}

/// Closed-form completion of a *flat* recursive-doubling allreduce over
/// `groups * group_size` hosts of a Dragonfly, for comparison against
/// the hierarchical schedule. Rounds with `mask < group_size` stay
/// inside a group (≤3-link minimal paths, uncontended). Rounds with
/// `mask >= group_size` pair every host with a peer in one partner
/// group, and the Dragonfly has a single global cable per group pair:
/// the `group_size` concurrent messages serialize over that cable, so
/// each such round pays `(S-1)` extra serialization terms on top of the
/// 5-link minimal path.
pub fn flat_allreduce_model(
    groups: u32,
    group_size: u32,
    bytes: u64,
    params: ExecParams,
    link: LinkModel,
) -> SimDuration {
    let p = groups as u64 * group_size as u64;
    if p <= 1 {
        return SimDuration::ZERO;
    }
    assert!(
        (groups == 1 || groups.is_power_of_two()) && group_size.is_power_of_two(),
        "flat model assumes power-of-two dimensions"
    );
    let compute = SimDuration::from_secs_f64(bytes as f64 / params.compute_bps as f64);
    let ser_ps = link.serialize_payload(bytes).0;
    let mut total = SimDuration::ZERO;
    let mut mask = 1u64;
    while mask < p {
        let round = if mask < group_size as u64 {
            // Intra-group: host -> router -> router -> host worst case.
            link.message_time(bytes, 3)
        } else {
            // Cross-group: 5-link minimal path plus serialization of the
            // group's S concurrent messages over the one global cable.
            link.message_time(bytes, 5) + SimDuration(ser_ps * (group_size as u64 - 1))
        };
        total = total + params.overhead + params.overhead + round + compute;
        mask <<= 1;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use polaris_simnet::link::Generation;

    fn params() -> ExecParams {
        ExecParams::default()
    }

    #[test]
    fn hier_is_deterministic_and_jobs_invariant() {
        let link = Generation::InfiniBand4x.link_model();
        let base = simulate_hier_allreduce(
            16,
            32,
            1 << 20,
            params(),
            link,
            InterGroup::Circuits(CircuitSchedulerConfig::default()),
            1,
        );
        for jobs in [2u32, 4] {
            let r = simulate_hier_allreduce(
                16,
                32,
                1 << 20,
                params(),
                link,
                InterGroup::Circuits(CircuitSchedulerConfig::default()),
                jobs,
            );
            assert_eq!(r.completion, base.completion, "jobs={jobs}");
            assert_eq!(r.global_messages, base.global_messages);
        }
    }

    #[test]
    fn circuit_stage_respects_capacity_waves() {
        // 8 groups, capacity 2: each round's 8 transfers need 4 waves;
        // capacity 8 needs 1. More waves must cost strictly more.
        let cfg_small = CircuitSchedulerConfig {
            max_circuits: 2,
            ..CircuitSchedulerConfig::default()
        };
        let cfg_big = CircuitSchedulerConfig {
            max_circuits: 8,
            ..CircuitSchedulerConfig::default()
        };
        let (t_small, m_small) = circuit_allreduce_time(8, 1 << 20, params(), cfg_small);
        let (t_big, m_big) = circuit_allreduce_time(8, 1 << 20, params(), cfg_big);
        assert_eq!(m_small, m_big);
        assert_eq!(m_big, 8 * 3); // G transfers per round, log2(8) rounds
        assert!(t_small > t_big, "{t_small} vs {t_big}");
    }

    #[test]
    fn circuit_stage_charges_reconfiguration_per_wave() {
        // Doubling the reconfiguration latency shows up in completion.
        let slow = CircuitSchedulerConfig {
            reconfig: SimDuration::from_us(60),
            ..CircuitSchedulerConfig::default()
        };
        let (t_fast, _) = circuit_allreduce_time(4, 4096, params(), CircuitSchedulerConfig::default());
        let (t_slow, _) = circuit_allreduce_time(4, 4096, params(), slow);
        assert!(t_slow > t_fast);
        // 2 rounds, 1 wave each: exactly 2 * 30us of extra reconfig.
        let delta = t_slow - t_fast;
        assert_eq!(delta, SimDuration::from_us(60));
    }

    #[test]
    fn hier_beats_flat_at_many_groups() {
        // The acceptance-criteria shape: at >= 64 groups the flat
        // schedule's per-round global-cable serialization dominates and
        // the hierarchical schedule (even paying reconfiguration) wins.
        let link = Generation::Optical.link_model();
        let groups = 64;
        let group_size = 64;
        let bytes = 4 << 20;
        let hier = simulate_hier_allreduce(
            groups,
            group_size,
            bytes,
            params(),
            link,
            InterGroup::Circuits(CircuitSchedulerConfig::default()),
            1,
        );
        let flat = flat_allreduce_model(groups, group_size, bytes, params(), link);
        assert!(
            hier.completion < flat,
            "hier {} vs flat {}",
            hier.completion,
            flat
        );
    }

    #[test]
    fn single_group_degenerates_to_local_stages() {
        let link = Generation::InfiniBand4x.link_model();
        let r = simulate_hier_allreduce(1, 16, 4096, params(), link, InterGroup::Packet, 1);
        assert_eq!(r.inter_group, SimDuration::ZERO);
        assert_eq!(r.global_messages, 0);
        assert_eq!(r.completion, r.local_reduce + r.local_bcast);
    }
}
