//! Allreduce: every rank ends with the reduction of all contributions.
//!
//! Three algorithms with different (latency, bandwidth) trade-offs — the
//! comparison is experiment F3:
//!
//! * recursive doubling — log₂ p rounds of full-vector exchange: best
//!   latency for small vectors, n·log p bytes per rank.
//! * ring (reduce-scatter + allgather) — 2(p-1) rounds of n/p-sized
//!   chunks: bandwidth-optimal 2n·(p-1)/p bytes, best for large vectors.
//! * reduce + broadcast — the naive composite, kept as the baseline.

use crate::bcast::{bcast_binomial, chunk_range};
use crate::comm::{Comm, COLL_TAG_BASE};
use crate::op::{from_bytes, reduce_into, to_bytes, Reducible, ReduceOp};
use crate::reduce::reduce_binomial;

const TAG_RD: u64 = COLL_TAG_BASE + 6;
const TAG_FOLD: u64 = COLL_TAG_BASE + 7;
const TAG_RS: u64 = COLL_TAG_BASE + 8;
const TAG_AG: u64 = COLL_TAG_BASE + 9;

/// Recursive doubling with the standard non-power-of-two fold: the first
/// `2·rem` ranks pre-combine pairwise so a power-of-two subset runs the
/// doubling, then results fan back out.
pub fn allreduce_recursive_doubling<C: Comm, T: Reducible>(
    comm: &mut C,
    op: ReduceOp,
    data: &mut [T],
) {
    let p = comm.size();
    let rank = comm.rank();
    if p <= 1 {
        return;
    }
    let bytes = data.len() * T::SIZE;
    comm.obs_enter("allreduce_rd", &[("bytes", bytes as u64), ("ranks", p as u64)]);
    let p2 = if p.is_power_of_two() {
        p
    } else {
        p.next_power_of_two() >> 1
    };
    let rem = p - p2;
    // Fold-in: ranks [0, 2*rem) pair up; evens hand their vector to the
    // odd neighbour and sit out the doubling.
    let newrank: Option<u32> = if rank < 2 * rem {
        if rank.is_multiple_of(2) {
            comm.send_bytes(rank + 1, TAG_FOLD, &to_bytes(data));
            None
        } else {
            let got: Vec<T> = from_bytes(&comm.recv_bytes(rank - 1, TAG_FOLD, bytes));
            reduce_into(op, data, &got);
            Some(rank / 2)
        }
    } else {
        Some(rank - rem)
    };
    if let Some(nr) = newrank {
        let mut mask = 1u32;
        while mask < p2 {
            let peer_nr = nr ^ mask;
            // Map the peer's new rank back to a real rank.
            let peer = if peer_nr < rem { peer_nr * 2 + 1 } else { peer_nr + rem };
            let got: Vec<T> =
                from_bytes(&comm.sendrecv_bytes(peer, &to_bytes(data), peer, TAG_RD, bytes));
            reduce_into(op, data, &got);
            mask <<= 1;
        }
    }
    // Fold-out: odd ranks return the final vector to their even partner.
    if rank < 2 * rem {
        if rank.is_multiple_of(2) {
            let got: Vec<T> = from_bytes(&comm.recv_bytes(rank + 1, TAG_FOLD, bytes));
            data.copy_from_slice(&got);
        } else {
            comm.send_bytes(rank - 1, TAG_FOLD, &to_bytes(data));
        }
    }
    comm.obs_exit("allreduce_rd", &[]);
}

/// Ring allreduce: reduce-scatter then allgather, each p-1 steps of
/// n/p-byte chunks around the ring. Bandwidth-optimal.
pub fn allreduce_ring<C: Comm, T: Reducible>(comm: &mut C, op: ReduceOp, data: &mut [T]) {
    let p = comm.size();
    let rank = comm.rank();
    if p <= 1 {
        return;
    }
    let n = data.len();
    comm.obs_enter(
        "allreduce_ring",
        &[("bytes", (n * T::SIZE) as u64), ("ranks", p as u64)],
    );
    let next = (rank + 1) % p;
    let prev = (rank + p - 1) % p;
    let elem_chunk = |i: u32| {
        let (s, l) = chunk_range(n, p, i);
        s..s + l
    };
    // Reduce-scatter: after step s, rank holds the full reduction of
    // chunk (rank - s - 1); send the chunk you just finished reducing.
    for s in 0..p - 1 {
        let send_idx = (rank + p - s) % p;
        let recv_idx = (rank + p - s - 1) % p;
        let sbuf = to_bytes(&data[elem_chunk(send_idx)]);
        let rlen = elem_chunk(recv_idx).len() * T::SIZE;
        let got: Vec<T> = from_bytes(&comm.sendrecv_bytes(next, &sbuf, prev, TAG_RS, rlen));
        reduce_into(op, &mut data[elem_chunk(recv_idx)], &got);
    }
    // Allgather: circulate the finished chunks.
    for s in 0..p - 1 {
        let send_idx = (rank + 1 + p - s) % p;
        let recv_idx = (rank + p - s) % p;
        let sbuf = to_bytes(&data[elem_chunk(send_idx)]);
        let rlen = elem_chunk(recv_idx).len() * T::SIZE;
        let got: Vec<T> = from_bytes(&comm.sendrecv_bytes(next, &sbuf, prev, TAG_AG, rlen));
        let range = elem_chunk(recv_idx);
        data[range].copy_from_slice(&got);
    }
    comm.obs_exit("allreduce_ring", &[]);
}

/// The naive composite: binomial reduce to rank 0, binomial broadcast
/// back out. 2·log p latency and n·log p bandwidth at the root — the
/// baseline the dedicated algorithms beat.
pub fn allreduce_reduce_bcast<C: Comm, T: Reducible>(comm: &mut C, op: ReduceOp, data: &mut [T]) {
    comm.obs_enter(
        "allreduce_reduce_bcast",
        &[("bytes", (data.len() * T::SIZE) as u64)],
    );
    reduce_binomial(comm, 0, op, data);
    let mut bytes = to_bytes(data);
    bcast_binomial(comm, 0, &mut bytes);
    let back: Vec<T> = from_bytes(&bytes);
    data.copy_from_slice(&back);
    comm.obs_exit("allreduce_reduce_bcast", &[]);
}

/// Allreduce algorithm selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllreduceAlgo {
    RecursiveDoubling,
    Ring,
    ReduceBcast,
}

pub fn allreduce_with<C: Comm, T: Reducible>(
    comm: &mut C,
    algo: AllreduceAlgo,
    op: ReduceOp,
    data: &mut [T],
) {
    match algo {
        AllreduceAlgo::RecursiveDoubling => allreduce_recursive_doubling(comm, op, data),
        AllreduceAlgo::Ring => allreduce_ring(comm, op, data),
        AllreduceAlgo::ReduceBcast => allreduce_reduce_bcast(comm, op, data),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::run_world;
    use polaris_msg::prelude::MsgConfig;

    fn check_allreduce(algo: AllreduceAlgo, p: u32, n: usize) {
        let out = run_world(p, MsgConfig::default(), move |mut ep| {
            let r = ep.rank() as u64;
            let mut data: Vec<u64> = (0..n as u64).map(|i| r + i * 3).collect();
            allreduce_with(&mut ep, algo, ReduceOp::Sum, &mut data);
            data
        });
        let rank_sum: u64 = (0..p as u64).sum();
        for (r, d) in out.iter().enumerate() {
            for (i, v) in d.iter().enumerate() {
                assert_eq!(
                    *v,
                    rank_sum + 3 * i as u64 * p as u64,
                    "rank {r} elem {i} under {algo:?} p={p}"
                );
            }
        }
    }

    #[test]
    fn recursive_doubling_power_of_two() {
        for p in [1, 2, 4, 8] {
            check_allreduce(AllreduceAlgo::RecursiveDoubling, p, 33);
        }
    }

    #[test]
    fn recursive_doubling_non_power_of_two() {
        for p in [3, 5, 6, 7, 9] {
            check_allreduce(AllreduceAlgo::RecursiveDoubling, p, 33);
        }
    }

    #[test]
    fn ring_various_sizes() {
        for p in [1, 2, 3, 4, 5, 8] {
            check_allreduce(AllreduceAlgo::Ring, p, 100);
        }
    }

    #[test]
    fn ring_vector_smaller_than_ranks() {
        check_allreduce(AllreduceAlgo::Ring, 8, 3);
        check_allreduce(AllreduceAlgo::Ring, 5, 0);
    }

    #[test]
    fn reduce_bcast_composite() {
        for p in [2, 3, 6] {
            check_allreduce(AllreduceAlgo::ReduceBcast, p, 50);
        }
    }

    #[test]
    fn all_algorithms_agree_on_floats() {
        for algo in [
            AllreduceAlgo::RecursiveDoubling,
            AllreduceAlgo::Ring,
            AllreduceAlgo::ReduceBcast,
        ] {
            let out = run_world(4, MsgConfig::default(), move |mut ep| {
                let mut data = vec![(ep.rank() + 1) as f64; 8];
                allreduce_with(&mut ep, algo, ReduceOp::Sum, &mut data);
                data
            });
            for d in out {
                for v in d {
                    assert!((v - 10.0).abs() < 1e-12, "{algo:?} gave {v}");
                }
            }
        }
    }

    #[test]
    fn max_allreduce() {
        let out = run_world(5, MsgConfig::default(), |mut ep| {
            let mut data = vec![ep.rank() as i64 * 2];
            allreduce_with(&mut ep, AllreduceAlgo::RecursiveDoubling, ReduceOp::Max, &mut data);
            data[0]
        });
        assert!(out.iter().all(|&v| v == 8));
    }
}
