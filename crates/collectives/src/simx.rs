//! Simulated-time execution of collective schedules.
//!
//! The executable algorithms in this crate run on real threads over the
//! shared-memory fabric — that validates *correctness*. To measure
//! *scaling shape* at thousands of nodes on the 2002-era interconnects
//! (experiment F3), the same communication schedules are interpreted by
//! a discrete-event executor over the flow-level [`Network`] model.
//!
//! [`schedule`] generates, per rank, the operation list each algorithm
//! performs; `tests` in this module cross-check those schedules against
//! traces recorded from the executable algorithms, so the simulator is
//! guaranteed to time the algorithm that actually runs.

use crate::allgather::AllgatherAlgo;
use crate::allreduce::AllreduceAlgo;
use crate::barrier::BarrierAlgo;
use crate::bcast::{chunk_range, BcastAlgo};
use polaris_simnet::engine::{run, Scheduler, World};
use polaris_simnet::fasthash::FastHashMap;
use polaris_simnet::network::Network;
use polaris_simnet::time::{SimDuration, SimTime};
use std::collections::VecDeque;

/// One step of a rank's schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedOp {
    /// Nonblocking send of `bytes` payload to `to`.
    Send { to: u32, bytes: u64 },
    /// Blocking receive of the next message from `from`.
    Recv { from: u32 },
    /// Local work proportional to `bytes` (reduction arithmetic).
    Compute { bytes: u64 },
    /// Local work for an explicit virtual-time duration. Workload
    /// compute phases priced by the roofline model compile to this —
    /// the duration is fixed at schedule time, so the executor never
    /// needs the node model.
    Work { ps: u64 },
}

/// Which collective to schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Collective {
    Barrier(BarrierAlgo),
    Bcast(BcastAlgo),
    Allreduce(AllreduceAlgo),
    Allgather(AllgatherAlgo),
    AlltoallPairwise,
    /// Binomial-tree reduce to root 0 (the building block of the
    /// hierarchical group-local stage in [`crate::hier`]).
    ReduceBinomial,
}

/// Generate rank `rank`'s schedule for `coll` over `p` ranks with a
/// total payload of `bytes` (semantics per collective: bcast/allreduce =
/// vector size; allgather/alltoall = per-rank block size).
pub fn schedule(coll: Collective, rank: u32, p: u32, bytes: u64) -> Vec<SchedOp> {
    let mut ops = Vec::new();
    match coll {
        Collective::Barrier(BarrierAlgo::Dissemination) => {
            let mut dist = 1;
            while dist < p {
                ops.push(SchedOp::Send {
                    to: (rank + dist) % p,
                    bytes: 0,
                });
                ops.push(SchedOp::Recv {
                    from: (rank + p - dist) % p,
                });
                dist <<= 1;
            }
        }
        Collective::Barrier(BarrierAlgo::Tree) => {
            if p > 1 {
                let mut mask = 1u32;
                let mut sent = false;
                while mask < p {
                    if rank & mask == 0 {
                        if (rank | mask) < p {
                            ops.push(SchedOp::Recv { from: rank | mask });
                        }
                    } else {
                        ops.push(SchedOp::Send {
                            to: rank & !mask,
                            bytes: 0,
                        });
                        sent = true;
                        break;
                    }
                    mask <<= 1;
                }
                let mut mask;
                if rank != 0 {
                    let low = rank & rank.wrapping_neg();
                    ops.push(SchedOp::Recv { from: rank & !low });
                    mask = low >> 1;
                } else {
                    mask = p.next_power_of_two() >> 1;
                }
                let _ = sent;
                while mask > 0 {
                    let peer = rank | mask;
                    if peer < p && peer != rank {
                        ops.push(SchedOp::Send {
                            to: peer,
                            bytes: 0,
                        });
                    }
                    mask >>= 1;
                }
            }
        }
        Collective::Bcast(BcastAlgo::Binomial) => {
            // root is 0 in simulated schedules.
            if p > 1 {
                let rel = rank;
                let mut mask = 1u32;
                while mask < p {
                    if rel & mask != 0 {
                        ops.push(SchedOp::Recv { from: rel - mask });
                        break;
                    }
                    mask <<= 1;
                }
                mask >>= 1;
                while mask > 0 {
                    if rel & mask == 0 && rel + mask < p {
                        ops.push(SchedOp::Send {
                            to: rel + mask,
                            bytes,
                        });
                    }
                    mask >>= 1;
                }
            }
        }
        Collective::Bcast(BcastAlgo::ScatterAllgather) => {
            if p > 1 {
                let n = bytes as usize;
                if rank == 0 {
                    for i in 1..p {
                        let (_, len) = chunk_range(n, p, i);
                        ops.push(SchedOp::Send {
                            to: i,
                            bytes: len as u64,
                        });
                    }
                } else {
                    ops.push(SchedOp::Recv { from: 0 });
                }
                let next = (rank + 1) % p;
                let prev = (rank + p - 1) % p;
                let mut have = rank;
                for _ in 0..p - 1 {
                    let (_, s_len) = chunk_range(n, p, have);
                    ops.push(SchedOp::Send {
                        to: next,
                        bytes: s_len as u64,
                    });
                    ops.push(SchedOp::Recv { from: prev });
                    have = (have + p - 1) % p;
                }
            }
        }
        Collective::Allreduce(AllreduceAlgo::RecursiveDoubling) => {
            if p > 1 {
                let p2 = if p.is_power_of_two() {
                    p
                } else {
                    p.next_power_of_two() >> 1
                };
                let rem = p - p2;
                let newrank: Option<u32> = if rank < 2 * rem {
                    if rank.is_multiple_of(2) {
                        ops.push(SchedOp::Send {
                            to: rank + 1,
                            bytes,
                        });
                        None
                    } else {
                        ops.push(SchedOp::Recv { from: rank - 1 });
                        ops.push(SchedOp::Compute { bytes });
                        Some(rank / 2)
                    }
                } else {
                    Some(rank - rem)
                };
                if let Some(nr) = newrank {
                    let mut mask = 1u32;
                    while mask < p2 {
                        let peer_nr = nr ^ mask;
                        let peer = if peer_nr < rem {
                            peer_nr * 2 + 1
                        } else {
                            peer_nr + rem
                        };
                        ops.push(SchedOp::Send { to: peer, bytes });
                        ops.push(SchedOp::Recv { from: peer });
                        ops.push(SchedOp::Compute { bytes });
                        mask <<= 1;
                    }
                }
                if rank < 2 * rem {
                    if rank.is_multiple_of(2) {
                        ops.push(SchedOp::Recv { from: rank + 1 });
                    } else {
                        ops.push(SchedOp::Send {
                            to: rank - 1,
                            bytes,
                        });
                    }
                }
            }
        }
        Collective::Allreduce(AllreduceAlgo::Ring) => {
            if p > 1 {
                // The executable ring chunks element-wise; mirror it with
                // 8-byte elements (the reduction types used throughout)
                // so byte counts match the real algorithm exactly.
                let (unit, n) = if bytes.is_multiple_of(8) {
                    (8u64, (bytes / 8) as usize)
                } else {
                    (1u64, bytes as usize)
                };
                let next = (rank + 1) % p;
                let prev = (rank + p - 1) % p;
                for s in 0..p - 1 {
                    let send_idx = (rank + p - s) % p;
                    let recv_idx = (rank + p - s - 1) % p;
                    let (_, s_len) = chunk_range(n, p, send_idx);
                    let (_, r_len) = chunk_range(n, p, recv_idx);
                    ops.push(SchedOp::Send {
                        to: next,
                        bytes: s_len as u64 * unit,
                    });
                    ops.push(SchedOp::Recv { from: prev });
                    ops.push(SchedOp::Compute {
                        bytes: r_len as u64 * unit,
                    });
                }
                for s in 0..p - 1 {
                    let send_idx = (rank + 1 + p - s) % p;
                    let (_, s_len) = chunk_range(n, p, send_idx);
                    ops.push(SchedOp::Send {
                        to: next,
                        bytes: s_len as u64 * unit,
                    });
                    ops.push(SchedOp::Recv { from: prev });
                }
            }
        }
        Collective::Allreduce(AllreduceAlgo::ReduceBcast) => {
            // Binomial reduce to 0 then binomial bcast from 0.
            if p > 1 {
                let mut mask = 1u32;
                while mask < p {
                    if rank & mask == 0 {
                        if (rank | mask) < p {
                            ops.push(SchedOp::Recv { from: rank | mask });
                            ops.push(SchedOp::Compute { bytes });
                        }
                    } else {
                        ops.push(SchedOp::Send {
                            to: rank & !mask,
                            bytes,
                        });
                        break;
                    }
                    mask <<= 1;
                }
                ops.extend(schedule(Collective::Bcast(BcastAlgo::Binomial), rank, p, bytes));
            }
        }
        Collective::Allgather(AllgatherAlgo::Ring) => {
            if p > 1 {
                let next = (rank + 1) % p;
                let prev = (rank + p - 1) % p;
                for _ in 0..p - 1 {
                    ops.push(SchedOp::Send { to: next, bytes });
                    ops.push(SchedOp::Recv { from: prev });
                }
            }
        }
        Collective::Allgather(AllgatherAlgo::Bruck) => {
            if p > 1 {
                let mut held = 1u32;
                while held < p {
                    let count = held.min(p - held);
                    let to = (rank + p - held) % p;
                    let from = (rank + held) % p;
                    ops.push(SchedOp::Send {
                        to,
                        bytes: count as u64 * bytes,
                    });
                    ops.push(SchedOp::Recv { from });
                    held += count;
                }
            }
        }
        Collective::AlltoallPairwise => {
            for r in 1..p {
                let dst = (rank + r) % p;
                let src = (rank + p - r) % p;
                ops.push(SchedOp::Send { to: dst, bytes });
                ops.push(SchedOp::Recv { from: src });
            }
        }
        Collective::ReduceBinomial => {
            // Binomial reduce to root 0 — the reduce phase of
            // ReduceBcast, without the broadcast.
            if p > 1 {
                let mut mask = 1u32;
                while mask < p {
                    if rank & mask == 0 {
                        if (rank | mask) < p {
                            ops.push(SchedOp::Recv { from: rank | mask });
                            ops.push(SchedOp::Compute { bytes });
                        }
                    } else {
                        ops.push(SchedOp::Send {
                            to: rank & !mask,
                            bytes,
                        });
                        break;
                    }
                    mask <<= 1;
                }
            }
        }
    }
    ops
}

/// Host-side cost knobs for the executor.
#[derive(Debug, Clone, Copy)]
pub struct ExecParams {
    /// Per-operation CPU overhead (post/match cost).
    pub overhead: SimDuration,
    /// Reduction arithmetic throughput, bytes/sec.
    pub compute_bps: u64,
}

impl Default for ExecParams {
    fn default() -> Self {
        ExecParams {
            overhead: SimDuration::from_ns(500),
            compute_bps: 2_000_000_000,
        }
    }
}

struct RankState {
    ops: Vec<SchedOp>,
    pc: usize,
    time: SimTime,
    finished: Option<SimTime>,
}

struct SimExec<'a> {
    net: &'a mut Network,
    params: ExecParams,
    ranks: Vec<RankState>,
    /// Per-receiver mailboxes: `mailboxes[to]` maps sender -> FIFO of
    /// message arrival times. Keying the hot map on a single u32 (the
    /// sender) keeps the hash to one multiply; lookups only, never
    /// iterated, so determinism is unaffected.
    mailboxes: Vec<FastHashMap<u32, VecDeque<SimTime>>>,
    /// `waiting_on[r]` is the sender rank `r` is blocked receiving from
    /// (a rank blocks on at most one peer at a time).
    waiting_on: Vec<Option<u32>>,
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    Step(u32),
}

impl World for SimExec<'_> {
    type Event = Ev;

    fn handle(&mut self, sched: &mut Scheduler<Ev>, Ev::Step(r): Ev) {
        let now = sched.now();
        let rank = r as usize;
        debug_assert!(self.ranks[rank].time <= now);
        self.ranks[rank].time = now;
        let Some(op) = self.ranks[rank].ops.get(self.ranks[rank].pc).copied() else {
            self.ranks[rank].finished.get_or_insert(now);
            return;
        };
        match op {
            SchedOp::Send { to, bytes } => {
                let t = now + self.params.overhead;
                let delivery = self.net.transfer(t, r, to, bytes);
                self.mailboxes[to as usize]
                    .entry(r)
                    .or_default()
                    .push_back(delivery.arrival);
                self.ranks[rank].pc += 1;
                sched.at(t, Ev::Step(r));
                // Wake the receiver if it is already waiting on us.
                if self.waiting_on[to as usize] == Some(r) {
                    self.waiting_on[to as usize] = None;
                    let wake = self.ranks[to as usize].time.max(delivery.arrival);
                    sched.at(wake, Ev::Step(to));
                }
            }
            SchedOp::Recv { from } => {
                let mailbox = self.mailboxes[rank].get_mut(&from);
                let arrival = mailbox.and_then(|q| {
                    if q.front().is_some_and(|&a| a <= now) {
                        q.pop_front()
                    } else {
                        None
                    }
                });
                match arrival {
                    Some(_) => {
                        self.ranks[rank].pc += 1;
                        sched.at(now + self.params.overhead, Ev::Step(r));
                    }
                    None => {
                        // Either nothing has been sent yet, or it arrives
                        // in the future.
                        if let Some(&a) = self.mailboxes[rank].get(&from).and_then(|q| q.front()) {
                            sched.at(a.max(now), Ev::Step(r));
                        } else {
                            self.waiting_on[rank] = Some(from);
                        }
                    }
                }
            }
            SchedOp::Compute { bytes } => {
                let d = SimDuration::from_secs_f64(bytes as f64 / self.params.compute_bps as f64);
                self.ranks[rank].pc += 1;
                sched.at(now + d, Ev::Step(r));
            }
            SchedOp::Work { ps } => {
                self.ranks[rank].pc += 1;
                sched.at(now + SimDuration::from_ps(ps), Ev::Step(r));
            }
        }
    }
}

/// Result of a simulated collective.
#[derive(Debug, Clone, Copy)]
pub struct SimResult {
    /// Time the slowest rank finished.
    pub completion: SimDuration,
    /// Total payload bytes presented to the network.
    pub payload_bytes: u64,
    /// Messages sent.
    pub messages: u64,
}

/// Execute one collective over `net` and return its completion time.
/// Panics if any rank's schedule deadlocks (a schedule-generation bug).
pub fn simulate_collective(
    net: &mut Network,
    coll: Collective,
    bytes: u64,
    params: ExecParams,
) -> SimResult {
    let p = net.topology().hosts();
    let before_transfers = net.transfers();
    let before_bytes = net.payload_bytes();
    let ranks = (0..p)
        .map(|r| RankState {
            ops: schedule(coll, r, p, bytes),
            pc: 0,
            time: SimTime::ZERO,
            finished: None,
        })
        .collect();
    let mut world = SimExec {
        net,
        params,
        ranks,
        mailboxes: (0..p).map(|_| FastHashMap::default()).collect(),
        waiting_on: vec![None; p as usize],
    };
    // Live population peaks around one in-flight event per rank.
    let mut sched = Scheduler::with_capacity(p as usize);
    for r in 0..p {
        sched.at(SimTime::ZERO, Ev::Step(r));
    }
    run(&mut world, &mut sched, None);
    let mut completion = SimTime::ZERO;
    for (r, st) in world.ranks.iter().enumerate() {
        let done = st
            .finished
            .unwrap_or_else(|| panic!("rank {r} deadlocked at op {} of {:?}", st.pc, coll));
        completion = completion.max(done);
    }
    SimResult {
        completion: completion.since(SimTime::ZERO),
        payload_bytes: world.net.payload_bytes() - before_bytes,
        messages: world.net.transfers() - before_transfers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allreduce::allreduce_with;
    use crate::barrier::barrier_with;
    use crate::bcast::bcast_with;
    use crate::comm::{TraceEvent, TracingComm};
    use crate::op::ReduceOp;
    use crate::testing::run_world;
    use polaris_msg::prelude::MsgConfig;
    use polaris_simnet::link::Generation;
    use polaris_simnet::topology::{Topology, TopologyKind};

    fn net(p: u32) -> Network {
        Network::new(
            Topology::new(TopologyKind::Crossbar { hosts: p }),
            Generation::InfiniBand4x.link_model(),
        )
    }

    /// The executable algorithms and the simulator's schedules must
    /// describe the same communication, rank by rank.
    fn cross_check(coll: Collective, p: u32, bytes: usize) {
        let traces: Vec<Vec<TraceEvent>> =
            run_world(p, MsgConfig::default(), move |mut ep| {
                let mut tc = TracingComm::new(&mut ep);
                match coll {
                    Collective::Barrier(a) => barrier_with(&mut tc, a),
                    Collective::Bcast(a) => {
                        let mut data = vec![7u8; bytes];
                        bcast_with(&mut tc, a, 0, &mut data);
                    }
                    Collective::Allreduce(a) => {
                        let mut data = vec![1u64; bytes / 8];
                        allreduce_with(&mut tc, a, ReduceOp::Sum, &mut data);
                    }
                    Collective::Allgather(a) => {
                        let mine = vec![1u8; bytes];
                        let mut out = vec![0u8; bytes * p as usize];
                        crate::allgather::allgather_with(&mut tc, a, &mine, &mut out);
                    }
                    Collective::AlltoallPairwise => {
                        let send = vec![1u8; bytes * p as usize];
                        let mut recv = vec![0u8; bytes * p as usize];
                        crate::alltoall::alltoall_pairwise(&mut tc, &send, &mut recv, bytes);
                    }
                    Collective::ReduceBinomial => {
                        let mut data = vec![1u64; bytes / 8];
                        crate::reduce::reduce_binomial(&mut tc, 0, ReduceOp::Sum, &mut data);
                    }
                }
                tc.trace
            });
        for (r, trace) in traces.iter().enumerate() {
            let sched = schedule(coll, r as u32, p, bytes as u64);
            let sched_events: Vec<TraceEvent> = sched
                .iter()
                .filter_map(|op| match *op {
                    SchedOp::Send { to, bytes } => Some(TraceEvent::Send { to, bytes }),
                    SchedOp::Recv { from } => Some(TraceEvent::Recv { from, bytes: 0 }),
                    SchedOp::Compute { .. } | SchedOp::Work { .. } => None,
                })
                .collect();
            let trace_shape: Vec<TraceEvent> = trace
                .iter()
                .map(|e| match *e {
                    TraceEvent::Send { to, bytes } => TraceEvent::Send { to, bytes },
                    TraceEvent::Recv { from, .. } => TraceEvent::Recv { from, bytes: 0 },
                })
                .collect();
            assert_eq!(
                trace_shape, sched_events,
                "rank {r} schedule mismatch for {coll:?} p={p}"
            );
        }
    }

    #[test]
    fn schedules_match_executable_algorithms() {
        for p in [2, 3, 4, 5, 8] {
            cross_check(Collective::Barrier(BarrierAlgo::Dissemination), p, 0);
            cross_check(Collective::Barrier(BarrierAlgo::Tree), p, 0);
            cross_check(Collective::Bcast(BcastAlgo::Binomial), p, 1024);
            cross_check(Collective::Bcast(BcastAlgo::ScatterAllgather), p, 1024);
            cross_check(
                Collective::Allreduce(AllreduceAlgo::RecursiveDoubling),
                p,
                1024,
            );
            cross_check(Collective::Allreduce(AllreduceAlgo::Ring), p, 1024);
            cross_check(Collective::Allreduce(AllreduceAlgo::ReduceBcast), p, 1024);
            cross_check(Collective::Allgather(AllgatherAlgo::Ring), p, 512);
            cross_check(Collective::Allgather(AllgatherAlgo::Bruck), p, 512);
            cross_check(Collective::AlltoallPairwise, p, 512);
            cross_check(Collective::ReduceBinomial, p, 1024);
        }
    }

    #[test]
    fn simulated_barrier_scales_logarithmically() {
        let t = |p: u32| {
            simulate_collective(
                &mut net(p),
                Collective::Barrier(BarrierAlgo::Dissemination),
                0,
                ExecParams::default(),
            )
            .completion
            .as_us()
        };
        let t16 = t(16);
        let t256 = t(256);
        // 16 -> 256 is 4 -> 8 rounds: about 2x, definitely not 16x.
        let ratio = t256 / t16;
        assert!((1.5..4.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn simulated_allreduce_algorithms_tradeoff() {
        let p = 64;
        let params = ExecParams::default();
        // Small vectors: recursive doubling (log p rounds) beats ring
        // (2(p-1) rounds).
        let small_rd = simulate_collective(
            &mut net(p),
            Collective::Allreduce(AllreduceAlgo::RecursiveDoubling),
            64,
            params,
        );
        let small_ring =
            simulate_collective(&mut net(p), Collective::Allreduce(AllreduceAlgo::Ring), 64, params);
        assert!(
            small_rd.completion < small_ring.completion,
            "rd {} vs ring {}",
            small_rd.completion,
            small_ring.completion
        );
        // Large vectors: ring's bandwidth optimality wins.
        let big = 16 << 20;
        let big_rd = simulate_collective(
            &mut net(p),
            Collective::Allreduce(AllreduceAlgo::RecursiveDoubling),
            big,
            params,
        );
        let big_ring =
            simulate_collective(&mut net(p), Collective::Allreduce(AllreduceAlgo::Ring), big, params);
        assert!(
            big_ring.completion < big_rd.completion,
            "ring {} vs rd {}",
            big_ring.completion,
            big_rd.completion
        );
    }

    #[test]
    fn simulation_is_deterministic() {
        let run1 = simulate_collective(
            &mut net(32),
            Collective::Allreduce(AllreduceAlgo::Ring),
            1 << 20,
            ExecParams::default(),
        );
        let run2 = simulate_collective(
            &mut net(32),
            Collective::Allreduce(AllreduceAlgo::Ring),
            1 << 20,
            ExecParams::default(),
        );
        assert_eq!(run1.completion, run2.completion);
        assert_eq!(run1.messages, run2.messages);
    }

    #[test]
    fn message_counts_match_theory() {
        let p = 8u32;
        let r = simulate_collective(
            &mut net(p),
            Collective::Barrier(BarrierAlgo::Dissemination),
            0,
            ExecParams::default(),
        );
        // Dissemination: p * ceil(log2 p) messages.
        assert_eq!(r.messages, (p * 3) as u64);
        let r = simulate_collective(
            &mut net(p),
            Collective::AlltoallPairwise,
            100,
            ExecParams::default(),
        );
        assert_eq!(r.messages, (p * (p - 1)) as u64);
        assert_eq!(r.payload_bytes, (p * (p - 1)) as u64 * 100);
    }

    #[test]
    fn simulation_scales_to_thousands_of_ranks() {
        let p = 4096;
        let start = std::time::Instant::now();
        let r = simulate_collective(
            &mut net(p),
            Collective::Allreduce(AllreduceAlgo::RecursiveDoubling),
            1024,
            ExecParams::default(),
        );
        assert!(r.completion > SimDuration::ZERO);
        assert!(
            start.elapsed() < std::time::Duration::from_secs(20),
            "simulation too slow: {:?}",
            start.elapsed()
        );
    }
}
