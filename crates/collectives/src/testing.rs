//! SPMD test harness: run one closure per rank on real threads over a
//! shared fabric. Used by this crate's tests and re-exported for
//! downstream integration tests.

use polaris_msg::prelude::{Endpoint, MsgConfig};
use polaris_nic::prelude::Fabric;
use std::sync::Arc;

/// Spawn `n` rank threads, each running `f(endpoint)`, and collect the
/// per-rank results in rank order. Panics in any rank propagate.
pub fn run_world<T, F>(n: u32, cfg: MsgConfig, f: F) -> Vec<T>
where
    T: Send + 'static,
    F: Fn(Endpoint) -> T + Send + Sync + 'static,
{
    let fabric = Fabric::new();
    let eps = Endpoint::create_world(&fabric, n, cfg).expect("world bootstrap");
    let f = Arc::new(f);
    let handles: Vec<_> = eps
        .into_iter()
        .map(|ep| {
            let f = Arc::clone(&f);
            std::thread::Builder::new()
                .name(format!("rank{}", ep.rank()))
                .spawn(move || f(ep))
                .expect("spawn rank thread")
        })
        .collect();
    handles
        .into_iter()
        .map(|h| h.join().expect("rank thread panicked"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::Comm;
    use polaris_msg::prelude::MsgConfig;

    #[test]
    fn harness_runs_all_ranks() {
        let out = run_world(4, MsgConfig::default(), |ep| ep.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30]);
    }

    #[test]
    fn harness_supports_messaging() {
        let out = run_world(3, MsgConfig::default(), |mut ep| {
            let next = (ep.rank() + 1) % 3;
            let prev = (ep.rank() + 2) % 3;
            let me = [ep.rank() as u8];
            let got = ep.sendrecv_bytes(next, &me, prev, 42, 1);
            got[0] as u32
        });
        assert_eq!(out, vec![2, 0, 1]);
    }
}
