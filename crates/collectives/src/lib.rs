//! # polaris-collectives
//!
//! Collective communication over Polaris messaging: barrier, broadcast,
//! reduce, allreduce, gather/scatter, allgather, all-to-all, and scans —
//! each in the classic algorithm variants (binomial tree, recursive
//! doubling, ring, Bruck, dissemination) whose latency/bandwidth
//! trade-offs experiment F3 reproduces.
//!
//! Algorithms are generic over [`comm::Comm`], so the same code runs on
//! real endpoints (correctness) and, via schedules cross-checked against
//! execution traces, in the discrete-event executor ([`simx`]) used to
//! project scaling to thousands of nodes.

pub mod allgather;
pub mod allreduce;
pub mod alltoall;
pub mod barrier;
pub mod bcast;
pub mod comm;
pub mod ft;
pub mod gather;
pub mod hier;
pub mod op;
pub mod parsim;
pub mod reduce;
pub mod reduce_scatter;
pub mod scan;
pub mod simx;
pub mod testing;
pub mod tuning;

pub mod prelude {
    pub use crate::allgather::{allgather_with, AllgatherAlgo};
    pub use crate::allreduce::{allreduce_with, AllreduceAlgo};
    pub use crate::alltoall::alltoall_pairwise;
    pub use crate::barrier::{barrier_with, BarrierAlgo};
    pub use crate::bcast::{bcast_with, BcastAlgo};
    pub use crate::comm::{Comm, TracingComm};
    pub use crate::ft::{ft_allreduce, ft_bcast, FtComm, FtError, FtReport};
    pub use crate::gather::{gather_binomial, gather_linear, scatter_linear};
    pub use crate::hier::{
        circuit_allreduce_time, flat_allreduce_model, simulate_hier_allreduce, HierResult,
        InterGroup,
    };
    pub use crate::op::{Elem, Reducible, ReduceOp};
    pub use crate::parsim::{
        simulate_collective_sharded, simulate_collective_sharded_opts,
        simulate_collective_sharded_stats,
    };
    pub use crate::reduce::reduce_binomial;
    pub use crate::reduce_scatter::reduce_scatter_ring;
    pub use crate::scan::{scan_exclusive, scan_inclusive};
    pub use crate::simx::{schedule, simulate_collective, Collective, ExecParams, SimResult};
    pub use crate::testing::run_world;
    pub use crate::tuning::{allgather, allreduce, barrier, bcast, Tuning};
}
