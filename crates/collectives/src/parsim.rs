//! Sharded conservative-parallel execution of collective schedules.
//!
//! [`simulate_collective_sharded`] interprets the same per-rank
//! schedules as [`crate::simx::simulate_collective`], but partitions
//! the ranks across [`ShardSim`] shards so a figure-scale run can use
//! multiple cores. The network model is a partitioned crossbar: each
//! rank owns an uplink and a downlink with first-come-first-served
//! occupancy, and every message pays the contention-free crossbar cost
//! `message_time(bytes, 2)` plus whatever extra queueing its uplink
//! (charged at the sender, in send order) and downlink (charged at the
//! receiver, in wire-arrival order) impose. Uplink state lives with the
//! sender's shard and downlink state with the receiver's, so no link
//! state is ever shared across threads.
//!
//! The conservative lookahead is the link's `hop_latency`: a message
//! handed to the wire at `t` cannot reach another rank's downlink
//! before `t + hop_latency`, which is exactly the window bound
//! [`ShardSim`] needs.
//!
//! **Determinism / shard-count invariance.** Every event carries a key
//! derived from global identities — `rank << 32 | per-rank sequence` —
//! and each rank's sequence counter is only ever advanced by events
//! executing on the shard that owns that rank, in the global
//! `(time, key)` order. Shard ids never enter a key, so runs at
//! `jobs = 1, 2, 4, ...` execute the identical event order and return
//! bit-identical results; `tests/parallel_determinism.rs` holds this as
//! an oracle. The serial flow-level model in `simx` resolves crossbar
//! contention in a different (also deterministic) charge order, so the
//! two executors agree on message counts and scaling shape but not on
//! exact picoseconds — the sharded executor's `jobs = 1` run is the
//! reference for its own parallel runs.

use crate::simx::{schedule, Collective, ExecParams, SchedOp, SimResult};
use polaris_simnet::fasthash::FastHashMap;
use polaris_simnet::link::LinkModel;
use polaris_simnet::shard::{Partition, ShardCtx, ShardRunStats, ShardSim, ShardWorld};
use polaris_simnet::time::{SimDuration, SimTime};
use std::collections::VecDeque;
use std::sync::Arc;

/// What one message pays for its route across the fabric, beyond the
/// queueing charged at its endpoint links: the hop count fed to
/// [`LinkModel::message_time`] and a fixed extra latency (e.g. an
/// optical circuit reconfiguration) added once per message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathCost {
    /// Hops on the contention-free route; must be >= 1 so arrivals
    /// never undercut the engine's `hop_latency` lookahead.
    pub hops: u32,
    /// Fixed extra picoseconds added to the message's arrival.
    pub extra_ps: u64,
}

impl PathCost {
    /// The partitioned-crossbar default: host, switch, host.
    pub const CROSSBAR: PathCost = PathCost { hops: 2, extra_ps: 0 };
}

/// Per-message route costs for a fabric, as a pure `(src, dst)`
/// function so it can be shared (and cloned) across shard worlds
/// without any mutable routing state.
#[derive(Clone)]
pub struct PathModel(Arc<dyn Fn(u32, u32) -> PathCost + Send + Sync>);

impl PathModel {
    pub fn new(f: impl Fn(u32, u32) -> PathCost + Send + Sync + 'static) -> Self {
        PathModel(Arc::new(f))
    }

    #[inline]
    pub fn cost(&self, src: u32, dst: u32) -> PathCost {
        let c = (self.0)(src, dst);
        debug_assert!(c.hops >= 1, "a route has at least one hop");
        c
    }
}

#[derive(Debug, Clone, Copy)]
enum PEv {
    /// Advance rank `r`'s program counter.
    Step(u32),
    /// A message's head reaches `to`'s downlink; `base` is the send
    /// time plus uplink queueing already paid at the sender.
    Arrive { from: u32, to: u32, bytes: u64, base: SimTime },
}

#[derive(Clone)]
struct PRank {
    ops: Vec<SchedOp>,
    pc: usize,
    time: SimTime,
    finished: Option<SimTime>,
    /// Per-rank event sequence; with the rank id it forms the globally
    /// unique tie-break key.
    seq: u64,
    /// Uplink free time (ps) — sender-side occupancy.
    up_busy: u64,
    /// Downlink free time (ps) — receiver-side occupancy.
    down_busy: u64,
}

#[derive(Clone)]
struct ParWorld {
    part: Partition,
    /// First rank owned by this shard.
    base: u32,
    params: ExecParams,
    link: LinkModel,
    /// Route costs; `None` is the 2-hop crossbar.
    path: Option<PathModel>,
    ranks: Vec<PRank>,
    mailboxes: Vec<FastHashMap<u32, VecDeque<SimTime>>>,
    waiting_on: Vec<Option<u32>>,
    messages: u64,
    payload_bytes: u64,
}

impl ParWorld {
    #[inline]
    fn local(&self, rank: u32) -> usize {
        (rank - self.base) as usize
    }

    #[inline]
    fn next_key(&mut self, rank: u32) -> u64 {
        let local = self.local(rank);
        let st = &mut self.ranks[local];
        st.seq += 1;
        ((rank as u64) << 32) | st.seq
    }

    /// Wire occupancy of one message (serialization of payload plus
    /// headers) in picoseconds.
    #[inline]
    fn ser_ps(&self, bytes: u64) -> u64 {
        self.link.serialize_payload(bytes).0
    }

    fn step(&mut self, ctx: &mut ShardCtx<'_, PEv>, r: u32) {
        let now = ctx.now();
        let local = self.local(r);
        debug_assert!(self.ranks[local].time <= now);
        self.ranks[local].time = now;
        let Some(op) = self.ranks[local].ops.get(self.ranks[local].pc).copied() else {
            self.ranks[local].finished.get_or_insert(now);
            return;
        };
        match op {
            SchedOp::Send { to, bytes } => {
                let t = (now + self.params.overhead).0;
                let ser = self.ser_ps(bytes);
                let st = &mut self.ranks[local];
                let start0 = t.max(st.up_busy);
                st.up_busy = start0 + ser;
                st.pc += 1;
                self.messages += 1;
                self.payload_bytes += bytes;
                // The head leaves the uplink at start0 and needs one hop
                // to reach the destination downlink — never sooner than
                // now + lookahead, which keeps the cross-shard contract.
                let head = start0 + self.link.hop_latency;
                let akey = self.next_key(r);
                ctx.send(
                    self.part.shard_of(to),
                    SimTime(head),
                    akey,
                    PEv::Arrive { from: r, to, bytes, base: SimTime(start0) },
                );
                let skey = self.next_key(r);
                ctx.at(SimTime(t), skey, PEv::Step(r));
            }
            SchedOp::Recv { from } => {
                let arrival = self.mailboxes[local].get_mut(&from).and_then(|q| {
                    if q.front().is_some_and(|&a| a <= now) {
                        q.pop_front()
                    } else {
                        None
                    }
                });
                match arrival {
                    Some(_) => {
                        self.ranks[local].pc += 1;
                        let key = self.next_key(r);
                        ctx.at(now + self.params.overhead, key, PEv::Step(r));
                    }
                    None => {
                        if let Some(&a) = self.mailboxes[local].get(&from).and_then(|q| q.front()) {
                            let key = self.next_key(r);
                            ctx.at(a.max(now), key, PEv::Step(r));
                        } else {
                            self.waiting_on[local] = Some(from);
                        }
                    }
                }
            }
            SchedOp::Compute { bytes } => {
                let d = SimDuration::from_secs_f64(bytes as f64 / self.params.compute_bps as f64);
                self.ranks[local].pc += 1;
                let key = self.next_key(r);
                ctx.at(now + d, key, PEv::Step(r));
            }
            SchedOp::Work { ps } => {
                self.ranks[local].pc += 1;
                let key = self.next_key(r);
                ctx.at(now + SimDuration::from_ps(ps), key, PEv::Step(r));
            }
        }
    }

    fn arrive(&mut self, ctx: &mut ShardCtx<'_, PEv>, from: u32, to: u32, bytes: u64, base: SimTime) {
        let now = ctx.now();
        let local = self.local(to);
        // Downlink queueing, charged in head-arrival order.
        let ser = self.ser_ps(bytes);
        let st = &mut self.ranks[local];
        let start1 = now.0.max(st.down_busy);
        st.down_busy = start1 + ser;
        let extra1 = start1 - now.0;
        let cost = self
            .path
            .as_ref()
            .map_or(PathCost::CROSSBAR, |p| p.cost(from, to));
        let arrival =
            SimTime(base.0 + extra1 + cost.extra_ps) + self.link.message_time(bytes, cost.hops);
        self.mailboxes[local].entry(from).or_default().push_back(arrival);
        if self.waiting_on[local] == Some(from) {
            self.waiting_on[local] = None;
            let wake = self.ranks[local].time.max(arrival);
            let key = self.next_key(to);
            ctx.at(wake, key, PEv::Step(to));
        }
    }
}

impl ShardWorld for ParWorld {
    type Event = PEv;

    fn handle(&mut self, ctx: &mut ShardCtx<'_, PEv>, event: PEv) {
        match event {
            PEv::Step(r) => self.step(ctx, r),
            PEv::Arrive { from, to, bytes, base } => self.arrive(ctx, from, to, bytes, base),
        }
    }
}

/// Execute one collective over a `p`-rank partitioned crossbar of
/// `link`-class links, sharded across `jobs` engine shards (threaded
/// when `jobs > 1`). Returns the same [`SimResult`] shape as the serial
/// executor. Results are bit-identical for every `jobs` value.
///
/// Panics if any rank's schedule deadlocks (a schedule-generation bug).
pub fn simulate_collective_sharded(
    p: u32,
    coll: Collective,
    bytes: u64,
    params: ExecParams,
    link: LinkModel,
    jobs: u32,
) -> SimResult {
    simulate_collective_sharded_stats(p, coll, bytes, params, link, jobs).0
}

/// Like [`simulate_collective_sharded`], additionally returning the
/// engine's [`ShardRunStats`] so callers can publish the per-shard
/// event ledger through the observability plane
/// (`ShardRunStats::publish`) and reconcile it against the registry.
pub fn simulate_collective_sharded_stats(
    p: u32,
    coll: Collective,
    bytes: u64,
    params: ExecParams,
    link: LinkModel,
    jobs: u32,
) -> (SimResult, ShardRunStats) {
    simulate_collective_sharded_opts(p, coll, bytes, params, link, jobs, true)
}

/// Like [`simulate_collective_sharded_stats`], with speculation under
/// caller control: `speculate = false` pins the engine to conservative
/// windows only. The result is bit-identical either way — the sentinel's
/// rollback oracle holds that as an invariant — so the knob exists for
/// differential testing and for measuring speculation itself, not for
/// correctness.
pub fn simulate_collective_sharded_opts(
    p: u32,
    coll: Collective,
    bytes: u64,
    params: ExecParams,
    link: LinkModel,
    jobs: u32,
    speculate: bool,
) -> (SimResult, ShardRunStats) {
    assert!(p > 0, "at least one rank");
    let programs = (0..p).map(|r| schedule(coll, r, p, bytes)).collect();
    simulate_programs_sharded_opts(programs, params, link, None, jobs, speculate)
}

/// Execute arbitrary per-rank schedules (`programs[r]` is rank `r`'s
/// ops) over the partitioned fabric, sharded across `jobs` engine
/// shards. This is the entry point the workload compilers use: they
/// build programs out of collective schedules, halo exchanges, and
/// roofline-priced [`SchedOp::Work`] phases, then run them through the
/// same engine and determinism contract as the collectives. `path`
/// supplies per-message route costs (hop counts + fixed extras) for
/// non-crossbar fabrics; `None` keeps the 2-hop crossbar.
///
/// Results are bit-identical for every `jobs` value. Panics if any
/// rank's program deadlocks (a program-generation bug).
pub fn simulate_programs_sharded(
    programs: Vec<Vec<SchedOp>>,
    params: ExecParams,
    link: LinkModel,
    path: Option<PathModel>,
    jobs: u32,
) -> (SimResult, ShardRunStats) {
    simulate_programs_sharded_opts(programs, params, link, path, jobs, true)
}

/// [`simulate_programs_sharded`] with speculation under caller control.
pub fn simulate_programs_sharded_opts(
    programs: Vec<Vec<SchedOp>>,
    params: ExecParams,
    link: LinkModel,
    path: Option<PathModel>,
    jobs: u32,
    speculate: bool,
) -> (SimResult, ShardRunStats) {
    let p = programs.len() as u32;
    assert!(p > 0, "at least one rank");
    let mut programs = programs;
    let part = Partition::block(p, jobs.max(1));
    let worlds: Vec<ParWorld> = (0..part.nshards)
        .map(|sh| {
            let ranks = part.ranks_of(sh);
            let base = ranks.start;
            let count = ranks.len();
            ParWorld {
                part,
                base,
                params,
                link,
                path: path.clone(),
                ranks: ranks
                    .map(|r| PRank {
                        ops: std::mem::take(&mut programs[r as usize]),
                        pc: 0,
                        time: SimTime::ZERO,
                        finished: None,
                        seq: 0,
                        up_busy: 0,
                        down_busy: 0,
                    })
                    .collect(),
                mailboxes: (0..count).map(|_| FastHashMap::default()).collect(),
                waiting_on: vec![None; count],
                messages: 0,
                payload_bytes: 0,
            }
        })
        .collect();
    let mut sim = ShardSim::uniform(worlds, SimDuration(link.hop_latency.max(1)));
    for r in 0..p {
        sim.schedule(part.shard_of(r), SimTime::ZERO, (r as u64) << 32, PEv::Step(r));
    }
    let stats = if speculate {
        sim.run_spec(jobs > 1, None)
    } else {
        sim.run(jobs > 1, None)
    };
    let mut completion = SimTime::ZERO;
    let mut messages = 0;
    let mut payload_bytes = 0;
    for w in sim.worlds() {
        messages += w.messages;
        payload_bytes += w.payload_bytes;
        for (i, st) in w.ranks.iter().enumerate() {
            let done = st.finished.unwrap_or_else(|| {
                panic!("rank {} deadlocked at op {}", w.base + i as u32, st.pc)
            });
            completion = completion.max(done);
        }
    }
    (
        SimResult {
            completion: completion.since(SimTime::ZERO),
            payload_bytes,
            messages,
        },
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allgather::AllgatherAlgo;
    use crate::allreduce::AllreduceAlgo;
    use crate::barrier::BarrierAlgo;
    use crate::bcast::BcastAlgo;
    use crate::simx::simulate_collective;
    use polaris_simnet::link::Generation;
    use polaris_simnet::network::Network;
    use polaris_simnet::topology::{Topology, TopologyKind};

    const CASES: &[(Collective, u64)] = &[
        (Collective::Barrier(BarrierAlgo::Dissemination), 0),
        (Collective::Barrier(BarrierAlgo::Tree), 0),
        (Collective::Bcast(BcastAlgo::Binomial), 1 << 16),
        (Collective::Allreduce(AllreduceAlgo::RecursiveDoubling), 1 << 10),
        (Collective::Allreduce(AllreduceAlgo::Ring), 1 << 20),
        (Collective::Allgather(AllgatherAlgo::Bruck), 4096),
        (Collective::AlltoallPairwise, 512),
    ];

    #[test]
    fn job_counts_are_bit_identical() {
        for &(coll, bytes) in CASES {
            for p in [16u32, 31] {
                let link = Generation::InfiniBand4x.link_model();
                let base =
                    simulate_collective_sharded(p, coll, bytes, ExecParams::default(), link, 1);
                for jobs in [2u32, 3, 4] {
                    let run = simulate_collective_sharded(
                        p,
                        coll,
                        bytes,
                        ExecParams::default(),
                        link,
                        jobs,
                    );
                    assert_eq!(
                        run.completion, base.completion,
                        "{coll:?} p={p} jobs={jobs}"
                    );
                    assert_eq!(run.messages, base.messages, "{coll:?} p={p} jobs={jobs}");
                    assert_eq!(run.payload_bytes, base.payload_bytes);
                }
            }
        }
    }

    #[test]
    fn message_counts_match_serial_executor() {
        for &(coll, bytes) in CASES {
            let p = 16u32;
            let link = Generation::GigabitEthernet.link_model();
            let sharded =
                simulate_collective_sharded(p, coll, bytes, ExecParams::default(), link, 4);
            let mut net = Network::new(
                Topology::new(TopologyKind::Crossbar { hosts: p }),
                link,
            );
            let serial = simulate_collective(&mut net, coll, bytes, ExecParams::default());
            assert_eq!(sharded.messages, serial.messages, "{coll:?}");
            assert_eq!(sharded.payload_bytes, serial.payload_bytes, "{coll:?}");
            assert!(sharded.completion > SimDuration::ZERO || bytes == 0);
        }
    }

    #[test]
    fn speculation_is_transparent_to_collectives() {
        // Conservative-only and speculative runs must agree bit for bit
        // on every collective shape; speculation only changes how many
        // windows the engine needed, never what the model computed.
        for &(coll, bytes) in CASES {
            let p = 16u32;
            let link = Generation::InfiniBand4x.link_model();
            let (cons, _) = simulate_collective_sharded_opts(
                p, coll, bytes, ExecParams::default(), link, 2, false,
            );
            let (spec, _) = simulate_collective_sharded_opts(
                p, coll, bytes, ExecParams::default(), link, 2, true,
            );
            assert_eq!(spec.completion, cons.completion, "{coll:?}");
            assert_eq!(spec.messages, cons.messages, "{coll:?}");
            assert_eq!(spec.payload_bytes, cons.payload_bytes, "{coll:?}");
        }
    }

    #[test]
    fn completion_scales_with_generation() {
        // A slower wire must never finish the same collective sooner.
        let coll = Collective::Allreduce(AllreduceAlgo::Ring);
        let fast = simulate_collective_sharded(
            16,
            coll,
            1 << 20,
            ExecParams::default(),
            Generation::InfiniBand4x.link_model(),
            2,
        );
        let slow = simulate_collective_sharded(
            16,
            coll,
            1 << 20,
            ExecParams::default(),
            Generation::FastEthernet.link_model(),
            2,
        );
        assert!(slow.completion > fast.completion);
    }
}
