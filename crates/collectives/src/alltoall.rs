//! All-to-all personalized exchange.

use crate::comm::{Comm, COLL_TAG_BASE};

const TAG: u64 = COLL_TAG_BASE + 50;

/// Pairwise-exchange alltoall: p-1 rounds; in round r every rank sends
/// its block for `(rank + r) % p` and receives from `(rank - r) % p`.
/// Each round is a perfect matching, so links are never oversubscribed.
///
/// `send` holds p blocks of `n` bytes (block i destined for rank i);
/// `recv` receives p blocks (block i from rank i).
pub fn alltoall_pairwise<C: Comm>(comm: &mut C, send: &[u8], recv: &mut [u8], n: usize) {
    let p = comm.size();
    let rank = comm.rank();
    assert_eq!(send.len(), n * p as usize, "alltoall send size");
    assert_eq!(recv.len(), n * p as usize, "alltoall recv size");
    let me = rank as usize * n;
    recv[me..me + n].copy_from_slice(&send[me..me + n]);
    if p <= 1 {
        return;
    }
    comm.obs_enter(
        "alltoall_pairwise",
        &[("bytes", n as u64), ("ranks", p as u64)],
    );
    for r in 1..p {
        let dst = (rank + r) % p;
        let src = (rank + p - r) % p;
        let block = &send[dst as usize * n..dst as usize * n + n];
        let got = comm.sendrecv_bytes(dst, block, src, TAG + r as u64, n);
        recv[src as usize * n..src as usize * n + n].copy_from_slice(&got);
    }
    comm.obs_exit("alltoall_pairwise", &[]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::run_world;
    use polaris_msg::prelude::MsgConfig;

    /// Block sent from rank s to rank d.
    fn block(s: u32, d: u32, n: usize) -> Vec<u8> {
        (0..n).map(|i| (s as usize * 37 + d as usize * 11 + i) as u8).collect()
    }

    fn check(p: u32, n: usize) {
        let out = run_world(p, MsgConfig::default(), move |mut ep| {
            let me = ep.rank();
            let mut send = Vec::with_capacity(n * p as usize);
            for d in 0..p {
                send.extend_from_slice(&block(me, d, n));
            }
            let mut recv = vec![0u8; n * p as usize];
            alltoall_pairwise(&mut ep, &send, &mut recv, n);
            recv
        });
        for (d, buf) in out.iter().enumerate() {
            for s in 0..p {
                assert_eq!(
                    &buf[s as usize * n..s as usize * n + n],
                    &block(s, d as u32, n)[..],
                    "rank {d} block from {s} wrong (p={p})"
                );
            }
        }
    }

    #[test]
    fn various_sizes() {
        for p in [1, 2, 3, 4, 5, 8] {
            check(p, 16);
        }
    }

    #[test]
    fn zero_block() {
        check(4, 0);
    }

    #[test]
    fn large_blocks_cross_rendezvous_threshold() {
        check(3, 64 * 1024);
    }
}
