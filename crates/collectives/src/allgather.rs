//! Allgather: every rank ends with every rank's contribution.

use crate::comm::{Comm, COLL_TAG_BASE};

const TAG_RING: u64 = COLL_TAG_BASE + 12;
const TAG_BRUCK: u64 = COLL_TAG_BASE + 13;

/// Ring allgather: p-1 steps, each forwarding the block received last
/// step. Bandwidth-optimal, latency O(p).
pub fn allgather_ring<C: Comm>(comm: &mut C, mine: &[u8], out: &mut [u8]) {
    let p = comm.size();
    let rank = comm.rank();
    let n = mine.len();
    assert_eq!(out.len(), n * p as usize, "allgather output size");
    out[rank as usize * n..rank as usize * n + n].copy_from_slice(mine);
    if p <= 1 {
        return;
    }
    comm.obs_enter("allgather_ring", &[("bytes", n as u64), ("ranks", p as u64)]);
    let next = (rank + 1) % p;
    let prev = (rank + p - 1) % p;
    let mut have = rank;
    for _ in 0..p - 1 {
        let sbuf = out[have as usize * n..have as usize * n + n].to_vec();
        let incoming = (have + p - 1) % p;
        let got = comm.sendrecv_bytes(next, &sbuf, prev, TAG_RING, n);
        out[incoming as usize * n..incoming as usize * n + n].copy_from_slice(&got);
        have = incoming;
    }
    comm.obs_exit("allgather_ring", &[]);
}

/// Bruck allgather: ⌈log₂ p⌉ steps for any p; step k exchanges a block
/// of min(2^k, p − 2^k) contributions with ranks ±2^k, then a final local
/// rotation restores absolute order. Latency-optimal for small blocks.
pub fn allgather_bruck<C: Comm>(comm: &mut C, mine: &[u8], out: &mut [u8]) {
    let p = comm.size();
    let rank = comm.rank();
    let n = mine.len();
    assert_eq!(out.len(), n * p as usize, "allgather output size");
    if p <= 1 {
        out[..n].copy_from_slice(mine);
        return;
    }
    comm.obs_enter("allgather_bruck", &[("bytes", n as u64), ("ranks", p as u64)]);
    // Work in "rotated" order: position j holds rank (rank + j) % p.
    let mut acc: Vec<u8> = Vec::with_capacity(n * p as usize);
    acc.extend_from_slice(mine);
    let mut held = 1u32; // blocks currently held (positions 0..held)
    let mut k = 0u64;
    while held < p {
        let count = held.min(p - held);
        let to = (rank + p - held) % p; // they need our leading blocks
        let from = (rank + held) % p;
        let got = comm.sendrecv_bytes(
            to,
            &acc[..count as usize * n],
            from,
            TAG_BRUCK + k,
            count as usize * n,
        );
        acc.extend_from_slice(&got);
        held += count;
        k += 1;
    }
    // Un-rotate: acc position j is rank (rank + j) % p.
    for j in 0..p {
        let abs = (rank + j) % p;
        out[abs as usize * n..abs as usize * n + n]
            .copy_from_slice(&acc[j as usize * n..j as usize * n + n]);
    }
    comm.obs_exit("allgather_bruck", &[("steps", k)]);
}

/// Allgather algorithm selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllgatherAlgo {
    Ring,
    Bruck,
}

pub fn allgather_with<C: Comm>(comm: &mut C, algo: AllgatherAlgo, mine: &[u8], out: &mut [u8]) {
    match algo {
        AllgatherAlgo::Ring => allgather_ring(comm, mine, out),
        AllgatherAlgo::Bruck => allgather_bruck(comm, mine, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::run_world;
    use polaris_msg::prelude::MsgConfig;

    fn check(algo: AllgatherAlgo, p: u32, n: usize) {
        let out = run_world(p, MsgConfig::default(), move |mut ep| {
            let mine: Vec<u8> = (0..n).map(|i| (ep.rank() as usize * 91 + i) as u8).collect();
            let mut out = vec![0u8; n * p as usize];
            allgather_with(&mut ep, algo, &mine, &mut out);
            out
        });
        for (r, buf) in out.iter().enumerate() {
            for src in 0..p as usize {
                let expect: Vec<u8> = (0..n).map(|i| (src * 91 + i) as u8).collect();
                assert_eq!(
                    &buf[src * n..src * n + n],
                    &expect[..],
                    "rank {r} has wrong block from {src} ({algo:?}, p={p})"
                );
            }
        }
    }

    #[test]
    fn ring_various() {
        for p in [1, 2, 3, 4, 5, 8] {
            check(AllgatherAlgo::Ring, p, 24);
        }
    }

    #[test]
    fn bruck_power_of_two() {
        for p in [1, 2, 4, 8, 16] {
            check(AllgatherAlgo::Bruck, p, 24);
        }
    }

    #[test]
    fn bruck_non_power_of_two() {
        for p in [3, 5, 6, 7, 9, 11] {
            check(AllgatherAlgo::Bruck, p, 24);
        }
    }

    #[test]
    fn zero_block_allgather() {
        check(AllgatherAlgo::Ring, 4, 0);
        check(AllgatherAlgo::Bruck, 4, 0);
    }

    #[test]
    fn algorithms_agree() {
        for p in [3, 8] {
            check(AllgatherAlgo::Ring, p, 100);
            check(AllgatherAlgo::Bruck, p, 100);
        }
    }
}
