//! Prefix reductions (scan).

use crate::comm::{Comm, COLL_TAG_BASE};
use crate::op::{from_bytes, reduce_into, to_bytes, Reducible, ReduceOp};

const TAG: u64 = COLL_TAG_BASE + 60;

/// Inclusive scan: rank r ends with `op` applied over ranks 0..=r.
///
/// Distance-doubling (Hillis–Steele) schedule: ⌈log₂ p⌉ rounds; in round
/// k rank r sends its running prefix to r + 2^k and folds in the prefix
/// from r − 2^k. All [`ReduceOp`]s are associative and commutative, which
/// this schedule requires.
pub fn scan_inclusive<C: Comm, T: Reducible>(comm: &mut C, op: ReduceOp, data: &mut [T]) {
    let p = comm.size();
    let rank = comm.rank();
    if p <= 1 {
        return;
    }
    let bytes = data.len() * T::SIZE;
    let mut dist = 1u32;
    let mut round = 0u64;
    while dist < p {
        let sends = rank + dist < p;
        let recvs = rank >= dist;
        match (sends, recvs) {
            (true, true) => {
                let got: Vec<T> = from_bytes(&comm.sendrecv_bytes(
                    rank + dist,
                    &to_bytes(data),
                    rank - dist,
                    TAG + round,
                    bytes,
                ));
                reduce_into(op, data, &got);
            }
            (true, false) => comm.send_bytes(rank + dist, TAG + round, &to_bytes(data)),
            (false, true) => {
                let got: Vec<T> = from_bytes(&comm.recv_bytes(rank - dist, TAG + round, bytes));
                reduce_into(op, data, &got);
            }
            (false, false) => {}
        }
        dist <<= 1;
        round += 1;
    }
}

/// Exclusive scan: rank r ends with `op` over ranks 0..r; rank 0 gets
/// `identity`. Implemented as an inclusive scan followed by a
/// right-shift of results.
pub fn scan_exclusive<C: Comm, T: Reducible>(
    comm: &mut C,
    op: ReduceOp,
    data: &mut [T],
    identity: T,
) {
    let p = comm.size();
    let rank = comm.rank();
    let bytes = data.len() * T::SIZE;
    scan_inclusive(comm, op, data);
    // Shift: rank r sends its inclusive prefix to r+1, receives r-1's.
    let sends = rank + 1 < p;
    let recvs = rank > 0;
    let incoming: Option<Vec<T>> = match (sends, recvs) {
        (true, true) => Some(from_bytes(&comm.sendrecv_bytes(
            rank + 1,
            &to_bytes(data),
            rank - 1,
            TAG + 99,
            bytes,
        ))),
        (true, false) => {
            comm.send_bytes(rank + 1, TAG + 99, &to_bytes(data));
            None
        }
        (false, true) => Some(from_bytes(&comm.recv_bytes(rank - 1, TAG + 99, bytes))),
        (false, false) => None,
    };
    match incoming {
        Some(prev) => data.copy_from_slice(&prev),
        None => data.fill(identity),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::run_world;
    use polaris_msg::prelude::MsgConfig;

    #[test]
    fn inclusive_sum_scan() {
        for p in [1, 2, 3, 5, 8, 9] {
            let out = run_world(p, MsgConfig::default(), |mut ep| {
                let mut data = vec![(ep.rank() + 1) as u64, 1u64];
                scan_inclusive(&mut ep, ReduceOp::Sum, &mut data);
                data
            });
            for (r, d) in out.iter().enumerate() {
                let r = r as u64;
                assert_eq!(d[0], (r + 1) * (r + 2) / 2, "p={p} rank {r}");
                assert_eq!(d[1], r + 1);
            }
        }
    }

    #[test]
    fn exclusive_sum_scan() {
        for p in [1, 2, 4, 7] {
            let out = run_world(p, MsgConfig::default(), |mut ep| {
                let mut data = vec![(ep.rank() + 1) as u64];
                scan_exclusive(&mut ep, ReduceOp::Sum, &mut data, 0);
                data[0]
            });
            for (r, v) in out.iter().enumerate() {
                let r = r as u64;
                assert_eq!(*v, r * (r + 1) / 2, "p={p} rank {r}");
            }
        }
    }

    #[test]
    fn max_scan() {
        // Values zig-zag; the prefix max is monotone.
        let out = run_world(6, MsgConfig::default(), |mut ep| {
            let vals = [3i64, 1, 4, 1, 5, 2];
            let mut data = vec![vals[ep.rank() as usize]];
            scan_inclusive(&mut ep, ReduceOp::Max, &mut data);
            data[0]
        });
        assert_eq!(out, vec![3, 3, 4, 4, 5, 5]);
    }
}
