//! Gather and scatter (rooted redistribution).

use crate::bcast::chunk_range;
use crate::comm::{Comm, COLL_TAG_BASE};

const TAG_G: u64 = COLL_TAG_BASE + 10;
const TAG_S: u64 = COLL_TAG_BASE + 11;

/// Gather equal-size contributions to `root`. Every rank passes its
/// `mine` slice; the root's `out` (len = p · mine.len()) receives rank
/// i's bytes at offset i·mine.len(). Non-root `out` is untouched.
///
/// Linear algorithm: the root's inbound link is the bottleneck whatever
/// the schedule, so a tree buys little for gather of equal chunks.
pub fn gather_linear<C: Comm>(comm: &mut C, root: u32, mine: &[u8], out: &mut [u8]) {
    let p = comm.size();
    let rank = comm.rank();
    let n = mine.len();
    if rank == root {
        assert_eq!(out.len(), n * p as usize, "gather output size");
        out[root as usize * n..root as usize * n + n].copy_from_slice(mine);
        for i in 0..p {
            if i == root {
                continue;
            }
            let got = comm.recv_bytes(i, TAG_G, n);
            out[i as usize * n..i as usize * n + n].copy_from_slice(&got);
        }
    } else {
        comm.send_bytes(root, TAG_G, mine);
    }
}

/// Gather up a binomial tree: log p rounds; each rank forwards its
/// accumulated subtree block. Latency-optimal for small contributions.
/// Requires power-of-two-friendly block bookkeeping, handled via
/// relative ranks; works for any p.
pub fn gather_binomial<C: Comm>(comm: &mut C, root: u32, mine: &[u8], out: &mut [u8]) {
    let p = comm.size();
    let rank = comm.rank();
    let n = mine.len();
    if p == 1 {
        out[..n].copy_from_slice(mine);
        return;
    }
    let rel = (rank + p - root) % p;
    // Accumulate this rank's subtree contiguously in relative order.
    let mut acc = mine.to_vec();
    let mut mask = 1u32;
    while mask < p {
        if rel & mask == 0 {
            let child_rel = rel | mask;
            if child_rel < p {
                let child = (child_rel + root) % p;
                // The child's subtree spans min(mask, p - child_rel) ranks.
                let span = mask.min(p - child_rel) as usize;
                let got = comm.recv_bytes(child, TAG_G, span * n);
                acc.extend_from_slice(&got);
            }
        } else {
            let parent = ((rel - mask) + root) % p;
            comm.send_bytes(parent, TAG_G, &acc);
            return;
        }
        mask <<= 1;
    }
    // Root: `acc` is in relative order; rotate into absolute order.
    assert_eq!(acc.len(), n * p as usize);
    for r in 0..p {
        let abs = (r + root) % p;
        out[abs as usize * n..abs as usize * n + n]
            .copy_from_slice(&acc[r as usize * n..r as usize * n + n]);
    }
}

/// Scatter near-equal chunks of `data` (valid at root; len arbitrary)
/// from `root`; returns this rank's chunk.
pub fn scatter_linear<C: Comm>(comm: &mut C, root: u32, data: &[u8], total: usize) -> Vec<u8> {
    let p = comm.size();
    let rank = comm.rank();
    if rank == root {
        assert_eq!(data.len(), total, "root must hold the full buffer");
        let mut mine = Vec::new();
        for i in 0..p {
            let (start, len) = chunk_range(total, p, i);
            if i == root {
                mine = data[start..start + len].to_vec();
            } else {
                comm.send_bytes(i, TAG_S, &data[start..start + len]);
            }
        }
        mine
    } else {
        let (_, len) = chunk_range(total, p, rank);
        comm.recv_bytes(root, TAG_S, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::run_world;
    use polaris_msg::prelude::MsgConfig;

    fn rank_block(r: u32, n: usize) -> Vec<u8> {
        (0..n).map(|i| (r as usize * 100 + i) as u8).collect()
    }

    fn check_gather(binomial: bool, p: u32, root: u32, n: usize) {
        let out = run_world(p, MsgConfig::default(), move |mut ep| {
            let mine = rank_block(ep.rank(), n);
            let mut out = vec![0u8; n * p as usize];
            if binomial {
                gather_binomial(&mut ep, root, &mine, &mut out);
            } else {
                gather_linear(&mut ep, root, &mine, &mut out);
            }
            out
        });
        let rootbuf = &out[root as usize];
        for r in 0..p {
            assert_eq!(
                &rootbuf[r as usize * n..r as usize * n + n],
                &rank_block(r, n)[..],
                "rank {r} block wrong (binomial={binomial}, p={p}, root={root})"
            );
        }
    }

    #[test]
    fn linear_gather_various() {
        for p in [1, 2, 3, 5, 8] {
            check_gather(false, p, 0, 16);
        }
        check_gather(false, 5, 3, 16);
    }

    #[test]
    fn binomial_gather_various() {
        for p in [1, 2, 3, 4, 5, 7, 8, 9] {
            check_gather(true, p, 0, 16);
        }
        check_gather(true, 6, 2, 16);
        check_gather(true, 8, 7, 16);
    }

    #[test]
    fn scatter_roundtrips_with_gather() {
        let p = 5;
        let total = 10_007; // ragged chunks
        let out = run_world(p, MsgConfig::default(), move |mut ep| {
            let data: Vec<u8> = if ep.rank() == 1 {
                (0..total).map(|i| (i % 251) as u8).collect()
            } else {
                vec![]
            };
            scatter_linear(&mut ep, 1, &data, total)
        });
        let mut reassembled = Vec::new();
        for chunk in out {
            reassembled.extend_from_slice(&chunk);
        }
        let expect: Vec<u8> = (0..total).map(|i| (i % 251) as u8).collect();
        assert_eq!(reassembled, expect);
    }

    #[test]
    fn zero_size_contributions() {
        check_gather(false, 4, 0, 0);
        check_gather(true, 4, 0, 0);
    }
}
