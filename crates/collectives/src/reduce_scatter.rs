//! Reduce-scatter: reduce a vector across ranks, leaving rank i with
//! chunk i of the result. Half of a ring allreduce, exposed standalone
//! because bandwidth-bound applications (gradient sharding, spectral
//! transposes) use it directly.

use crate::bcast::chunk_range;
use crate::comm::{Comm, COLL_TAG_BASE};
use crate::op::{from_bytes, reduce_into, to_bytes, Reducible, ReduceOp};

const TAG: u64 = COLL_TAG_BASE + 70;

/// Ring reduce-scatter over `data` (length n on every rank). Returns
/// this rank's fully reduced chunk (per [`chunk_range`] partitioning).
/// `data`'s contents are clobbered (used as workspace).
pub fn reduce_scatter_ring<C: Comm, T: Reducible>(
    comm: &mut C,
    op: ReduceOp,
    data: &mut [T],
) -> Vec<T> {
    let p = comm.size();
    let rank = comm.rank();
    let n = data.len();
    if p <= 1 {
        return data.to_vec();
    }
    let next = (rank + 1) % p;
    let prev = (rank + p - 1) % p;
    let elem_chunk = |i: u32| {
        let (s, l) = chunk_range(n, p, i);
        s..s + l
    };
    for s in 0..p - 1 {
        let send_idx = (rank + p - s) % p;
        let recv_idx = (rank + p - s - 1) % p;
        let sbuf = to_bytes(&data[elem_chunk(send_idx)]);
        let rlen = elem_chunk(recv_idx).len() * T::SIZE;
        let got: Vec<T> = from_bytes(&comm.sendrecv_bytes(next, &sbuf, prev, TAG, rlen));
        reduce_into(op, &mut data[elem_chunk(recv_idx)], &got);
    }
    // After p-1 steps this rank holds the complete reduction of chunk
    // (rank + 1) mod p... rotated; the canonical API gives rank its own
    // chunk, so finish with one neighbour shift.
    let have = (rank + 1) % p;
    let mine = elem_chunk(rank);
    if have == rank {
        return data[mine].to_vec();
    }
    let send = to_bytes(&data[elem_chunk(have)]);
    // The rank that holds *our* chunk is rank + 1 (it completed chunk
    // (rank+1)+1-1 ... by symmetry each rank r holds chunk (r+1)%p, so
    // chunk `rank` sits at rank `rank - 1`... verify: holder of chunk c
    // is rank (c + p - 1) % p. We hold chunk (rank+1): send it to its
    // owner (rank+1); receive ours from (rank-1).
    let to = have; // owner of the chunk we hold
    let from = (rank + p - 1) % p;
    let got = comm.sendrecv_bytes(to, &send, from, TAG + 1, mine.len() * T::SIZE);
    from_bytes(&got)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::run_world;
    use polaris_msg::prelude::MsgConfig;

    fn check(p: u32, n: usize) {
        let out = run_world(p, MsgConfig::default(), move |mut ep| {
            let r = ep.rank() as u64;
            let mut data: Vec<u64> = (0..n as u64).map(|i| r * 7 + i).collect();
            let chunk = reduce_scatter_ring(&mut ep, ReduceOp::Sum, &mut data);
            (ep.rank(), chunk)
        });
        // Expected element i of the reduction: sum over r of (r*7 + i).
        let rank_sum: u64 = (0..p as u64).map(|r| r * 7).sum();
        for (rank, chunk) in out {
            let (start, len) = chunk_range(n, p, rank);
            assert_eq!(chunk.len(), len, "rank {rank} chunk length");
            for (j, v) in chunk.iter().enumerate() {
                let i = (start + j) as u64;
                assert_eq!(*v, rank_sum + i * p as u64, "rank {rank} elem {j}");
            }
        }
    }

    #[test]
    fn various_sizes() {
        for p in [1, 2, 3, 4, 5, 8] {
            check(p, 64);
        }
    }

    #[test]
    fn ragged_chunks() {
        check(5, 13);
        check(8, 3);
        check(3, 0);
    }

    #[test]
    fn agrees_with_allreduce() {
        use crate::allreduce::allreduce_ring;
        let p = 4;
        let n = 32;
        let out = run_world(p, MsgConfig::default(), move |mut ep| {
            let r = ep.rank() as u64;
            let mut a: Vec<u64> = (0..n as u64).map(|i| r ^ i).collect();
            let mut b = a.clone();
            let chunk = reduce_scatter_ring(&mut ep, ReduceOp::Sum, &mut a);
            allreduce_ring(&mut ep, ReduceOp::Sum, &mut b);
            let (start, len) = chunk_range(n, p, ep.rank());
            (chunk, b[start..start + len].to_vec())
        });
        for (rs, ar) in out {
            assert_eq!(rs, ar);
        }
    }
}
