//! Elements and reduction operators for collectives.

/// A fixed-size element that can cross the wire.
pub trait Elem: Copy + Default + PartialEq + std::fmt::Debug + Send + 'static {
    const SIZE: usize;
    fn write_to(&self, out: &mut [u8]);
    fn read_from(buf: &[u8]) -> Self;
}

macro_rules! impl_elem {
    ($t:ty, $n:expr) => {
        impl Elem for $t {
            const SIZE: usize = $n;
            #[inline]
            fn write_to(&self, out: &mut [u8]) {
                out[..$n].copy_from_slice(&self.to_le_bytes());
            }
            #[inline]
            fn read_from(buf: &[u8]) -> Self {
                <$t>::from_le_bytes(buf[..$n].try_into().unwrap())
            }
        }
    };
}

impl_elem!(u32, 4);
impl_elem!(u64, 8);
impl_elem!(i32, 4);
impl_elem!(i64, 8);
impl_elem!(f32, 4);
impl_elem!(f64, 8);

/// Serialize a slice of elements.
pub fn to_bytes<T: Elem>(xs: &[T]) -> Vec<u8> {
    let mut out = vec![0u8; xs.len() * T::SIZE];
    for (i, x) in xs.iter().enumerate() {
        x.write_to(&mut out[i * T::SIZE..]);
    }
    out
}

/// Deserialize a slice of elements. Panics if `buf` is not a whole number
/// of elements.
pub fn from_bytes<T: Elem>(buf: &[u8]) -> Vec<T> {
    assert_eq!(buf.len() % T::SIZE, 0, "ragged element buffer");
    buf.chunks_exact(T::SIZE).map(T::read_from).collect()
}

/// The reduction operators (the MPI set relevant to the experiments).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    Sum,
    Prod,
    Min,
    Max,
    BitAnd,
    BitOr,
    BitXor,
}

/// Types a [`ReduceOp`] can combine.
pub trait Reducible: Elem {
    fn reduce(op: ReduceOp, a: Self, b: Self) -> Self;
}

macro_rules! impl_reducible_int {
    ($t:ty) => {
        impl Reducible for $t {
            #[inline]
            fn reduce(op: ReduceOp, a: Self, b: Self) -> Self {
                match op {
                    ReduceOp::Sum => a.wrapping_add(b),
                    ReduceOp::Prod => a.wrapping_mul(b),
                    ReduceOp::Min => a.min(b),
                    ReduceOp::Max => a.max(b),
                    ReduceOp::BitAnd => a & b,
                    ReduceOp::BitOr => a | b,
                    ReduceOp::BitXor => a ^ b,
                }
            }
        }
    };
}

macro_rules! impl_reducible_float {
    ($t:ty) => {
        impl Reducible for $t {
            #[inline]
            fn reduce(op: ReduceOp, a: Self, b: Self) -> Self {
                match op {
                    ReduceOp::Sum => a + b,
                    ReduceOp::Prod => a * b,
                    ReduceOp::Min => a.min(b),
                    ReduceOp::Max => a.max(b),
                    ReduceOp::BitAnd | ReduceOp::BitOr | ReduceOp::BitXor => {
                        panic!("bitwise reduction is undefined for floating point")
                    }
                }
            }
        }
    };
}

impl_reducible_int!(u32);
impl_reducible_int!(u64);
impl_reducible_int!(i32);
impl_reducible_int!(i64);
impl_reducible_float!(f32);
impl_reducible_float!(f64);

/// Reduce `src` into `acc` element-wise.
pub fn reduce_into<T: Reducible>(op: ReduceOp, acc: &mut [T], src: &[T]) {
    assert_eq!(acc.len(), src.len(), "reduction length mismatch");
    for (a, s) in acc.iter_mut().zip(src) {
        *a = T::reduce(op, *a, *s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_roundtrip_all_types() {
        let u: Vec<u64> = vec![0, 1, u64::MAX, 42];
        assert_eq!(from_bytes::<u64>(&to_bytes(&u)), u);
        let f: Vec<f64> = vec![0.0, -1.5, f64::MAX, 1e-300];
        assert_eq!(from_bytes::<f64>(&to_bytes(&f)), f);
        let i: Vec<i32> = vec![i32::MIN, -1, 0, i32::MAX];
        assert_eq!(from_bytes::<i32>(&to_bytes(&i)), i);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_buffer_panics() {
        from_bytes::<u64>(&[0u8; 7]);
    }

    #[test]
    fn integer_reductions() {
        assert_eq!(u64::reduce(ReduceOp::Sum, 3, 4), 7);
        assert_eq!(u64::reduce(ReduceOp::Prod, 3, 4), 12);
        assert_eq!(u64::reduce(ReduceOp::Min, 3, 4), 3);
        assert_eq!(u64::reduce(ReduceOp::Max, 3, 4), 4);
        assert_eq!(u64::reduce(ReduceOp::BitAnd, 0b110, 0b011), 0b010);
        assert_eq!(u64::reduce(ReduceOp::BitOr, 0b110, 0b011), 0b111);
        assert_eq!(u64::reduce(ReduceOp::BitXor, 0b110, 0b011), 0b101);
        // Wrapping, not panicking.
        assert_eq!(u64::reduce(ReduceOp::Sum, u64::MAX, 1), 0);
    }

    #[test]
    fn float_reductions() {
        assert_eq!(f64::reduce(ReduceOp::Sum, 1.5, 2.5), 4.0);
        assert_eq!(f64::reduce(ReduceOp::Prod, 2.0, 3.0), 6.0);
        assert_eq!(f64::reduce(ReduceOp::Min, -1.0, 1.0), -1.0);
        assert_eq!(f64::reduce(ReduceOp::Max, -1.0, 1.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "bitwise")]
    fn float_bitwise_panics() {
        f64::reduce(ReduceOp::BitXor, 1.0, 2.0);
    }

    #[test]
    fn reduce_into_elementwise() {
        let mut acc = vec![1u64, 2, 3];
        reduce_into(ReduceOp::Sum, &mut acc, &[10, 20, 30]);
        assert_eq!(acc, vec![11, 22, 33]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn reduce_into_checks_length() {
        let mut acc = vec![1u64];
        reduce_into(ReduceOp::Sum, &mut acc, &[1, 2]);
    }
}
