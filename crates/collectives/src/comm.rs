//! The communicator abstraction collectives are written against.
//!
//! [`Comm`] is deliberately small — ranked blocking send/receive of byte
//! messages — so that the same algorithm code runs over the real
//! messaging endpoint and under tracing instrumentation. The tag space is
//! used to separate concurrent collectives phases from application
//! traffic (collectives reserve tags with the top bit set).

use crate::op::{from_bytes, to_bytes, Elem};
use polaris_msg::prelude::{Endpoint, MatchSpec};

/// Tag namespace reserved for collective operations.
pub const COLL_TAG_BASE: u64 = 1 << 63;

/// Ranked, blocking, tagged byte transport.
pub trait Comm {
    fn rank(&self) -> u32;
    fn size(&self) -> u32;
    /// Blocking tagged send.
    fn send_bytes(&mut self, dst: u32, tag: u64, data: &[u8]);
    /// Blocking tagged receive from a specific source of at most
    /// `max_len` bytes (collective rounds always know their sizes).
    fn recv_bytes(&mut self, src: u32, tag: u64, max_len: usize) -> Vec<u8>;
    /// Concurrent send+receive (both directions in flight at once), the
    /// deadlock-free primitive most collective rounds are built on.
    fn sendrecv_bytes(&mut self, dst: u32, data: &[u8], src: u32, tag: u64, max_len: usize)
        -> Vec<u8>;

    /// Typed convenience over `send_bytes`.
    fn send_elems<T: Elem>(&mut self, dst: u32, tag: u64, xs: &[T]) {
        self.send_bytes(dst, tag, &to_bytes(xs));
    }

    /// Typed convenience over `recv_bytes`; receives exactly `count`
    /// elements' worth of capacity.
    fn recv_elems<T: Elem>(&mut self, src: u32, tag: u64, count: usize) -> Vec<T> {
        from_bytes(&self.recv_bytes(src, tag, count * T::SIZE))
    }

    /// Typed convenience over `sendrecv_bytes`.
    fn sendrecv_elems<T: Elem>(
        &mut self,
        dst: u32,
        xs: &[T],
        src: u32,
        tag: u64,
        count: usize,
    ) -> Vec<T> {
        from_bytes(&self.sendrecv_bytes(dst, &to_bytes(xs), src, tag, count * T::SIZE))
    }

    /// Flight-recorder hook: a collective algorithm phase begins. The
    /// default is a no-op so plain transports and tests need no wiring;
    /// `Endpoint` forwards to its observability plane.
    fn obs_enter(&mut self, _algo: &'static str, _fields: &[(&'static str, u64)]) {}

    /// Flight-recorder hook: the phase opened by the matching
    /// [`Comm::obs_enter`] ends.
    fn obs_exit(&mut self, _algo: &'static str, _fields: &[(&'static str, u64)]) {}
}

impl Comm for Endpoint {
    fn rank(&self) -> u32 {
        Endpoint::rank(self)
    }

    fn size(&self) -> u32 {
        Endpoint::size(self)
    }

    fn send_bytes(&mut self, dst: u32, tag: u64, data: &[u8]) {
        let mut buf = self.alloc(data.len()).expect("alloc send buffer");
        buf.fill_from(data);
        let buf = self.send(dst, tag, buf).expect("collective send");
        self.release(buf);
    }

    fn recv_bytes(&mut self, src: u32, tag: u64, max_len: usize) -> Vec<u8> {
        let buf = self.alloc(max_len).expect("alloc recv buffer");
        let (buf, info) = self
            .recv(MatchSpec::exact(src, tag), buf)
            .expect("collective recv");
        let mut v = buf.to_vec();
        v.truncate(info.len);
        self.release(buf);
        v
    }

    fn sendrecv_bytes(
        &mut self,
        dst: u32,
        data: &[u8],
        src: u32,
        tag: u64,
        max_len: usize,
    ) -> Vec<u8> {
        let mut sbuf = self.alloc(data.len()).expect("alloc sendrecv buffer");
        sbuf.fill_from(data);
        let sreq = self.isend(dst, tag, sbuf).expect("collective isend");
        let out = self.recv_bytes(src, tag, max_len);
        let sbuf = self.wait_send(sreq).expect("collective send completion");
        self.release(sbuf);
        out
    }

    fn obs_enter(&mut self, algo: &'static str, fields: &[(&'static str, u64)]) {
        self.obs_coll_enter(algo, fields);
    }

    fn obs_exit(&mut self, algo: &'static str, fields: &[(&'static str, u64)]) {
        self.obs_coll_exit(algo, fields);
    }
}

/// One recorded communication event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    Send { to: u32, bytes: u64 },
    Recv { from: u32, bytes: u64 },
}

/// Wraps a [`Comm`] and records every transfer: used to cross-check that
/// the executable algorithms and the simulator's schedules agree.
pub struct TracingComm<'a, C: Comm> {
    inner: &'a mut C,
    pub trace: Vec<TraceEvent>,
}

impl<'a, C: Comm> TracingComm<'a, C> {
    pub fn new(inner: &'a mut C) -> Self {
        TracingComm {
            inner,
            trace: Vec::new(),
        }
    }
}

impl<C: Comm> Comm for TracingComm<'_, C> {
    fn rank(&self) -> u32 {
        self.inner.rank()
    }

    fn size(&self) -> u32 {
        self.inner.size()
    }

    fn send_bytes(&mut self, dst: u32, tag: u64, data: &[u8]) {
        self.trace.push(TraceEvent::Send {
            to: dst,
            bytes: data.len() as u64,
        });
        self.inner.send_bytes(dst, tag, data);
    }

    fn recv_bytes(&mut self, src: u32, tag: u64, max_len: usize) -> Vec<u8> {
        let v = self.inner.recv_bytes(src, tag, max_len);
        self.trace.push(TraceEvent::Recv {
            from: src,
            bytes: v.len() as u64,
        });
        v
    }

    fn sendrecv_bytes(
        &mut self,
        dst: u32,
        data: &[u8],
        src: u32,
        tag: u64,
        max_len: usize,
    ) -> Vec<u8> {
        self.trace.push(TraceEvent::Send {
            to: dst,
            bytes: data.len() as u64,
        });
        let v = self.inner.sendrecv_bytes(dst, data, src, tag, max_len);
        self.trace.push(TraceEvent::Recv {
            from: src,
            bytes: v.len() as u64,
        });
        v
    }

    fn obs_enter(&mut self, algo: &'static str, fields: &[(&'static str, u64)]) {
        self.inner.obs_enter(algo, fields);
    }

    fn obs_exit(&mut self, algo: &'static str, fields: &[(&'static str, u64)]) {
        self.inner.obs_exit(algo, fields);
    }
}
