//! Barrier synchronization.

use crate::comm::{Comm, COLL_TAG_BASE};

const TAG: u64 = COLL_TAG_BASE + 1;

/// Dissemination barrier: ⌈log₂ p⌉ rounds; in round k every rank sends a
/// token to `(rank + 2^k) mod p` and waits for one from
/// `(rank - 2^k) mod p`. Works for any p, O(log p) critical path.
pub fn barrier_dissemination<C: Comm>(comm: &mut C) {
    let p = comm.size();
    let rank = comm.rank();
    if p <= 1 {
        return;
    }
    comm.obs_enter("barrier_dissemination", &[("ranks", p as u64)]);
    let mut dist = 1u32;
    let mut round = 0u64;
    while dist < p {
        let to = (rank + dist) % p;
        let from = (rank + p - dist) % p;
        comm.sendrecv_bytes(to, &[], from, TAG + round, 0);
        dist <<= 1;
        round += 1;
    }
    comm.obs_exit("barrier_dissemination", &[("rounds", round)]);
}

/// Tree barrier: gather tokens up a binomial tree rooted at 0, then
/// broadcast release down it. 2·log₂ p critical path, half the messages
/// of dissemination — the classic trade-off the F3 bench shows.
pub fn barrier_tree<C: Comm>(comm: &mut C) {
    let p = comm.size();
    let rank = comm.rank();
    if p <= 1 {
        return;
    }
    comm.obs_enter("barrier_tree", &[("ranks", p as u64)]);
    // Gather phase (like a binomial reduce of nothing).
    let mut mask = 1u32;
    while mask < p {
        if rank & mask == 0 {
            let peer = rank | mask;
            if peer < p {
                comm.recv_bytes(peer, TAG + 100, 0);
            }
        } else {
            comm.send_bytes(rank & !mask, TAG + 100, &[]);
            break;
        }
        mask <<= 1;
    }
    // Release phase (binomial broadcast of nothing). Non-root ranks
    // receive the release from the parent they signalled, then release
    // their own subtree; rank 0 starts the release.
    let mut mask;
    if rank != 0 {
        // Find the lowest set bit of rank: that's the parent link.
        let low = rank & rank.wrapping_neg();
        comm.recv_bytes(rank & !low, TAG + 101, 0);
        mask = low >> 1;
    } else {
        // Rank 0 releases starting from the highest relevant bit.
        mask = p.next_power_of_two() >> 1;
    }
    while mask > 0 {
        let peer = rank | mask;
        if peer < p && peer != rank {
            comm.send_bytes(peer, TAG + 101, &[]);
        }
        mask >>= 1;
    }
    comm.obs_exit("barrier_tree", &[]);
}

/// The barrier algorithms available to the tuner and benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BarrierAlgo {
    Dissemination,
    Tree,
}

pub fn barrier_with<C: Comm>(comm: &mut C, algo: BarrierAlgo) {
    match algo {
        BarrierAlgo::Dissemination => barrier_dissemination(comm),
        BarrierAlgo::Tree => barrier_tree(comm),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::run_world;
    use polaris_msg::prelude::MsgConfig;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    fn check_barrier(algo: BarrierAlgo, p: u32) {
        // Every rank increments a counter before the barrier; after the
        // barrier every rank must observe the full count.
        let counter = Arc::new(AtomicU32::new(0));
        let c2 = Arc::clone(&counter);
        let observed = run_world(p, MsgConfig::default(), move |mut ep| {
            c2.fetch_add(1, Ordering::SeqCst);
            barrier_with(&mut ep, algo);
            c2.load(Ordering::SeqCst)
        });
        for (r, seen) in observed.iter().enumerate() {
            assert_eq!(*seen, p, "rank {r} left the {algo:?} barrier early");
        }
    }

    #[test]
    fn dissemination_various_sizes() {
        for p in [1, 2, 3, 4, 5, 8, 13] {
            check_barrier(BarrierAlgo::Dissemination, p);
        }
    }

    #[test]
    fn tree_various_sizes() {
        for p in [1, 2, 3, 4, 5, 8, 13] {
            check_barrier(BarrierAlgo::Tree, p);
        }
    }

    #[test]
    fn repeated_barriers_do_not_cross_talk() {
        let out = run_world(4, MsgConfig::default(), |mut ep| {
            for _ in 0..25 {
                barrier_dissemination(&mut ep);
            }
            true
        });
        assert!(out.into_iter().all(|x| x));
    }
}
