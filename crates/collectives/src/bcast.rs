//! Broadcast.
//!
//! MPI semantics: every rank passes a buffer of the same length; the
//! root's contents end up everywhere.

use crate::comm::{Comm, COLL_TAG_BASE};

const TAG: u64 = COLL_TAG_BASE + 2;
const TAG_SC: u64 = COLL_TAG_BASE + 3;
const TAG_AG: u64 = COLL_TAG_BASE + 4;

/// Split `total` bytes into `p` near-equal chunks; returns chunk `i`'s
/// (start, len). The first `total % p` chunks get one extra byte.
pub(crate) fn chunk_range(total: usize, p: u32, i: u32) -> (usize, usize) {
    let p = p as usize;
    let i = i as usize;
    let base = total / p;
    let extra = total % p;
    let start = i * base + i.min(extra);
    let len = base + usize::from(i < extra);
    (start, len)
}

/// Binomial-tree broadcast: ⌈log₂ p⌉ rounds, each round doubling the set
/// of ranks holding the data. Latency-optimal for small payloads.
pub fn bcast_binomial<C: Comm>(comm: &mut C, root: u32, data: &mut [u8]) {
    let p = comm.size();
    let rank = comm.rank();
    if p <= 1 {
        return;
    }
    comm.obs_enter(
        "bcast_binomial",
        &[("bytes", data.len() as u64), ("root", root as u64)],
    );
    let rel = (rank + p - root) % p;
    // Receive phase: the lowest set bit of `rel` names the parent.
    let mut mask = 1u32;
    while mask < p {
        if rel & mask != 0 {
            let parent = ((rel - mask) + root) % p;
            let got = comm.recv_bytes(parent, TAG, data.len());
            data.copy_from_slice(&got);
            break;
        }
        mask <<= 1;
    }
    // Send phase: forward to children at decreasing bit positions.
    mask >>= 1;
    while mask > 0 {
        if rel & mask == 0 && rel + mask < p {
            let child = ((rel + mask) + root) % p;
            comm.send_bytes(child, TAG, data);
        }
        mask >>= 1;
    }
    comm.obs_exit("bcast_binomial", &[]);
}

/// Van de Geijn broadcast for large payloads: the root scatters p chunks
/// down a binomial pattern (linear here — the scatter is not the
/// bottleneck), then a ring allgather reassembles them everywhere.
/// Bandwidth-optimal: each rank moves ~2·n·(p-1)/p bytes instead of the
/// tree's n·log p at the root.
pub fn bcast_scatter_allgather<C: Comm>(comm: &mut C, root: u32, data: &mut [u8]) {
    let p = comm.size();
    let rank = comm.rank();
    if p <= 1 {
        return;
    }
    comm.obs_enter(
        "bcast_scatter_allgather",
        &[("bytes", data.len() as u64), ("root", root as u64)],
    );
    let rel = (rank + p - root) % p;
    let n = data.len();
    // Scatter: relative rank i receives chunk i.
    if rank == root {
        for i in 1..p {
            let dst = (root + i) % p;
            let (start, len) = chunk_range(n, p, i);
            comm.send_bytes(dst, TAG_SC, &data[start..start + len]);
        }
    } else {
        let (start, len) = chunk_range(n, p, rel);
        let got = comm.recv_bytes(root, TAG_SC, len);
        data[start..start + len].copy_from_slice(&got);
    }
    // Ring allgather of the p chunks: in step s, pass along the chunk
    // received in step s-1 (starting with your own).
    let next = (rank + 1) % p;
    let prev = (rank + p - 1) % p;
    let mut have = rel;
    for _ in 0..p - 1 {
        let (s_start, s_len) = chunk_range(n, p, have);
        let incoming = (have + p - 1) % p;
        let (r_start, r_len) = chunk_range(n, p, incoming);
        let sbuf = data[s_start..s_start + s_len].to_vec();
        let got = comm.sendrecv_bytes(next, &sbuf, prev, TAG_AG, r_len);
        data[r_start..r_start + r_len].copy_from_slice(&got);
        have = incoming;
    }
    comm.obs_exit("bcast_scatter_allgather", &[]);
}

/// Broadcast algorithm selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BcastAlgo {
    Binomial,
    ScatterAllgather,
}

pub fn bcast_with<C: Comm>(comm: &mut C, algo: BcastAlgo, root: u32, data: &mut [u8]) {
    match algo {
        BcastAlgo::Binomial => bcast_binomial(comm, root, data),
        BcastAlgo::ScatterAllgather => bcast_scatter_allgather(comm, root, data),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::run_world;
    use polaris_msg::prelude::MsgConfig;

    fn check_bcast(algo: BcastAlgo, p: u32, root: u32, n: usize) {
        let out = run_world(p, MsgConfig::default(), move |mut ep| {
            let mut data = vec![0u8; n];
            if ep.rank() == root {
                for (i, b) in data.iter_mut().enumerate() {
                    *b = (i * 13 + 5) as u8;
                }
            }
            bcast_with(&mut ep, algo, root, &mut data);
            data
        });
        let expect: Vec<u8> = (0..n).map(|i| (i * 13 + 5) as u8).collect();
        for (r, d) in out.iter().enumerate() {
            assert_eq!(d, &expect, "rank {r} wrong under {algo:?} p={p} root={root}");
        }
    }

    #[test]
    fn binomial_various_shapes() {
        for p in [1, 2, 3, 4, 7, 8] {
            for root in [0, p - 1] {
                check_bcast(BcastAlgo::Binomial, p, root, 1000);
            }
        }
    }

    #[test]
    fn binomial_nonzero_root_middle() {
        check_bcast(BcastAlgo::Binomial, 6, 2, 100);
    }

    #[test]
    fn scatter_allgather_various_shapes() {
        for p in [2, 3, 4, 5, 8] {
            check_bcast(BcastAlgo::ScatterAllgather, p, 0, 10_000);
        }
    }

    #[test]
    fn scatter_allgather_nonzero_root_and_ragged_size() {
        // 10_007 is prime: chunks are uneven on every p.
        check_bcast(BcastAlgo::ScatterAllgather, 4, 3, 10_007);
        check_bcast(BcastAlgo::ScatterAllgather, 5, 2, 10_007);
    }

    #[test]
    fn tiny_payload_smaller_than_ranks() {
        check_bcast(BcastAlgo::ScatterAllgather, 8, 0, 3);
    }

    #[test]
    fn empty_broadcast_is_fine() {
        check_bcast(BcastAlgo::Binomial, 4, 0, 0);
        check_bcast(BcastAlgo::ScatterAllgather, 4, 0, 0);
    }

    #[test]
    fn large_broadcast_uses_rendezvous_cleanly() {
        check_bcast(BcastAlgo::Binomial, 3, 0, 200_000);
        check_bcast(BcastAlgo::ScatterAllgather, 3, 0, 200_000);
    }

    #[test]
    fn chunk_ranges_partition_exactly() {
        for total in [0usize, 1, 7, 100, 10_007] {
            for p in [1u32, 2, 3, 5, 8] {
                let mut covered = 0;
                for i in 0..p {
                    let (start, len) = chunk_range(total, p, i);
                    assert_eq!(start, covered);
                    covered += len;
                }
                assert_eq!(covered, total);
            }
        }
    }
}
