//! Reduce to a root.

use crate::comm::{Comm, COLL_TAG_BASE};
use crate::op::{from_bytes, reduce_into, to_bytes, Reducible, ReduceOp};

const TAG: u64 = COLL_TAG_BASE + 5;

/// Binomial-tree reduce: each rank combines its subtree's contribution
/// and forwards one message to its parent; ⌈log₂ p⌉ critical path. The
/// result is valid only at `root`. Requires a commutative operator
/// (all [`ReduceOp`]s are).
pub fn reduce_binomial<C: Comm, T: Reducible>(
    comm: &mut C,
    root: u32,
    op: ReduceOp,
    data: &mut [T],
) {
    let p = comm.size();
    let rank = comm.rank();
    if p <= 1 {
        return;
    }
    let rel = (rank + p - root) % p;
    let bytes = data.len() * T::SIZE;
    comm.obs_enter(
        "reduce_binomial",
        &[("bytes", bytes as u64), ("root", root as u64)],
    );
    let mut mask = 1u32;
    while mask < p {
        if rel & mask == 0 {
            let child_rel = rel | mask;
            if child_rel < p {
                let child = (child_rel + root) % p;
                let got: Vec<T> = from_bytes(&comm.recv_bytes(child, TAG, bytes));
                reduce_into(op, data, &got);
            }
        } else {
            let parent = ((rel - mask) + root) % p;
            comm.send_bytes(parent, TAG, &to_bytes(data));
            comm.obs_exit("reduce_binomial", &[]);
            return; // contribution forwarded; this rank is done
        }
        mask <<= 1;
    }
    comm.obs_exit("reduce_binomial", &[]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::run_world;
    use polaris_msg::prelude::MsgConfig;

    fn check_reduce(p: u32, root: u32, n: usize) {
        let out = run_world(p, MsgConfig::default(), move |mut ep| {
            let r = ep.rank() as u64;
            let mut data: Vec<u64> = (0..n as u64).map(|i| r * 1000 + i).collect();
            reduce_binomial(&mut ep, root, ReduceOp::Sum, &mut data);
            data
        });
        // Expected at root: sum over ranks of (r*1000 + i).
        let rank_sum: u64 = (0..p as u64).sum::<u64>() * 1000;
        for (i, v) in out[root as usize].iter().enumerate() {
            assert_eq!(*v, rank_sum + (i as u64) * p as u64, "elem {i}");
        }
    }

    #[test]
    fn sum_reduce_various_shapes() {
        for p in [1, 2, 3, 4, 5, 8, 9] {
            check_reduce(p, 0, 64);
        }
    }

    #[test]
    fn nonzero_root() {
        check_reduce(5, 3, 16);
        check_reduce(8, 7, 16);
    }

    #[test]
    fn min_max_reduce() {
        let out = run_world(6, MsgConfig::default(), |mut ep| {
            let mut lo = vec![ep.rank() as i64 * 7 - 3];
            reduce_binomial(&mut ep, 0, ReduceOp::Min, &mut lo);
            let mut hi = vec![ep.rank() as i64 * 7 - 3];
            reduce_binomial(&mut ep, 0, ReduceOp::Max, &mut hi);
            (lo[0], hi[0])
        });
        assert_eq!(out[0].0, -3);
        assert_eq!(out[0].1, 5 * 7 - 3);
    }

    #[test]
    fn float_sum_reduce() {
        let p = 4;
        let out = run_world(p, MsgConfig::default(), |mut ep| {
            let mut data = vec![0.5f64 * (ep.rank() + 1) as f64];
            reduce_binomial(&mut ep, 0, ReduceOp::Sum, &mut data);
            data[0]
        });
        assert!((out[0] - 0.5 * (1.0 + 2.0 + 3.0 + 4.0)).abs() < 1e-12);
    }

    #[test]
    fn empty_vector_reduce() {
        let out = run_world(4, MsgConfig::default(), |mut ep| {
            let mut data: Vec<u64> = vec![];
            reduce_binomial(&mut ep, 0, ReduceOp::Sum, &mut data);
            data.len()
        });
        assert!(out.iter().all(|&l| l == 0));
    }
}
