//! Algorithm selection by message size and rank count — the decision
//! logic a production library ships so users need not pick by hand.

use crate::allgather::AllgatherAlgo;
use crate::allreduce::AllreduceAlgo;
use crate::barrier::BarrierAlgo;
use crate::bcast::BcastAlgo;
use crate::comm::Comm;
use crate::op::{Reducible, ReduceOp};

/// Tunable switch points (bytes). Defaults follow the usual MPI-library
/// heuristics; the F3 bench sweeps around them.
#[derive(Debug, Clone, Copy)]
pub struct Tuning {
    /// Bcast switches from binomial to scatter+allgather at this size.
    pub bcast_large: usize,
    /// Allreduce switches from recursive doubling to ring at this size.
    pub allreduce_large: usize,
    /// Allgather switches from Bruck to ring at this per-rank size.
    pub allgather_large: usize,
}

impl Default for Tuning {
    fn default() -> Self {
        Tuning {
            bcast_large: 64 * 1024,
            allreduce_large: 64 * 1024,
            allgather_large: 32 * 1024,
        }
    }
}

impl Tuning {
    pub fn pick_bcast(&self, bytes: usize, p: u32) -> BcastAlgo {
        if p >= 8 && bytes >= self.bcast_large {
            BcastAlgo::ScatterAllgather
        } else {
            BcastAlgo::Binomial
        }
    }

    pub fn pick_allreduce(&self, bytes: usize, p: u32) -> AllreduceAlgo {
        if p >= 4 && bytes >= self.allreduce_large {
            AllreduceAlgo::Ring
        } else {
            AllreduceAlgo::RecursiveDoubling
        }
    }

    pub fn pick_allgather(&self, block_bytes: usize, _p: u32) -> AllgatherAlgo {
        if block_bytes >= self.allgather_large {
            AllgatherAlgo::Ring
        } else {
            AllgatherAlgo::Bruck
        }
    }

    pub fn pick_barrier(&self, _p: u32) -> BarrierAlgo {
        BarrierAlgo::Dissemination
    }
}

/// Tuned entry points mirroring the MPI surface.
pub fn barrier<C: Comm>(comm: &mut C) {
    let algo = Tuning::default().pick_barrier(comm.size());
    crate::barrier::barrier_with(comm, algo);
}

pub fn bcast<C: Comm>(comm: &mut C, root: u32, data: &mut [u8]) {
    let algo = Tuning::default().pick_bcast(data.len(), comm.size());
    crate::bcast::bcast_with(comm, algo, root, data);
}

pub fn allreduce<C: Comm, T: Reducible>(comm: &mut C, op: ReduceOp, data: &mut [T]) {
    let algo = Tuning::default().pick_allreduce(data.len() * T::SIZE, comm.size());
    crate::allreduce::allreduce_with(comm, algo, op, data);
}

pub fn allgather<C: Comm>(comm: &mut C, mine: &[u8], out: &mut [u8]) {
    let algo = Tuning::default().pick_allgather(mine.len(), comm.size());
    crate::allgather::allgather_with(comm, algo, mine, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::run_world;
    use polaris_msg::prelude::MsgConfig;

    #[test]
    fn selection_respects_thresholds() {
        let t = Tuning::default();
        assert_eq!(t.pick_bcast(100, 16), BcastAlgo::Binomial);
        assert_eq!(t.pick_bcast(1 << 20, 16), BcastAlgo::ScatterAllgather);
        // Small worlds stay on the tree regardless of size.
        assert_eq!(t.pick_bcast(1 << 20, 4), BcastAlgo::Binomial);
        assert_eq!(t.pick_allreduce(64, 64), AllreduceAlgo::RecursiveDoubling);
        assert_eq!(t.pick_allreduce(1 << 20, 64), AllreduceAlgo::Ring);
        assert_eq!(t.pick_allgather(100, 8), AllgatherAlgo::Bruck);
        assert_eq!(t.pick_allgather(1 << 20, 8), AllgatherAlgo::Ring);
    }

    #[test]
    fn tuned_entry_points_are_correct() {
        let out = run_world(4, MsgConfig::default(), |mut ep| {
            barrier(&mut ep);
            let mut b = vec![0u8; 100];
            if ep.rank() == 0 {
                b.fill(7);
            }
            bcast(&mut ep, 0, &mut b);
            let mut v = vec![1u64; 4];
            allreduce(&mut ep, ReduceOp::Sum, &mut v);
            let mine = [ep.rank() as u8; 3];
            let mut all = vec![0u8; 12];
            allgather(&mut ep, &mine, &mut all);
            (b[50], v[0], all)
        });
        for (r, (b, v, all)) in out.into_iter().enumerate() {
            assert_eq!(b, 7, "rank {r} bcast");
            assert_eq!(v, 4, "rank {r} allreduce");
            assert_eq!(all, vec![0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3]);
        }
    }
}
