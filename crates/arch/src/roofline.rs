//! Roofline performance model, extended with a latency term for
//! dependent random access.
//!
//! Attainable performance on a node is the minimum of three ceilings:
//!
//! * the compute roof (peak flops),
//! * the bandwidth roof (intensity × memory bandwidth),
//! * for kernels with dependent random accesses, the latency roof
//!   (`mlp / latency` accesses per second, each worth
//!   `intensity × access_bytes` flops).
//!
//! Experiment F4 evaluates the kernel suite on each node model with this
//! function; the PIM's bandwidth and latency advantages and the CMP's
//! bandwidth starvation fall directly out.

use crate::kernels::Kernel;
use crate::node::NodeModel;

/// Bytes per random access (one cache line's useful payload for GUPS).
const RANDOM_ACCESS_BYTES: f64 = 16.0;

/// Memory-level parallelism a 2002-class core sustains on dependent
/// random access (outstanding misses).
const MLP: f64 = 4.0;

/// Attainable FLOP/s of `kernel` on `node`.
///
/// The mixed-kernel formula is a *two-phase time accounting*, which is
/// why the harmonic mean is the right combinator and not a bias. Let a
/// run perform `F` total flops, of which the fraction `f` is tied to
/// dependent random accesses and `1-f` streams. The random phase
/// proceeds at rate `R_lat = min(latency_roof, streaming)` (random
/// access can never outrun the streaming roofs) and the streaming
/// phase at `R_str = streaming`, so
///
/// ```text
/// time  = F·f / R_lat + F·(1-f) / R_str
/// rate  = F / time = 1 / (f / R_lat + (1-f) / R_str)
/// ```
///
/// — exactly the expression below. A *flop-share arithmetic* mean
/// (`f·R_lat + (1-f)·R_str`) would overstate performance whenever
/// `R_lat ≪ R_str`, because it lets the fast phase hide the slow
/// phase's wall-clock time. The property suite in `tests` pins the
/// limits: equals the streaming roof at `f = 0`, continuous as
/// `f → 0⁺`, never exceeds either roof, and monotone in `mem_bw`.
pub fn attainable(node: &NodeModel, kernel: &Kernel) -> f64 {
    let compute_roof = node.flops;
    let bandwidth_roof = kernel.intensity * node.mem_bw;
    let streaming = compute_roof.min(bandwidth_roof);
    if kernel.random_fraction == 0.0 {
        return streaming;
    }
    // Latency roof for the random portion.
    let accesses_per_sec = MLP / node.mem_latency;
    let latency_roof = accesses_per_sec * RANDOM_ACCESS_BYTES * kernel.intensity;
    // Weight the random and streaming portions by time share.
    let f = kernel.random_fraction;
    1.0 / (f / latency_roof.min(streaming) + (1.0 - f) / streaming)
}

/// Fraction of peak achieved (the "efficiency" column of F4).
pub fn efficiency(node: &NodeModel, kernel: &Kernel) -> f64 {
    attainable(node, kernel) / node.flops
}

/// The intensity at which a node transitions from bandwidth-bound to
/// compute-bound (the roofline knee).
pub fn knee(node: &NodeModel) -> f64 {
    node.flops / node.mem_bw
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Projection;
    use crate::kernels::{DAXPY, DGEMM, GUPS, STENCIL7, SUITE};
    use crate::node::{NodeKind, NodeModel};

    fn node(kind: NodeKind, year: u32) -> NodeModel {
        NodeModel::build(kind, &Projection::default().at(year))
    }

    #[test]
    fn attainable_never_exceeds_peak() {
        for year in [2002, 2005, 2008] {
            for kind in NodeKind::ALL {
                let n = node(kind, year);
                for k in &SUITE {
                    let a = attainable(&n, k);
                    assert!(a > 0.0 && a <= n.flops * (1.0 + 1e-9), "{kind:?} {}", k.name);
                }
            }
        }
    }

    #[test]
    fn dgemm_is_compute_bound_daxpy_bandwidth_bound() {
        let n = node(NodeKind::Pc, 2002);
        assert!((attainable(&n, &DGEMM) - n.flops).abs() / n.flops < 1e-9);
        let daxpy = attainable(&n, &DAXPY);
        assert!((daxpy - DAXPY.intensity * n.mem_bw).abs() / daxpy < 1e-9);
        assert!(daxpy < 0.2 * n.flops);
    }

    #[test]
    fn pim_wins_low_intensity_cmp_wins_dgemm() {
        let d = 2006;
        let pim = node(NodeKind::Pim, d);
        let cmp = node(NodeKind::SmpOnChip, d);
        let pc = node(NodeKind::Pc, d);
        assert!(attainable(&pim, &DAXPY) > 3.0 * attainable(&pc, &DAXPY));
        assert!(attainable(&pim, &GUPS) > 3.0 * attainable(&pc, &GUPS));
        assert!(attainable(&cmp, &DGEMM) > 2.0 * attainable(&pc, &DGEMM));
        assert!(attainable(&cmp, &DGEMM) > attainable(&pim, &DGEMM));
    }

    #[test]
    fn memory_wall_widens_over_time_on_pc_track() {
        // DAXPY efficiency on the plain-PC track decays with years —
        // the keynote's "more of the same, only faster" critique.
        let e02 = efficiency(&node(NodeKind::Pc, 2002), &DAXPY);
        let e08 = efficiency(&node(NodeKind::Pc, 2008), &DAXPY);
        assert!(e08 < 0.5 * e02, "{e02} -> {e08}");
    }

    #[test]
    fn gups_latency_bound_not_bandwidth_bound() {
        let n = node(NodeKind::Pc, 2002);
        let latency_roof = 4.0 / n.mem_latency * 16.0 * GUPS.intensity;
        let a = attainable(&n, &GUPS);
        assert!(a <= latency_roof * 1.01);
        // The pure-bandwidth estimate would be higher.
        assert!(GUPS.intensity * n.mem_bw > a);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn synth_node(flops: f64, mem_bw: f64, mem_latency: f64) -> NodeModel {
            NodeModel {
                kind: NodeKind::Pc,
                year: 2002,
                flops,
                mem_bw,
                mem_latency,
                mem_capacity: 1e9,
                cost: 1e3,
                power: 1e2,
                per_rack: 42,
            }
        }

        fn kernel(intensity: f64, random_fraction: f64) -> Kernel {
            Kernel { name: "synthetic", intensity, random_fraction }
        }

        proptest! {
            // `attainable <= min(compute, bandwidth)` and efficiency
            // is at most 1: the harmonic mean can only slow a kernel
            // down relative to its streaming roofs.
            #[test]
            fn efficiency_at_most_one(
                flops in 1e8f64..1e13,
                bw in 1e7f64..1e12,
                lat in 1e-8f64..1e-5,
                intensity in 1e-3f64..1e3,
                f in 0.0f64..=1.0,
            ) {
                let n = synth_node(flops, bw, lat);
                let k = kernel(intensity, f);
                let a = attainable(&n, &k);
                let streaming = n.flops.min(k.intensity * n.mem_bw);
                prop_assert!(a > 0.0);
                prop_assert!(a <= streaming * (1.0 + 1e-12), "{a} vs {streaming}");
                prop_assert!(efficiency(&n, &k) <= 1.0 + 1e-12);
            }

            // More memory bandwidth never makes a kernel slower: the
            // streaming roof is nondecreasing in `mem_bw` and the
            // latency roof is independent of it.
            #[test]
            fn monotone_in_mem_bw(
                flops in 1e8f64..1e13,
                bw in 1e7f64..1e12,
                factor in 1.0f64..100.0,
                lat in 1e-8f64..1e-5,
                intensity in 1e-3f64..1e3,
                f in 0.0f64..=1.0,
            ) {
                let k = kernel(intensity, f);
                let slow = attainable(&synth_node(flops, bw, lat), &k);
                let fast = attainable(&synth_node(flops, bw * factor, lat), &k);
                prop_assert!(fast >= slow * (1.0 - 1e-12), "{slow} -> {fast}");
            }

            // At `random_fraction = 0` the formula reduces *exactly*
            // to the streaming roof, and it is continuous there: a
            // vanishing random fraction must not jump the result.
            #[test]
            fn reduces_to_streaming_and_continuous_at_zero(
                flops in 1e8f64..1e13,
                bw in 1e7f64..1e12,
                lat in 1e-8f64..1e-5,
                intensity in 1e-3f64..1e3,
            ) {
                let n = synth_node(flops, bw, lat);
                let streaming = n.flops.min(intensity * n.mem_bw);
                let at_zero = attainable(&n, &kernel(intensity, 0.0));
                prop_assert_eq!(at_zero, streaming);
                // f → 0⁺: the two branches must agree in the limit.
                // With f = 1e-12 the random term contributes at most
                // f·streaming/latency_roof ≈ 1e-12·(ratio) of the time,
                // and the roofs here are within ~1e7 of each other.
                let near_zero = attainable(&n, &kernel(intensity, 1e-12));
                let rel = (near_zero - streaming).abs() / streaming;
                prop_assert!(rel < 1e-4, "discontinuity at f→0: rel {rel}");
            }

            // The result is a time-share mean: it always lands between
            // the slower and faster of the two phase rates.
            #[test]
            fn between_phase_rates(
                flops in 1e8f64..1e13,
                bw in 1e7f64..1e12,
                lat in 1e-8f64..1e-5,
                intensity in 1e-3f64..1e3,
                f in 1e-6f64..1.0,
            ) {
                let n = synth_node(flops, bw, lat);
                let streaming = n.flops.min(intensity * n.mem_bw);
                let latency_roof = (MLP / n.mem_latency) * RANDOM_ACCESS_BYTES * intensity;
                let r_lat = latency_roof.min(streaming);
                let a = attainable(&n, &kernel(intensity, f));
                prop_assert!(a >= r_lat.min(streaming) * (1.0 - 1e-12));
                prop_assert!(a <= r_lat.max(streaming) * (1.0 + 1e-12));
            }
        }
    }

    #[test]
    fn knee_matches_balance() {
        let n = node(NodeKind::Pc, 2002);
        assert!((knee(&n) - n.flops / n.mem_bw).abs() < 1e-12);
        // Kernels below the knee are bandwidth-bound.
        assert!(STENCIL7.intensity < knee(&node(NodeKind::Pc, 2008)));
    }
}
