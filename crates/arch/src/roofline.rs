//! Roofline performance model, extended with a latency term for
//! dependent random access.
//!
//! Attainable performance on a node is the minimum of three ceilings:
//!
//! * the compute roof (peak flops),
//! * the bandwidth roof (intensity × memory bandwidth),
//! * for kernels with dependent random accesses, the latency roof
//!   (`mlp / latency` accesses per second, each worth
//!   `intensity × access_bytes` flops).
//!
//! Experiment F4 evaluates the kernel suite on each node model with this
//! function; the PIM's bandwidth and latency advantages and the CMP's
//! bandwidth starvation fall directly out.

use crate::kernels::Kernel;
use crate::node::NodeModel;

/// Bytes per random access (one cache line's useful payload for GUPS).
const RANDOM_ACCESS_BYTES: f64 = 16.0;

/// Memory-level parallelism a 2002-class core sustains on dependent
/// random access (outstanding misses).
const MLP: f64 = 4.0;

/// Attainable FLOP/s of `kernel` on `node`.
pub fn attainable(node: &NodeModel, kernel: &Kernel) -> f64 {
    let compute_roof = node.flops;
    let bandwidth_roof = kernel.intensity * node.mem_bw;
    let streaming = compute_roof.min(bandwidth_roof);
    if kernel.random_fraction == 0.0 {
        return streaming;
    }
    // Latency roof for the random portion.
    let accesses_per_sec = MLP / node.mem_latency;
    let latency_roof = accesses_per_sec * RANDOM_ACCESS_BYTES * kernel.intensity;
    // Weight the random and streaming portions by time share.
    let f = kernel.random_fraction;
    1.0 / (f / latency_roof.min(streaming) + (1.0 - f) / streaming)
}

/// Fraction of peak achieved (the "efficiency" column of F4).
pub fn efficiency(node: &NodeModel, kernel: &Kernel) -> f64 {
    attainable(node, kernel) / node.flops
}

/// The intensity at which a node transitions from bandwidth-bound to
/// compute-bound (the roofline knee).
pub fn knee(node: &NodeModel) -> f64 {
    node.flops / node.mem_bw
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Projection;
    use crate::kernels::{DAXPY, DGEMM, GUPS, STENCIL7, SUITE};
    use crate::node::{NodeKind, NodeModel};

    fn node(kind: NodeKind, year: u32) -> NodeModel {
        NodeModel::build(kind, &Projection::default().at(year))
    }

    #[test]
    fn attainable_never_exceeds_peak() {
        for year in [2002, 2005, 2008] {
            for kind in NodeKind::ALL {
                let n = node(kind, year);
                for k in &SUITE {
                    let a = attainable(&n, k);
                    assert!(a > 0.0 && a <= n.flops * (1.0 + 1e-9), "{kind:?} {}", k.name);
                }
            }
        }
    }

    #[test]
    fn dgemm_is_compute_bound_daxpy_bandwidth_bound() {
        let n = node(NodeKind::Pc, 2002);
        assert!((attainable(&n, &DGEMM) - n.flops).abs() / n.flops < 1e-9);
        let daxpy = attainable(&n, &DAXPY);
        assert!((daxpy - DAXPY.intensity * n.mem_bw).abs() / daxpy < 1e-9);
        assert!(daxpy < 0.2 * n.flops);
    }

    #[test]
    fn pim_wins_low_intensity_cmp_wins_dgemm() {
        let d = 2006;
        let pim = node(NodeKind::Pim, d);
        let cmp = node(NodeKind::SmpOnChip, d);
        let pc = node(NodeKind::Pc, d);
        assert!(attainable(&pim, &DAXPY) > 3.0 * attainable(&pc, &DAXPY));
        assert!(attainable(&pim, &GUPS) > 3.0 * attainable(&pc, &GUPS));
        assert!(attainable(&cmp, &DGEMM) > 2.0 * attainable(&pc, &DGEMM));
        assert!(attainable(&cmp, &DGEMM) > attainable(&pim, &DGEMM));
    }

    #[test]
    fn memory_wall_widens_over_time_on_pc_track() {
        // DAXPY efficiency on the plain-PC track decays with years —
        // the keynote's "more of the same, only faster" critique.
        let e02 = efficiency(&node(NodeKind::Pc, 2002), &DAXPY);
        let e08 = efficiency(&node(NodeKind::Pc, 2008), &DAXPY);
        assert!(e08 < 0.5 * e02, "{e02} -> {e08}");
    }

    #[test]
    fn gups_latency_bound_not_bandwidth_bound() {
        let n = node(NodeKind::Pc, 2002);
        let latency_roof = 4.0 / n.mem_latency * 16.0 * GUPS.intensity;
        let a = attainable(&n, &GUPS);
        assert!(a <= latency_roof * 1.01);
        // The pure-bandwidth estimate would be higher.
        assert!(GUPS.intensity * n.mem_bw > a);
    }

    #[test]
    fn knee_matches_balance() {
        let n = node(NodeKind::Pc, 2002);
        assert!((knee(&n) - n.flops / n.mem_bw).abs() < 1e-12);
        // Kernels below the knee are bandwidth-bound.
        assert!(STENCIL7.intensity < knee(&node(NodeKind::Pc, 2008)));
    }
}
