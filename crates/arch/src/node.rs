//! Node-architecture models: the keynote's "revolutionary structures
//! embodied by the nodes".
//!
//! Four organizations built from the same device-technology point:
//!
//! * **PC node** — the plain 1U Beowulf box: the baseline track.
//! * **Blade** — same silicon, engineered for density and power: shared
//!   cooling/power drops watts, 3–4× the nodes per rack.
//! * **SMP-on-chip (CMP)** — multiple cores on one die: multiplies peak
//!   flops but shares one memory interface, cutting bytes-per-flop.
//! * **PIM (processor in memory)** — modest logic embedded in the DRAM
//!   arrays: a fraction of the peak flops but an order of magnitude more
//!   usable memory bandwidth at far lower power.

use crate::device::DevicePoint;
use serde::{Deserialize, Serialize};

/// The node organizations under study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    Pc,
    Blade,
    SmpOnChip,
    Pim,
}

impl NodeKind {
    pub const ALL: [NodeKind; 4] = [
        NodeKind::Pc,
        NodeKind::Blade,
        NodeKind::SmpOnChip,
        NodeKind::Pim,
    ];

    pub fn name(self) -> &'static str {
        match self {
            NodeKind::Pc => "pc-1u",
            NodeKind::Blade => "blade",
            NodeKind::SmpOnChip => "smp-on-chip",
            NodeKind::Pim => "pim",
        }
    }
}

/// A concrete node model derived from a device point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeModel {
    pub kind: NodeKind,
    pub year: u32,
    /// Peak FLOP/s.
    pub flops: f64,
    /// Sustainable memory bandwidth, bytes/s.
    pub mem_bw: f64,
    /// Memory latency, seconds.
    pub mem_latency: f64,
    /// Memory capacity, bytes.
    pub mem_capacity: f64,
    /// Cost, dollars.
    pub cost: f64,
    /// Power, watts.
    pub power: f64,
    /// Nodes per standard rack.
    pub per_rack: u32,
}

impl NodeModel {
    /// Build a node of `kind` from the projected device point `d`.
    pub fn build(kind: NodeKind, d: &DevicePoint) -> NodeModel {
        // CMP core count grows with the transistor budget: 1 core in
        // 2002, doubling every ~2 years once the single-core track
        // saturates.
        let cmp_cores = (2f64.powf((d.year.saturating_sub(2002)) as f64 / 2.0)).round().max(1.0);
        match kind {
            NodeKind::Pc => NodeModel {
                kind,
                year: d.year,
                flops: d.flops,
                mem_bw: d.mem_bw,
                mem_latency: d.mem_latency,
                mem_capacity: d.mem_capacity,
                cost: d.cost,
                power: d.power,
                per_rack: 42,
            },
            NodeKind::Blade => NodeModel {
                kind,
                year: d.year,
                flops: d.flops * 0.9, // slightly down-clocked for thermals
                mem_bw: d.mem_bw,
                mem_latency: d.mem_latency,
                mem_capacity: d.mem_capacity * 0.5, // fewer DIMM slots
                cost: d.cost * 1.1,                 // enclosure amortized
                power: d.power * 0.6,               // shared PSU/cooling
                per_rack: 144,
            },
            NodeKind::SmpOnChip => NodeModel {
                kind,
                year: d.year,
                // All cores' peak, at a slightly lower clock.
                flops: d.flops * cmp_cores * 0.85,
                // One memory interface, modestly wider than the PC's.
                mem_bw: d.mem_bw * 1.5,
                mem_latency: d.mem_latency,
                mem_capacity: d.mem_capacity,
                cost: d.cost * 1.4,
                power: d.power * 1.3,
                per_rack: 42,
            },
            NodeKind::Pim => NodeModel {
                kind,
                year: d.year,
                // Simple in-order logic in a DRAM process.
                flops: d.flops * 0.25,
                // Row-buffer bandwidth, not pin bandwidth.
                mem_bw: d.mem_bw * 15.0,
                mem_latency: d.mem_latency * 0.2, // on-die access
                mem_capacity: d.mem_capacity * 0.5,
                cost: d.cost * 0.8,
                power: d.power * 0.3,
                per_rack: 128,
            },
        }
    }

    /// Machine balance, bytes per flop.
    pub fn bytes_per_flop(&self) -> f64 {
        self.mem_bw / self.flops
    }

    /// Peak GFLOPS, for display.
    pub fn gflops(&self) -> f64 {
        self.flops / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Projection;

    fn at(year: u32) -> DevicePoint {
        Projection::default().at(year)
    }

    #[test]
    fn all_kinds_build() {
        let d = at(2002);
        for kind in NodeKind::ALL {
            let n = NodeModel::build(kind, &d);
            assert!(n.flops > 0.0 && n.mem_bw > 0.0 && n.cost > 0.0 && n.power > 0.0);
            assert_eq!(n.year, 2002);
        }
    }

    #[test]
    fn pim_has_the_most_balance_cmp_the_least() {
        let d = at(2006);
        let balance: Vec<(NodeKind, f64)> = NodeKind::ALL
            .iter()
            .map(|&k| (k, NodeModel::build(k, &d).bytes_per_flop()))
            .collect();
        let pim = balance.iter().find(|(k, _)| *k == NodeKind::Pim).unwrap().1;
        let cmp = balance
            .iter()
            .find(|(k, _)| *k == NodeKind::SmpOnChip)
            .unwrap()
            .1;
        let pc = balance.iter().find(|(k, _)| *k == NodeKind::Pc).unwrap().1;
        assert!(pim > 10.0 * pc, "PIM balance {pim} vs PC {pc}");
        assert!(cmp < pc, "CMP must be more bandwidth-starved than PC");
    }

    #[test]
    fn cmp_peak_grows_faster_than_pc() {
        let r2002 = {
            let d = at(2002);
            NodeModel::build(NodeKind::SmpOnChip, &d).flops / NodeModel::build(NodeKind::Pc, &d).flops
        };
        let r2008 = {
            let d = at(2008);
            NodeModel::build(NodeKind::SmpOnChip, &d).flops / NodeModel::build(NodeKind::Pc, &d).flops
        };
        assert!(r2008 > 2.0 * r2002, "core-count scaling missing");
    }

    #[test]
    fn blade_density_and_power_advantage() {
        let d = at(2004);
        let pc = NodeModel::build(NodeKind::Pc, &d);
        let blade = NodeModel::build(NodeKind::Blade, &d);
        assert!(blade.per_rack > 3 * pc.per_rack);
        assert!(blade.power < pc.power);
        // Rack-level peak favors blades strongly.
        let rack_pc = pc.flops * pc.per_rack as f64;
        let rack_blade = blade.flops * blade.per_rack as f64;
        assert!(rack_blade > 2.5 * rack_pc);
    }

    #[test]
    fn pim_power_efficiency() {
        let d = at(2004);
        let pc = NodeModel::build(NodeKind::Pc, &d);
        let pim = NodeModel::build(NodeKind::Pim, &d);
        // Flops per watt: PIM competitive despite lower peak.
        let fpw_pc = pc.flops / pc.power;
        let fpw_pim = pim.flops / pim.power;
        assert!(fpw_pim > 0.5 * fpw_pc);
        // Bandwidth per watt: PIM dominant.
        assert!(pim.mem_bw / pim.power > 10.0 * (pc.mem_bw / pc.power));
    }
}
