//! Device-technology projection: the parameter curves the keynote builds
//! its argument on ("current projections of device technology to
//! anticipate the performance, capacity, power, size, and cost curves of
//! future commodity clusters").
//!
//! Anchored at a 2002 commodity node (single-socket ~2.4 GHz, SSE2-class
//! FPU, DDR-266 memory) with ITRS/Moore-style doubling periods. Each
//! quantity is modeled as `anchor · 2^((year − 2002)/doubling_years)`.
//! The *relative* periods carry the keynote's point: logic speed doubles
//! every 1.5 years, memory bandwidth only every 3 — the widening
//! bytes-per-flop gap is what makes "more of the same, only faster"
//! nodes a dead end and motivates CMP and PIM organizations.

use serde::{Deserialize, Serialize};

/// The projection anchor year.
pub const ANCHOR_YEAR: u32 = 2002;

/// Doubling periods, in years.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DoublingPeriods {
    /// Peak node floating-point rate (Moore + wider SIMD).
    pub flops: f64,
    /// Commodity DRAM bandwidth per node.
    pub mem_bandwidth: f64,
    /// DRAM capacity per node at constant cost.
    pub mem_capacity: f64,
    /// Performance per dollar.
    pub perf_per_dollar: f64,
    /// Performance per watt.
    pub perf_per_watt: f64,
}

impl Default for DoublingPeriods {
    fn default() -> Self {
        DoublingPeriods {
            flops: 1.5,
            mem_bandwidth: 3.0,
            mem_capacity: 2.0,
            perf_per_dollar: 1.5,
            perf_per_watt: 2.0,
        }
    }
}

/// A 2002 commodity-node anchor point.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Anchor {
    /// Peak double-precision FLOP/s of one node.
    pub flops: f64,
    /// Sustainable memory bandwidth, bytes/s.
    pub mem_bw: f64,
    /// Memory latency, seconds.
    pub mem_latency: f64,
    /// DRAM capacity, bytes.
    pub mem_capacity: f64,
    /// Node cost, dollars.
    pub cost: f64,
    /// Node power draw, watts.
    pub power: f64,
}

impl Default for Anchor {
    fn default() -> Self {
        Anchor {
            flops: 4.8e9,            // 2.4 GHz x 2 DP flops/cycle
            mem_bw: 2.1e9,           // DDR-266 sustained
            mem_latency: 150e-9,     // load-to-use through the chipset
            mem_capacity: 1.0e9,     // 1 GB
            cost: 2_000.0,
            power: 250.0,
        }
    }
}

/// Projected device parameters for a given year.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DevicePoint {
    pub year: u32,
    pub flops: f64,
    pub mem_bw: f64,
    pub mem_latency: f64,
    pub mem_capacity: f64,
    pub cost: f64,
    pub power: f64,
}

impl DevicePoint {
    /// Machine balance in bytes per flop — the number whose decline the
    /// keynote's architecture discussion revolves around.
    pub fn bytes_per_flop(&self) -> f64 {
        self.mem_bw / self.flops
    }
}

/// The projection model.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Projection {
    pub anchor: Anchor,
    pub periods: DoublingPeriods,
}

impl Projection {
    fn grow(anchor: f64, years: f64, doubling: f64) -> f64 {
        anchor * 2f64.powf(years / doubling)
    }

    /// Project commodity-node parameters at `year` (>= 2002).
    pub fn at(&self, year: u32) -> DevicePoint {
        assert!(year >= ANCHOR_YEAR, "projection runs forward from 2002");
        let dy = (year - ANCHOR_YEAR) as f64;
        let p = &self.periods;
        let a = &self.anchor;
        let flops = Self::grow(a.flops, dy, p.flops);
        DevicePoint {
            year,
            flops,
            mem_bw: Self::grow(a.mem_bw, dy, p.mem_bandwidth),
            // Latency improves only marginally: ~5%/year.
            mem_latency: a.mem_latency * 0.95f64.powf(dy),
            mem_capacity: Self::grow(a.mem_capacity, dy, p.mem_capacity),
            // Node cost = flops / (flops per dollar); with the default
            // periods equal, commodity node price stays ~constant and
            // all the gain shows up as performance per dollar.
            cost: a.cost * (flops / a.flops) / Self::grow(1.0, dy, p.perf_per_dollar),
            power: a.power * (flops / a.flops) / Self::grow(1.0, dy, p.perf_per_watt),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchor_year_is_identity() {
        let p = Projection::default();
        let d = p.at(2002);
        assert_eq!(d.flops, p.anchor.flops);
        assert_eq!(d.mem_bw, p.anchor.mem_bw);
        assert_eq!(d.cost, p.anchor.cost);
        assert_eq!(d.power, p.anchor.power);
    }

    #[test]
    fn flops_double_every_18_months() {
        let p = Projection::default();
        let r = p.at(2005).flops / p.at(2002).flops;
        assert!((r - 4.0).abs() < 1e-9, "3 years = 2 doublings, got {r}");
    }

    #[test]
    fn bytes_per_flop_declines() {
        let p = Projection::default();
        let b02 = p.at(2002).bytes_per_flop();
        let b08 = p.at(2008).bytes_per_flop();
        assert!(b08 < b02 / 3.0, "memory wall must widen: {b02} -> {b08}");
    }

    #[test]
    fn capacity_and_bandwidth_growth_rates() {
        let p = Projection::default();
        assert!((p.at(2004).mem_capacity / p.at(2002).mem_capacity - 2.0).abs() < 1e-9);
        assert!((p.at(2005).mem_bw / p.at(2002).mem_bw - 2.0).abs() < 1e-9);
    }

    #[test]
    fn latency_improves_slowly() {
        let p = Projection::default();
        let l02 = p.at(2002).mem_latency;
        let l08 = p.at(2008).mem_latency;
        assert!(l08 < l02);
        assert!(l08 > l02 / 2.0, "latency must not track Moore's law");
    }

    #[test]
    fn power_grows_as_flops_outpace_efficiency() {
        // flops double per 1.5y, perf/W per 2y: node power rises.
        let p = Projection::default();
        assert!(p.at(2008).power > p.at(2002).power);
    }

    #[test]
    #[should_panic(expected = "forward from 2002")]
    fn backward_projection_rejected() {
        Projection::default().at(1999);
    }
}
