//! Memory-hierarchy model.
//!
//! A small analytic cache model: levels with capacity, bandwidth and
//! latency; a working set streams from the innermost level that holds
//! it. PIM nodes collapse the hierarchy — their "L2" *is* the DRAM row
//! buffer — which is how they dodge the memory wall.

/// One level of the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Level {
    pub name: &'static str,
    /// Capacity in bytes.
    pub capacity: u64,
    /// Bandwidth in bytes/s.
    pub bandwidth: f64,
    /// Access latency in seconds.
    pub latency: f64,
}

/// An inclusive cache hierarchy, innermost first.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryHierarchy {
    levels: Vec<Level>,
}

impl MemoryHierarchy {
    /// Levels must be ordered innermost (smallest, fastest) outward.
    pub fn new(levels: Vec<Level>) -> Self {
        assert!(!levels.is_empty(), "hierarchy needs at least one level");
        for w in levels.windows(2) {
            assert!(
                w[0].capacity <= w[1].capacity && w[0].latency <= w[1].latency,
                "levels must grow outward"
            );
        }
        MemoryHierarchy { levels }
    }

    /// A 2002 commodity hierarchy: L1 / L2 / DRAM.
    pub fn commodity_2002() -> Self {
        MemoryHierarchy::new(vec![
            Level {
                name: "L1",
                capacity: 16 * 1024,
                bandwidth: 32e9,
                latency: 1e-9,
            },
            Level {
                name: "L2",
                capacity: 512 * 1024,
                bandwidth: 8e9,
                latency: 8e-9,
            },
            Level {
                name: "DRAM",
                capacity: 1 << 30,
                bandwidth: 2.1e9,
                latency: 150e-9,
            },
        ])
    }

    /// A PIM hierarchy: logic sits in the DRAM, so the "memory" level is
    /// row-buffer-fast and there is little between it and the registers.
    pub fn pim() -> Self {
        MemoryHierarchy::new(vec![
            Level {
                name: "row-buffer",
                capacity: 64 * 1024,
                bandwidth: 40e9,
                latency: 2e-9,
            },
            Level {
                name: "on-die-DRAM",
                capacity: 512 << 20,
                bandwidth: 30e9,
                latency: 30e-9,
            },
        ])
    }

    /// The innermost level whose capacity holds `working_set`, or the
    /// outermost if nothing does.
    pub fn serving_level(&self, working_set: u64) -> &Level {
        self.levels
            .iter()
            .find(|l| l.capacity >= working_set)
            .unwrap_or_else(|| self.levels.last().expect("nonempty"))
    }

    /// Streaming bandwidth seen by a working set of the given size.
    pub fn effective_bandwidth(&self, working_set: u64) -> f64 {
        self.serving_level(working_set).bandwidth
    }

    /// Dependent-access latency seen by a working set.
    pub fn effective_latency(&self, working_set: u64) -> f64 {
        self.serving_level(working_set).latency
    }

    pub fn levels(&self) -> &[Level] {
        &self.levels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serving_level_selection() {
        let h = MemoryHierarchy::commodity_2002();
        assert_eq!(h.serving_level(1024).name, "L1");
        assert_eq!(h.serving_level(100 * 1024).name, "L2");
        assert_eq!(h.serving_level(10 << 20).name, "DRAM");
        // Bigger than everything: outermost.
        assert_eq!(h.serving_level(1 << 40).name, "DRAM");
    }

    #[test]
    fn bandwidth_and_latency_cliff() {
        let h = MemoryHierarchy::commodity_2002();
        assert!(h.effective_bandwidth(1024) > 10.0 * h.effective_bandwidth(16 << 20));
        assert!(h.effective_latency(16 << 20) > 50.0 * h.effective_latency(1024));
    }

    #[test]
    fn pim_has_no_dram_cliff() {
        let pim = MemoryHierarchy::pim();
        let pc = MemoryHierarchy::commodity_2002();
        let ws = 64 << 20; // bigger than any cache
        assert!(pim.effective_bandwidth(ws) > 10.0 * pc.effective_bandwidth(ws));
        assert!(pim.effective_latency(ws) < pc.effective_latency(ws) / 4.0);
    }

    #[test]
    #[should_panic(expected = "grow outward")]
    fn misordered_levels_rejected() {
        MemoryHierarchy::new(vec![
            Level {
                name: "big",
                capacity: 1 << 30,
                bandwidth: 1e9,
                latency: 1e-7,
            },
            Level {
                name: "small",
                capacity: 1024,
                bandwidth: 1e10,
                latency: 1e-9,
            },
        ]);
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn empty_hierarchy_rejected() {
        MemoryHierarchy::new(vec![]);
    }
}
