//! Representative kernels and their operational characteristics.

use serde::Serialize;

/// A computational kernel characterized by its operational intensity
/// (flops per byte of memory traffic) and its latency sensitivity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Kernel {
    pub name: &'static str,
    /// Flops per byte moved to/from memory.
    pub intensity: f64,
    /// Fraction of memory accesses that are dependent random accesses
    /// (latency-bound rather than bandwidth-bound). 0 = pure streaming.
    pub random_fraction: f64,
}

/// The kernel suite used by experiment F4.
pub const DAXPY: Kernel = Kernel {
    name: "daxpy",
    // y[i] = a*x[i] + y[i]: 2 flops per 24 bytes (2 loads + 1 store).
    intensity: 2.0 / 24.0,
    random_fraction: 0.0,
};

pub const STENCIL7: Kernel = Kernel {
    name: "stencil-7pt",
    // 8 flops per point; with cache reuse ~2 memory ops of 8 bytes.
    intensity: 8.0 / 16.0,
    random_fraction: 0.0,
};

pub const FFT: Kernel = Kernel {
    name: "fft-1d",
    // 5 n log n flops over ~3 passes of the array per radix stage set.
    intensity: 1.5,
    random_fraction: 0.1,
};

pub const DGEMM: Kernel = Kernel {
    name: "dgemm-blocked",
    // Cache-blocked matrix multiply: high reuse.
    intensity: 16.0,
    random_fraction: 0.0,
};

pub const GUPS: Kernel = Kernel {
    name: "gups",
    // RandomAccess: one update (1 op counted as flop-equivalent) per
    // 8-byte random read-modify-write; fully dependent accesses.
    intensity: 1.0 / 16.0,
    random_fraction: 1.0,
};

pub const SUITE: [Kernel; 5] = [DAXPY, STENCIL7, FFT, DGEMM, GUPS];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_spans_the_intensity_range() {
        let min = SUITE.iter().map(|k| k.intensity).fold(f64::MAX, f64::min);
        let max = SUITE.iter().map(|k| k.intensity).fold(0.0, f64::max);
        assert!(min < 0.1, "need a bandwidth-bound kernel");
        assert!(max > 10.0, "need a compute-bound kernel");
    }

    #[test]
    fn gups_is_the_latency_kernel() {
        assert_eq!(GUPS.random_fraction, 1.0);
        assert!(SUITE
            .iter()
            .filter(|k| k.name != "gups")
            .all(|k| k.random_fraction < 0.5));
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = SUITE.iter().map(|k| k.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), SUITE.len());
    }
}
