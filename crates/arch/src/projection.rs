//! Cluster-level projections: the keynote's trans-Petaflops question.
//!
//! Given a node architecture and a procurement constraint (fixed budget
//! or fixed power envelope), project the cluster's aggregate peak,
//! memory, power, footprint, and cost per GFLOPS across the decade, and
//! find the year each track crosses 1 PFLOPS.

use crate::device::Projection;
use crate::node::{NodeKind, NodeModel};
use serde::{Deserialize, Serialize};

/// Procurement constraint.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Constraint {
    /// Spend at most this many dollars on nodes.
    Budget(f64),
    /// Draw at most this many watts.
    Power(f64),
    /// Install at most this many racks.
    Racks(u32),
}

/// One year's cluster-level numbers for a node track.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterPoint {
    pub year: u32,
    pub kind: NodeKind,
    pub nodes: u64,
    /// Aggregate peak FLOP/s.
    pub peak_flops: f64,
    /// Aggregate memory, bytes.
    pub memory: f64,
    /// Total power, watts.
    pub power: f64,
    /// Racks occupied.
    pub racks: f64,
    /// Total cost, dollars.
    pub cost: f64,
}

impl ClusterPoint {
    pub fn dollars_per_gflops(&self) -> f64 {
        self.cost / (self.peak_flops / 1e9)
    }

    pub fn peak_tflops(&self) -> f64 {
        self.peak_flops / 1e12
    }
}

/// Build the cluster a constraint affords in `year` on the given track.
pub fn cluster_at(
    proj: &Projection,
    kind: NodeKind,
    constraint: Constraint,
    year: u32,
) -> ClusterPoint {
    let node = NodeModel::build(kind, &proj.at(year));
    let nodes = match constraint {
        Constraint::Budget(b) => (b / node.cost).floor() as u64,
        Constraint::Power(w) => (w / node.power).floor() as u64,
        Constraint::Racks(r) => (r as u64) * node.per_rack as u64,
    };
    ClusterPoint {
        year,
        kind,
        nodes,
        peak_flops: nodes as f64 * node.flops,
        memory: nodes as f64 * node.mem_capacity,
        power: nodes as f64 * node.power,
        racks: nodes as f64 / node.per_rack as f64,
        cost: nodes as f64 * node.cost,
    }
}

/// The full curve over an inclusive year range.
pub fn curve(
    proj: &Projection,
    kind: NodeKind,
    constraint: Constraint,
    years: std::ops::RangeInclusive<u32>,
) -> Vec<ClusterPoint> {
    years.map(|y| cluster_at(proj, kind, constraint, y)).collect()
}

/// First year (searching 2002..=2020) the track reaches `target` FLOP/s
/// under the constraint, if any.
pub fn crossover_year(
    proj: &Projection,
    kind: NodeKind,
    constraint: Constraint,
    target: f64,
) -> Option<u32> {
    (2002..=2020).find(|&y| cluster_at(proj, kind, constraint, y).peak_flops >= target)
}

/// One petaflops, the keynote's "trans-Petaflops regime" threshold.
pub const PETAFLOPS: f64 = 1e15;

#[cfg(test)]
mod tests {
    use super::*;

    fn proj() -> Projection {
        Projection::default()
    }

    #[test]
    fn budget_cluster_2002_is_plausible() {
        // $1M of 2002 PC nodes: ~500 nodes, ~2.4 TFLOPS peak — the scale
        // of a mid-list Beowulf of the day.
        let c = cluster_at(&proj(), NodeKind::Pc, Constraint::Budget(1e6), 2002);
        assert_eq!(c.nodes, 500);
        assert!((2.0..3.0).contains(&c.peak_tflops()), "{}", c.peak_tflops());
        assert!(c.power > 100_000.0); // ~125 kW
    }

    #[test]
    fn peak_grows_along_the_curve() {
        let pts = curve(&proj(), NodeKind::Pc, Constraint::Budget(1e6), 2002..=2010);
        assert_eq!(pts.len(), 9);
        for w in pts.windows(2) {
            assert!(w[1].peak_flops > w[0].peak_flops);
        }
        // Cost per GFLOPS falls.
        assert!(pts[8].dollars_per_gflops() < pts[0].dollars_per_gflops() / 10.0);
    }

    #[test]
    fn blade_track_crosses_petaflops_before_pc_under_racks() {
        // Fixed 100-rack machine room: density decides.
        let c = Constraint::Racks(100);
        let pc = crossover_year(&proj(), NodeKind::Pc, c, PETAFLOPS);
        let blade = crossover_year(&proj(), NodeKind::Blade, c, PETAFLOPS);
        let (pc, blade) = (pc.expect("pc crosses by 2020"), blade.expect("blade crosses"));
        assert!(blade < pc, "blade {blade} vs pc {pc}");
    }

    #[test]
    fn cmp_track_crosses_petaflops_before_pc_under_budget() {
        let c = Constraint::Budget(10e6);
        let pc = crossover_year(&proj(), NodeKind::Pc, c, PETAFLOPS).expect("pc");
        let cmp = crossover_year(&proj(), NodeKind::SmpOnChip, c, PETAFLOPS).expect("cmp");
        assert!(cmp < pc, "cmp {cmp} vs pc {pc}");
        // And the crossing lands within the keynote's "this decade".
        assert!((2002..=2012).contains(&cmp), "cmp year {cmp}");
    }

    #[test]
    fn power_constrained_track_favors_efficient_nodes() {
        let c = Constraint::Power(2e6); // a 2 MW machine room
        let y = 2008;
        let pc = cluster_at(&proj(), NodeKind::Pc, c, y);
        let pim = cluster_at(&proj(), NodeKind::Pim, c, y);
        let blade = cluster_at(&proj(), NodeKind::Blade, c, y);
        assert!(blade.peak_flops > pc.peak_flops);
        // PIM fields far more nodes under the cap.
        assert!(pim.nodes > 2 * pc.nodes);
    }

    #[test]
    fn crossover_none_when_target_unreachable() {
        let c = Constraint::Budget(1_000.0); // one node's worth
        assert_eq!(
            crossover_year(&proj(), NodeKind::Pc, c, 1e30),
            None
        );
    }

    #[test]
    fn curves_are_deterministic_and_serializable() {
        let pts = curve(&proj(), NodeKind::Blade, Constraint::Budget(1e6), 2002..=2004);
        let json = serde_json::to_string(&pts).unwrap();
        let back: Vec<ClusterPoint> = serde_json::from_str(&json).unwrap();
        assert_eq!(pts, back);
    }
}
