//! Cluster-level projections: the keynote's trans-Petaflops question.
//!
//! Given a node architecture and a procurement constraint (fixed budget
//! or fixed power envelope), project the cluster's aggregate peak,
//! memory, power, footprint, and cost per GFLOPS across the decade, and
//! find the year each track crosses 1 PFLOPS.

use crate::device::Projection;
use crate::node::{NodeKind, NodeModel};
use serde::{Deserialize, Serialize};

/// Procurement constraint.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Constraint {
    /// Spend at most this many dollars on nodes.
    Budget(f64),
    /// Draw at most this many watts.
    Power(f64),
    /// Install at most this many racks.
    Racks(u32),
}

/// One year's cluster-level numbers for a node track.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterPoint {
    pub year: u32,
    pub kind: NodeKind,
    pub nodes: u64,
    /// Aggregate peak FLOP/s.
    pub peak_flops: f64,
    /// Aggregate memory, bytes.
    pub memory: f64,
    /// Total power, watts.
    pub power: f64,
    /// Racks occupied.
    pub racks: f64,
    /// Total cost, dollars.
    pub cost: f64,
}

impl ClusterPoint {
    pub fn dollars_per_gflops(&self) -> f64 {
        self.cost / (self.peak_flops / 1e9)
    }

    pub fn peak_tflops(&self) -> f64 {
        self.peak_flops / 1e12
    }
}

/// Build the cluster a constraint affords in `year` on the given track.
pub fn cluster_at(
    proj: &Projection,
    kind: NodeKind,
    constraint: Constraint,
    year: u32,
) -> ClusterPoint {
    let node = NodeModel::build(kind, &proj.at(year));
    let nodes = match constraint {
        Constraint::Budget(b) => (b / node.cost).floor() as u64,
        Constraint::Power(w) => (w / node.power).floor() as u64,
        Constraint::Racks(r) => (r as u64) * node.per_rack as u64,
    };
    ClusterPoint {
        year,
        kind,
        nodes,
        peak_flops: nodes as f64 * node.flops,
        memory: nodes as f64 * node.mem_capacity,
        power: nodes as f64 * node.power,
        racks: nodes as f64 / node.per_rack as f64,
        cost: nodes as f64 * node.cost,
    }
}

/// The full curve over an inclusive year range.
pub fn curve(
    proj: &Projection,
    kind: NodeKind,
    constraint: Constraint,
    years: std::ops::RangeInclusive<u32>,
) -> Vec<ClusterPoint> {
    years.map(|y| cluster_at(proj, kind, constraint, y)).collect()
}

/// The default crossover search range, the keynote's planning horizon.
pub const DEFAULT_HORIZON: std::ops::RangeInclusive<u32> = 2002..=2020;

/// Outcome of a crossover search over an explicit year range. The old
/// `Option<u32>` API collapsed two very different "no" answers into
/// `None`; this keeps them apart.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Crossing {
    /// First year inside the range the curve reaches the target.
    At(u32),
    /// The curve is still growing at the end of the range but has not
    /// reached the target — a longer horizon may cross.
    BeyondHorizon,
    /// The curve has stopped growing (or never produced anything)
    /// short of the target: no horizon extension crosses.
    Never,
}

impl Crossing {
    /// Render for tables: the year, `>H` for growth past the horizon
    /// `H`, or `never`.
    pub fn label(self, horizon: u32) -> String {
        match self {
            Crossing::At(y) => y.to_string(),
            Crossing::BeyondHorizon => format!(">{horizon}"),
            Crossing::Never => "never".into(),
        }
    }

    pub fn year(self) -> Option<u32> {
        match self {
            Crossing::At(y) => Some(y),
            _ => None,
        }
    }
}

/// Generic crossover search: the first year in `years` where
/// `value_at(year) >= target`. When nothing in the range crosses, the
/// last two years decide between [`Crossing::BeyondHorizon`] (still
/// growing) and [`Crossing::Never`] (flat, shrinking, or zero). Used by
/// the peak-FLOP/s search below and by F14's *effective*-FLOP/s curves.
pub fn crossing_in(
    years: std::ops::RangeInclusive<u32>,
    target: f64,
    mut value_at: impl FnMut(u32) -> f64,
) -> Crossing {
    let (start, end) = (*years.start(), *years.end());
    for y in years {
        if value_at(y) >= target {
            return Crossing::At(y);
        }
    }
    let last = value_at(end);
    let growing = if end > start {
        last > value_at(end - 1)
    } else {
        last > 0.0
    };
    if growing {
        Crossing::BeyondHorizon
    } else {
        Crossing::Never
    }
}

/// First year in `years` the track's peak reaches `target` FLOP/s under
/// the constraint.
pub fn crossover_year_in(
    proj: &Projection,
    kind: NodeKind,
    constraint: Constraint,
    target: f64,
    years: std::ops::RangeInclusive<u32>,
) -> Crossing {
    crossing_in(years, target, |y| {
        cluster_at(proj, kind, constraint, y).peak_flops
    })
}

/// First year (searching the default 2002..=2020 horizon) the track
/// reaches `target` FLOP/s under the constraint, if any. Thin wrapper
/// over [`crossover_year_in`] kept for callers that don't care *why*
/// the target was missed.
pub fn crossover_year(
    proj: &Projection,
    kind: NodeKind,
    constraint: Constraint,
    target: f64,
) -> Option<u32> {
    crossover_year_in(proj, kind, constraint, target, DEFAULT_HORIZON).year()
}

/// One petaflops, the keynote's "trans-Petaflops regime" threshold.
pub const PETAFLOPS: f64 = 1e15;

#[cfg(test)]
mod tests {
    use super::*;

    fn proj() -> Projection {
        Projection::default()
    }

    #[test]
    fn budget_cluster_2002_is_plausible() {
        // $1M of 2002 PC nodes: ~500 nodes, ~2.4 TFLOPS peak — the scale
        // of a mid-list Beowulf of the day.
        let c = cluster_at(&proj(), NodeKind::Pc, Constraint::Budget(1e6), 2002);
        assert_eq!(c.nodes, 500);
        assert!((2.0..3.0).contains(&c.peak_tflops()), "{}", c.peak_tflops());
        assert!(c.power > 100_000.0); // ~125 kW
    }

    #[test]
    fn peak_grows_along_the_curve() {
        let pts = curve(&proj(), NodeKind::Pc, Constraint::Budget(1e6), 2002..=2010);
        assert_eq!(pts.len(), 9);
        for w in pts.windows(2) {
            assert!(w[1].peak_flops > w[0].peak_flops);
        }
        // Cost per GFLOPS falls.
        assert!(pts[8].dollars_per_gflops() < pts[0].dollars_per_gflops() / 10.0);
    }

    #[test]
    fn blade_track_crosses_petaflops_before_pc_under_racks() {
        // Fixed 100-rack machine room: density decides.
        let c = Constraint::Racks(100);
        let pc = crossover_year(&proj(), NodeKind::Pc, c, PETAFLOPS);
        let blade = crossover_year(&proj(), NodeKind::Blade, c, PETAFLOPS);
        let (pc, blade) = (pc.expect("pc crosses by 2020"), blade.expect("blade crosses"));
        assert!(blade < pc, "blade {blade} vs pc {pc}");
    }

    #[test]
    fn cmp_track_crosses_petaflops_before_pc_under_budget() {
        let c = Constraint::Budget(10e6);
        let pc = crossover_year(&proj(), NodeKind::Pc, c, PETAFLOPS).expect("pc");
        let cmp = crossover_year(&proj(), NodeKind::SmpOnChip, c, PETAFLOPS).expect("cmp");
        assert!(cmp < pc, "cmp {cmp} vs pc {pc}");
        // And the crossing lands within the keynote's "this decade".
        assert!((2002..=2012).contains(&cmp), "cmp year {cmp}");
    }

    #[test]
    fn power_constrained_track_favors_efficient_nodes() {
        let c = Constraint::Power(2e6); // a 2 MW machine room
        let y = 2008;
        let pc = cluster_at(&proj(), NodeKind::Pc, c, y);
        let pim = cluster_at(&proj(), NodeKind::Pim, c, y);
        let blade = cluster_at(&proj(), NodeKind::Blade, c, y);
        assert!(blade.peak_flops > pc.peak_flops);
        // PIM fields far more nodes under the cap.
        assert!(pim.nodes > 2 * pc.nodes);
    }

    #[test]
    fn crossover_none_when_target_unreachable() {
        let c = Constraint::Budget(1_000.0); // one node's worth
        assert_eq!(
            crossover_year(&proj(), NodeKind::Pc, c, 1e30),
            None
        );
    }

    #[test]
    fn crossing_distinguishes_horizon_from_never() {
        // A growing curve that misses an absurd target: the horizon is
        // the problem, not the curve.
        let c = Constraint::Budget(10e6);
        assert_eq!(
            crossover_year_in(&proj(), NodeKind::Pc, c, 1e30, DEFAULT_HORIZON),
            Crossing::BeyondHorizon
        );
        // A budget below one node's cost for the whole range: the curve
        // is zero forever — no horizon extension helps.
        let tiny = Constraint::Budget(1.0);
        assert_eq!(
            crossover_year_in(&proj(), NodeKind::Pc, tiny, PETAFLOPS, 2002..=2005),
            Crossing::Never
        );
        // Labels for the figure columns.
        assert_eq!(Crossing::At(2008).label(2020), "2008");
        assert_eq!(Crossing::BeyondHorizon.label(2020), ">2020");
        assert_eq!(Crossing::Never.label(2020), "never");
    }

    #[test]
    fn crossover_range_is_honoured() {
        let c = Constraint::Budget(10e6);
        let full = crossover_year(&proj(), NodeKind::SmpOnChip, c, PETAFLOPS)
            .expect("cmp crosses inside the default horizon");
        // A range ending before the crossing year must not find it…
        assert_eq!(
            crossover_year_in(&proj(), NodeKind::SmpOnChip, c, PETAFLOPS, 2002..=full - 1),
            Crossing::BeyondHorizon
        );
        // …and a range starting after it finds the range's first year.
        assert_eq!(
            crossover_year_in(&proj(), NodeKind::SmpOnChip, c, PETAFLOPS, full + 1..=2020),
            Crossing::At(full + 1)
        );
        // The generic search agrees with the specialised one.
        assert_eq!(
            crossing_in(DEFAULT_HORIZON, PETAFLOPS, |y| {
                cluster_at(&proj(), NodeKind::SmpOnChip, c, y).peak_flops
            }),
            Crossing::At(full)
        );
    }

    #[test]
    fn curves_are_deterministic_and_serializable() {
        let pts = curve(&proj(), NodeKind::Blade, Constraint::Budget(1e6), 2002..=2004);
        let json = serde_json::to_string(&pts).unwrap();
        let back: Vec<ClusterPoint> = serde_json::from_str(&json).unwrap();
        assert_eq!(pts, back);
    }
}
