//! # polaris-arch
//!
//! Node-architecture and device-technology models for the CLUSTER 2002
//! keynote's forward-looking argument: projections of "performance,
//! capacity, power, size, and cost curves" (experiment F1), and the
//! node organizations it names — blades, SMP-on-chip, processor in
//! memory — evaluated on a latency-extended roofline model against a
//! kernel suite (experiment F4).

pub mod device;
pub mod kernels;
pub mod memory;
pub mod node;
pub mod projection;
pub mod roofline;

pub mod prelude {
    pub use crate::device::{Anchor, DevicePoint, DoublingPeriods, Projection, ANCHOR_YEAR};
    pub use crate::kernels::{Kernel, DAXPY, DGEMM, FFT, GUPS, STENCIL7, SUITE};
    pub use crate::memory::{Level, MemoryHierarchy};
    pub use crate::node::{NodeKind, NodeModel};
    pub use crate::projection::{
        cluster_at, crossing_in, crossover_year, crossover_year_in, curve, ClusterPoint,
        Constraint, Crossing, DEFAULT_HORIZON, PETAFLOPS,
    };
    pub use crate::roofline::{attainable, efficiency, knee};
}
