//! Job-level recovery policies on a failing cluster.
//!
//! Ties the pieces together: a wide job on `width` nodes experiences the
//! aggregated failure rate; on each failure the recovery policy decides
//! what survives. Experiment F6's companion: expected completion-time
//! inflation versus scale, with and without checkpointing — the
//! quantitative version of the keynote's claim that at exploding scale
//! the software must take on fault recovery.

use crate::checkpoint::CheckpointParams;
use crate::workload::FailureModel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, Exp};
use serde::{Deserialize, Serialize};

/// What happens to a job when a node it occupies fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecoveryPolicy {
    /// Restart from the beginning (the era's default).
    RestartFromScratch,
    /// Resume from the last coordinated checkpoint.
    CheckpointRestart {
        /// Checkpoint interval, seconds.
        interval_s: u32,
    },
}

/// Result of running one job to completion under failures.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryOutcome {
    /// Wall time to finish, seconds.
    pub wall: f64,
    pub failures: u64,
    /// wall / runtime: the inflation factor.
    pub inflation: f64,
}

/// Simulate one job of `runtime` seconds on `width` nodes.
/// Deterministic in `seed`.
pub fn run_job(
    failures: &FailureModel,
    ckpt: &CheckpointParams,
    policy: RecoveryPolicy,
    width: u32,
    runtime: f64,
    seed: u64,
) -> RecoveryOutcome {
    assert!(runtime > 0.0);
    let mtbf = failures.system_mtbf(width);
    let mut rng = StdRng::seed_from_u64(seed);
    let exp = Exp::new(1.0 / mtbf).expect("positive rate");
    let mut wall = 0.0f64;
    let mut durable = 0.0f64; // progress that survives a failure
    let mut fail_count = 0u64;
    let mut next_failure = exp.sample(&mut rng);
    loop {
        match policy {
            RecoveryPolicy::RestartFromScratch => {
                let finish = wall + runtime;
                if finish <= next_failure {
                    return RecoveryOutcome {
                        wall: finish,
                        failures: fail_count,
                        inflation: finish / runtime,
                    };
                }
                fail_count += 1;
                wall = next_failure + ckpt.restart_cost;
                next_failure = wall + exp.sample(&mut rng);
            }
            RecoveryPolicy::CheckpointRestart { interval_s } => {
                let tau = interval_s as f64;
                if durable >= runtime {
                    return RecoveryOutcome {
                        wall,
                        failures: fail_count,
                        inflation: wall / runtime,
                    };
                }
                let segment = tau.min(runtime - durable);
                let need = segment + ckpt.checkpoint_cost;
                if wall + need <= next_failure {
                    wall += need;
                    durable += segment;
                } else {
                    fail_count += 1;
                    wall = next_failure + ckpt.restart_cost;
                    next_failure = wall + exp.sample(&mut rng);
                }
            }
        }
    }
}

/// Mean inflation over `reps` seeds — the F6 companion series.
pub fn mean_inflation(
    failures: &FailureModel,
    ckpt: &CheckpointParams,
    policy: RecoveryPolicy,
    width: u32,
    runtime: f64,
    reps: u64,
) -> f64 {
    (0..reps)
        .map(|s| run_job(failures, ckpt, policy, width, runtime, s).inflation)
        .sum::<f64>()
        / reps as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ckpt() -> CheckpointParams {
        CheckpointParams {
            checkpoint_cost: 60.0,
            restart_cost: 120.0,
            system_mtbf: 0.0, // unused by run_job (FailureModel drives it)
        }
    }

    fn reliable() -> FailureModel {
        FailureModel { node_mtbf: 1e15 }
    }

    fn flaky() -> FailureModel {
        // 1000-hour node MTBF: respectable hardware, brutal at scale.
        FailureModel {
            node_mtbf: 3.6e6,
        }
    }

    #[test]
    fn no_failures_no_overhead_for_restart_policy() {
        let r = run_job(
            &reliable(),
            &ckpt(),
            RecoveryPolicy::RestartFromScratch,
            64,
            10_000.0,
            1,
        );
        assert_eq!(r.failures, 0);
        assert!((r.inflation - 1.0).abs() < 1e-12);
    }

    #[test]
    fn checkpointing_pays_overhead_without_failures() {
        let r = run_job(
            &reliable(),
            &ckpt(),
            RecoveryPolicy::CheckpointRestart { interval_s: 1000 },
            64,
            10_000.0,
            1,
        );
        assert_eq!(r.failures, 0);
        // 10 checkpoints of 60s on 10000s of work: 6% overhead.
        assert!((r.inflation - 1.06).abs() < 1e-9);
    }

    #[test]
    fn at_scale_scratch_restart_collapses_checkpointing_survives() {
        // A 24-hour job on 512 nodes of 1000h-MTBF hardware: system MTBF
        // ~2 hours, so scratch restart essentially never finishes a full
        // day of work; checkpointing shrugs.
        let width = 512;
        let runtime = 86_400.0;
        let scratch = mean_inflation(
            &flaky(),
            &ckpt(),
            RecoveryPolicy::RestartFromScratch,
            width,
            runtime,
            10,
        );
        let ck = mean_inflation(
            &flaky(),
            &ckpt(),
            RecoveryPolicy::CheckpointRestart { interval_s: 900 },
            width,
            runtime,
            10,
        );
        assert!(
            scratch > 10.0 * ck,
            "scratch inflation {scratch} vs checkpoint {ck}"
        );
        assert!(ck < 2.0, "checkpointed job stays near nominal: {ck}");
    }

    #[test]
    fn inflation_grows_with_width_for_scratch_restart() {
        let runtime = 3_600.0 * 8.0;
        let narrow = mean_inflation(
            &flaky(),
            &ckpt(),
            RecoveryPolicy::RestartFromScratch,
            8,
            runtime,
            20,
        );
        let wide = mean_inflation(
            &flaky(),
            &ckpt(),
            RecoveryPolicy::RestartFromScratch,
            256,
            runtime,
            20,
        );
        assert!(wide > narrow, "wide {wide} vs narrow {narrow}");
    }

    #[test]
    fn deterministic_in_seed() {
        let a = run_job(
            &flaky(),
            &ckpt(),
            RecoveryPolicy::CheckpointRestart { interval_s: 600 },
            128,
            50_000.0,
            99,
        );
        let b = run_job(
            &flaky(),
            &ckpt(),
            RecoveryPolicy::CheckpointRestart { interval_s: 600 },
            128,
            50_000.0,
            99,
        );
        assert_eq!(a, b);
    }
}
