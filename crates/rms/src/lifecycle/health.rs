//! Fused per-node health verdicts: heartbeat silence + NIC/link fault
//! signals.
//!
//! The analytic detector ([`crate::health::DetectorConfig`]) answers
//! "how long after the last heartbeat do we declare death?"; the chaos
//! fabric surfaces link-level symptoms (carrier loss during a flap
//! window, error completions from a bursty channel) well before a full
//! heartbeat timeout. The aggregator fuses both streams into one of
//! three verdicts per node:
//!
//! * [`HealthVerdict::Failed`] — heartbeat silence past the detector
//!   timeout (`period × missed_threshold`): treat as fail-stop.
//! * [`HealthVerdict::Suspect`] — at least one missed heartbeat, or
//!   NIC/link faults at or above the threshold inside the sliding
//!   window: drain, don't evict.
//! * [`HealthVerdict::Ok`] — heartbeats arriving, link quiet.
//!
//! Nodes never registered with the aggregator are reported `Ok`: the
//! fleet simulation only materializes heartbeat streams for disturbed
//! nodes, and an unregistered node is by construction undisturbed.

use crate::health::DetectorConfig;
use polaris_simnet::time::{SimDuration, SimTime};
use std::collections::{BTreeMap, VecDeque};

/// The fused health verdict for one node at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthVerdict {
    Ok,
    Suspect,
    Failed,
}

/// Aggregator thresholds. Heartbeat semantics mirror
/// [`DetectorConfig`]: `Failed` fires `heartbeat_period ×
/// missed_threshold` after the last arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthConfig {
    /// Expected heartbeat period.
    pub heartbeat_period: SimDuration,
    /// Consecutive missed periods before `Failed`.
    pub missed_threshold: u32,
    /// Sliding window over which link faults are counted.
    pub link_fault_window: SimDuration,
    /// Link faults within the window to report `Suspect`.
    pub link_fault_threshold: u32,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            heartbeat_period: SimDuration::from_secs(10),
            missed_threshold: 3,
            link_fault_window: SimDuration::from_secs(60),
            link_fault_threshold: 3,
        }
    }
}

impl HealthConfig {
    /// Carry the analytic detector's period/threshold over into the
    /// control plane (seconds → picoseconds), keeping both layers'
    /// timeout math identical.
    pub fn from_detector(
        d: &DetectorConfig,
        link_fault_window: SimDuration,
        link_fault_threshold: u32,
    ) -> Self {
        HealthConfig {
            heartbeat_period: SimDuration::from_secs_f64(d.period),
            missed_threshold: d.missed_threshold,
            link_fault_window,
            link_fault_threshold,
        }
    }

    /// Silence span after which a node is `Failed`
    /// (= [`DetectorConfig::timeout`]).
    pub fn timeout(&self) -> SimDuration {
        self.heartbeat_period.saturating_mul(self.missed_threshold as u64)
    }

    /// Silence span after which a node is at least `Suspect`: one full
    /// period with slack for arrival jitter.
    pub fn suspect_after(&self) -> SimDuration {
        self.heartbeat_period.saturating_mul(2)
    }
}

#[derive(Debug, Clone)]
struct NodeHealth {
    last_beat: SimTime,
    /// Recent link-fault timestamps, pruned to the window on insert.
    faults: VecDeque<SimTime>,
}

/// Per-node health state: last heartbeat arrival plus a sliding window
/// of link-fault signals. Keyed by a `BTreeMap` so iteration over
/// registered nodes is deterministic (the reconcile loop depends on
/// this for bit-identical replays).
#[derive(Debug, Clone)]
pub struct HealthAggregator {
    cfg: HealthConfig,
    nodes: BTreeMap<u32, NodeHealth>,
}

impl HealthAggregator {
    pub fn new(cfg: HealthConfig) -> Self {
        HealthAggregator { cfg, nodes: BTreeMap::new() }
    }

    pub fn config(&self) -> &HealthConfig {
        &self.cfg
    }

    /// Start tracking `node`, treating `now` as a baseline heartbeat.
    pub fn register(&mut self, node: u32, now: SimTime) {
        self.nodes
            .entry(node)
            .or_insert(NodeHealth { last_beat: now, faults: VecDeque::new() });
    }

    /// Record a heartbeat arrival.
    pub fn note_heartbeat(&mut self, node: u32, at: SimTime) {
        let rec = self
            .nodes
            .entry(node)
            .or_insert(NodeHealth { last_beat: at, faults: VecDeque::new() });
        rec.last_beat = rec.last_beat.max(at);
    }

    /// Record a NIC/link fault signal (carrier loss, error completion).
    pub fn note_link_fault(&mut self, node: u32, at: SimTime) {
        let rec = self
            .nodes
            .entry(node)
            .or_insert(NodeHealth { last_beat: at, faults: VecDeque::new() });
        rec.faults.push_back(at);
        let horizon = at.as_ps().saturating_sub(self.cfg.link_fault_window.as_ps());
        while rec.faults.front().is_some_and(|t| t.as_ps() < horizon) {
            rec.faults.pop_front();
        }
    }

    /// Link faults inside the window ending at `now`.
    pub fn recent_faults(&self, node: u32, now: SimTime) -> u32 {
        let Some(rec) = self.nodes.get(&node) else { return 0 };
        let horizon = now.as_ps().saturating_sub(self.cfg.link_fault_window.as_ps());
        rec.faults.iter().filter(|t| t.as_ps() >= horizon && t.as_ps() <= now.as_ps()).count()
            as u32
    }

    /// The fused verdict for `node` at `now`. Unregistered nodes are
    /// `Ok` (undisturbed by construction; see module docs).
    pub fn verdict(&self, node: u32, now: SimTime) -> HealthVerdict {
        let Some(rec) = self.nodes.get(&node) else {
            return HealthVerdict::Ok;
        };
        let silence = now.since(rec.last_beat);
        if silence >= self.cfg.timeout() {
            return HealthVerdict::Failed;
        }
        if silence >= self.cfg.suspect_after()
            || self.recent_faults(node, now) >= self.cfg.link_fault_threshold
        {
            return HealthVerdict::Suspect;
        }
        HealthVerdict::Ok
    }

    /// Registered nodes, in ascending id order (deterministic).
    pub fn registered(&self) -> impl Iterator<Item = u32> + '_ {
        self.nodes.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn agg() -> HealthAggregator {
        HealthAggregator::new(HealthConfig::default())
    }

    fn secs(s: u64) -> SimTime {
        SimTime(s * polaris_simnet::time::PS_PER_SEC)
    }

    #[test]
    fn unregistered_nodes_are_ok() {
        let a = agg();
        assert_eq!(a.verdict(7, secs(1_000)), HealthVerdict::Ok);
    }

    #[test]
    fn silence_escalates_suspect_then_failed() {
        let mut a = agg();
        a.register(1, secs(0));
        assert_eq!(a.verdict(1, secs(10)), HealthVerdict::Ok);
        // ≥ 2 periods of silence: suspect.
        assert_eq!(a.verdict(1, secs(20)), HealthVerdict::Suspect);
        // ≥ missed_threshold periods: failed.
        assert_eq!(a.verdict(1, secs(30)), HealthVerdict::Failed);
        // A heartbeat recovers the verdict completely.
        a.note_heartbeat(1, secs(31));
        assert_eq!(a.verdict(1, secs(35)), HealthVerdict::Ok);
    }

    #[test]
    fn link_faults_alone_reach_suspect_not_failed() {
        let mut a = agg();
        a.register(2, secs(0));
        for i in 0..3 {
            a.note_heartbeat(2, secs(10 * i + 5));
            a.note_link_fault(2, secs(10 * i + 6));
        }
        let now = secs(30);
        a.note_heartbeat(2, now);
        assert_eq!(a.recent_faults(2, now), 3);
        assert_eq!(a.verdict(2, now), HealthVerdict::Suspect);
    }

    #[test]
    fn link_faults_age_out_of_the_window() {
        let mut a = agg();
        a.register(3, secs(0));
        a.note_link_fault(3, secs(1));
        a.note_link_fault(3, secs(2));
        a.note_link_fault(3, secs(3));
        a.note_heartbeat(3, secs(100));
        // 97+ seconds later, all three faults left the 60s window.
        assert_eq!(a.recent_faults(3, secs(100)), 0);
        assert_eq!(a.verdict(3, secs(100)), HealthVerdict::Ok);
    }

    #[test]
    fn detector_timeout_math_carries_over() {
        let d = crate::health::DetectorConfig { period: 5.0, missed_threshold: 4, ..Default::default() };
        let cfg = HealthConfig::from_detector(&d, SimDuration::from_secs(60), 3);
        assert_eq!(cfg.timeout(), SimDuration::from_secs(20));
        assert_eq!(cfg.timeout().as_secs(), d.timeout());
    }
}
