//! The fleet under churn: the lifecycle control plane run as a
//! discrete-event workload.
//!
//! [`run_fleet`] wires the reconciling [`Controller`], the fused
//! [`HealthAggregator`], and a multi-tenant synthetic job stream onto
//! the simnet engine, then disturbs the fleet with a seeded, JSON-
//! replayable [`FaultPlan`] built by [`churn_plan`] from the chaos
//! plane's node-scoped primitives (crash / flap / degrade). Scheduler
//! admission is gated on lifecycle state — only `Healthy` nodes accept
//! new work, `Degraded` nodes drain (running jobs finish, nothing new
//! lands), and a node entering `Breakfix` evicts its job, which
//! requeues at the head of the queue with checkpoint-restart
//! accounting (progress since the last checkpoint is lost; the next
//! run pays a restart cost).
//!
//! Scale is affordable because undisturbed nodes are cheap: heartbeat
//! streams are materialized only for nodes the churn plan names, so a
//! 100 k-node fleet costs two bootstrap operations per clean node plus
//! per-event work proportional to the disturbed set. Everything is
//! driven by `SplitMix64` streams derived from the config seed, so a
//! run is a pure function of `(config, plan)` — the property both the
//! F12 parallel sweep and the sentinel lifecycle ledger rely on.
//!
//! Ground truth stays outside the control plane: the simulation knows
//! (from the plan) when a node is really crashed, which is what makes
//! the **false-evict rate** measurable — an eviction of a node the
//! plan says was alive is a detector mistake, not a repair.

use super::controller::{Controller, ControllerConfig, StartedOp};
use super::health::{HealthAggregator, HealthConfig};
use super::state::NodeState;
use crate::sched::{plan_admissions, Policy, QueuedReq, RunningRes};
use polaris_obs::{Counter, Obs};
use polaris_simnet::engine::{self, Scheduler, World};
use polaris_simnet::fault::{FaultKind, FaultPlan, FaultScope};
use polaris_simnet::rng::SplitMix64;
use polaris_simnet::time::{SimDuration, SimTime, PS_PER_SEC};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};

/// Shape of a churn schedule: how many disturbances land on the fleet
/// inside the onset window, and the crash / flap / degrade mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnSpec {
    /// Disturbed nodes (each event picks a distinct victim).
    pub events: u32,
    /// Onsets are drawn uniformly inside this window (its tail sixth is
    /// left clear of the start so victims are in service when hit).
    pub window: SimDuration,
    /// Relative weight of fail-stop crashes.
    pub crash_w: u32,
    /// Relative weight of NIC flaps (periodic down/up windows).
    pub flap_w: u32,
    /// Relative weight of burst-loss link degradation.
    pub degrade_w: u32,
}

impl Default for ChurnSpec {
    fn default() -> Self {
        ChurnSpec {
            events: 8,
            window: SimDuration::from_secs(1800),
            crash_w: 2,
            flap_w: 1,
            degrade_w: 1,
        }
    }
}

/// Build a seeded churn plan: `spec.events` distinct victims, each hit
/// by one crash, flap, or degrade rule. Pure — the same arguments
/// always yield the same plan, and the plan round-trips through
/// [`FaultPlan::to_json`] for replay.
pub fn churn_plan(seed: u64, fleet_nodes: u32, spec: &ChurnSpec) -> FaultPlan {
    let mut rng = SplitMix64::new(seed ^ 0x6368_7572_6E70_6C61); // "churnpla"
    let mut plan = FaultPlan::new(seed);
    let events = spec.events.min(fleet_nodes);
    let total_w = (spec.crash_w + spec.flap_w + spec.degrade_w).max(1) as u64;
    let mut used = vec![false; fleet_nodes as usize];
    // Leave the first sixth of the window clear so victims have
    // provisioned and entered service before the disturbance lands.
    let lo = spec.window.as_ps() / 6;
    let span = (spec.window.as_ps() - lo).max(1);
    for _ in 0..events {
        let node = loop {
            let n = rng.next_below(fleet_nodes as u64) as u32;
            if !used[n as usize] {
                break n;
            }
        };
        used[node as usize] = true;
        let onset = SimTime(lo + rng.next_below(span));
        let w = rng.next_below(total_w) as u32;
        plan = if w < spec.crash_w {
            plan.crash_node(node, onset)
        } else if w < spec.crash_w + spec.flap_w {
            // Down windows exceed the heartbeat timeout so a flap is
            // always observable as `Failed`, never only as jitter.
            let down = (35 + rng.next_below(60)) * PS_PER_SEC;
            let up = (60 + rng.next_below(120)) * PS_PER_SEC;
            plan.flap_node(node, onset, down, up)
        } else {
            // Heavy burst loss: long bad runs that shed most
            // heartbeats, surfacing as repeated link faults.
            let p_good_bad = 0.25 + 0.25 * rng.next_f64();
            let p_bad_good = 0.05 + 0.10 * rng.next_f64();
            let drop_bad = 0.85 + 0.10 * rng.next_f64();
            plan.degrade_node(node, p_good_bad, p_bad_good, 0.0, drop_bad)
        };
    }
    plan
}

/// Fleet experiment configuration. Defaults describe a small, fast run
/// suitable for tests; F12 scales `nodes` up to 100 k.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    pub nodes: u32,
    /// Hard stop for the simulation clock.
    pub horizon: SimDuration,
    pub seed: u64,
    /// Controller reconcile tick.
    pub reconcile_period: SimDuration,
    pub controller: ControllerConfig,
    pub health: HealthConfig,
    /// Jobs in the synthetic stream.
    pub jobs: u32,
    /// Tenants the stream is striped across.
    pub tenants: u32,
    /// Widths are uniform in `1..=max_job_width`.
    pub max_job_width: u32,
    pub min_runtime: SimDuration,
    pub max_runtime: SimDuration,
    /// Arrivals are uniform in `[0, arrival_window]`.
    pub arrival_window: SimDuration,
    /// Checkpoint cadence (`ZERO` = continuous, nothing ever lost).
    pub checkpoint_interval: SimDuration,
    /// Overhead added to a job's next run after an eviction.
    pub restart_cost: SimDuration,
    /// Admission policy — the *same* [`Policy`] the batch scheduler
    /// implements, routed through [`plan_admissions`].
    pub policy: Policy,
    /// Record the audit event log (the sentinel ledger's input).
    pub record_audit: bool,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            nodes: 256,
            horizon: SimDuration::from_secs(5400),
            seed: 0,
            reconcile_period: SimDuration::from_secs(15),
            controller: ControllerConfig::default(),
            health: HealthConfig::default(),
            jobs: 64,
            tenants: 4,
            max_job_width: 8,
            min_runtime: SimDuration::from_secs(120),
            max_runtime: SimDuration::from_secs(900),
            arrival_window: SimDuration::from_secs(1200),
            checkpoint_interval: SimDuration::from_secs(120),
            restart_cost: SimDuration::from_secs(30),
            policy: Policy::EasyBackfill,
            record_audit: false,
        }
    }
}

/// One entry of the fleet's audit log: the exact stream the sentinel
/// lifecycle-conservation ledger replays.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AuditEvent {
    Transition { at_ps: u64, node: u32, from: NodeState, to: NodeState },
    JobStart { at_ps: u64, job: u32, nodes: Vec<u32> },
    JobEvict { at_ps: u64, job: u32, node: u32 },
    JobEnd { at_ps: u64, job: u32 },
}

/// What one fleet run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    pub nodes: u32,
    pub disturbed: u32,
    /// Every node settled (`Healthy`/`Reclaim`, nothing in flight) and
    /// every disturbed node terminal at the end of the run.
    pub converged: bool,
    /// End-of-run census, indexed by [`NodeState::index`].
    pub census: [u32; 7],
    pub transitions: u64,
    /// Entries into `Breakfix` from a serving state.
    pub evictions: u64,
    /// Evictions of nodes the plan says were alive at that instant.
    pub false_evictions: u64,
    pub requeues: u64,
    pub jobs_total: u32,
    pub jobs_completed: u32,
    /// Mean queue wait from arrival to first start, over started jobs.
    pub mean_wait_s: f64,
    /// Mean / max control-plane convergence: disturbance onset to the
    /// disturbed node's final transition, over settled disturbed nodes.
    pub conv_mean_s: f64,
    pub conv_max_s: f64,
    /// Useful node-time as a percentage of consumed node-time.
    pub goodput_pct: f64,
    /// Node-seconds burned on lost progress and restart overhead.
    pub lost_node_s: f64,
    pub end_ps: u64,
    /// Present when `record_audit` was set.
    pub audit: Vec<AuditEvent>,
}

/// The event alphabet of the fleet simulation (public because it is
/// [`FleetSim`]'s associated `World::Event` type; constructed only
/// internally).
#[derive(Debug, Clone, Copy)]
pub enum FleetEvent {
    OpDone { node: u32, epoch: u32 },
    OpTimeout { node: u32, epoch: u32 },
    Heartbeat { node: u32 },
    Reconcile,
    Arrival { job: u32 },
    JobDone { job: u32, epoch: u32 },
}

/// Per-victim ground truth, parsed once from the plan so the hot path
/// never scans the rule list.
#[derive(Debug, Clone, Copy)]
struct Disturbance {
    crash_at: Option<u64>,
    /// `(first_down_ps, down_ps, up_ps)`.
    flap: Option<(u64, u64, u64)>,
    /// Gilbert–Elliott `(p_good_bad, p_bad_good, drop_good, drop_bad)`.
    ge: Option<(f64, f64, f64, f64)>,
    ge_bad: bool,
    onset_ps: u64,
    last_change_ps: Option<u64>,
}

#[derive(Debug, Clone)]
struct JobRec {
    width: u32,
    #[allow(dead_code)]
    tenant: u32,
    total: SimDuration,
    /// The user's runtime estimate (>= `total`; what backfill plans
    /// against — the scheduler never sees true runtimes).
    estimate: SimDuration,
    arrival: SimTime,
    /// Checkpointed (durable) progress.
    durable: SimDuration,
    /// Overhead the next run pays before doing useful work.
    restart_cost: SimDuration,
    running_since: Option<SimTime>,
    /// Bumped on every (re)start; stale `JobDone` events are ignored.
    epoch: u32,
    nodes: Vec<u32>,
    done: bool,
    started_once: bool,
}

/// Pre-resolved metric handles (handles are `Arc`-backed; resolving
/// once keeps the per-event cost flat at 100 k-node scale).
struct Metrics {
    /// One counter per edge of [`NodeState::EDGES`], same order.
    edges: Vec<Counter>,
    evict_true: Counter,
    evict_false: Counter,
    requeues: Counter,
    hb_ok: Counter,
    hb_drop: Counter,
    link_faults: Counter,
    jobs_completed: Counter,
    conv_ms: polaris_obs::Histogram,
}

impl Metrics {
    fn new(obs: &Obs) -> Self {
        Metrics {
            edges: NodeState::EDGES
                .iter()
                .map(|&(f, t)| {
                    obs.counter(
                        "lifecycle_transitions_total",
                        &[("from", f.name()), ("to", t.name())],
                    )
                })
                .collect(),
            evict_true: obs.counter("lifecycle_evictions_total", &[("kind", "true_positive")]),
            evict_false: obs.counter("lifecycle_evictions_total", &[("kind", "false_positive")]),
            requeues: obs.counter("lifecycle_requeues_total", &[]),
            hb_ok: obs.counter("lifecycle_heartbeats_total", &[("result", "ok")]),
            hb_drop: obs.counter("lifecycle_heartbeats_total", &[("result", "dropped")]),
            link_faults: obs.counter("lifecycle_link_faults_total", &[]),
            jobs_completed: obs.counter("lifecycle_jobs_completed_total", &[]),
            conv_ms: obs.histogram("lifecycle_convergence_ms", &[]),
        }
    }
}

/// The fleet world: controller + health + jobs, driven by the simnet
/// engine. Construct via [`run_fleet`].
pub struct FleetSim {
    cfg: FleetConfig,
    controller: Controller,
    health: HealthAggregator,
    disturbed: BTreeMap<u32, Disturbance>,
    /// RNG for heartbeat-loss draws (one stream, event-order stable).
    hb_rng: SplitMix64,
    /// Heartbeat stream live per node (only ever set for victims).
    hb_live: Vec<bool>,
    jobs: Vec<JobRec>,
    queue: VecDeque<u32>,
    /// Jobs currently holding nodes (the planner's reservation view).
    running: Vec<u32>,
    /// Free-list of schedulable nodes, with lazy deletion.
    free: Vec<u32>,
    in_free: Vec<bool>,
    /// Exact count of `Healthy` ∧ unoccupied nodes.
    avail: u32,
    node_job: Vec<Option<u32>>,
    audit: Vec<AuditEvent>,
    metrics: Option<Metrics>,
    // Tallies.
    transitions: u64,
    evictions: u64,
    false_evictions: u64,
    requeues: u64,
    jobs_completed: u32,
    /// First-start queue-wait picoseconds, and how many jobs started.
    wait_ps: u128,
    waited: u32,
    /// Node-picoseconds consumed by runs / banked as durable progress.
    consumed_ps: u128,
    useful_ps: u128,
}

/// What the scheduler believes one more run of this job costs: the
/// restart overhead plus the *estimated* (not true) remaining work.
fn est_remaining(rec: &JobRec) -> SimDuration {
    let left = rec.estimate.as_ps().saturating_sub(rec.durable.as_ps()).max(1);
    rec.restart_cost + SimDuration::from_ps(left)
}

fn secs_of(d: SimDuration) -> f64 {
    d.as_ps() as f64 / PS_PER_SEC as f64
}

impl FleetSim {
    fn crashed(&self, node: u32, now: SimTime) -> bool {
        self.disturbed
            .get(&node)
            .and_then(|d| d.crash_at)
            .is_some_and(|at| at <= now.as_ps())
    }

    /// Schedule the controller's new operations and absorb its freshly
    /// logged transitions into occupancy, audit, and metrics.
    fn after_controller(&mut self, sched: &mut Scheduler<FleetEvent>, ops: Vec<StartedOp>) {
        self.process_transitions(sched);
        for op in ops {
            sched.after(op.delay, FleetEvent::OpDone { node: op.node, epoch: op.epoch });
            if let Some(t) = op.timeout {
                sched.after(t, FleetEvent::OpTimeout { node: op.node, epoch: op.epoch });
            }
        }
        self.dispatch(sched);
    }

    fn process_transitions(&mut self, sched: &mut Scheduler<FleetEvent>) {
        let fresh: Vec<_> = self.controller.drain_transitions().to_vec();
        for t in fresh {
            self.transitions += 1;
            if let Some(m) = &self.metrics {
                if let Some(i) = NodeState::EDGES.iter().position(|&e| e == (t.from, t.to)) {
                    m.edges[i].inc();
                }
            }
            if let Some(d) = self.disturbed.get_mut(&t.node) {
                d.last_change_ps = Some(t.at_ps);
            }
            match (t.from, t.to) {
                (_, NodeState::Healthy) => {
                    // Entering service: admissible and, for victims,
                    // the heartbeat stream starts with first admission.
                    // A draining node that recovers while still running
                    // its job stays occupied — not free for new work.
                    if self.node_job[t.node as usize].is_none() {
                        self.mark_available(t.node);
                    }
                    self.start_heartbeats(sched, t.node);
                }
                (NodeState::Healthy, NodeState::Degraded)
                    // Draining: running work continues, nothing new.
                    if self.node_job[t.node as usize].is_none() => {
                        self.mark_unavailable(t.node);
                    }
                (from, NodeState::Breakfix) => {
                    let serving = matches!(from, NodeState::Healthy | NodeState::Degraded);
                    if serving {
                        self.evictions += 1;
                        let false_evict = !self.crashed(t.node, SimTime(t.at_ps));
                        if false_evict {
                            self.false_evictions += 1;
                        }
                        if let Some(m) = &self.metrics {
                            if false_evict { &m.evict_false } else { &m.evict_true }.inc();
                        }
                        if let Some(job) = self.node_job[t.node as usize] {
                            // The evict is audited before the transition
                            // record: occupancy must be clear by the time
                            // the node has left its serving state.
                            self.evict_job(sched, job, t.node, t.at_ps);
                        } else if from == NodeState::Healthy {
                            self.mark_unavailable(t.node);
                        }
                    }
                }
                _ => {}
            }
            if self.cfg.record_audit {
                self.audit.push(AuditEvent::Transition {
                    at_ps: t.at_ps,
                    node: t.node,
                    from: t.from,
                    to: t.to,
                });
            }
        }
    }

    fn mark_available(&mut self, node: u32) {
        debug_assert!(self.node_job[node as usize].is_none());
        if !self.in_free[node as usize] {
            self.in_free[node as usize] = true;
            self.free.push(node);
            self.avail += 1;
        }
    }

    fn mark_unavailable(&mut self, node: u32) {
        // Lazy deletion: the stale free-list entry is skipped at pop.
        if self.in_free[node as usize] {
            self.in_free[node as usize] = false;
            self.avail -= 1;
        }
    }

    fn start_heartbeats(&mut self, sched: &mut Scheduler<FleetEvent>, node: u32) {
        if !self.disturbed.contains_key(&node) || self.hb_live[node as usize] {
            return;
        }
        self.hb_live[node as usize] = true;
        let now = sched.now();
        self.health.register(node, now);
        if let Some(d) = self.disturbed.get_mut(&node) {
            // A disturbance can only be observed once the node serves.
            d.onset_ps = d.onset_ps.max(now.as_ps());
        }
        let period = self.health.config().heartbeat_period.as_ps().max(1);
        let stagger = SimDuration::from_ps(self.hb_rng.next_below(period));
        sched.after(stagger, FleetEvent::Heartbeat { node });
    }

    fn heartbeat(&mut self, sched: &mut Scheduler<FleetEvent>, node: u32) {
        let now = sched.now();
        // Dead senders and retired nodes end their streams.
        if self.controller.state(node).terminal() || self.crashed(node, now) {
            self.hb_live[node as usize] = false;
            return;
        }
        let d = self.disturbed.get_mut(&node).expect("only victims stream heartbeats");
        let mut delivered = true;
        let mut link_fault = false;
        if let Some((first, down, up)) = d.flap {
            let t = now.as_ps();
            let period = down + up;
            if t >= first && period > 0 && (t - first) % period < down {
                delivered = false;
                link_fault = true; // carrier loss: the NIC sees it
            }
        }
        if delivered && now.as_ps() >= d.onset_ps {
            if let Some((p_good_bad, p_bad_good, drop_good, drop_bad)) = d.ge {
                let flip =
                    self.hb_rng.chance(if d.ge_bad { p_bad_good } else { p_good_bad });
                if flip {
                    d.ge_bad = !d.ge_bad;
                }
                let p = if d.ge_bad { drop_bad } else { drop_good };
                if self.hb_rng.chance(p) {
                    delivered = false;
                    link_fault = true; // error completion on the node NIC
                }
            }
        }
        if delivered {
            self.health.note_heartbeat(node, now);
            if let Some(m) = &self.metrics {
                m.hb_ok.inc();
            }
        } else {
            if link_fault {
                self.health.note_link_fault(node, now);
                if let Some(m) = &self.metrics {
                    m.link_faults.inc();
                }
            }
            if let Some(m) = &self.metrics {
                m.hb_drop.inc();
            }
        }
        sched.after(self.health.config().heartbeat_period, FleetEvent::Heartbeat { node });
    }

    fn reconcile(&mut self, sched: &mut Scheduler<FleetEvent>) {
        let now = sched.now();
        let nodes: Vec<u32> = self.health.registered().collect();
        let mut ops = Vec::new();
        for node in nodes {
            let verdict = self.health.verdict(node, now);
            ops.extend(self.controller.observe(now, node, verdict));
        }
        self.after_controller(sched, ops);
        // Keep ticking while anything can still change state: a victim
        // that is not yet terminal can raise new signals (a crashed but
        // still-`Healthy` node is detected by exactly this tick).
        let quiescent = self.controller.all_settled()
            && self.disturbed.keys().all(|&n| self.controller.state(n).terminal());
        if !quiescent {
            sched.after(self.cfg.reconcile_period, FleetEvent::Reconcile);
        }
    }

    /// Admission: route the queue through the configured
    /// [`Policy`] via [`plan_admissions`] — the *same* planner the batch
    /// scheduler runs — instead of the strict-FCFS loop this method
    /// used to hard-code (which silently ignored `cfg.policy` and let
    /// a wide requeued head block the whole machine).
    fn dispatch(&mut self, sched: &mut Scheduler<FleetEvent>) {
        let now = sched.now();
        while matches!(self.queue.front(), Some(&j) if self.jobs[j as usize].done) {
            self.queue.pop_front();
        }
        if self.queue.is_empty() || self.avail == 0 {
            return;
        }
        // The planner sees user estimates, never true runtimes.
        let queued: Vec<QueuedReq> = self
            .queue
            .iter()
            .map(|&j| {
                let rec = &self.jobs[j as usize];
                debug_assert!(!rec.done, "done jobs never sit in the queue");
                QueuedReq { width: rec.width, estimate: secs_of(est_remaining(rec)) }
            })
            .collect();
        let running: Vec<RunningRes> = self
            .running
            .iter()
            .map(|&j| {
                let rec = &self.jobs[j as usize];
                let since = rec.running_since.expect("running-set job has a start time");
                // `durable`/`restart_cost` are only updated at evict or
                // completion, so this is the estimate as of job start.
                RunningRes {
                    width: rec.width,
                    est_end: secs_of(since.since(SimTime::ZERO) + est_remaining(rec)),
                }
            })
            .collect();
        let now_s = now.as_ps() as f64 / PS_PER_SEC as f64;
        let picks = plan_admissions(self.cfg.policy, now_s, &queued, &running, self.avail);
        let admitted: Vec<u32> = picks.iter().map(|&i| self.queue[i]).collect();
        for &i in picks.iter().rev() {
            self.queue.remove(i);
        }
        for job in admitted {
            self.start_job(sched, now, job);
        }
    }

    fn start_job(&mut self, sched: &mut Scheduler<FleetEvent>, now: SimTime, job: u32) {
        let width = self.jobs[job as usize].width;
        debug_assert!(self.avail >= width, "planner admitted past capacity");
        let mut got = Vec::with_capacity(width as usize);
        while got.len() < width as usize {
            let n = self.free.pop().expect("avail said enough free nodes");
            if !self.in_free[n as usize] {
                continue; // lazily deleted entry
            }
            debug_assert!(self.controller.state(n).schedulable());
            debug_assert!(self.node_job[n as usize].is_none());
            self.in_free[n as usize] = false;
            self.avail -= 1;
            self.node_job[n as usize] = Some(job);
            got.push(n);
        }
        let rec = &mut self.jobs[job as usize];
        let first_wait = (!rec.started_once).then(|| now.since(rec.arrival));
        rec.started_once = true;
        rec.epoch = rec.epoch.wrapping_add(1);
        rec.running_since = Some(now);
        rec.nodes = got.clone();
        let run = rec.restart_cost + (rec.total - rec.durable);
        sched.after(run, FleetEvent::JobDone { job, epoch: rec.epoch });
        if let Some(w) = first_wait {
            self.wait_ps += w.as_ps() as u128;
            self.waited += 1;
        }
        self.running.push(job);
        if self.cfg.record_audit {
            self.audit.push(AuditEvent::JobStart { at_ps: now.as_ps(), job, nodes: got });
        }
    }

    /// A serving node under `job` left for `Breakfix`: stop the run,
    /// bank checkpointed progress, release the surviving nodes, and
    /// requeue at the head of the line.
    fn evict_job(&mut self, _sched: &mut Scheduler<FleetEvent>, job: u32, leaving: u32, at_ps: u64) {
        let tau = self.cfg.checkpoint_interval.as_ps();
        let restart = self.cfg.restart_cost;
        let rec = &mut self.jobs[job as usize];
        let since = rec.running_since.take().expect("evicted job was running");
        let elapsed = SimTime(at_ps).since(since);
        // Restart overhead produces no progress; past it, only whole
        // checkpoint intervals survive the eviction.
        let work = elapsed - rec.restart_cost;
        // tau == 0 means continuous checkpointing: everything survives.
        let durable_gain = match work.as_ps().checked_div(tau) {
            Some(intervals) => SimDuration::from_ps(intervals * tau),
            None => work,
        };
        let remaining = rec.total - rec.durable;
        let durable_gain = durable_gain.min(remaining);
        rec.durable += durable_gain;
        rec.restart_cost = restart;
        rec.epoch = rec.epoch.wrapping_add(1); // fence the in-flight JobDone
        let width = rec.width as u128;
        self.consumed_ps += width * elapsed.as_ps() as u128;
        self.useful_ps += width * durable_gain.as_ps() as u128;
        let nodes = std::mem::take(&mut rec.nodes);
        for n in nodes {
            self.node_job[n as usize] = None;
            if n != leaving && self.controller.state(n).schedulable() {
                self.mark_available(n);
            }
        }
        self.running.retain(|&j| j != job);
        self.requeues += 1;
        if let Some(m) = &self.metrics {
            m.requeues.inc();
        }
        if self.cfg.record_audit {
            self.audit.push(AuditEvent::JobEvict { at_ps, job, node: leaving });
        }
        self.queue.push_front(job);
    }

    fn job_done(&mut self, sched: &mut Scheduler<FleetEvent>, job: u32, epoch: u32) {
        let now = sched.now();
        let rec = &mut self.jobs[job as usize];
        if rec.done || rec.epoch != epoch {
            return; // a stale completion from before an eviction
        }
        let since = rec.running_since.take().expect("completing job was running");
        let elapsed = now.since(since);
        let width = rec.width as u128;
        self.consumed_ps += width * elapsed.as_ps() as u128;
        self.useful_ps += width * (rec.total - rec.durable).as_ps() as u128;
        rec.durable = rec.total;
        rec.done = true;
        let nodes = std::mem::take(&mut rec.nodes);
        self.running.retain(|&j| j != job);
        self.jobs_completed += 1;
        if let Some(m) = &self.metrics {
            m.jobs_completed.inc();
        }
        if self.cfg.record_audit {
            self.audit.push(AuditEvent::JobEnd { at_ps: now.as_ps(), job });
        }
        for n in nodes {
            self.node_job[n as usize] = None;
            if self.controller.state(n).schedulable() {
                self.mark_available(n);
            }
        }
        self.dispatch(sched);
    }
}

impl World for FleetSim {
    type Event = FleetEvent;

    fn handle(&mut self, sched: &mut Scheduler<FleetEvent>, event: FleetEvent) {
        match event {
            FleetEvent::OpDone { node, epoch } => {
                let Some(kind) = self.controller.pending_op(node, epoch) else {
                    return;
                };
                // A node-side operation never completes on a dead node;
                // its timeout will escalate instead.
                if kind.node_side() && self.crashed(node, sched.now()) {
                    return;
                }
                let verdict = self.health.verdict(node, sched.now());
                let ops = self.controller.op_done(sched.now(), node, epoch, verdict);
                self.after_controller(sched, ops);
            }
            FleetEvent::OpTimeout { node, epoch } => {
                let ops = self.controller.op_timeout(sched.now(), node, epoch);
                self.after_controller(sched, ops);
            }
            FleetEvent::Heartbeat { node } => self.heartbeat(sched, node),
            FleetEvent::Reconcile => self.reconcile(sched),
            FleetEvent::Arrival { job } => {
                self.queue.push_back(job);
                self.dispatch(sched);
            }
            FleetEvent::JobDone { job, epoch } => self.job_done(sched, job, epoch),
        }
    }
}

/// Parse the plan's node-scoped rules into per-victim ground truth.
fn disturbances(plan: &FaultPlan, fleet_nodes: u32) -> BTreeMap<u32, Disturbance> {
    let mut map = BTreeMap::new();
    for rule in &plan.rules {
        let FaultScope::Node(node) = rule.scope else { continue };
        if node >= fleet_nodes {
            continue;
        }
        let d = map.entry(node).or_insert(Disturbance {
            crash_at: None,
            flap: None,
            ge: None,
            ge_bad: false,
            onset_ps: u64::MAX,
            last_change_ps: None,
        });
        match rule.kind {
            FaultKind::Crash { at_ps } => {
                d.crash_at = Some(d.crash_at.map_or(at_ps, |c: u64| c.min(at_ps)));
                d.onset_ps = d.onset_ps.min(at_ps);
            }
            FaultKind::Flap { first_down_ps, down_ps, up_ps } => {
                d.flap = Some((first_down_ps, down_ps, up_ps));
                d.onset_ps = d.onset_ps.min(first_down_ps);
            }
            FaultKind::GilbertElliott { p_good_bad, p_bad_good, drop_good, drop_bad } => {
                d.ge = Some((p_good_bad, p_bad_good, drop_good, drop_bad));
                d.onset_ps = 0;
            }
            _ => {}
        }
    }
    for d in map.values_mut() {
        if d.onset_ps == u64::MAX {
            d.onset_ps = 0;
        }
    }
    map
}

/// Run one fleet experiment: a pure function of `(cfg, plan)`. When an
/// observability plane is supplied, lifecycle counters, the end-of-run
/// census, and convergence metrics are published into it.
pub fn run_fleet(cfg: FleetConfig, plan: &FaultPlan, obs: Option<&Obs>) -> FleetReport {
    let n = cfg.nodes as usize;
    let mut job_rng = SplitMix64::new(cfg.seed ^ 0x666C_6565_746A_6F62); // "fleetjob"
    let width_bound = cfg.max_job_width.clamp(1, cfg.nodes) as u64;
    let runtime_span = cfg.max_runtime.as_ps().saturating_sub(cfg.min_runtime.as_ps()).max(1);
    let mut jobs = Vec::with_capacity(cfg.jobs as usize);
    let mut arrivals = Vec::with_capacity(cfg.jobs as usize);
    // Estimates ride a separate stream so the job population (widths,
    // runtimes, tenants, arrivals) is identical across policy knobs.
    let mut est_rng = SplitMix64::new(cfg.seed ^ 0x6573_7469_6D61_7465); // "estimate"
    for _ in 0..cfg.jobs {
        let width = 1 + job_rng.next_below(width_bound) as u32;
        let total = cfg.min_runtime + SimDuration::from_ps(job_rng.next_below(runtime_span));
        let tenant = job_rng.next_below(cfg.tenants.max(1) as u64) as u32;
        let arrival = SimTime(job_rng.next_below(cfg.arrival_window.as_ps().max(1)));
        arrivals.push(arrival);
        // Users overestimate: 1–3× the true runtime, never under.
        let estimate =
            SimDuration::from_ps((total.as_ps() as f64 * (1.0 + 2.0 * est_rng.next_f64())) as u64);
        jobs.push(JobRec {
            width,
            tenant,
            total,
            estimate,
            arrival,
            durable: SimDuration::ZERO,
            restart_cost: SimDuration::ZERO,
            running_since: None,
            epoch: 0,
            nodes: Vec::new(),
            done: false,
            started_once: false,
        });
    }

    let mut sim = FleetSim {
        controller: Controller::new(cfg.controller, cfg.nodes, cfg.seed),
        health: HealthAggregator::new(cfg.health),
        disturbed: disturbances(plan, cfg.nodes),
        hb_rng: SplitMix64::new(cfg.seed ^ plan.seed ^ 0x6865_6172_7462_6561), // "heartbea"
        hb_live: vec![false; n],
        jobs,
        queue: VecDeque::new(),
        running: Vec::new(),
        free: Vec::with_capacity(n),
        in_free: vec![false; n],
        avail: 0,
        node_job: vec![None; n],
        audit: Vec::new(),
        metrics: obs.map(Metrics::new),
        transitions: 0,
        evictions: 0,
        false_evictions: 0,
        requeues: 0,
        jobs_completed: 0,
        wait_ps: 0,
        waited: 0,
        consumed_ps: 0,
        useful_ps: 0,
        cfg,
    };

    let mut sched: Scheduler<FleetEvent> = Scheduler::with_capacity(n + cfg.jobs as usize);
    for (job, at) in arrivals.into_iter().enumerate() {
        sched.at(at, FleetEvent::Arrival { job: job as u32 });
    }
    sched.after(cfg.reconcile_period, FleetEvent::Reconcile);
    let boot = sim.controller.bootstrap(SimTime::ZERO);
    sim.after_controller(&mut sched, boot);
    let stats = engine::run(&mut sim, &mut sched, Some(SimTime::ZERO + cfg.horizon));

    // Convergence: onset → last transition, per settled victim.
    let mut conv_sum = 0.0;
    let mut conv_max = 0.0_f64;
    let mut conv_n = 0u32;
    for (&node, d) in &sim.disturbed {
        if !sim.controller.state(node).settled() {
            continue;
        }
        if let Some(last) = d.last_change_ps {
            let conv_s = last.saturating_sub(d.onset_ps) as f64 / PS_PER_SEC as f64;
            conv_sum += conv_s;
            conv_max = conv_max.max(conv_s);
            conv_n += 1;
            if let Some(m) = &sim.metrics {
                m.conv_ms.record((conv_s * 1e3) as u64);
            }
        }
    }
    let census = sim.controller.census();
    if let Some(obs) = obs {
        for &s in &NodeState::ALL {
            obs.gauge("lifecycle_census", &[("state", s.name())])
                .set(census[s.index()] as f64);
        }
        obs.gauge("lifecycle_goodput_pct", &[]).set(if sim.consumed_ps == 0 {
            100.0
        } else {
            100.0 * sim.useful_ps as f64 / sim.consumed_ps as f64
        });
    }
    let converged = sim.controller.all_settled()
        && sim.disturbed.keys().all(|&v| sim.controller.state(v).terminal());
    FleetReport {
        nodes: cfg.nodes,
        disturbed: sim.disturbed.len() as u32,
        converged,
        census,
        transitions: sim.transitions,
        evictions: sim.evictions,
        false_evictions: sim.false_evictions,
        requeues: sim.requeues,
        jobs_total: cfg.jobs,
        jobs_completed: sim.jobs_completed,
        mean_wait_s: if sim.waited > 0 {
            sim.wait_ps as f64 / sim.waited as f64 / PS_PER_SEC as f64
        } else {
            0.0
        },
        conv_mean_s: if conv_n > 0 { conv_sum / conv_n as f64 } else { 0.0 },
        conv_max_s: conv_max,
        goodput_pct: if sim.consumed_ps == 0 {
            100.0
        } else {
            100.0 * sim.useful_ps as f64 / sim.consumed_ps as f64
        },
        lost_node_s: (sim.consumed_ps - sim.useful_ps) as f64 / PS_PER_SEC as f64,
        end_ps: stats.end_time.as_ps(),
        audit: sim.audit,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> FleetConfig {
        FleetConfig {
            nodes: 32,
            jobs: 24,
            max_job_width: 4,
            horizon: SimDuration::from_secs(5400),
            record_audit: true,
            ..FleetConfig::default()
        }
    }

    #[test]
    fn quiet_fleet_converges_and_finishes_all_jobs() {
        let cfg = small_cfg();
        let plan = FaultPlan::new(1); // no churn
        let r = run_fleet(cfg, &plan, None);
        assert!(r.converged, "undisturbed fleet must settle: {r:?}");
        assert_eq!(r.census[NodeState::Healthy.index()], cfg.nodes);
        assert_eq!(r.jobs_completed, cfg.jobs);
        assert_eq!(r.evictions, 0);
        assert_eq!(r.requeues, 0);
        assert!((r.goodput_pct - 100.0).abs() < 1e-9, "no churn, no waste");
        // Exactly two transitions per node: Provision→Validate→Healthy.
        assert_eq!(r.transitions, 2 * cfg.nodes as u64);
    }

    #[test]
    fn crashed_node_is_detected_and_reclaimed() {
        let cfg = small_cfg();
        let plan = FaultPlan::new(2).crash_node(5, SimTime(600 * PS_PER_SEC));
        let r = run_fleet(cfg, &plan, None);
        assert!(r.converged, "{r:?}");
        assert_eq!(r.census[NodeState::Reclaim.index()], 1);
        assert_eq!(r.census[NodeState::Healthy.index()], cfg.nodes - 1);
        assert!(r.evictions >= 1);
        assert_eq!(r.false_evictions, 0, "crash evictions are true positives");
        assert_eq!(r.jobs_completed, cfg.jobs, "work rides out the crash");
    }

    #[test]
    fn flapping_node_costs_false_evictions_but_fleet_converges() {
        let cfg = small_cfg();
        let plan = FaultPlan::new(3).flap_node(
            9,
            SimTime(500 * PS_PER_SEC),
            45 * PS_PER_SEC, // down longer than the 30s heartbeat timeout
            90 * PS_PER_SEC,
        );
        let r = run_fleet(cfg, &plan, None);
        assert!(r.converged, "{r:?}");
        assert_eq!(r.census[NodeState::Reclaim.index()], 1, "budget retires the flapper");
        assert!(r.false_evictions >= 1, "a flapping node is alive when evicted");
        assert_eq!(r.false_evictions, r.evictions);
    }

    #[test]
    fn seeded_churn_run_is_deterministic() {
        let cfg = FleetConfig { seed: 11, ..small_cfg() };
        let spec = ChurnSpec { events: 5, ..ChurnSpec::default() };
        let plan = churn_plan(77, cfg.nodes, &spec);
        assert_eq!(plan, churn_plan(77, cfg.nodes, &spec), "plan is pure");
        let a = run_fleet(cfg, &plan, None);
        let b = run_fleet(cfg, &plan, None);
        assert_eq!(a, b, "same (cfg, plan) → identical report + audit log");
        assert_eq!(a.disturbed, 5);
    }

    #[test]
    fn churn_plan_round_trips_and_picks_distinct_victims() {
        let spec = ChurnSpec { events: 12, ..ChurnSpec::default() };
        let plan = churn_plan(5, 64, &spec);
        assert_eq!(FaultPlan::from_json(&plan.to_json()).unwrap(), plan);
        assert_eq!(plan.disturbed_nodes().len(), 12, "victims are distinct");
        for node in plan.disturbed_nodes() {
            assert!(node < 64);
        }
    }

    #[test]
    fn audit_log_respects_the_state_graph_and_occupancy() {
        let cfg = FleetConfig { seed: 3, ..small_cfg() };
        let plan = churn_plan(9, cfg.nodes, &ChurnSpec { events: 4, ..ChurnSpec::default() });
        let r = run_fleet(cfg, &plan, None);
        let mut state = vec![NodeState::Provision; cfg.nodes as usize];
        let mut occupant: Vec<Option<u32>> = vec![None; cfg.nodes as usize];
        assert!(!r.audit.is_empty());
        for ev in &r.audit {
            match ev {
                AuditEvent::Transition { node, from, to, .. } => {
                    assert_eq!(state[*node as usize], *from, "exactly-one-state");
                    assert!(NodeState::is_edge(*from, *to), "{from:?}→{to:?}");
                    if !matches!(to, NodeState::Healthy | NodeState::Degraded) {
                        assert_eq!(occupant[*node as usize], None, "evict precedes exit");
                    }
                    state[*node as usize] = *to;
                }
                AuditEvent::JobStart { job, nodes, .. } => {
                    for n in nodes {
                        assert_eq!(state[*n as usize], NodeState::Healthy, "admission gate");
                        assert_eq!(occupant[*n as usize], None);
                        occupant[*n as usize] = Some(*job);
                    }
                }
                AuditEvent::JobEvict { job, .. } | AuditEvent::JobEnd { job, .. } => {
                    for slot in occupant.iter_mut() {
                        if *slot == Some(*job) {
                            *slot = None;
                        }
                    }
                }
            }
        }
    }

    /// Regression for the FCFS bypass: `run_fleet` used to ignore
    /// `cfg.policy` and run a hard-coded strict-FCFS loop, so a wide
    /// requeued head blocked the whole machine. Routed through
    /// [`plan_admissions`], EASY backfill must produce a different —
    /// and shorter — mean queue wait than FCFS on the identical job
    /// population and churn plan.
    #[test]
    fn backfill_policy_beats_fcfs_under_churn() {
        let base = FleetConfig {
            nodes: 32,
            jobs: 64,
            max_job_width: 24, // wide jobs head-block a 32-node fleet
            arrival_window: SimDuration::from_secs(600),
            horizon: SimDuration::from_secs(40_000),
            seed: 11,
            ..FleetConfig::default()
        };
        let plan = churn_plan(77, base.nodes, &ChurnSpec { events: 5, ..ChurnSpec::default() });
        let fcfs = run_fleet(FleetConfig { policy: Policy::Fcfs, ..base }, &plan, None);
        let easy = run_fleet(FleetConfig { policy: Policy::EasyBackfill, ..base }, &plan, None);
        assert_eq!(fcfs.jobs_completed, base.jobs, "horizon covers the FCFS schedule: {fcfs:?}");
        assert_eq!(easy.jobs_completed, base.jobs, "{easy:?}");
        assert!(
            easy.mean_wait_s < fcfs.mean_wait_s,
            "EASY must backfill around wide heads: easy {:.1}s vs fcfs {:.1}s",
            easy.mean_wait_s,
            fcfs.mean_wait_s
        );
    }

    /// Regression (found by the sentinel lifecycle ledger): a draining
    /// `Degraded` node that recovers to `Healthy` while its job is
    /// still running must NOT re-enter the free list — doing so
    /// double-books the node for a second job.
    #[test]
    fn degraded_node_recovering_mid_job_is_not_double_booked() {
        // Long jobs keep every node occupied; one node rides a bursty
        // Gilbert–Elliott link so it bounces Degraded⇄Healthy many
        // times while its job is still holding it.
        let cfg = FleetConfig {
            nodes: 8,
            jobs: 16,
            max_job_width: 1,
            min_runtime: SimDuration::from_secs(2400),
            max_runtime: SimDuration::from_secs(2400),
            arrival_window: SimDuration::from_secs(60),
            horizon: SimDuration::from_secs(10_800),
            record_audit: true,
            ..FleetConfig::default()
        };
        let plan = FaultPlan::new(4).degrade_node(2, 0.3, 0.4, 0.0, 0.7);
        let r = run_fleet(cfg, &plan, None);
        let mut state = vec![NodeState::Provision; cfg.nodes as usize];
        let mut occupant: Vec<Option<u32>> = vec![None; cfg.nodes as usize];
        let mut recovered_occupied = false;
        for ev in &r.audit {
            match ev {
                AuditEvent::Transition { node, from, to, .. } => {
                    if (*from, *to) == (NodeState::Degraded, NodeState::Healthy)
                        && occupant[*node as usize].is_some()
                    {
                        recovered_occupied = true;
                    }
                    state[*node as usize] = *to;
                }
                AuditEvent::JobStart { job, nodes, .. } => {
                    for n in nodes {
                        assert_eq!(state[*n as usize], NodeState::Healthy, "admission gate");
                        assert_eq!(
                            occupant[*n as usize],
                            None,
                            "job {job} double-booked node {n}"
                        );
                        occupant[*n as usize] = Some(*job);
                    }
                }
                AuditEvent::JobEvict { job, .. } | AuditEvent::JobEnd { job, .. } => {
                    for slot in occupant.iter_mut() {
                        if *slot == Some(*job) {
                            *slot = None;
                        }
                    }
                }
            }
        }
        assert!(
            recovered_occupied,
            "scenario must exercise the occupied Degraded→Healthy path: {r:?}"
        );
    }

    #[test]
    fn eviction_checkpoint_accounting_loses_only_the_tail() {
        // One job on one victim node; crash mid-run. The requeued job
        // must still finish, with goodput < 100 (lost tail + restart).
        let cfg = FleetConfig {
            nodes: 8,
            jobs: 1,
            max_job_width: 1,
            min_runtime: SimDuration::from_secs(600),
            max_runtime: SimDuration::from_secs(601),
            arrival_window: SimDuration::from_secs(1),
            record_audit: true,
            ..FleetConfig::default()
        };
        // Crash whichever node hosts the job: width-1 job placed from
        // the free-list tail; run once to find the host, then replay.
        let probe = run_fleet(cfg, &FaultPlan::new(0), None);
        let host = probe
            .audit
            .iter()
            .find_map(|e| match e {
                AuditEvent::JobStart { nodes, .. } => Some(nodes[0]),
                _ => None,
            })
            .expect("job started");
        let start = probe
            .audit
            .iter()
            .find_map(|e| match e {
                AuditEvent::JobStart { at_ps, .. } => Some(*at_ps),
                _ => None,
            })
            .unwrap();
        let plan =
            FaultPlan::new(0).crash_node(host, SimTime(start + 300 * PS_PER_SEC));
        let r = run_fleet(cfg, &plan, None);
        assert_eq!(r.jobs_completed, 1, "{r:?}");
        assert_eq!(r.requeues, 1);
        assert!(r.goodput_pct < 100.0);
        assert!(r.lost_node_s > 0.0);
        // With 120s checkpoints, ≤ 120s of progress plus the detection
        // gap and 30s restart can be lost — bound it loosely.
        assert!(r.lost_node_s < 300.0, "lost {}s", r.lost_node_s);
    }
}
