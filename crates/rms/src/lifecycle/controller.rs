//! The reconciling lifecycle controller.
//!
//! The controller owns the authoritative per-node state and nothing
//! else: time, heartbeats, and job placement live in the caller (the
//! fleet simulation, or a future live agent). Each reconcile pass the
//! caller feeds it observations — operation completions, operation
//! timeouts, fused health verdicts — and the controller answers with
//! the operations to start next, having already recorded every state
//! transition in an append-only log.
//!
//! Control discipline, in the style of explicit state-transition
//! tables:
//!
//! * **Every transition is an edge** of [`NodeState::EDGES`]
//!   (debug-asserted at the single `transition` choke point, re-audited
//!   from the log by the sentinel ledger).
//! * **Guard conditions**: `Validate → Healthy` requires an `Ok` fused
//!   verdict at validation completion; anything else retries.
//! * **Bounded retries with backoff + jitter**: failed validations
//!   retry up to `max_validate_retries` times, each delayed by an
//!   exponentially growing, deterministically jittered backoff, then
//!   escalate to `Breakfix`.
//! * **Timeout escalation**: node-side operations (`Provision`,
//!   `Reboot`) carry a deadline; if the completion never arrives (the
//!   node is dead), the timeout fires and the node escalates to
//!   `Breakfix`.
//! * **Repair budget**: every `Breakfix` entry consumes one repair; an
//!   exhausted budget transitions straight to `Reclaim`, which bounds
//!   the life of even a permanently flapping node and guarantees the
//!   fleet converges.
//!
//! Operations are fenced by per-node **epochs**: starting an operation
//! bumps the node's epoch, and completions/timeouts carrying a stale
//! epoch are ignored. This is what makes the controller safe against
//! the crossed-in-flight races a discrete-event (or real) cluster
//! produces — e.g. an operation completion arriving after the timeout
//! path already escalated.

use super::state::NodeState;
use super::HealthVerdict;
use polaris_simnet::rng::SplitMix64;
use polaris_simnet::time::{SimDuration, SimTime};

/// The operations the controller can ask the platform to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Image + configure (node-side: needs the node alive to finish).
    Provision,
    /// Burn-in / conformance checks (control-side: always completes;
    /// the health guard decides what the result means).
    Validate,
    /// Repair action (control-side: a technician or automation).
    Breakfix,
    /// Power cycle (node-side: a dead node never comes back).
    Reboot,
}

impl OpKind {
    /// Node-side operations can hang forever on a dead node; only they
    /// carry a timeout deadline.
    pub fn node_side(self) -> bool {
        matches!(self, OpKind::Provision | OpKind::Reboot)
    }
}

/// An operation the caller must schedule: complete it after `delay`
/// (calling [`Controller::op_done`]), and — when `timeout` is set —
/// fire [`Controller::op_timeout`] after `timeout` unless the
/// completion arrived first (the epoch fence makes the stale one a
/// no-op).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StartedOp {
    pub node: u32,
    pub epoch: u32,
    pub kind: OpKind,
    pub delay: SimDuration,
    pub timeout: Option<SimDuration>,
}

/// One audited state transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransitionRecord {
    pub at_ps: u64,
    pub node: u32,
    pub from: NodeState,
    pub to: NodeState,
}

/// Controller tuning. Times are simulated durations; the defaults are
/// sized for fleet-scale experiments (minutes-scale repair, hour-scale
/// horizons).
#[derive(Debug, Clone, Copy)]
pub struct ControllerConfig {
    /// Mean provisioning time.
    pub provision_time: SimDuration,
    /// Validation (burn-in) run time.
    pub validate_time: SimDuration,
    /// Repair service time per `Breakfix` visit.
    pub breakfix_time: SimDuration,
    /// Power-cycle time.
    pub reboot_time: SimDuration,
    /// Node-side operation deadline = duration × this multiplier.
    pub op_timeout_mult: u64,
    /// Failed validations before escalating to `Breakfix`.
    pub max_validate_retries: u32,
    /// `Breakfix` visits before the node is `Reclaim`ed.
    pub repair_budget: u32,
    /// How long a `Degraded` node may drain before forced repair.
    pub drain_timeout: SimDuration,
    /// First retry backoff; doubles per retry.
    pub backoff_base: SimDuration,
    /// Backoff ceiling.
    pub backoff_max: SimDuration,
    /// Jitter applied to every operation delay, in permille of the
    /// nominal duration (deterministic, seeded).
    pub jitter_pm: u32,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            provision_time: SimDuration::from_secs(60),
            validate_time: SimDuration::from_secs(15),
            breakfix_time: SimDuration::from_secs(300),
            reboot_time: SimDuration::from_secs(120),
            op_timeout_mult: 3,
            max_validate_retries: 2,
            repair_budget: 2,
            drain_timeout: SimDuration::from_secs(180),
            backoff_base: SimDuration::from_secs(10),
            backoff_max: SimDuration::from_secs(120),
            jitter_pm: 200,
        }
    }
}

#[derive(Debug, Clone)]
struct NodeRec {
    state: NodeState,
    /// Bumped on every operation start; fences stale events.
    epoch: u32,
    in_op: Option<OpKind>,
    validate_retries: u32,
    repairs: u32,
    drain_deadline: Option<SimTime>,
}

/// The reconciling controller: dense per-node records, an append-only
/// transition log, and one seeded jitter stream. Deterministic given a
/// deterministic caller.
#[derive(Debug, Clone)]
pub struct Controller {
    cfg: ControllerConfig,
    nodes: Vec<NodeRec>,
    log: Vec<TransitionRecord>,
    drained: usize,
    rng: SplitMix64,
}

impl Controller {
    pub fn new(cfg: ControllerConfig, fleet: u32, seed: u64) -> Self {
        Controller {
            cfg,
            nodes: vec![
                NodeRec {
                    state: NodeState::Provision,
                    epoch: 0,
                    in_op: None,
                    validate_retries: 0,
                    repairs: 0,
                    drain_deadline: None,
                };
                fleet as usize
            ],
            log: Vec::new(),
            drained: 0,
            rng: SplitMix64::new(seed ^ 0x6C69_6665_6379_636C), // "lifecycl"
        }
    }

    pub fn config(&self) -> &ControllerConfig {
        &self.cfg
    }

    pub fn fleet_size(&self) -> u32 {
        self.nodes.len() as u32
    }

    pub fn state(&self, node: u32) -> NodeState {
        self.nodes[node as usize].state
    }

    /// The operation in flight for `node` under `epoch`, if the epoch
    /// is current (stale epochs answer `None`).
    pub fn pending_op(&self, node: u32, epoch: u32) -> Option<OpKind> {
        let rec = &self.nodes[node as usize];
        if rec.epoch == epoch {
            rec.in_op
        } else {
            None
        }
    }

    /// Node count per state, indexed by [`NodeState::index`].
    pub fn census(&self) -> [u32; 7] {
        let mut c = [0u32; 7];
        for rec in &self.nodes {
            c[rec.state.index()] += 1;
        }
        c
    }

    /// True when every node is settled (Healthy or Reclaim) with no
    /// operation in flight — the fleet's convergence predicate.
    pub fn all_settled(&self) -> bool {
        self.nodes.iter().all(|r| r.state.settled() && r.in_op.is_none())
    }

    /// The full transition log.
    pub fn log(&self) -> &[TransitionRecord] {
        &self.log
    }

    /// Transitions appended since the last drain (the caller mirrors
    /// them into occupancy/audit/metrics, then the cursor advances).
    pub fn drain_transitions(&mut self) -> &[TransitionRecord] {
        let s = self.drained;
        self.drained = self.log.len();
        &self.log[s..]
    }

    /// Jittered duration: `d ± jitter_pm‰`, deterministic.
    fn jittered(&mut self, d: SimDuration) -> SimDuration {
        let j = self.cfg.jitter_pm as u64;
        if j == 0 || d.as_ps() == 0 {
            return d;
        }
        let span = 2 * j + 1;
        let factor = 1000 - j + self.rng.next_below(span);
        SimDuration::from_ps((d.as_ps() as u128 * factor as u128 / 1000) as u64)
    }

    /// Exponential backoff for retry `attempt` (1-based), capped.
    fn backoff(&mut self, attempt: u32) -> SimDuration {
        let exp = self.cfg.backoff_base.as_ps().saturating_shl(attempt.saturating_sub(1));
        let capped = exp.min(self.cfg.backoff_max.as_ps());
        self.jittered(SimDuration::from_ps(capped))
    }

    /// The single transition choke point: asserts the edge, appends to
    /// the log.
    fn transition(&mut self, now: SimTime, node: u32, to: NodeState) {
        let rec = &mut self.nodes[node as usize];
        let from = rec.state;
        debug_assert!(
            NodeState::is_edge(from, to),
            "illegal transition {from:?} -> {to:?} for node {node}"
        );
        rec.state = to;
        self.log.push(TransitionRecord { at_ps: now.as_ps(), node, from, to });
    }

    /// Start `kind` on `node` after an extra `extra_delay` (backoff),
    /// bumping the epoch fence.
    fn start_op(&mut self, node: u32, kind: OpKind, extra_delay: SimDuration) -> StartedOp {
        let nominal = match kind {
            OpKind::Provision => self.cfg.provision_time,
            OpKind::Validate => self.cfg.validate_time,
            OpKind::Breakfix => self.cfg.breakfix_time,
            OpKind::Reboot => self.cfg.reboot_time,
        };
        let delay = self.jittered(nominal) + extra_delay;
        let timeout = kind
            .node_side()
            .then(|| delay.saturating_mul(self.cfg.op_timeout_mult.max(2)));
        let rec = &mut self.nodes[node as usize];
        rec.epoch = rec.epoch.wrapping_add(1);
        rec.in_op = Some(kind);
        StartedOp { node, epoch: rec.epoch, kind, delay, timeout }
    }

    /// Enter `Breakfix` (evicting the node from service), or `Reclaim`
    /// if the repair budget is spent. At most one repair op results.
    fn enter_breakfix(&mut self, now: SimTime, node: u32, ops: &mut Vec<StartedOp>) {
        self.nodes[node as usize].in_op = None;
        self.nodes[node as usize].drain_deadline = None;
        self.transition(now, node, NodeState::Breakfix);
        let repairs = {
            let rec = &mut self.nodes[node as usize];
            rec.repairs += 1;
            rec.repairs
        };
        if repairs > self.cfg.repair_budget {
            self.transition(now, node, NodeState::Reclaim);
            return;
        }
        // Later repair rounds back off before the technician re-tries.
        let delay = if repairs > 1 { self.backoff(repairs - 1) } else { SimDuration::ZERO };
        ops.push(self.start_op(node, OpKind::Breakfix, delay));
    }

    /// Kick off provisioning for the whole fleet (staggered by jitter).
    pub fn bootstrap(&mut self, _now: SimTime) -> Vec<StartedOp> {
        (0..self.fleet_size())
            .map(|n| self.start_op(n, OpKind::Provision, SimDuration::ZERO))
            .collect()
    }

    /// An operation completed. `verdict` is the node's fused health
    /// verdict at completion time (the `Validate → Healthy` guard).
    pub fn op_done(
        &mut self,
        now: SimTime,
        node: u32,
        epoch: u32,
        verdict: HealthVerdict,
    ) -> Vec<StartedOp> {
        let mut ops = Vec::new();
        let Some(kind) = self.pending_op(node, epoch) else {
            return ops; // stale epoch: a newer decision superseded this op
        };
        self.nodes[node as usize].in_op = None;
        match kind {
            OpKind::Provision => {
                self.transition(now, node, NodeState::Validate);
                self.nodes[node as usize].validate_retries = 0;
                ops.push(self.start_op(node, OpKind::Validate, SimDuration::ZERO));
            }
            OpKind::Validate => {
                if verdict == HealthVerdict::Ok {
                    self.transition(now, node, NodeState::Healthy);
                    self.nodes[node as usize].validate_retries = 0;
                } else {
                    let retries = {
                        let rec = &mut self.nodes[node as usize];
                        rec.validate_retries += 1;
                        rec.validate_retries
                    };
                    if retries > self.cfg.max_validate_retries {
                        self.enter_breakfix(now, node, &mut ops);
                    } else {
                        let delay = self.backoff(retries);
                        ops.push(self.start_op(node, OpKind::Validate, delay));
                    }
                }
            }
            OpKind::Breakfix => {
                self.transition(now, node, NodeState::Reboot);
                ops.push(self.start_op(node, OpKind::Reboot, SimDuration::ZERO));
            }
            OpKind::Reboot => {
                self.transition(now, node, NodeState::Validate);
                self.nodes[node as usize].validate_retries = 0;
                ops.push(self.start_op(node, OpKind::Validate, SimDuration::ZERO));
            }
        }
        ops
    }

    /// A node-side operation's deadline passed without completion:
    /// escalate to `Breakfix` (stuck `Reboot` → `Breakfix`, stuck
    /// `Provision` → `Breakfix`).
    pub fn op_timeout(&mut self, now: SimTime, node: u32, epoch: u32) -> Vec<StartedOp> {
        let mut ops = Vec::new();
        let Some(kind) = self.pending_op(node, epoch) else {
            return ops; // completed (or superseded) before the deadline
        };
        if kind.node_side() {
            self.enter_breakfix(now, node, &mut ops);
        }
        ops
    }

    /// Reconcile one node against its observed health verdict. Only
    /// meaningful for nodes at rest (`Healthy`/`Degraded`); nodes with
    /// an operation in flight are left to the operation's own guard.
    pub fn observe(&mut self, now: SimTime, node: u32, verdict: HealthVerdict) -> Vec<StartedOp> {
        let mut ops = Vec::new();
        let rec = &self.nodes[node as usize];
        if rec.in_op.is_some() {
            return ops;
        }
        match (rec.state, verdict) {
            (NodeState::Healthy, HealthVerdict::Failed) => {
                self.enter_breakfix(now, node, &mut ops);
            }
            (NodeState::Healthy, HealthVerdict::Suspect) => {
                self.transition(now, node, NodeState::Degraded);
                self.nodes[node as usize].drain_deadline = Some(now + self.cfg.drain_timeout);
            }
            (NodeState::Degraded, HealthVerdict::Ok) => {
                self.transition(now, node, NodeState::Healthy);
                self.nodes[node as usize].drain_deadline = None;
            }
            (NodeState::Degraded, HealthVerdict::Failed) => {
                self.enter_breakfix(now, node, &mut ops);
            }
            (NodeState::Degraded, HealthVerdict::Suspect)
                // Still suspect at the drain deadline: force repair.
                if self.nodes[node as usize].drain_deadline.is_some_and(|d| now >= d) => {
                    self.enter_breakfix(now, node, &mut ops);
                }
            _ => {}
        }
        ops
    }
}

/// `u64::saturating_shl` does not exist; shifting past 63 saturates.
trait SaturatingShl {
    fn saturating_shl(self, rhs: u32) -> u64;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, rhs: u32) -> u64 {
        if self == 0 {
            0
        } else if rhs >= 63 || self.leading_zeros() < rhs {
            u64::MAX
        } else {
            self << rhs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctl(fleet: u32) -> Controller {
        Controller::new(ControllerConfig::default(), fleet, 7)
    }

    fn secs(s: u64) -> SimTime {
        SimTime(s * polaris_simnet::time::PS_PER_SEC)
    }

    /// Walk one node Provision → Validate → Healthy by completing its
    /// operations with Ok verdicts.
    fn to_healthy(c: &mut Controller, node: u32, ops: &mut Vec<StartedOp>, now: &mut SimTime) {
        while c.state(node) != NodeState::Healthy {
            let op = ops.iter().position(|o| o.node == node).expect("op pending");
            let op = ops.remove(op);
            *now += op.delay;
            ops.extend(c.op_done(*now, node, op.epoch, HealthVerdict::Ok));
        }
    }

    #[test]
    fn happy_path_reaches_healthy() {
        let mut c = ctl(3);
        let mut ops = c.bootstrap(SimTime::ZERO);
        assert_eq!(ops.len(), 3);
        let mut now = SimTime::ZERO;
        for n in 0..3 {
            to_healthy(&mut c, n, &mut ops, &mut now);
        }
        assert_eq!(c.census()[NodeState::Healthy.index()], 3);
        assert!(c.all_settled());
        // Log shows exactly the expected chain per node.
        for n in 0..3 {
            let chain: Vec<_> =
                c.log().iter().filter(|t| t.node == n).map(|t| (t.from, t.to)).collect();
            assert_eq!(
                chain,
                vec![
                    (NodeState::Provision, NodeState::Validate),
                    (NodeState::Validate, NodeState::Healthy)
                ]
            );
        }
    }

    #[test]
    fn every_logged_transition_is_an_edge() {
        let mut c = ctl(2);
        let mut ops = c.bootstrap(SimTime::ZERO);
        let mut now = SimTime::ZERO;
        // Node 0 validates fine; node 1 fails validation forever and is
        // eventually reclaimed.
        to_healthy(&mut c, 0, &mut ops, &mut now);
        while c.state(1) != NodeState::Reclaim {
            let op = ops.iter().position(|o| o.node == 1).expect("op pending");
            let op = ops.remove(op);
            now += op.delay;
            let verdict = if op.kind == OpKind::Validate {
                HealthVerdict::Failed
            } else {
                HealthVerdict::Ok
            };
            ops.extend(c.op_done(now, 1, op.epoch, verdict));
        }
        for t in c.log() {
            assert!(NodeState::is_edge(t.from, t.to), "{t:?}");
        }
        assert!(c.all_settled());
    }

    #[test]
    fn stale_epochs_are_fenced() {
        let mut c = ctl(1);
        let ops = c.bootstrap(SimTime::ZERO);
        let first = ops[0];
        // Completion consumes the epoch; a duplicate is a no-op.
        let next = c.op_done(secs(60), 0, first.epoch, HealthVerdict::Ok);
        assert_eq!(c.state(0), NodeState::Validate);
        assert!(c.op_done(secs(61), 0, first.epoch, HealthVerdict::Ok).is_empty());
        assert_eq!(c.state(0), NodeState::Validate);
        // A timeout for the already-completed provision is also fenced.
        assert!(c.op_timeout(secs(200), 0, first.epoch).is_empty());
        assert_eq!(c.state(0), NodeState::Validate);
        let _ = next;
    }

    #[test]
    fn stuck_reboot_escalates_to_breakfix() {
        let mut c = ctl(1);
        let mut ops = c.bootstrap(SimTime::ZERO);
        let mut now = SimTime::ZERO;
        to_healthy(&mut c, 0, &mut ops, &mut now);
        // Fail it into breakfix → reboot.
        ops.extend(c.observe(now, 0, HealthVerdict::Failed));
        assert_eq!(c.state(0), NodeState::Breakfix);
        let fix = ops.pop().expect("breakfix op");
        assert_eq!(fix.kind, OpKind::Breakfix);
        now += fix.delay;
        ops.extend(c.op_done(now, 0, fix.epoch, HealthVerdict::Failed));
        assert_eq!(c.state(0), NodeState::Reboot);
        let reboot = ops.pop().expect("reboot op");
        assert_eq!(reboot.kind, OpKind::Reboot);
        let deadline = reboot.timeout.expect("node-side ops carry timeouts");
        assert!(deadline >= reboot.delay.saturating_mul(2));
        // The node never comes back: the reboot timeout escalates to a
        // second breakfix (budget 2 still allows it)...
        now += deadline;
        ops.extend(c.op_timeout(now, 0, reboot.epoch));
        assert_eq!(c.state(0), NodeState::Breakfix);
        // ...and after the second repair round's reboot also hangs, the
        // third breakfix entry exhausts the budget → Reclaim.
        while c.state(0) != NodeState::Reclaim {
            let op = ops.pop().expect("op pending");
            now += op.delay;
            match op.timeout {
                Some(t) if op.kind == OpKind::Reboot => {
                    now += t;
                    ops.extend(c.op_timeout(now, 0, op.epoch));
                }
                _ => ops.extend(c.op_done(now, 0, op.epoch, HealthVerdict::Ok)),
            }
        }
        assert!(c.all_settled());
    }

    #[test]
    fn degraded_drains_then_recovers_or_escalates() {
        let mut c = ctl(2);
        let mut ops = c.bootstrap(SimTime::ZERO);
        let mut now = SimTime::ZERO;
        to_healthy(&mut c, 0, &mut ops, &mut now);
        to_healthy(&mut c, 1, &mut ops, &mut now);
        // Suspect drains both.
        c.observe(now, 0, HealthVerdict::Suspect);
        c.observe(now, 1, HealthVerdict::Suspect);
        assert_eq!(c.state(0), NodeState::Degraded);
        // Node 0 recovers.
        c.observe(now + SimDuration::from_secs(30), 0, HealthVerdict::Ok);
        assert_eq!(c.state(0), NodeState::Healthy);
        // Node 1 stays suspect past the drain deadline → breakfix.
        let later = now + ControllerConfig::default().drain_timeout;
        c.observe(now + SimDuration::from_secs(30), 1, HealthVerdict::Suspect);
        assert_eq!(c.state(1), NodeState::Degraded, "deadline not reached yet");
        c.observe(later, 1, HealthVerdict::Suspect);
        assert_eq!(c.state(1), NodeState::Breakfix);
    }

    #[test]
    fn backoff_grows_and_is_capped() {
        let mut c = ctl(1);
        let base = c.cfg.backoff_base.as_ps() as f64;
        let b1 = c.backoff(1).as_ps() as f64;
        let b3 = c.backoff(3).as_ps() as f64;
        let cap = c.cfg.backoff_max.as_ps() as f64;
        assert!(b1 >= base * 0.7 && b1 <= base * 1.3, "jitter stays within ±30%");
        assert!(b3 > b1, "backoff grows");
        assert!(c.backoff(40).as_ps() as f64 <= cap * 1.3, "capped");
    }

    #[test]
    fn controller_is_deterministic() {
        let run = || {
            let mut c = ctl(4);
            let mut ops = c.bootstrap(SimTime::ZERO);
            let mut now = SimTime::ZERO;
            for n in 0..4 {
                to_healthy(&mut c, n, &mut ops, &mut now);
            }
            c.observe(now, 2, HealthVerdict::Failed);
            c.log().to_vec()
        };
        assert_eq!(run(), run());
    }
}
