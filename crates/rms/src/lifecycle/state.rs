//! The lifecycle state graph: states, the explicit edge table, and the
//! predicates the rest of the control plane (and the sentinel ledger)
//! builds on.
//!
//! The graph is data, not code: [`NodeState::EDGES`] is the single
//! source of truth for which transitions are legal, the controller
//! debug-asserts every transition against it, and the sentinel
//! lifecycle-conservation audit replays event logs against the same
//! table — so an illegal transition cannot hide in a code path.

use serde::{Deserialize, Serialize};

/// One node's lifecycle state. Exactly one state per node at every
/// instant — the controller stores states densely and transitions are
/// atomic log records, which is what the conservation ledger checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum NodeState {
    /// Being imaged / configured; not yet part of the fleet.
    Provision,
    /// Burn-in checks running; admission is gated on a health verdict.
    Validate,
    /// In service and schedulable.
    Healthy,
    /// In service but suspect: drains, accepts no new work.
    Degraded,
    /// Pulled from service for repair.
    Breakfix,
    /// Power-cycling after repair.
    Reboot,
    /// Permanently retired (terminal).
    Reclaim,
}

use NodeState::*;

impl NodeState {
    /// Every state, in a fixed order (used for census arrays/gauges).
    pub const ALL: [NodeState; 7] =
        [Provision, Validate, Healthy, Degraded, Breakfix, Reboot, Reclaim];

    /// The legal transition edges. `Reclaim` has no outgoing edges —
    /// it is the graph's only terminal state.
    pub const EDGES: [(NodeState, NodeState); 12] = [
        (Provision, Validate), // imaging done, start burn-in
        (Provision, Breakfix), // stuck provision escalates
        (Validate, Healthy),   // guard: fused health verdict is Ok
        (Validate, Breakfix),  // validation retries exhausted
        (Healthy, Degraded),   // suspect verdict: drain
        (Healthy, Breakfix),   // failed verdict: evict now
        (Degraded, Healthy),   // verdict recovered before the drain deadline
        (Degraded, Breakfix),  // failed verdict, or drain deadline passed
        (Breakfix, Reboot),    // repair done, power-cycle
        (Breakfix, Reclaim),   // repair budget exhausted: retire
        (Reboot, Validate),    // booted: re-validate before re-admission
        (Reboot, Breakfix),    // stuck reboot escalates
    ];

    /// Whether `from → to` is an edge of the lifecycle graph.
    pub fn is_edge(from: NodeState, to: NodeState) -> bool {
        Self::EDGES.contains(&(from, to))
    }

    /// Position in [`NodeState::ALL`], for dense per-state arrays.
    pub fn index(self) -> usize {
        match self {
            Provision => 0,
            Validate => 1,
            Healthy => 2,
            Degraded => 3,
            Breakfix => 4,
            Reboot => 5,
            Reclaim => 6,
        }
    }

    /// Stable lowercase name, used as a metric label value.
    pub fn name(self) -> &'static str {
        match self {
            Provision => "provision",
            Validate => "validate",
            Healthy => "healthy",
            Degraded => "degraded",
            Breakfix => "breakfix",
            Reboot => "reboot",
            Reclaim => "reclaim",
        }
    }

    /// Only `Healthy` nodes are admissible for new work.
    pub fn schedulable(self) -> bool {
        self == Healthy
    }

    /// Terminal: no outgoing edges.
    pub fn terminal(self) -> bool {
        self == Reclaim
    }

    /// Settled: the node needs no further reconciliation — it is either
    /// in steady service or retired. Convergence of a fleet means every
    /// node is settled with no operation in flight.
    pub fn settled(self) -> bool {
        matches!(self, Healthy | Reclaim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_table_matches_is_edge() {
        let mut edges = 0;
        for &a in &NodeState::ALL {
            for &b in &NodeState::ALL {
                if NodeState::is_edge(a, b) {
                    edges += 1;
                    assert!(NodeState::EDGES.contains(&(a, b)));
                }
            }
        }
        assert_eq!(edges, NodeState::EDGES.len(), "no duplicate edges");
    }

    #[test]
    fn reclaim_is_the_only_terminal_state() {
        for &s in &NodeState::ALL {
            let has_exit = NodeState::ALL.iter().any(|&t| NodeState::is_edge(s, t));
            assert_eq!(has_exit, !s.terminal(), "{s:?}");
        }
    }

    #[test]
    fn no_self_loops() {
        for &s in &NodeState::ALL {
            assert!(!NodeState::is_edge(s, s), "{s:?} must not self-loop");
        }
    }

    #[test]
    fn every_state_is_reachable_from_provision() {
        let mut reach = vec![Provision];
        let mut frontier = vec![Provision];
        while let Some(s) = frontier.pop() {
            for &(a, b) in &NodeState::EDGES {
                if a == s && !reach.contains(&b) {
                    reach.push(b);
                    frontier.push(b);
                }
            }
        }
        for &s in &NodeState::ALL {
            assert!(reach.contains(&s), "{s:?} unreachable");
        }
    }

    #[test]
    fn indices_are_dense_and_consistent() {
        for (i, &s) in NodeState::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
        assert!(Healthy.schedulable());
        assert!(!Degraded.schedulable());
        assert!(Healthy.settled() && Reclaim.settled() && !Breakfix.settled());
    }
}
