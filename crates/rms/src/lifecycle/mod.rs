//! Reconciling node-lifecycle control plane.
//!
//! The keynote's claim that cluster management "software tools will
//! take on new responsibilities" stops being analytic here: this module
//! *drives* a fleet. Every node walks an explicit lifecycle graph —
//!
//! ```text
//! Provision → Validate → Healthy ⇄ Degraded
//!     |            |        |         |
//!     +-----------[ Breakfix ]--------+
//!                   |      |
//!                Reboot  Reclaim (terminal)
//!                   |
//!               Validate (re-admission)
//! ```
//!
//! — under a reconciling [`controller::Controller`] that diffs desired
//! against observed state every tick, with per-transition guard
//! conditions, bounded retries with exponential backoff + deterministic
//! jitter, and transition timeouts that escalate (a stuck `Reboot`
//! lands back in `Breakfix`; an exhausted repair budget reclaims the
//! node).
//!
//! Health is a fused verdict ([`health::HealthAggregator`]): the
//! heartbeat-timeout math of the analytic detector
//! ([`crate::health::DetectorConfig`]) combined with NIC/link fault
//! signals surfaced by the chaos fabric. Only `Healthy` nodes are
//! schedulable; `Degraded` nodes drain; jobs on dying nodes requeue
//! through checkpoint-restart accounting.
//!
//! [`fleet::FleetSim`] runs the whole control plane as a discrete-event
//! workload on the simnet engine: a fleet under a seeded churn plan
//! (crash / flap / degrade rules from the chaos plane, JSON-replayable)
//! serving a multi-tenant synthetic job stream. Figure F12 publishes
//! convergence time, scheduler goodput, and false-evict rate vs. churn
//! rate from its observability plane; the sentinel lifecycle
//! conservation ledger audits its event log. See
//! `docs/CONTROL_PLANE.md`.

pub mod controller;
pub mod fleet;
pub mod health;
pub mod state;

pub use controller::{Controller, ControllerConfig, OpKind, StartedOp, TransitionRecord};
pub use fleet::{churn_plan, run_fleet, AuditEvent, ChurnSpec, FleetConfig, FleetReport};
pub use health::{HealthAggregator, HealthConfig, HealthVerdict};
pub use state::NodeState;
