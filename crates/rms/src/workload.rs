//! Synthetic workload generation.
//!
//! Substitution note (DESIGN.md): production job traces are not
//! available here, so we generate workloads with the three properties
//! that drive scheduler behaviour in the trace literature
//! (Lublin–Feitelson): Poisson-ish arrivals, log-uniform runtimes
//! spanning seconds to a day, and power-of-two-biased widths. User
//! estimates overestimate runtimes by a uniform factor, which is what
//! gives EASY backfill its holes to fill.

use crate::job::Job;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Exp, LogNormal, Uniform};
use serde::{Deserialize, Serialize};

/// Workload generator parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Mean inter-arrival time, seconds.
    pub mean_interarrival: f64,
    /// Log-normal runtime: mean of ln(runtime).
    pub runtime_mu: f64,
    /// Log-normal runtime: std-dev of ln(runtime).
    pub runtime_sigma: f64,
    /// Maximum job width as a power of two exponent (width ≤ 2^this).
    pub max_width_log2: u32,
    /// Probability a width is an exact power of two.
    pub pow2_fraction: f64,
    /// Estimates are runtime × U(1, this).
    pub max_overestimate: f64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            mean_interarrival: 600.0, // ~144 jobs/day
            runtime_mu: 6.5,          // median ~11 min
            runtime_sigma: 1.8,
            max_width_log2: 6, // up to 64 nodes
            pow2_fraction: 0.75,
            max_overestimate: 5.0,
        }
    }
}

/// Generate `n` jobs deterministically from `seed`.
pub fn generate(cfg: &WorkloadConfig, n: usize, seed: u64) -> Vec<Job> {
    let mut rng = StdRng::seed_from_u64(seed);
    let inter = Exp::new(1.0 / cfg.mean_interarrival).expect("positive rate");
    let runtime = LogNormal::new(cfg.runtime_mu, cfg.runtime_sigma).expect("valid lognormal");
    let over = Uniform::new(1.0, cfg.max_overestimate).expect("range");
    let mut t = 0.0;
    (0..n)
        .map(|i| {
            t += inter.sample(&mut rng);
            let r: f64 = runtime.sample(&mut rng).clamp(1.0, 86_400.0);
            let e = r * over.sample(&mut rng);
            let exp = rng.random_range(0..=cfg.max_width_log2);
            let width = if rng.random_bool(cfg.pow2_fraction) {
                1u32 << exp
            } else {
                rng.random_range(1..=(1u32 << cfg.max_width_log2))
            };
            Job::new(i as u64, width, r, e, t)
        })
        .collect()
}

/// Per-node failure model: exponential time-to-failure (constant hazard),
/// the standard first-order assumption for commodity parts.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FailureModel {
    /// Per-node mean time between failures, seconds.
    pub node_mtbf: f64,
}

impl FailureModel {
    /// System MTBF for `nodes` independent nodes.
    pub fn system_mtbf(&self, nodes: u32) -> f64 {
        self.node_mtbf / nodes.max(1) as f64
    }

    /// Sample failure times of the whole system within `[0, horizon)`.
    pub fn sample_failures(&self, nodes: u32, horizon: f64, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let exp = Exp::new(1.0 / self.system_mtbf(nodes)).expect("positive rate");
        let mut t = 0.0;
        let mut out = Vec::new();
        loop {
            t += exp.sample(&mut rng);
            if t >= horizon {
                return out;
            }
            out.push(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = WorkloadConfig::default();
        assert_eq!(generate(&cfg, 50, 7), generate(&cfg, 50, 7));
        assert_ne!(generate(&cfg, 50, 7), generate(&cfg, 50, 8));
    }

    #[test]
    fn arrivals_increase_and_average_out() {
        let cfg = WorkloadConfig::default();
        let jobs = generate(&cfg, 2000, 42);
        for w in jobs.windows(2) {
            assert!(w[1].arrival >= w[0].arrival);
        }
        let mean = jobs.last().unwrap().arrival / jobs.len() as f64;
        assert!(
            (cfg.mean_interarrival * 0.9..cfg.mean_interarrival * 1.1).contains(&mean),
            "mean interarrival {mean}"
        );
    }

    #[test]
    fn widths_bounded_and_pow2_biased() {
        let cfg = WorkloadConfig::default();
        let jobs = generate(&cfg, 2000, 1);
        let max = 1u32 << cfg.max_width_log2;
        assert!(jobs.iter().all(|j| (1..=max).contains(&j.width)));
        let pow2 = jobs.iter().filter(|j| j.width.is_power_of_two()).count();
        assert!(
            pow2 as f64 / jobs.len() as f64 > 0.6,
            "power-of-two bias missing: {pow2}/{}",
            jobs.len()
        );
    }

    #[test]
    fn estimates_cover_runtimes() {
        let jobs = generate(&WorkloadConfig::default(), 500, 3);
        assert!(jobs.iter().all(|j| j.estimate >= j.runtime));
        // And genuinely overestimate on average.
        let mean_ratio: f64 =
            jobs.iter().map(|j| j.estimate / j.runtime).sum::<f64>() / jobs.len() as f64;
        assert!(mean_ratio > 1.5, "ratio {mean_ratio}");
    }

    #[test]
    fn runtimes_span_decades() {
        let jobs = generate(&WorkloadConfig::default(), 2000, 9);
        let min = jobs.iter().map(|j| j.runtime).fold(f64::MAX, f64::min);
        let max = jobs.iter().map(|j| j.runtime).fold(0.0, f64::max);
        assert!(min < 60.0, "short jobs exist: {min}");
        assert!(max > 3_600.0, "long jobs exist: {max}");
    }

    #[test]
    fn system_mtbf_scales_inversely() {
        let f = FailureModel { node_mtbf: 1e6 };
        assert_eq!(f.system_mtbf(1), 1e6);
        assert_eq!(f.system_mtbf(1000), 1e3);
    }

    #[test]
    fn failure_sampling_rate_is_calibrated() {
        let f = FailureModel { node_mtbf: 1e5 };
        let horizon = 1e6;
        let fails = f.sample_failures(100, horizon, 11);
        // Expected: horizon / (1e5/100) = 1000 failures.
        assert!(
            (800..1200).contains(&fails.len()),
            "failures {}",
            fails.len()
        );
        assert!(fails.windows(2).all(|w| w[0] <= w[1]));
        assert!(fails.iter().all(|&t| t < horizon));
    }
}
