//! Coordinated checkpoint/restart modeling — the keynote's "fault
//! recovery" responsibility, which becomes unavoidable "as system scale
//! explodes".
//!
//! Both the first-order analytic model (Young/Daly) and a Monte-Carlo
//! simulation of exponential failures are provided; experiment F6 plots
//! wasted-work fraction against checkpoint interval and checks the
//! simulated optimum against the analytic one.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, Exp};
use serde::{Deserialize, Serialize};

/// Checkpoint system parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CheckpointParams {
    /// Time to write one coordinated checkpoint, seconds.
    pub checkpoint_cost: f64,
    /// Time to restart from a checkpoint after a failure, seconds.
    pub restart_cost: f64,
    /// System mean time between failures, seconds.
    pub system_mtbf: f64,
}

impl CheckpointParams {
    /// Young's optimal checkpoint interval: √(2·C·M).
    pub fn young_interval(&self) -> f64 {
        (2.0 * self.checkpoint_cost * self.system_mtbf).sqrt()
    }

    /// Daly's higher-order refinement of the optimum.
    pub fn daly_interval(&self) -> f64 {
        let c = self.checkpoint_cost;
        let m = self.system_mtbf;
        if c < 2.0 * m {
            (2.0 * c * m).sqrt() * (1.0 + (c / (2.0 * m)).sqrt() / 3.0) - c
        } else {
            m
        }
    }

    /// First-order expected wasted fraction of wall time at checkpoint
    /// interval `tau`: checkpoint overhead + expected rework after a
    /// failure (half an interval) + restart.
    pub fn waste_fraction(&self, tau: f64) -> f64 {
        assert!(tau > 0.0);
        let c = self.checkpoint_cost;
        let m = self.system_mtbf;
        let r = self.restart_cost;
        let ckpt = c / (tau + c);
        let rework = (tau / 2.0 + r) / m;
        (ckpt + rework).min(1.0)
    }
}

/// Result of a Monte-Carlo checkpointing run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct McResult {
    /// Useful work completed, seconds.
    pub useful: f64,
    /// Wall time elapsed, seconds.
    pub wall: f64,
    /// Failures encountered.
    pub failures: u64,
    /// Checkpoints completed.
    pub checkpoints: u64,
}

impl McResult {
    pub fn waste_fraction(&self) -> f64 {
        1.0 - self.useful / self.wall
    }
}

/// Simulate a job needing `work` seconds of computation with coordinated
/// checkpoints every `tau` seconds of progress, under exponential
/// failures. Deterministic in `seed`.
pub fn simulate_checkpointing(
    params: &CheckpointParams,
    work: f64,
    tau: f64,
    seed: u64,
) -> McResult {
    assert!(tau > 0.0 && work > 0.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let exp = Exp::new(1.0 / params.system_mtbf).expect("positive rate");
    let mut wall = 0.0f64;
    let mut done = 0.0f64; // checkpointed (durable) progress
    let mut failures = 0u64;
    let mut checkpoints = 0u64;
    let mut next_failure = exp.sample(&mut rng);
    while done < work {
        // Attempt one segment: compute min(tau, remaining) then checkpoint.
        let segment = tau.min(work - done);
        let need = segment + params.checkpoint_cost;
        if wall + need <= next_failure {
            wall += need;
            done += segment;
            checkpoints += 1;
        } else {
            // Failure mid-segment: lose uncheckpointed progress, restart.
            failures += 1;
            wall = next_failure + params.restart_cost;
            next_failure = wall + exp.sample(&mut rng);
        }
    }
    McResult {
        useful: work,
        wall,
        failures,
        checkpoints,
    }
}

/// Sweep `tau` values and return (tau, simulated waste fraction) pairs —
/// the F6 series.
pub fn waste_sweep(
    params: &CheckpointParams,
    work: f64,
    taus: &[f64],
    seed: u64,
) -> Vec<(f64, f64)> {
    taus.iter()
        .map(|&tau| {
            let r = simulate_checkpointing(params, work, tau, seed ^ tau.to_bits());
            (tau, r.waste_fraction())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> CheckpointParams {
        CheckpointParams {
            checkpoint_cost: 60.0,
            restart_cost: 120.0,
            system_mtbf: 3_600.0 * 6.0, // 6 hours
        }
    }

    #[test]
    fn young_interval_formula() {
        let p = params();
        assert!((p.young_interval() - (2.0 * 60.0 * 21_600.0f64).sqrt()).abs() < 1e-9);
        // Daly's refinement is in the same ballpark.
        let ratio = p.daly_interval() / p.young_interval();
        assert!((0.8..1.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn analytic_waste_is_convex_with_minimum_near_young() {
        let p = params();
        let opt = p.young_interval();
        let w_opt = p.waste_fraction(opt);
        assert!(p.waste_fraction(opt / 8.0) > w_opt);
        assert!(p.waste_fraction(opt * 8.0) > w_opt);
        assert!(w_opt < 0.2, "waste at optimum should be small: {w_opt}");
    }

    #[test]
    fn no_failures_means_only_checkpoint_overhead() {
        let p = CheckpointParams {
            system_mtbf: 1e15, // effectively never fails
            ..params()
        };
        let r = simulate_checkpointing(&p, 10_000.0, 1_000.0, 1);
        assert_eq!(r.failures, 0);
        assert_eq!(r.checkpoints, 10);
        assert!((r.wall - 10_000.0 - 10.0 * 60.0).abs() < 1e-6);
    }

    #[test]
    fn frequent_failures_inflate_wall_time() {
        let p = CheckpointParams {
            system_mtbf: 600.0,
            ..params()
        };
        let r = simulate_checkpointing(&p, 10_000.0, 120.0, 2);
        assert!(r.failures > 5);
        assert!(r.wall > 10_000.0 * 1.2);
        assert!(r.waste_fraction() > 0.15);
    }

    #[test]
    fn simulated_optimum_tracks_young() {
        let p = params();
        let young = p.young_interval();
        let taus: Vec<f64> = (0..14).map(|i| young / 8.0 * 1.5f64.powi(i)).collect();
        // Average several seeds to tame MC noise.
        let mut best_tau = 0.0;
        let mut best_waste = f64::MAX;
        for &tau in &taus {
            let mut acc = 0.0;
            for seed in 0..12 {
                let r = simulate_checkpointing(&p, 500_000.0, tau, seed);
                acc += r.waste_fraction();
            }
            let mean = acc / 12.0;
            if mean < best_waste {
                best_waste = mean;
                best_tau = tau;
            }
        }
        assert!(
            (young / 3.0..young * 3.0).contains(&best_tau),
            "simulated optimum {best_tau} vs Young {young}"
        );
    }

    #[test]
    fn simulation_is_deterministic_in_seed() {
        let p = params();
        let a = simulate_checkpointing(&p, 50_000.0, 900.0, 7);
        let b = simulate_checkpointing(&p, 50_000.0, 900.0, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn waste_sweep_shape() {
        let p = params();
        let taus = [60.0, 600.0, 6_000.0, 60_000.0];
        let sweep = waste_sweep(&p, 200_000.0, &taus, 3);
        assert_eq!(sweep.len(), 4);
        // Extremes are worse than the middle.
        let min = sweep.iter().map(|&(_, w)| w).fold(f64::MAX, f64::min);
        assert!(sweep[0].1 > min);
        assert!(sweep[3].1 > min);
    }
}
