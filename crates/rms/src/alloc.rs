//! Topology-aware node allocation.
//!
//! Which nodes a job gets matters as much as when it starts: a
//! nearest-neighbour code placed across the machine pays diameter-length
//! hops for every halo exchange. This module provides an occupancy pool
//! with three placement policies and topology-based locality scoring —
//! experiment F9 measures the placement-vs-fragmentation trade-off on a
//! torus.

use polaris_simnet::topology::Topology;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// How the allocator picks nodes for a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Placement {
    /// Lowest-numbered free nodes (what a naive allocator does).
    FirstFit,
    /// Uniformly random free nodes (what a careless allocator does).
    Random,
    /// The contiguous run of node ids with the tightest fit; falls back
    /// to first-fit when no run is long enough. On a torus, contiguous
    /// ids are neighbours, so this is locality-aware placement.
    Contiguous,
}

/// An occupancy-tracked pool of `n` nodes.
#[derive(Debug, Clone)]
pub struct NodePool {
    free: Vec<bool>,
    free_count: u32,
    rng: StdRng,
}

impl NodePool {
    pub fn new(n: u32, seed: u64) -> Self {
        NodePool {
            free: vec![true; n as usize],
            free_count: n,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    pub fn total(&self) -> u32 {
        self.free.len() as u32
    }

    pub fn free_count(&self) -> u32 {
        self.free_count
    }

    /// Allocate `width` nodes under `policy`; returns the node ids or
    /// `None` if not enough are free.
    pub fn allocate(&mut self, width: u32, policy: Placement) -> Option<Vec<u32>> {
        if width > self.free_count {
            return None;
        }
        let picked: Vec<u32> = match policy {
            Placement::FirstFit => self
                .free
                .iter()
                .enumerate()
                .filter(|(_, &f)| f)
                .take(width as usize)
                .map(|(i, _)| i as u32)
                .collect(),
            Placement::Random => {
                let mut ids: Vec<u32> = self
                    .free
                    .iter()
                    .enumerate()
                    .filter(|(_, &f)| f)
                    .map(|(i, _)| i as u32)
                    .collect();
                ids.shuffle(&mut self.rng);
                ids.truncate(width as usize);
                ids
            }
            Placement::Contiguous => match self.tightest_run(width) {
                Some(start) => (start..start + width).collect(),
                None => return self.allocate(width, Placement::FirstFit),
            },
        };
        debug_assert_eq!(picked.len(), width as usize);
        for &i in &picked {
            debug_assert!(self.free[i as usize]);
            self.free[i as usize] = false;
        }
        self.free_count -= width;
        Some(picked)
    }

    /// Best-fit contiguous run: the shortest free run that still holds
    /// `width` nodes (leaves long runs intact for wide jobs).
    fn tightest_run(&self, width: u32) -> Option<u32> {
        let mut best: Option<(u32, u32)> = None; // (len, start)
        let mut run_start = 0u32;
        let mut run_len = 0u32;
        for (i, &f) in self.free.iter().enumerate() {
            if f {
                if run_len == 0 {
                    run_start = i as u32;
                }
                run_len += 1;
            } else {
                if run_len >= width && best.is_none_or(|(bl, _)| run_len < bl) {
                    best = Some((run_len, run_start));
                }
                run_len = 0;
            }
        }
        if run_len >= width && best.is_none_or(|(bl, _)| run_len < bl) {
            best = Some((run_len, run_start));
        }
        best.map(|(_, s)| s)
    }

    /// Release previously allocated nodes.
    pub fn release(&mut self, nodes: &[u32]) {
        for &i in nodes {
            assert!(!self.free[i as usize], "double release of node {i}");
            self.free[i as usize] = true;
        }
        self.free_count += nodes.len() as u32;
    }

    /// External fragmentation: 1 − (largest free run / free nodes).
    /// Zero when all free nodes are contiguous; approaches 1 when free
    /// capacity is shattered.
    pub fn fragmentation(&self) -> f64 {
        if self.free_count == 0 {
            return 0.0;
        }
        let mut largest = 0u32;
        let mut run = 0u32;
        for &f in &self.free {
            if f {
                run += 1;
                largest = largest.max(run);
            } else {
                run = 0;
            }
        }
        1.0 - largest as f64 / self.free_count as f64
    }
}

/// Mean pairwise hop distance between the allocated nodes on `topo` —
/// the all-to-all locality of a placement.
pub fn mean_pairwise_hops(topo: &Topology, nodes: &[u32]) -> f64 {
    if nodes.len() < 2 {
        return 0.0;
    }
    let mut total = 0u64;
    let mut pairs = 0u64;
    for (i, &a) in nodes.iter().enumerate() {
        for &b in &nodes[i + 1..] {
            total += topo.hops(a, b) as u64;
            pairs += 1;
        }
    }
    total as f64 / pairs as f64
}

/// Mean hop distance between logically adjacent ranks (rank i ↔ rank
/// i+1) — the nearest-neighbour locality a halo-exchange code sees.
pub fn mean_neighbor_hops(topo: &Topology, nodes: &[u32]) -> f64 {
    if nodes.len() < 2 {
        return 0.0;
    }
    let total: u64 = nodes
        .windows(2)
        .map(|w| topo.hops(w[0], w[1]) as u64)
        .sum();
    total as f64 / (nodes.len() - 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use polaris_simnet::topology::TopologyKind;

    fn torus() -> Topology {
        Topology::new(TopologyKind::Torus2D { w: 8, h: 8 })
    }

    #[test]
    fn allocate_and_release_conserve_capacity() {
        let mut pool = NodePool::new(16, 1);
        let a = pool.allocate(5, Placement::FirstFit).unwrap();
        assert_eq!(a, vec![0, 1, 2, 3, 4]);
        assert_eq!(pool.free_count(), 11);
        let b = pool.allocate(11, Placement::Random).unwrap();
        assert_eq!(pool.free_count(), 0);
        assert!(pool.allocate(1, Placement::FirstFit).is_none());
        pool.release(&a);
        pool.release(&b);
        assert_eq!(pool.free_count(), 16);
    }

    #[test]
    #[should_panic(expected = "double release")]
    fn double_release_panics() {
        let mut pool = NodePool::new(4, 1);
        let a = pool.allocate(2, Placement::FirstFit).unwrap();
        pool.release(&a);
        pool.release(&a);
    }

    #[test]
    fn contiguous_prefers_tightest_run() {
        // Craft a pattern of free runs directly.
        let mut pool = NodePool::new(16, 1);
        let all = pool.allocate(16, Placement::FirstFit).unwrap();
        pool.release(&[0, 1, 2]); // run of 3
        pool.release(&[8, 9, 10, 11, 12]); // run of 5
        let _ = all;
        // A 3-wide job takes the 3-run, not the 5-run.
        let got = pool.allocate(3, Placement::Contiguous).unwrap();
        assert_eq!(got, vec![0, 1, 2]);
        // The 5-run stays intact for a 5-wide job.
        let got = pool.allocate(5, Placement::Contiguous).unwrap();
        assert_eq!(got, vec![8, 9, 10, 11, 12]);
    }

    #[test]
    fn contiguous_falls_back_when_fragmented() {
        let mut pool = NodePool::new(8, 1);
        let all = pool.allocate(8, Placement::FirstFit).unwrap();
        // Free alternating nodes: no run of 2 exists.
        pool.release(&[0, 2, 4, 6]);
        let _ = all;
        let got = pool.allocate(3, Placement::Contiguous).unwrap();
        assert_eq!(got, vec![0, 2, 4]); // first-fit fallback
    }

    #[test]
    fn fragmentation_metric() {
        let mut pool = NodePool::new(8, 1);
        assert_eq!(pool.fragmentation(), 0.0);
        let all = pool.allocate(8, Placement::FirstFit).unwrap();
        pool.release(&[0, 1, 2, 3]);
        assert_eq!(pool.fragmentation(), 0.0); // one run
        pool.release(&[6]);
        let _ = all;
        // Free = {0,1,2,3,6}: largest run 4 of 5 free.
        assert!((pool.fragmentation() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn locality_scores_on_the_torus() {
        let t = torus();
        // A contiguous row of the torus: every logical neighbour is one
        // hop away.
        let row: Vec<u32> = (0..8).collect();
        assert_eq!(mean_neighbor_hops(&t, &row), 1.0);
        assert!(mean_pairwise_hops(&t, &row) <= 2.5);
        // Scattered corners are far apart.
        let scattered = vec![0, 28, 36, 63];
        assert!(mean_neighbor_hops(&t, &scattered) > 3.0);
        assert!(mean_pairwise_hops(&t, &scattered) > 3.0);
        // Degenerate cases.
        assert_eq!(mean_pairwise_hops(&t, &[5]), 0.0);
        assert_eq!(mean_neighbor_hops(&t, &[]), 0.0);
    }

    #[test]
    fn contiguous_placement_beats_random_locality_on_average() {
        let t = torus();
        let mut contiguous_hops = 0.0;
        let mut random_hops = 0.0;
        let trials = 30;
        for seed in 0..trials {
            // Pre-fragment the pool identically for both policies.
            let mut busy = NodePool::new(64, seed);
            let held = busy.allocate(20, Placement::Random).unwrap();
            let mut p1 = busy.clone();
            let mut p2 = busy;
            let a = p1.allocate(8, Placement::Contiguous).unwrap();
            let b = p2.allocate(8, Placement::Random).unwrap();
            contiguous_hops += mean_neighbor_hops(&t, &a);
            random_hops += mean_neighbor_hops(&t, &b);
            let _ = held;
        }
        assert!(
            contiguous_hops < random_hops * 0.7,
            "contiguous {contiguous_hops} vs random {random_hops}"
        );
    }
}
