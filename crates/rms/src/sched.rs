//! Batch-scheduler simulation: FCFS, EASY and conservative backfill.
//!
//! The keynote's "resource management" responsibility. An event-driven
//! simulation of a space-shared cluster: jobs arrive, wait in a queue,
//! run on a rigid node allocation for their actual runtime, and leave.
//! Three policies:
//!
//! * **FCFS** — start the head of the queue whenever it fits; nothing
//!   may pass it. Simple, fair, and poor at packing.
//! * **EASY backfill** — the head gets a *reservation* at the earliest
//!   time enough nodes free up (using user estimates); any later job may
//!   jump ahead if it fits on idle nodes *without delaying that
//!   reservation*. The classic utilization win, reproduced as T2.
//! * **Conservative backfill** — every queued job holds a reservation in
//!   arrival order; a job may start early only if it delays none of
//!   them. More predictable waits, less aggressive packing.

use crate::job::{Job, JobOutcome, ScheduleMetrics};
use crate::timeline::Timeline;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Policy {
    Fcfs,
    /// Reservation for the queue head only; anything may backfill that
    /// does not delay it (aggressive, the production default).
    EasyBackfill,
    /// A reservation for *every* queued job, in arrival order; backfill
    /// only where no reservation is delayed (predictable, less packing).
    ConservativeBackfill,
}

#[derive(Debug, Clone, Copy)]
struct Running {
    job: Job,
    start: f64,
    /// When the scheduler believes the job ends (start + estimate).
    est_end: f64,
    /// When it actually ends.
    end: f64,
}

/// Simulate `jobs` (sorted by arrival) on `nodes` nodes under `policy`.
/// Returns one outcome per job.
pub fn simulate(nodes: u32, policy: Policy, jobs: &[Job]) -> Vec<JobOutcome> {
    assert!(jobs.windows(2).all(|w| w[0].arrival <= w[1].arrival));
    assert!(
        jobs.iter().all(|j| j.width <= nodes),
        "a job wider than the machine never starts"
    );
    let mut queue: VecDeque<Job> = VecDeque::new();
    let mut running: Vec<Running> = Vec::new();
    let mut outcomes: Vec<JobOutcome> = Vec::with_capacity(jobs.len());
    let mut next_arrival = 0usize;
    let mut free = nodes;

    loop {
        // Advance to the next event: an arrival or a completion.
        let t_arr = jobs.get(next_arrival).map(|j| j.arrival);
        let t_done = running
            .iter()
            .map(|r| r.end)
            .min_by(|a, b| a.total_cmp(b));
        let now = match (t_arr, t_done) {
            (None, None) => break,
            (Some(a), None) => a,
            (None, Some(d)) => d,
            (Some(a), Some(d)) => a.min(d),
        };
        // Process completions at `now`.
        let mut i = 0;
        while i < running.len() {
            if running[i].end <= now {
                let r = running.swap_remove(i);
                free += r.job.width;
                outcomes.push(JobOutcome {
                    id: r.job.id,
                    arrival: r.job.arrival,
                    start: r.start,
                    finish: r.end,
                    width: r.job.width,
                    runtime: r.job.runtime,
                });
            } else {
                i += 1;
            }
        }
        // Process arrivals at `now`.
        while next_arrival < jobs.len() && jobs[next_arrival].arrival <= now {
            queue.push_back(jobs[next_arrival]);
            next_arrival += 1;
        }
        schedule_pass(policy, now, &mut queue, &mut running, &mut free);
    }
    outcomes.sort_by_key(|o| o.id);
    outcomes
}

fn start(now: f64, job: Job, running: &mut Vec<Running>, free: &mut u32) {
    debug_assert!(*free >= job.width);
    *free -= job.width;
    running.push(Running {
        job,
        start: now,
        est_end: now + job.estimate,
        end: now + job.runtime,
    });
}

fn schedule_pass(
    policy: Policy,
    now: f64,
    queue: &mut VecDeque<Job>,
    running: &mut Vec<Running>,
    free: &mut u32,
) {
    let q: Vec<QueuedReq> = queue
        .iter()
        .map(|j| QueuedReq { width: j.width, estimate: j.estimate })
        .collect();
    let r: Vec<RunningRes> = running
        .iter()
        .map(|r| RunningRes { width: r.job.width, est_end: r.est_end })
        .collect();
    let picks = plan_admissions(policy, now, &q, &r, *free);
    // Remove picked indices back to front so earlier indices stay
    // valid, then start in queue order.
    let mut jobs: Vec<Job> = picks
        .iter()
        .rev()
        .map(|&i| queue.remove(i).expect("planned index in range"))
        .collect();
    jobs.reverse();
    for job in jobs {
        start(now, job, running, free);
    }
}

/// A queued admission request, as the planner sees it: how many nodes,
/// and the user's runtime estimate (seconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueuedReq {
    pub width: u32,
    pub estimate: f64,
}

/// A running allocation, as the planner sees it: how many nodes it
/// holds and when the scheduler believes they free up.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunningRes {
    pub width: u32,
    pub est_end: f64,
}

/// How deep into the queue conservative backfill looks per pass.
/// Production schedulers bound this scan: reservations beyond a few
/// dozen queue positions cost quadratic work and almost never start a
/// job (jobs deeper in the queue stay queued, which is safe — strictly
/// *more* conservative).
const CONSERVATIVE_DEPTH: usize = 32;

/// The single admission authority: given the queue (arrival order),
/// the running allocations, and the free-node count, decide which
/// queued requests start *now* under `policy`. Returns their queue
/// indices in ascending order.
///
/// This is a pure planning function — it mutates nothing — so both the
/// batch simulator ([`simulate`]) and the node-lifecycle fleet
/// (`lifecycle::fleet`) route admission through the identical policy
/// logic; the fleet keeping its own FCFS loop was exactly the bug that
/// made F12 policy-blind.
pub fn plan_admissions(
    policy: Policy,
    now: f64,
    queue: &[QueuedReq],
    running: &[RunningRes],
    free: u32,
) -> Vec<usize> {
    let mut picks = Vec::new();
    let mut free = free;
    // Queue heads start while they fit, under every policy.
    let mut started: Vec<RunningRes> = Vec::new();
    let mut next = 0usize;
    while next < queue.len() && queue[next].width <= free {
        free -= queue[next].width;
        started.push(RunningRes {
            width: queue[next].width,
            est_end: now + queue[next].estimate,
        });
        picks.push(next);
        next += 1;
    }
    if policy == Policy::Fcfs || next >= queue.len() {
        return picks;
    }
    if policy == Policy::ConservativeBackfill {
        conservative_plan(now, queue, running, &started, free, next, &mut picks);
        return picks;
    }
    // EASY: reserve for the head, then backfill behind it. When can the
    // head start? Walk estimated completions in time order, accumulating
    // freed nodes.
    let head = queue[next];
    let mut ends: Vec<(f64, u32)> = running
        .iter()
        .chain(started.iter())
        .map(|r| (r.est_end, r.width))
        .collect();
    ends.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut avail = free;
    let mut shadow = now;
    let mut extra = 0u32; // nodes idle at shadow time beyond the head's need
    for (t, w) in ends {
        if avail >= head.width {
            break;
        }
        avail += w;
        shadow = t;
    }
    if avail >= head.width {
        extra = avail - head.width;
    }
    // Backfill: any queued job (after the head) that fits free nodes now
    // and either finishes (by estimate) before the shadow time or uses
    // only nodes the reservation does not need.
    for (idx, cand) in queue.iter().enumerate().skip(next + 1) {
        let fits_now = cand.width <= free;
        let respects_reservation =
            now + cand.estimate <= shadow || cand.width <= extra.min(free);
        if fits_now && respects_reservation {
            picks.push(idx);
            free -= cand.width;
            if cand.width <= extra {
                extra -= cand.width;
            }
        }
    }
    picks
}

/// Conservative backfill: give each queued job (in arrival order, up to
/// [`CONSERVATIVE_DEPTH`] deferred reservations) a reservation on an
/// availability timeline built from estimated ends; pick exactly those
/// whose reservation is "now".
fn conservative_plan(
    now: f64,
    queue: &[QueuedReq],
    running: &[RunningRes],
    started: &[RunningRes],
    free_in: u32,
    next: usize,
    picks: &mut Vec<usize>,
) {
    let mut free = free_in;
    let mut tl = Timeline::new(now, free);
    for r in running.iter().chain(started.iter()) {
        tl.release_at(r.est_end, r.width);
    }
    let mut deferred = 0usize;
    for (idx, job) in queue.iter().enumerate().skip(next) {
        if deferred >= CONSERVATIVE_DEPTH {
            break;
        }
        let start_at = tl.earliest_fit(job.width, job.estimate);
        if start_at <= now && job.width <= free {
            picks.push(idx);
            free -= job.width;
            tl.commit(now, job.estimate, job.width);
            // Earlier reservations are unaffected (we only consumed a
            // window that fit); later ones are recomputed against the
            // updated timeline as the loop continues.
        } else {
            tl.commit(start_at.min(f64::MAX), job.estimate, job.width);
            deferred += 1;
        }
    }
}

/// Convenience: simulate and summarize.
pub fn run_and_summarize(nodes: u32, policy: Policy, jobs: &[Job]) -> ScheduleMetrics {
    ScheduleMetrics::from_outcomes(&simulate(nodes, policy, jobs), nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{generate, WorkloadConfig};

    fn job(id: u64, width: u32, runtime: f64, est: f64, arrival: f64) -> Job {
        Job::new(id, width, runtime, est, arrival)
    }

    #[test]
    fn single_job_runs_immediately() {
        let out = simulate(4, Policy::Fcfs, &[job(0, 2, 100.0, 100.0, 5.0)]);
        assert_eq!(out[0].start, 5.0);
        assert_eq!(out[0].finish, 105.0);
    }

    #[test]
    fn fcfs_never_reorders() {
        // Wide job blocks; a tiny job behind it must wait under FCFS.
        let jobs = [
            job(0, 4, 100.0, 100.0, 0.0), // occupies everything
            job(1, 4, 100.0, 100.0, 1.0), // must wait for all 4
            job(2, 1, 10.0, 10.0, 2.0),   // could fit, FCFS says no
        ];
        let out = simulate(4, Policy::Fcfs, &jobs);
        assert_eq!(out[1].start, 100.0);
        assert!(out[2].start >= 200.0, "tiny job must not pass the queue head");
    }

    #[test]
    fn easy_backfills_the_tiny_job() {
        let jobs = [
            job(0, 3, 100.0, 100.0, 0.0), // leaves one node idle
            job(1, 4, 100.0, 100.0, 1.0), // head: must wait until t=100
            job(2, 1, 10.0, 10.0, 2.0),   // fits the idle node, ends by 12
        ];
        let out = simulate(4, Policy::EasyBackfill, &jobs);
        // Job 2 fits in the hole while job 1 waits for nodes — allowed
        // because its estimate ends before the head's reservation.
        assert_eq!(out[2].start, 2.0);
        // And the head was not delayed.
        assert_eq!(out[1].start, 100.0);
        // FCFS, by contrast, leaves the hole empty.
        let fcfs = simulate(4, Policy::Fcfs, &jobs);
        assert!(fcfs[2].start >= 100.0);
    }

    #[test]
    fn easy_never_delays_the_reservation() {
        // A backfill candidate whose estimate exceeds the shadow window
        // and which would eat reserved nodes must NOT start.
        let jobs = [
            job(0, 3, 100.0, 100.0, 0.0), // 3 of 4 nodes busy until 100
            job(1, 2, 50.0, 50.0, 1.0),   // head: needs 2, waits for t=100
            job(2, 1, 500.0, 500.0, 2.0), // fits the idle node but runs long
        ];
        let out = simulate(4, Policy::EasyBackfill, &jobs);
        // Candidate would hold its node until 502 — but the head only
        // needs 2 nodes and 1 is beyond its reservation? Head needs 2:
        // at t=100, 3 nodes free; reservation consumes 2, extra = 1 once
        // job 0 ends, but at submit time extra counts nodes beyond the
        // head's need *at shadow*: avail(4) - width(2) = 2... candidate
        // width 1 <= extra, so it may run on the spare node.
        assert_eq!(out[2].start, 2.0);
        // Head still starts exactly at its reservation.
        assert_eq!(out[1].start, 100.0);
    }

    #[test]
    fn easy_blocks_backfill_that_would_delay_head() {
        // All nodes needed by the head at shadow time: extra = 0, long
        // candidate must wait.
        let jobs = [
            job(0, 4, 100.0, 100.0, 0.0),
            job(1, 4, 50.0, 50.0, 1.0),   // head needs the whole machine
            job(2, 1, 500.0, 500.0, 2.0), // would delay the head
        ];
        let out = simulate(4, Policy::EasyBackfill, &jobs);
        assert_eq!(out[1].start, 100.0, "head must not be delayed");
        assert!(out[2].start >= 150.0, "long candidate must not backfill");
    }

    #[test]
    fn conservative_blocks_backfill_that_delays_any_reservation() {
        // j2 fits the idle node and respects the HEAD's reservation (so
        // EASY lets it run), but it would push the already-queued j3's
        // reservation from t=150 past t=300 — conservative holds it back.
        // (Arrival order matters: j3 must be queued before j2 arrives.)
        let jobs = [
            job(0, 3, 100.0, 100.0, 0.0), // 3 of 4 nodes until 100
            job(1, 2, 50.0, 50.0, 1.0),   // head: reserved at 100
            job(3, 4, 50.0, 50.0, 2.0),   // whole machine; reserved 150
            job(2, 1, 300.0, 300.0, 3.0), // long; fits the idle node
        ];
        let easy = simulate(4, Policy::EasyBackfill, &jobs);
        assert_eq!(easy[2].start, 3.0, "EASY backfills the long job");
        assert!(easy[3].start >= 290.0, "...delaying the wide job");
        let cons = simulate(4, Policy::ConservativeBackfill, &jobs);
        assert!(cons[2].start >= 150.0, "conservative holds the long job");
        assert_eq!(cons[3].start, 150.0, "wide job's reservation honoured");
    }

    #[test]
    fn conservative_still_backfills_harmless_jobs() {
        let jobs = [
            job(0, 3, 100.0, 100.0, 0.0),
            job(1, 4, 100.0, 100.0, 1.0), // head reserved at 100
            job(2, 1, 10.0, 10.0, 2.0),   // ends long before 100
        ];
        let out = simulate(4, Policy::ConservativeBackfill, &jobs);
        assert_eq!(out[2].start, 2.0);
        assert_eq!(out[1].start, 100.0);
    }

    #[test]
    fn policy_ordering_on_realistic_load() {
        let cfg = WorkloadConfig {
            mean_interarrival: 120.0,
            ..WorkloadConfig::default()
        };
        let jobs = generate(&cfg, 400, 17);
        let fcfs = run_and_summarize(64, Policy::Fcfs, &jobs);
        let cons = run_and_summarize(64, Policy::ConservativeBackfill, &jobs);
        let easy = run_and_summarize(64, Policy::EasyBackfill, &jobs);
        // Both backfillers beat FCFS; EASY packs at least as well as
        // conservative on makespan.
        assert!(cons.mean_wait < fcfs.mean_wait);
        assert!(easy.mean_wait < fcfs.mean_wait);
        assert!(easy.makespan <= cons.makespan * 1.05);
    }

    #[test]
    fn work_is_conserved_under_both_policies() {
        let jobs = generate(&WorkloadConfig::default(), 300, 5);
        for policy in [
            Policy::Fcfs,
            Policy::EasyBackfill,
            Policy::ConservativeBackfill,
        ] {
            let out = simulate(64, policy, &jobs);
            assert_eq!(out.len(), jobs.len());
            for (o, j) in out.iter().zip(jobs.iter()) {
                assert_eq!(o.id, j.id);
                assert!(o.start >= j.arrival, "{policy:?} started before arrival");
                assert!((o.finish - o.start - j.runtime).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn node_capacity_never_exceeded() {
        // Reconstruct node usage over time from outcomes.
        let jobs = generate(&WorkloadConfig::default(), 300, 6);
        for policy in [
            Policy::Fcfs,
            Policy::EasyBackfill,
            Policy::ConservativeBackfill,
        ] {
            let out = simulate(64, policy, &jobs);
            let mut events: Vec<(f64, i64)> = Vec::new();
            for o in &out {
                events.push((o.start, o.width as i64));
                events.push((o.finish, -(o.width as i64)));
            }
            events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            let mut used = 0i64;
            for (_, delta) in events {
                used += delta;
                assert!(used <= 64, "{policy:?} oversubscribed: {used}");
                assert!(used >= 0);
            }
        }
    }

    #[test]
    fn backfill_improves_throughput_on_realistic_load() {
        // Heavier load than default so queues form.
        let cfg = WorkloadConfig {
            mean_interarrival: 120.0,
            ..WorkloadConfig::default()
        };
        let jobs = generate(&cfg, 1000, 42);
        let fcfs = run_and_summarize(64, Policy::Fcfs, &jobs);
        let easy = run_and_summarize(64, Policy::EasyBackfill, &jobs);
        assert!(
            easy.mean_wait < fcfs.mean_wait * 0.9,
            "backfill should cut waits: easy {} vs fcfs {}",
            easy.mean_wait,
            fcfs.mean_wait
        );
        assert!(easy.makespan <= fcfs.makespan * 1.001);
        assert!(easy.utilization >= fcfs.utilization * 0.999);
    }

    #[test]
    fn fcfs_order_is_strict_by_start_time() {
        let jobs = generate(&WorkloadConfig::default(), 200, 8);
        let out = simulate(64, Policy::Fcfs, &jobs);
        // Under FCFS, start times are non-decreasing in arrival order.
        for w in out.windows(2) {
            assert!(w[0].start <= w[1].start + 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "wider than the machine")]
    fn oversized_job_rejected() {
        simulate(4, Policy::Fcfs, &[job(0, 8, 10.0, 10.0, 0.0)]);
    }
}
