//! Jobs and per-job metrics.

use serde::{Deserialize, Serialize};

/// A rigid parallel job, as batch schedulers of the era saw them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Job {
    pub id: u64,
    /// Nodes requested (rigid allocation).
    pub width: u32,
    /// Actual runtime, seconds.
    pub runtime: f64,
    /// User-supplied estimate, seconds (≥ runtime in practice; the
    /// scheduler kills at the estimate, so generators guarantee it).
    pub estimate: f64,
    /// Submission time, seconds from epoch.
    pub arrival: f64,
}

impl Job {
    pub fn new(id: u64, width: u32, runtime: f64, estimate: f64, arrival: f64) -> Self {
        assert!(width >= 1, "job must request at least one node");
        assert!(runtime > 0.0 && estimate >= runtime, "estimate must cover runtime");
        assert!(arrival >= 0.0);
        Job {
            id,
            width,
            runtime,
            estimate,
            arrival,
        }
    }

    /// Node-seconds of actual work.
    pub fn area(&self) -> f64 {
        self.width as f64 * self.runtime
    }
}

/// Outcome of one job in a scheduling run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobOutcome {
    pub id: u64,
    pub arrival: f64,
    pub start: f64,
    pub finish: f64,
    pub width: u32,
    pub runtime: f64,
}

impl JobOutcome {
    pub fn wait(&self) -> f64 {
        self.start - self.arrival
    }

    pub fn response(&self) -> f64 {
        self.finish - self.arrival
    }

    /// Bounded slowdown with the conventional 10-second floor.
    pub fn bounded_slowdown(&self) -> f64 {
        (self.response() / self.runtime.max(10.0)).max(1.0)
    }
}

/// Aggregate metrics over a completed schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduleMetrics {
    pub jobs: usize,
    pub makespan: f64,
    /// Node-seconds of work / (nodes × makespan).
    pub utilization: f64,
    pub mean_wait: f64,
    pub max_wait: f64,
    pub mean_bounded_slowdown: f64,
    pub p95_wait: f64,
}

impl ScheduleMetrics {
    pub fn from_outcomes(outcomes: &[JobOutcome], nodes: u32) -> Self {
        assert!(!outcomes.is_empty(), "no outcomes to summarize");
        let makespan = outcomes.iter().map(|o| o.finish).fold(0.0, f64::max);
        let first = outcomes.iter().map(|o| o.arrival).fold(f64::MAX, f64::min);
        let span = (makespan - first).max(f64::EPSILON);
        let area: f64 = outcomes.iter().map(|o| o.width as f64 * o.runtime).sum();
        let mut waits: Vec<f64> = outcomes.iter().map(|o| o.wait()).collect();
        waits.sort_by(|a, b| a.total_cmp(b));
        let mean_wait = waits.iter().sum::<f64>() / waits.len() as f64;
        let p95_wait = waits[((waits.len() as f64 * 0.95) as usize).min(waits.len() - 1)];
        let mean_bsld = outcomes.iter().map(|o| o.bounded_slowdown()).sum::<f64>()
            / outcomes.len() as f64;
        ScheduleMetrics {
            jobs: outcomes.len(),
            makespan,
            utilization: area / (nodes as f64 * span),
            mean_wait,
            max_wait: *waits.last().expect("nonempty"),
            mean_bounded_slowdown: mean_bsld,
            p95_wait,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_metrics() {
        let o = JobOutcome {
            id: 1,
            arrival: 10.0,
            start: 25.0,
            finish: 125.0,
            width: 4,
            runtime: 100.0,
        };
        assert_eq!(o.wait(), 15.0);
        assert_eq!(o.response(), 115.0);
        assert!((o.bounded_slowdown() - 1.15).abs() < 1e-12);
    }

    #[test]
    fn bounded_slowdown_floors() {
        let o = JobOutcome {
            id: 1,
            arrival: 0.0,
            start: 0.0,
            finish: 1.0,
            width: 1,
            runtime: 1.0,
        };
        // Short job: denominator floored at 10s; ratio < 1 clamps to 1.
        assert_eq!(o.bounded_slowdown(), 1.0);
    }

    #[test]
    fn schedule_metrics_aggregate() {
        let outcomes = vec![
            JobOutcome {
                id: 1,
                arrival: 0.0,
                start: 0.0,
                finish: 100.0,
                width: 2,
                runtime: 100.0,
            },
            JobOutcome {
                id: 2,
                arrival: 0.0,
                start: 100.0,
                finish: 200.0,
                width: 2,
                runtime: 100.0,
            },
        ];
        let m = ScheduleMetrics::from_outcomes(&outcomes, 2);
        assert_eq!(m.jobs, 2);
        assert_eq!(m.makespan, 200.0);
        assert!((m.utilization - 1.0).abs() < 1e-9);
        assert_eq!(m.mean_wait, 50.0);
        assert_eq!(m.max_wait, 100.0);
    }

    #[test]
    #[should_panic(expected = "estimate must cover runtime")]
    fn bad_estimate_rejected() {
        Job::new(1, 1, 100.0, 50.0, 0.0);
    }

    #[test]
    fn job_area() {
        assert_eq!(Job::new(1, 8, 50.0, 60.0, 0.0).area(), 400.0);
    }
}
