//! Heartbeat failure detection.
//!
//! Nodes emit heartbeats every `period`; a monitor declares a node dead
//! after `missed_threshold` consecutive periods without one. The model
//! accounts for heartbeat transit delay and answers the two questions a
//! deployment cares about: how fast is a real crash detected, and how
//! often does a slow-but-alive node get declared dead (false positive)?

use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, LogNormal};
use serde::{Deserialize, Serialize};

/// Detector configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// Heartbeat period, seconds.
    pub period: f64,
    /// Consecutive missed heartbeats before declaring death.
    pub missed_threshold: u32,
    /// Median one-way heartbeat delay, seconds.
    pub delay_median: f64,
    /// Log-std-dev of the heartbeat delay (heavy tail knob).
    pub delay_sigma: f64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            period: 1.0,
            missed_threshold: 3,
            delay_median: 0.001,
            delay_sigma: 0.5,
        }
    }
}

impl DetectorConfig {
    /// The timeout after the last heard heartbeat at which death is
    /// declared.
    pub fn timeout(&self) -> f64 {
        self.period * self.missed_threshold as f64
    }

    /// Worst-case detection latency for a crash: the node may die just
    /// after emitting a heartbeat, which then takes `delay` to arrive.
    pub fn worst_case_detection(&self) -> f64 {
        self.timeout() + self.period
    }
}

/// Result of a detection experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectionStats {
    pub trials: u32,
    pub mean_latency: f64,
    pub max_latency: f64,
    /// Fraction of healthy intervals mistaken for death.
    pub false_positive_rate: f64,
}

/// Monte-Carlo a crash at a uniformly random phase of the heartbeat
/// cycle and measure when the detector fires; also measure how often a
/// healthy node's delayed heartbeats trip the detector over
/// `healthy_beats` beats. Deterministic in `seed`.
pub fn evaluate(cfg: &DetectorConfig, trials: u32, healthy_beats: u32, seed: u64) -> DetectionStats {
    let mut rng = StdRng::seed_from_u64(seed);
    let delay = LogNormal::new(cfg.delay_median.ln(), cfg.delay_sigma).expect("valid lognormal");
    // Crash-detection latency: the node crashes at phase φ after its
    // last heartbeat; that heartbeat arrived at (−φ + d). The detector
    // fires timeout after the last arrival.
    let mut total = 0.0;
    let mut max = 0.0f64;
    for i in 0..trials {
        let phase = (i as f64 + 0.5) / trials as f64 * cfg.period;
        let d: f64 = delay.sample(&mut rng);
        let latency = cfg.timeout() + phase + d;
        total += latency;
        max = max.max(latency);
    }
    // False positives: consecutive heartbeat arrivals more than timeout
    // apart despite the node being alive.
    let mut fp = 0u32;
    let mut last_arrival = 0.0f64;
    for beat in 1..=healthy_beats {
        let t = beat as f64 * cfg.period + delay.sample(&mut rng);
        if t - last_arrival > cfg.timeout() {
            fp += 1;
        }
        last_arrival = last_arrival.max(t);
    }
    DetectionStats {
        trials,
        mean_latency: total / trials as f64,
        max_latency: max,
        false_positive_rate: fp as f64 / healthy_beats as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeout_math() {
        let c = DetectorConfig::default();
        assert_eq!(c.timeout(), 3.0);
        assert_eq!(c.worst_case_detection(), 4.0);
    }

    #[test]
    fn detection_latency_bounded_by_theory() {
        let c = DetectorConfig::default();
        let s = evaluate(&c, 1000, 1000, 42);
        assert!(s.mean_latency >= c.timeout());
        // Mean crash phase is period/2 past the last beat.
        assert!(
            (s.mean_latency - (c.timeout() + c.period / 2.0)).abs() < 0.1,
            "mean {}",
            s.mean_latency
        );
        assert!(s.max_latency <= c.worst_case_detection() + 1.0);
    }

    #[test]
    fn healthy_node_rarely_declared_dead() {
        let c = DetectorConfig::default();
        let s = evaluate(&c, 10, 100_000, 7);
        assert_eq!(s.false_positive_rate, 0.0, "ms delays vs 3s timeout");
    }

    #[test]
    fn aggressive_timeout_with_slow_network_false_positives() {
        let c = DetectorConfig {
            period: 0.1,
            missed_threshold: 1,
            delay_median: 0.05,
            delay_sigma: 1.5, // heavy tail
        };
        let s = evaluate(&c, 10, 100_000, 7);
        assert!(
            s.false_positive_rate > 0.001,
            "heavy-tailed delays must trip a 100ms timeout: {}",
            s.false_positive_rate
        );
    }

    #[test]
    fn longer_threshold_trades_latency_for_accuracy() {
        let fast = DetectorConfig {
            missed_threshold: 1,
            ..DetectorConfig::default()
        };
        let slow = DetectorConfig {
            missed_threshold: 10,
            ..DetectorConfig::default()
        };
        let sf = evaluate(&fast, 100, 10_000, 1);
        let ss = evaluate(&slow, 100, 10_000, 1);
        assert!(ss.mean_latency > sf.mean_latency * 2.0);
        assert!(ss.false_positive_rate <= sf.false_positive_rate);
    }

    #[test]
    fn deterministic_in_seed() {
        let c = DetectorConfig::default();
        assert_eq!(evaluate(&c, 100, 100, 9), evaluate(&c, 100, 100, 9));
    }
}
