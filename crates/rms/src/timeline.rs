//! Availability timeline: piecewise-constant free-node count over future
//! time, used by conservative backfill to place reservations.

/// Node availability from a reference time onward, as a base level plus
/// step changes at future instants.
#[derive(Debug, Clone)]
pub struct Timeline {
    origin: f64,
    base: i64,
    /// (time, delta) steps, kept sorted by time.
    steps: Vec<(f64, i64)>,
}

impl Timeline {
    pub fn new(origin: f64, free_now: u32) -> Self {
        Timeline {
            origin,
            base: free_now as i64,
            steps: Vec::new(),
        }
    }

    /// Add `width` nodes back at `time` (a running job's estimated end).
    pub fn release_at(&mut self, time: f64, width: u32) {
        self.add_step(time, width as i64);
    }

    fn add_step(&mut self, time: f64, delta: i64) {
        let time = time.max(self.origin);
        let pos = self
            .steps
            .partition_point(|&(t, _)| t <= time);
        self.steps.insert(pos, (time, delta));
    }

    /// Free nodes at time `t` (t >= origin).
    pub fn avail_at(&self, t: f64) -> i64 {
        self.base
            + self
                .steps
                .iter()
                .take_while(|&&(st, _)| st <= t)
                .map(|&(_, d)| d)
                .sum::<i64>()
    }

    /// Earliest time >= origin at which `width` nodes stay free for
    /// `duration` seconds.
    pub fn earliest_fit(&self, width: u32, duration: f64) -> f64 {
        let w = width as i64;
        let mut candidates = vec![self.origin];
        candidates.extend(self.steps.iter().map(|&(t, _)| t));
        candidates.sort_by(|a, b| a.total_cmp(b));
        candidates.dedup();
        'outer: for &start in &candidates {
            if start < self.origin {
                continue;
            }
            if self.avail_at(start) < w {
                continue;
            }
            // Availability may dip inside the window.
            let end = start + duration;
            for &(t, _) in &self.steps {
                if t > start && t < end && self.avail_at(t) < w {
                    continue 'outer;
                }
            }
            return start;
        }
        // Beyond the last step everything is free again at base + sum.
        f64::INFINITY
    }

    /// Reserve `width` nodes over `[start, start + duration)`.
    pub fn commit(&mut self, start: f64, duration: f64, width: u32) {
        self.add_step(start, -(width as i64));
        self.add_step(start + duration, width as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_timeline_fits_immediately() {
        let tl = Timeline::new(10.0, 4);
        assert_eq!(tl.avail_at(10.0), 4);
        assert_eq!(tl.earliest_fit(4, 100.0), 10.0);
        assert_eq!(tl.earliest_fit(5, 1.0), f64::INFINITY);
    }

    #[test]
    fn releases_open_windows() {
        let mut tl = Timeline::new(0.0, 1);
        tl.release_at(100.0, 3);
        assert_eq!(tl.avail_at(0.0), 1);
        assert_eq!(tl.avail_at(100.0), 4);
        assert_eq!(tl.earliest_fit(1, 10.0), 0.0);
        assert_eq!(tl.earliest_fit(2, 10.0), 100.0);
    }

    #[test]
    fn commit_blocks_the_window() {
        let mut tl = Timeline::new(0.0, 4);
        tl.commit(0.0, 50.0, 4);
        assert_eq!(tl.avail_at(0.0), 0);
        assert_eq!(tl.avail_at(50.0), 4);
        assert_eq!(tl.earliest_fit(2, 10.0), 50.0);
    }

    #[test]
    fn dips_inside_the_window_are_respected() {
        let mut tl = Timeline::new(0.0, 4);
        // A reservation occupies 3 nodes during [20, 40).
        tl.commit(20.0, 20.0, 3);
        // A 2-node job of 30s cannot start at 0 (dip at 20) nor at 20;
        // earliest is 40.
        assert_eq!(tl.earliest_fit(2, 30.0), 40.0);
        // But a 1-node job fits right away.
        assert_eq!(tl.earliest_fit(1, 30.0), 0.0);
    }

    #[test]
    fn steps_before_origin_clamp() {
        let mut tl = Timeline::new(100.0, 0);
        tl.release_at(50.0, 2); // already released in the past
        assert_eq!(tl.avail_at(100.0), 2);
    }
}
