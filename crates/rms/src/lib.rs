//! # polaris-rms
//!
//! Resource management and fault recovery: the keynote's claim that "the
//! software tools to manage [exploding-scale clusters] will take on new
//! responsibilities", made executable. Batch scheduling (FCFS vs EASY
//! backfill, experiment T2), synthetic workload generation, heartbeat
//! failure detection, and checkpoint/restart with Young/Daly interval
//! analysis (experiment F6), and the reconciling node-lifecycle control
//! plane ([`lifecycle`], experiment F12).

pub mod alloc;
pub mod checkpoint;
pub mod health;
pub mod job;
pub mod lifecycle;
pub mod recovery;
pub mod sched;
pub mod timeline;
pub mod workload;

pub mod prelude {
    pub use crate::alloc::{mean_neighbor_hops, mean_pairwise_hops, NodePool, Placement};
    pub use crate::checkpoint::{
        simulate_checkpointing, waste_sweep, CheckpointParams, McResult,
    };
    pub use crate::health::{evaluate as evaluate_detector, DetectionStats, DetectorConfig};
    pub use crate::job::{Job, JobOutcome, ScheduleMetrics};
    pub use crate::lifecycle::{
        churn_plan, run_fleet, ChurnSpec, Controller, ControllerConfig, FleetConfig,
        FleetReport, HealthAggregator, HealthConfig, HealthVerdict, NodeState,
    };
    pub use crate::recovery::{mean_inflation, run_job, RecoveryOutcome, RecoveryPolicy};
    pub use crate::sched::{run_and_summarize, simulate, Policy};
    pub use crate::timeline::Timeline;
    pub use crate::workload::{generate, FailureModel, WorkloadConfig};
}
