//! Content-addressed result cache with LRU byte-budget eviction and
//! single-flight deduplication.
//!
//! The cache maps [`SpecHash`] → `Arc<V>` where `V` is the full
//! figure-table/obs-bundle payload for one spec. Three properties the
//! serving gates depend on:
//!
//! * **Single-flight.** When N clients ask for the same cold spec
//!   concurrently, exactly one runs the simulation; the rest park on a
//!   condvar and receive the same `Arc`. Without this, a popular cold
//!   key stampedes the engine and the "hits are free" contract
//!   collapses exactly when load is highest.
//! * **Byte-budget LRU.** Entries charge their payload size against a
//!   budget; inserting past it evicts least-recently-*used* entries
//!   (a monotonic touch tick, not insert order). In-flight
//!   computations are never evicted.
//! * **Observable.** `serve_cache_hits_total`, `serve_cache_misses_total`,
//!   `serve_cache_evictions_total`, `serve_singleflight_waits_total`
//!   counters and the `serve_cache_bytes` gauge publish through the
//!   shared [`Obs`] registry, so the Prometheus plane sees cache
//!   behavior with no extra plumbing.

use crate::canonical::SpecHash;
use polaris_obs::Obs;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

enum Slot<V> {
    /// Someone is computing this entry; waiters park on the condvar.
    Pending,
    Ready {
        value: Arc<V>,
        bytes: u64,
        last_used: u64,
    },
}

struct Inner<V> {
    map: HashMap<u128, Slot<V>>,
    /// Monotonic touch counter driving LRU order.
    tick: u64,
    /// Bytes charged by Ready entries.
    bytes: u64,
}

/// Content-addressed single-flight LRU cache. Cheap to clone-by-Arc via
/// [`ResultCache::handle`]; all clones share one store.
pub struct ResultCache<V> {
    inner: Mutex<Inner<V>>,
    done: Condvar,
    budget: u64,
    obs: Obs,
}

/// Point-in-time cache counters (mirrors the obs series).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub singleflight_waits: u64,
    pub bytes: u64,
    pub entries: usize,
}

impl<V> ResultCache<V> {
    /// A cache charging entries against `budget_bytes`, publishing its
    /// counters into `obs`.
    pub fn new(budget_bytes: u64, obs: Obs) -> Self {
        ResultCache {
            inner: Mutex::new(Inner { map: HashMap::new(), tick: 0, bytes: 0 }),
            done: Condvar::new(),
            budget: budget_bytes,
            obs,
        }
    }

    /// Shared handle.
    pub fn handle(self) -> Arc<Self> {
        Arc::new(self)
    }

    /// Look up `key`, or compute it with `compute` under single-flight:
    /// concurrent callers with the same key get the one in-flight
    /// result. `size` prices a freshly computed value for the byte
    /// budget (called once per computation, outside the lock).
    pub fn get_or_compute<F, S>(&self, key: SpecHash, compute: F, size: S) -> Arc<V>
    where
        F: FnOnce() -> V,
        S: FnOnce(&V) -> u64,
    {
        {
            let mut inner = self.inner.lock().unwrap();
            loop {
                match inner.map.get(&key.0) {
                    Some(Slot::Ready { .. }) => {
                        inner.tick += 1;
                        let tick = inner.tick;
                        let Some(Slot::Ready { value, last_used, .. }) =
                            inner.map.get_mut(&key.0)
                        else {
                            unreachable!("checked Ready under the same lock")
                        };
                        *last_used = tick;
                        let value = Arc::clone(value);
                        self.obs.counter("serve_cache_hits_total", &[]).add(1);
                        return value;
                    }
                    Some(Slot::Pending) => {
                        self.obs.counter("serve_singleflight_waits_total", &[]).add(1);
                        inner = self.done.wait(inner).unwrap();
                        // Re-check: the leader finished (Ready), died
                        // (slot removed — fall through to claim it), or
                        // the entry was since evicted.
                        if !inner.map.contains_key(&key.0) {
                            break;
                        }
                    }
                    None => break,
                }
            }
            // Miss: claim the slot as the computing leader.
            inner.map.insert(key.0, Slot::Pending);
            self.obs.counter("serve_cache_misses_total", &[]).add(1);
        }

        // Compute outside the lock. If `compute` panics, clear the
        // Pending slot and wake waiters so they can elect a new leader
        // instead of parking forever.
        struct Unpend<'a, V> {
            cache: &'a ResultCache<V>,
            key: u128,
            armed: bool,
        }
        impl<V> Drop for Unpend<'_, V> {
            fn drop(&mut self) {
                if self.armed {
                    let mut inner = self.cache.inner.lock().unwrap();
                    if matches!(inner.map.get(&self.key), Some(Slot::Pending)) {
                        inner.map.remove(&self.key);
                    }
                    self.cache.done.notify_all();
                }
            }
        }
        let mut guard = Unpend { cache: self, key: key.0, armed: true };
        let value = Arc::new(compute());
        let bytes = size(&value);
        guard.armed = false;

        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        inner.bytes += bytes;
        inner.map.insert(
            key.0,
            Slot::Ready { value: Arc::clone(&value), bytes, last_used: tick },
        );
        self.evict_locked(&mut inner, key.0);
        self.obs.gauge("serve_cache_bytes", &[]).set(inner.bytes as f64);
        drop(inner);
        self.done.notify_all();
        value
    }

    /// Evict least-recently-used Ready entries (never Pending, never
    /// `just_inserted` — a value larger than the whole budget must
    /// still be returned and is evicted by the *next* insert) until the
    /// budget holds.
    fn evict_locked(&self, inner: &mut Inner<V>, just_inserted: u128) {
        while inner.bytes > self.budget {
            let victim = inner
                .map
                .iter()
                .filter_map(|(k, slot)| match slot {
                    Slot::Ready { last_used, .. } if *k != just_inserted => {
                        Some((*last_used, *k))
                    }
                    _ => None,
                })
                .min();
            let Some((_, k)) = victim else { break };
            if let Some(Slot::Ready { bytes, .. }) = inner.map.remove(&k) {
                inner.bytes -= bytes;
                self.obs.counter("serve_cache_evictions_total", &[]).add(1);
            }
        }
    }

    /// Current counters (from the shared obs registry plus the store).
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().unwrap();
        let c = |name| self.obs.registry.counter_value(name, &[]);
        CacheStats {
            hits: c("serve_cache_hits_total"),
            misses: c("serve_cache_misses_total"),
            evictions: c("serve_cache_evictions_total"),
            singleflight_waits: c("serve_singleflight_waits_total"),
            bytes: inner.bytes,
            entries: inner.map.len(),
        }
    }

    /// The obs bundle the cache publishes into.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn key(n: u64) -> SpecHash {
        SpecHash(n as u128)
    }

    #[test]
    fn second_lookup_hits_without_recompute() {
        let cache: ResultCache<u64> = ResultCache::new(1 << 20, Obs::new());
        let computed = AtomicU64::new(0);
        for _ in 0..3 {
            let v = cache.get_or_compute(
                key(7),
                || {
                    computed.fetch_add(1, Ordering::Relaxed);
                    42
                },
                |_| 8,
            );
            assert_eq!(*v, 42);
        }
        assert_eq!(computed.load(Ordering::Relaxed), 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (2, 1));
    }

    #[test]
    fn lru_evicts_least_recently_used_first() {
        // Budget fits two 8-byte entries.
        let cache: ResultCache<u64> = ResultCache::new(16, Obs::new());
        cache.get_or_compute(key(1), || 1, |_| 8);
        cache.get_or_compute(key(2), || 2, |_| 8);
        cache.get_or_compute(key(1), || 99, |_| 8); // touch 1 → 2 is now LRU
        cache.get_or_compute(key(3), || 3, |_| 8); // evicts 2
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
        // 1 survives (hit), 2 was evicted (recomputes).
        let recomputed = AtomicU64::new(0);
        cache.get_or_compute(key(1), || panic!("must be cached"), |_| 8);
        cache.get_or_compute(
            key(2),
            || {
                recomputed.fetch_add(1, Ordering::Relaxed);
                2
            },
            |_| 8,
        );
        assert_eq!(recomputed.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn oversized_entry_is_still_served() {
        let cache: ResultCache<u64> = ResultCache::new(4, Obs::new());
        let v = cache.get_or_compute(key(9), || 5, |_| 1000);
        assert_eq!(*v, 5);
        // It stays resident until the next insert displaces it.
        cache.get_or_compute(key(9), || panic!("resident"), |_| 1000);
        cache.get_or_compute(key(10), || 6, |_| 2);
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn single_flight_runs_the_computation_once() {
        let cache = ResultCache::<u64>::new(1 << 20, Obs::new()).handle();
        let computed = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let cache = Arc::clone(&cache);
            let computed = Arc::clone(&computed);
            handles.push(std::thread::spawn(move || {
                let v = cache.get_or_compute(
                    key(5),
                    || {
                        computed.fetch_add(1, Ordering::Relaxed);
                        // Widen the race window so waiters really park.
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        77
                    },
                    |_| 8,
                );
                assert_eq!(*v, 77);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(computed.load(Ordering::Relaxed), 1, "exactly one leader computes");
    }

    #[test]
    fn panicking_leader_does_not_wedge_waiters() {
        let cache = ResultCache::<u64>::new(1 << 20, Obs::new()).handle();
        let c2 = Arc::clone(&cache);
        let leader = std::thread::spawn(move || {
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                c2.get_or_compute(key(3), || panic!("boom"), |_| 8)
            }));
            assert!(r.is_err());
        });
        leader.join().unwrap();
        // A later caller becomes the new leader and succeeds.
        let v = cache.get_or_compute(key(3), || 11, |_| 8);
        assert_eq!(*v, 11);
    }
}
