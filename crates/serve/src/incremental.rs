//! Incremental re-simulation: answer a point-mutated spec from the
//! latest checkpoint whose prefix is unaffected.
//!
//! Workloads here are **phase-segmented**: a [`PhasedSpec`] is a list
//! of traffic phases, each seeding its own token waves into a shared
//! ring simulation. The runner executes phase `k` only after seeding
//! it — so the simulator state at the phase-`k` boundary is a pure
//! function of phases `0..k` (later phases cannot leak into earlier
//! snapshots) — and checkpoints at every boundary, keyed by the
//! [`SpecHash`] of the **prefix** `(hosts, nshards, phase_len,
//! phases[0..k])`.
//!
//! When a mutated spec arrives (say phase 7 of 10 changed), the runner
//! finds the longest prefix with a stored snapshot — phases `0..7` —
//! restores it, and re-simulates only phases 7..10. The model result
//! is bit-identical to a from-scratch run (the engine snapshot
//! contract), and the work saved is measured in *events*, a
//! deterministic machine-independent quantity the perf gate can hold.

use crate::canonical::{Canonical, CanonicalBuf, SpecHash};
use polaris_obs::Obs;
use polaris_simnet::prelude::{
    Partition, ShardCtx, ShardSim, ShardSnapshot, ShardWorld, SimDuration, SimTime, SplitMix64,
};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// One traffic phase: `tokens` ring tokens, each living `hops` hops,
/// with an extra per-hop delay of `stagger` ps on top of the channel
/// lookahead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseCfg {
    pub tokens: u32,
    pub hops: u32,
    pub stagger: u64,
}

impl Canonical for PhaseCfg {
    fn encode(&self, buf: &mut CanonicalBuf) {
        buf.u64("tokens", self.tokens as u64);
        buf.u64("hops", self.hops as u64);
        buf.u64("stagger", self.stagger);
    }
}

/// A phase-segmented workload spec.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhasedSpec {
    pub hosts: u32,
    pub nshards: u32,
    /// Simulated length of each phase, picoseconds.
    pub phase_len: u64,
    pub phases: Vec<PhaseCfg>,
}

impl Canonical for PhasedSpec {
    fn encode(&self, buf: &mut CanonicalBuf) {
        self.encode_prefix(buf, self.phases.len());
    }
}

impl PhasedSpec {
    fn encode_prefix(&self, buf: &mut CanonicalBuf, k: usize) {
        buf.u64("hosts", self.hosts as u64);
        buf.u64("nshards", self.nshards as u64);
        buf.u64("phase_len", self.phase_len);
        buf.list("phases", &self.phases[..k]);
    }

    /// Content address of the simulator state after phases `0..k`.
    pub fn prefix_hash(&self, k: usize) -> SpecHash {
        let mut buf = CanonicalBuf::new();
        self.encode_prefix(&mut buf, k);
        SpecHash::of_bytes(buf.bytes())
    }
}

/// Channel lookahead for the traffic ring, picoseconds.
const RING_LOOKAHEAD: u64 = 3;

/// Serde-friendly ring world: tokens hop around the rank ring; every
/// handled event folds into an **order-independent** digest
/// (commutative sum of per-event mixes), so the digest is invariant
/// across shard counts as well as across checkpoint cuts.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TrafficWorld {
    part: Partition,
    base: u32,
    seqs: Vec<u64>,
    /// Events handled by this shard's ranks (cumulative).
    pub events: u64,
    /// Commutative digest of every handled `(time, rank)`.
    pub digest: u64,
}

#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Tok {
    rank: u32,
    hops_left: u32,
    stagger: u64,
}

/// SplitMix64 finalizer as a mixing function.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl ShardWorld for TrafficWorld {
    type Event = Tok;
    fn handle(&mut self, ctx: &mut ShardCtx<'_, Tok>, ev: Tok) {
        self.events += 1;
        self.digest = self
            .digest
            .wrapping_add(mix((ctx.now().0 << 20) ^ ev.rank as u64));
        if ev.hops_left == 0 {
            return;
        }
        let next = (ev.rank + 1) % self.part.hosts;
        let seq = &mut self.seqs[(ev.rank - self.base) as usize];
        *seq += 1;
        let key = ((ev.rank as u64) << 32) | *seq;
        let at = SimTime(ctx.now().0 + ctx.lookahead().0 + ev.stagger);
        ctx.send(
            self.part.shard_of(next),
            at,
            key,
            Tok { rank: next, hops_left: ev.hops_left - 1, stagger: ev.stagger },
        );
    }
}

fn fresh_sim(spec: &PhasedSpec) -> (Partition, ShardSim<TrafficWorld>) {
    let part = Partition::block(spec.hosts, spec.nshards);
    let worlds = (0..part.nshards)
        .map(|sh| {
            let ranks = part.ranks_of(sh);
            TrafficWorld {
                part,
                base: ranks.start,
                seqs: ranks.map(|_| 0).collect(),
                events: 0,
                digest: 0,
            }
        })
        .collect();
    (part, ShardSim::uniform(worlds, SimDuration(RING_LOOKAHEAD)))
}

/// Seed phase `k`'s token wave. Placement and timing are a pure
/// function of `(spec phases[k], k)`, and every seed lands at or after
/// the phase-`k` boundary — the invariants the prefix-hash keying
/// depends on.
fn seed_phase(sim: &mut ShardSim<TrafficWorld>, part: Partition, spec: &PhasedSpec, k: usize) {
    let cfg = spec.phases[k];
    let mut rng = SplitMix64::new(mix(0x7068_6173_6500 ^ k as u64));
    let phase_start = k as u64 * spec.phase_len;
    for i in 0..cfg.tokens {
        let rank = rng.next_below(spec.hosts as u64) as u32;
        let at = phase_start + rng.next_below(spec.phase_len.max(1) / 2 + 1);
        let key = (1u64 << 63) | ((k as u64) << 32) | i as u64;
        sim.schedule(
            part.shard_of(rank),
            SimTime(at),
            key,
            Tok { rank, hops_left: cfg.hops, stagger: cfg.stagger % 5 },
        );
    }
}

/// Result of a segmented run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentedOutcome {
    /// Order- and shard-count-independent digest of every handled
    /// event — the model result the identity contracts are stated
    /// over.
    pub digest: u64,
    /// Simulated completion time, picoseconds.
    pub end_time_ps: u64,
    /// Events executed *by this call* (excludes work a restored
    /// checkpoint already carried).
    pub events_executed: u64,
    /// Events in the full answer (prefix included).
    pub events_total: u64,
    /// Phases answered from a checkpoint instead of re-simulated.
    pub phases_reused: usize,
}

/// Runs [`PhasedSpec`]s, checkpointing at phase boundaries and
/// restarting mutated specs from the longest unaffected prefix.
pub struct IncrementalRunner {
    snaps: Mutex<HashMap<u128, Arc<ShardSnapshot<TrafficWorld>>>>,
    obs: Obs,
}

impl IncrementalRunner {
    pub fn new(obs: Obs) -> Self {
        IncrementalRunner { snaps: Mutex::new(HashMap::new()), obs }
    }

    /// Run `spec`, reusing the longest stored prefix checkpoint.
    pub fn run(&self, spec: &PhasedSpec) -> SegmentedOutcome {
        self.obs.counter("serve_incremental_runs_total", &[]).add(1);
        // Longest prefix (in completed phases) with a stored snapshot.
        let (mut sim, part, start, baseline) = {
            let snaps = self.snaps.lock().unwrap();
            let hit = (1..=spec.phases.len())
                .rev()
                .find_map(|k| snaps.get(&spec.prefix_hash(k).0).map(|s| (k, Arc::clone(s))));
            match hit {
                Some((k, snap)) => {
                    let sim = snap.restore();
                    let done: u64 = sim.worlds().map(|w| w.events).sum();
                    (sim, Partition::block(spec.hosts, spec.nshards), k, done)
                }
                None => {
                    let (part, sim) = fresh_sim(spec);
                    (sim, part, 0, 0)
                }
            }
        };
        if start > 0 {
            self.obs
                .counter("serve_incremental_phases_reused_total", &[])
                .add(start as u64);
            self.obs
                .counter("serve_incremental_events_skipped_total", &[])
                .add(baseline);
        }

        for k in start..spec.phases.len() {
            seed_phase(&mut sim, part, spec, k);
            sim.run_spec(false, Some(SimTime((k as u64 + 1) * spec.phase_len)));
            let key = spec.prefix_hash(k + 1).0;
            let snap = Arc::new(sim.snapshot());
            self.snaps.lock().unwrap().entry(key).or_insert(snap);
        }
        // Drain whatever outlives the last phase boundary. (Never
        // snapshotted: boundary checkpoints must stay pre-drain so
        // longer specs can extend them.)
        let stats = sim.run_spec(false, None);

        let events_total: u64 = sim.worlds().map(|w| w.events).sum();
        SegmentedOutcome {
            digest: sim.worlds().fold(0u64, |acc, w| acc.wrapping_add(w.digest)),
            end_time_ps: stats.end_time.0,
            events_executed: events_total - baseline,
            events_total,
            phases_reused: start,
        }
    }

    /// Stored checkpoints (for tests and capacity accounting).
    pub fn snapshots(&self) -> usize {
        self.snaps.lock().unwrap().len()
    }

    pub fn obs(&self) -> &Obs {
        &self.obs
    }
}

/// Cold run with no checkpoint store — the reference the incremental
/// path must match bit for bit.
pub fn run_cold(spec: &PhasedSpec) -> SegmentedOutcome {
    IncrementalRunner::new(Obs::new()).run(spec)
}

/// End-to-end engine-identity check the perf harness gates on: a
/// cold run, a segmented run restored through a JSON round trip at
/// every boundary, and runs at 1/2/4 shards must all produce the same
/// digest and event count.
pub fn snapshot_identity_check() -> bool {
    let base = PhasedSpec {
        hosts: 12,
        nshards: 1,
        phase_len: 400,
        phases: vec![
            PhaseCfg { tokens: 6, hops: 40, stagger: 1 },
            PhaseCfg { tokens: 4, hops: 60, stagger: 0 },
            PhaseCfg { tokens: 8, hops: 25, stagger: 3 },
        ],
    };
    let reference = run_cold(&base);
    let mut ok = reference.events_total > 0;
    for nshards in [1u32, 2, 4] {
        let spec = PhasedSpec { nshards, ..base.clone() };
        // Segmented with JSON round trips at every boundary.
        let (part, mut sim) = fresh_sim(&spec);
        for k in 0..spec.phases.len() {
            seed_phase(&mut sim, part, &spec, k);
            sim.run_spec(false, Some(SimTime((k as u64 + 1) * spec.phase_len)));
            let json = serde_json::to_string(&sim.snapshot()).expect("snapshot serializes");
            let snap: ShardSnapshot<TrafficWorld> =
                serde_json::from_str(&json).expect("snapshot parses");
            sim = snap.restore();
        }
        sim.run_spec(false, None);
        let digest = sim.worlds().fold(0u64, |acc, w| acc.wrapping_add(w.digest));
        let events: u64 = sim.worlds().map(|w| w.events).sum();
        ok &= digest == reference.digest && events == reference.events_total;
    }
    ok
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_spec(nshards: u32) -> PhasedSpec {
        PhasedSpec {
            hosts: 10,
            nshards,
            phase_len: 300,
            phases: vec![
                PhaseCfg { tokens: 5, hops: 30, stagger: 0 },
                PhaseCfg { tokens: 3, hops: 45, stagger: 2 },
                PhaseCfg { tokens: 6, hops: 20, stagger: 1 },
                PhaseCfg { tokens: 4, hops: 35, stagger: 0 },
            ],
        }
    }

    #[test]
    fn digest_is_shard_count_invariant() {
        let want = run_cold(&base_spec(1));
        for nshards in [2u32, 4] {
            let got = run_cold(&base_spec(nshards));
            assert_eq!(got.digest, want.digest, "nshards={nshards}");
            assert_eq!(got.events_total, want.events_total, "nshards={nshards}");
        }
    }

    #[test]
    fn mutated_tail_reuses_the_unaffected_prefix() {
        let runner = IncrementalRunner::new(Obs::new());
        let spec = base_spec(2);
        let cold = runner.run(&spec);
        assert_eq!(cold.phases_reused, 0);
        assert_eq!(cold.events_executed, cold.events_total);

        // Mutate the last phase: prefix 0..3 is unaffected.
        let mut mutated = spec.clone();
        mutated.phases[3].hops += 10;
        let warm = runner.run(&mutated);
        assert_eq!(warm.phases_reused, 3, "three boundary checkpoints apply");
        assert!(
            warm.events_executed < warm.events_total,
            "prefix work must be skipped: {warm:?}"
        );
        // And the answer matches a from-scratch run of the mutation.
        let reference = run_cold(&mutated);
        assert_eq!(warm.digest, reference.digest);
        assert_eq!(warm.events_total, reference.events_total);

        // An identical re-request reuses the full prefix too.
        let again = runner.run(&spec);
        assert_eq!(again.digest, cold.digest);
        assert_eq!(again.phases_reused, 4);
    }

    #[test]
    fn mutating_an_early_phase_invalidates_later_checkpoints() {
        let runner = IncrementalRunner::new(Obs::new());
        let spec = base_spec(2);
        runner.run(&spec);
        let mut mutated = spec.clone();
        mutated.phases[1].tokens += 1;
        let warm = runner.run(&mutated);
        assert_eq!(warm.phases_reused, 1, "only the phase-0 prefix survives");
        assert_eq!(warm.digest, run_cold(&mutated).digest);
    }

    #[test]
    fn identity_check_holds() {
        assert!(snapshot_identity_check());
    }
}
