//! Open-loop simulated client population.
//!
//! The north star turned on itself: the serving plane is exercised by
//! the same kind of synthetic population the simulator models —
//! millions of requests drawn from a seeded Zipf distribution over the
//! spec space (real request logs are Zipf-ish: a few hot sweep points
//! dominate, a long tail of one-off questions). Clients are
//! **open-loop per thread**: each worker issues its share of requests
//! back-to-back without think time, so the measured throughput is the
//! server's saturation throughput, not the clients' patience.
//!
//! Latencies are collected per-thread and merged for an *exact* p99
//! (no histogram interpolation error in the gated number); hit counts
//! come from the cache's own obs counters, so the report can't drift
//! from what Prometheus would scrape.

use crate::server::SweepServer;
use crate::spec::PointSpec;
use polaris_simnet::rng::SplitMix64;
use std::time::Instant;

/// Load-drive parameters.
#[derive(Debug, Clone, Copy)]
pub struct LoadConfig {
    /// Total requests across all clients.
    pub requests: u64,
    /// Concurrent client threads.
    pub clients: u32,
    /// Zipf skew `s` (popularity of rank r ∝ 1/r^s). 1.0 is the
    /// classic web-trace value.
    pub zipf_s: f64,
    /// Seed for the population's request streams.
    pub seed: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig { requests: 1_000_000, clients: 4, zipf_s: 1.0, seed: 0x5e21_e011 }
    }
}

/// What the drive observed.
#[derive(Debug, Clone)]
pub struct LoadReport {
    pub requests: u64,
    pub hits: u64,
    pub misses: u64,
    pub hit_ratio: f64,
    pub wall_seconds: f64,
    pub requests_per_sec: f64,
    /// Exact 99th-percentile service latency, nanoseconds.
    pub p99_latency_ns: u64,
}

/// Seeded Zipf sampler over `n` ranks: precomputed CDF, binary-search
/// draw. Rank 0 is the most popular spec.
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0);
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 1..=n {
            acc += 1.0 / (r as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Draw a rank in `0..n`.
    pub fn sample(&self, rng: &mut SplitMix64) -> usize {
        let u = rng.next_f64();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Drive `server` with `cfg.requests` requests over `specs`, Zipf-
/// distributed by popularity rank = spec index. Returns the merged
/// report; all obs series land in the server's bundle.
pub fn drive(server: &SweepServer, specs: &[PointSpec], cfg: LoadConfig) -> LoadReport {
    assert!(!specs.is_empty());
    let zipf = Zipf::new(specs.len(), cfg.zipf_s);
    let clients = cfg.clients.max(1) as u64;
    let before = server.cache_stats();

    let start = Instant::now();
    let mut all_latencies: Vec<Vec<u64>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for c in 0..clients {
            let share = cfg.requests / clients + u64::from(c < cfg.requests % clients);
            let zipf = &zipf;
            let server = &server;
            handles.push(scope.spawn(move || {
                let mut rng = SplitMix64::new(cfg.seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(c + 1)));
                let mut latencies = Vec::with_capacity(share as usize);
                for _ in 0..share {
                    let spec = specs[zipf.sample(&mut rng)];
                    let t = Instant::now();
                    server.request(spec);
                    latencies.push(t.elapsed().as_nanos() as u64);
                }
                latencies
            }));
        }
        for h in handles {
            all_latencies.push(h.join().expect("client thread panicked"));
        }
    });
    let wall_seconds = start.elapsed().as_secs_f64();

    let mut latencies: Vec<u64> = all_latencies.concat();
    latencies.sort_unstable();
    let p99_latency_ns = if latencies.is_empty() {
        0
    } else {
        latencies[((latencies.len() as f64 * 0.99) as usize).min(latencies.len() - 1)]
    };

    let after = server.cache_stats();
    let hits = after.hits - before.hits;
    let misses = after.misses - before.misses;
    LoadReport {
        requests: cfg.requests,
        hits,
        misses,
        hit_ratio: hits as f64 / cfg.requests.max(1) as f64,
        wall_seconds,
        requests_per_sec: cfg.requests as f64 / wall_seconds.max(1e-9),
        p99_latency_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::figure_specs;
    use polaris_obs::Obs;

    #[test]
    fn zipf_is_seeded_and_skewed() {
        let zipf = Zipf::new(100, 1.0);
        let draw = |seed: u64| {
            let mut rng = SplitMix64::new(seed);
            (0..10_000).map(|_| zipf.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7), "same seed, same stream");
        let sample = draw(7);
        let head = sample.iter().filter(|&&r| r == 0).count();
        let tail = sample.iter().filter(|&&r| r == 99).count();
        assert!(head > 10 * tail.max(1), "rank 0 must dominate rank 99: {head} vs {tail}");
        assert!(sample.iter().all(|&r| r < 100));
    }

    #[test]
    fn zipf_drive_reaches_a_high_hit_ratio() {
        let server = SweepServer::new(1 << 20, Obs::new());
        let specs = figure_specs(&[4, 16]);
        let report = drive(
            &server,
            &specs,
            LoadConfig { requests: 5_000, clients: 2, zipf_s: 1.0, seed: 11 },
        );
        // 20 distinct specs, 5k requests: at most 20 misses.
        assert!(report.hit_ratio > 0.99, "hit ratio {}", report.hit_ratio);
        assert_eq!(report.hits + report.misses, report.requests);
        assert!(report.requests_per_sec > 0.0);
    }
}
