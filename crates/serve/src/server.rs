//! The sweep server: request → content address → cache → (maybe)
//! simulate.
//!
//! A [`SweepServer`] is the long-running object a deployment would put
//! behind a listener. Requests are [`PointSpec`]s; answers are
//! `Arc<PointResult>`s served from the content-addressed cache, with
//! per-request service latency recorded into the
//! `serve_request_latency_ns` histogram. [`SweepServer::run_figure`]
//! answers a whole figure sweep through the same path, so a warm
//! server renders figure tables without touching the engine at all —
//! and byte-identically to a cold one (the serving CI job pins this).

use crate::cache::{CacheStats, ResultCache};
use crate::canonical::SpecHash;
use crate::spec::{figure_specs, PointResult, PointSpec};
use polaris_obs::Obs;
use std::sync::Arc;
use std::time::Instant;

pub struct SweepServer {
    cache: ResultCache<PointResult>,
    obs: Obs,
}

/// A rendered figure: one row per spec, formatted exactly as the
/// table layer would print them. Rows are deterministic, so cold and
/// warm renders must be byte-identical.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FigureResult {
    pub header: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl SweepServer {
    /// A server whose cache charges against `cache_budget_bytes`,
    /// publishing all serving metrics into `obs`.
    pub fn new(cache_budget_bytes: u64, obs: Obs) -> Self {
        SweepServer { cache: ResultCache::new(cache_budget_bytes, obs.clone()), obs }
    }

    /// Answer one request. Cache hits return the shared result without
    /// touching the engine; misses simulate once under single-flight.
    pub fn request(&self, spec: PointSpec) -> Arc<PointResult> {
        let start = Instant::now();
        let result = self.cache.get_or_compute(
            SpecHash::of(&spec),
            || spec.compute(),
            PointResult::cache_bytes,
        );
        self.obs
            .histogram("serve_request_latency_ns", &[])
            .record(start.elapsed().as_nanos() as u64);
        result
    }

    /// Answer a full figure sweep at the given scales through the
    /// cache, rendering completion rows in spec order.
    pub fn run_figure(&self, scales: &[u32]) -> FigureResult {
        let specs = figure_specs(scales);
        let rows = specs
            .iter()
            .map(|s| {
                let r = self.request(*s);
                vec![
                    s.nodes.to_string(),
                    format!("{:?}", s.collective),
                    s.payload_bytes.to_string(),
                    r.completion_ps.to_string(),
                    r.messages.to_string(),
                ]
            })
            .collect();
        FigureResult {
            header: ["nodes", "collective", "payload_bytes", "completion_ps", "messages"]
                .map(String::from)
                .to_vec(),
            rows,
        }
    }

    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The obs bundle all serving metrics publish into (hand it to
    /// `Obs::prometheus` for the exposition-format scrape).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_figure_render_is_byte_identical_and_engine_free() {
        let server = SweepServer::new(1 << 20, Obs::new());
        let cold = server.run_figure(&[4, 16]);
        let cold_stats = server.cache_stats();
        assert_eq!(cold_stats.misses as usize, cold.rows.len());

        let warm = server.run_figure(&[4, 16]);
        let warm_stats = server.cache_stats();
        assert_eq!(cold, warm, "warm render must be byte-identical");
        assert_eq!(warm_stats.misses, cold_stats.misses, "warm render must not simulate");
        assert_eq!(warm_stats.hits, cold_stats.hits + cold.rows.len() as u64);
    }

    #[test]
    fn latency_histogram_sees_every_request() {
        let server = SweepServer::new(1 << 20, Obs::new());
        let spec = figure_specs(&[4])[0];
        for _ in 0..5 {
            server.request(spec);
        }
        // 1 miss + 4 hits all recorded.
        let h = server.obs().histogram("serve_request_latency_ns", &[]);
        assert!(h.quantile(0.5) > 0);
    }
}
