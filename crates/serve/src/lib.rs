//! # polaris-serve — the serving plane
//!
//! Polaris as a long-running simulation *service* instead of a
//! process-per-answer batch tool. Three performance layers stack to
//! make repeated and near-repeated questions cheap:
//!
//! 1. **Content-addressed result cache** ([`cache`], keyed by
//!    [`canonical`] spec hashes): a canonical field-ordered byte
//!    encoding of every request spec hashes to a 128-bit address;
//!    identical specs — however they were constructed — hit the same
//!    entry. LRU byte-budget eviction, single-flight deduplication
//!    (concurrent identical requests run the simulation once), and
//!    hit/miss/eviction counters through `polaris-obs`.
//! 2. **Engine checkpoint/restore** (`polaris_simnet::shard`'s
//!    `ShardSnapshot`): full `ShardSim` state — calendar queues,
//!    worlds, clocks, deferred speculative sends, lookahead matrix —
//!    serialized behind stable IDs, restoring bit-identically in a
//!    fresh simulator or process.
//! 3. **Incremental re-simulation** ([`incremental`]): phase-segmented
//!    workloads snapshot at every phase boundary; a point-mutation of
//!    a cached spec restarts from the latest boundary whose prefix is
//!    unaffected instead of from t=0.
//!
//! [`server`] ties the layers into a [`server::SweepServer`];
//! [`client`] drives it with an open-loop simulated client population
//! (seeded Zipf over spec space, millions of requests) whose hit
//! ratio, p99 latency, and throughput publish through the obs plane
//! and gate in the perf harness (`BENCH_simwall.json` `serving`
//! section). `docs/SERVING.md` documents keying, the snapshot format,
//! and the stable-ID rules.

pub mod cache;
pub mod canonical;
pub mod client;
pub mod incremental;
pub mod server;
pub mod spec;

pub mod prelude {
    pub use crate::cache::{CacheStats, ResultCache};
    pub use crate::canonical::{Canonical, CanonicalBuf, SpecHash};
    pub use crate::client::{drive, LoadConfig, LoadReport, Zipf};
    pub use crate::incremental::{IncrementalRunner, PhaseCfg, PhasedSpec, SegmentedOutcome};
    pub use crate::server::{FigureResult, SweepServer};
    pub use crate::spec::{figure_specs, PointResult, PointSpec};
}
