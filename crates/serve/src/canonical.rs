//! Canonical spec encoding and content addresses.
//!
//! A cache that answers "have I simulated this before?" is only as
//! good as its notion of *this*. Two requests must collide exactly
//! when they describe the same simulation, so the address is computed
//! from a **canonical byte encoding**: every spec writes its fields in
//! declaration order, each tagged with its name, with unambiguous
//! length-prefixed framing — no maps with nondeterministic iteration
//! order, no floating-point text formatting, no derive(Hash) (whose
//! layout silently changes with field reordering and is not stable
//! across compiler versions).
//!
//! The address itself is a 128-bit FNV-1a over those bytes
//! ([`SpecHash`]). 128 bits makes accidental collision over a
//! million-entry spec space vanishingly improbable (birthday bound
//! ~2^-90), and FNV needs no tables or vendored crypto.

use std::fmt;

/// A content address: 128-bit FNV-1a of a spec's canonical bytes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpecHash(pub u128);

const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV_PRIME: u128 = 0x0000000001000000000000000000013B;

impl SpecHash {
    /// Hash raw canonical bytes.
    pub fn of_bytes(bytes: &[u8]) -> SpecHash {
        let mut h = FNV_OFFSET;
        for &b in bytes {
            h ^= b as u128;
            h = h.wrapping_mul(FNV_PRIME);
        }
        SpecHash(h)
    }

    /// Hash a spec via its canonical encoding.
    pub fn of<T: Canonical + ?Sized>(spec: &T) -> SpecHash {
        let mut buf = CanonicalBuf::new();
        spec.encode(&mut buf);
        SpecHash::of_bytes(&buf.bytes)
    }
}

impl fmt::Debug for SpecHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SpecHash({:032x})", self.0)
    }
}

impl fmt::Display for SpecHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Accumulates a spec's canonical bytes. Every write is framed — field
/// names length-prefixed, integers fixed-width little-endian — so no
/// concatenation of two different field sequences can produce the same
/// byte stream.
#[derive(Default)]
pub struct CanonicalBuf {
    bytes: Vec<u8>,
}

impl CanonicalBuf {
    pub fn new() -> Self {
        CanonicalBuf::default()
    }

    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    fn tag(&mut self, name: &str) {
        self.bytes.extend_from_slice(&(name.len() as u32).to_le_bytes());
        self.bytes.extend_from_slice(name.as_bytes());
    }

    /// A named unsigned field.
    pub fn u64(&mut self, name: &str, v: u64) {
        self.tag(name);
        self.bytes.push(b'u');
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// A named string field (length-prefixed UTF-8).
    pub fn str(&mut self, name: &str, v: &str) {
        self.tag(name);
        self.bytes.push(b's');
        self.bytes.extend_from_slice(&(v.len() as u32).to_le_bytes());
        self.bytes.extend_from_slice(v.as_bytes());
    }

    /// A named nested list: each element encodes into its own framed
    /// sub-buffer, so element boundaries are unambiguous.
    pub fn list<T: Canonical>(&mut self, name: &str, items: &[T]) {
        self.tag(name);
        self.bytes.push(b'l');
        self.bytes.extend_from_slice(&(items.len() as u32).to_le_bytes());
        for item in items {
            let mut sub = CanonicalBuf::new();
            item.encode(&mut sub);
            self.bytes.extend_from_slice(&(sub.bytes.len() as u32).to_le_bytes());
            self.bytes.extend_from_slice(&sub.bytes);
        }
    }
}

/// A spec that can write itself into a [`CanonicalBuf`].
///
/// Contract: `a.encode(..) == b.encode(..)` **iff** `a` and `b`
/// describe the same simulation. Implementations write every
/// semantically meaningful field (in declaration order, by name) and
/// nothing else — no timestamps, no request IDs, no client identity.
pub trait Canonical {
    fn encode(&self, buf: &mut CanonicalBuf);
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Pair(u64, u64);
    impl Canonical for Pair {
        fn encode(&self, buf: &mut CanonicalBuf) {
            buf.u64("a", self.0);
            buf.u64("b", self.1);
        }
    }

    #[test]
    fn known_fnv_vectors() {
        // FNV-1a 128 of the empty string is the offset basis.
        assert_eq!(SpecHash::of_bytes(b"").0, FNV_OFFSET);
        // And hashing is sensitive to every byte.
        assert_ne!(SpecHash::of_bytes(b"a"), SpecHash::of_bytes(b"b"));
    }

    #[test]
    fn equal_specs_collide_distinct_specs_do_not() {
        assert_eq!(SpecHash::of(&Pair(1, 2)), SpecHash::of(&Pair(1, 2)));
        // Framing keeps field contents from bleeding into each other:
        // (1, 2) vs (2, 1) and adjacent-byte confusions all differ.
        assert_ne!(SpecHash::of(&Pair(1, 2)), SpecHash::of(&Pair(2, 1)));
        assert_ne!(SpecHash::of(&Pair(0x0102, 0)), SpecHash::of(&Pair(0x01, 0x02)));
    }

    #[test]
    fn strings_are_length_framed() {
        struct S(&'static str, &'static str);
        impl Canonical for S {
            fn encode(&self, buf: &mut CanonicalBuf) {
                buf.str("x", self.0);
                buf.str("y", self.1);
            }
        }
        assert_ne!(SpecHash::of(&S("ab", "c")), SpecHash::of(&S("a", "bc")));
    }

    #[test]
    fn lists_frame_their_elements() {
        struct L(Vec<Pair>);
        impl Canonical for L {
            fn encode(&self, buf: &mut CanonicalBuf) {
                buf.list("items", &self.0);
            }
        }
        let one = L(vec![Pair(1, 2), Pair(3, 4)]);
        let other = L(vec![Pair(1, 2), Pair(3, 5)]);
        assert_ne!(SpecHash::of(&one), SpecHash::of(&other));
        assert_eq!(SpecHash::of(&one), SpecHash::of(&L(vec![Pair(1, 2), Pair(3, 4)])));
    }
}
