//! Request specs the sweep server answers, and their canonical
//! encodings.
//!
//! A [`PointSpec`] names one figure cell — topology scale, collective,
//! payload — exactly the way the F3 generator enumerates them. The
//! canonical encoding writes the *semantic* fields (not any derived or
//! presentational state), so two requests for the same cell address
//! the same cache entry no matter who built them.

use crate::canonical::{Canonical, CanonicalBuf};
use polaris_collectives::prelude::*;
use polaris_simnet::link::Generation;
use polaris_simnet::network::Network;
use polaris_simnet::topology::{Topology, TopologyKind};
use serde::{Deserialize, Serialize};

/// One sweep point: a collective at a scale with a payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PointSpec {
    /// Node count; fat tree where a k fits exactly (16/128/1024),
    /// crossbar otherwise — same mapping as figure F3.
    pub nodes: u32,
    pub collective: Collective,
    pub payload_bytes: u64,
}

impl Canonical for PointSpec {
    fn encode(&self, buf: &mut CanonicalBuf) {
        buf.u64("nodes", self.nodes as u64);
        // `Collective` is a plain C-like tree of unit payloads; its
        // Debug rendering is a stable, injective name for the variant
        // ("Allreduce(Ring)"), which is exactly what a canonical
        // encoding needs.
        buf.str("collective", &format!("{:?}", self.collective));
        buf.u64("payload_bytes", self.payload_bytes);
    }
}

/// The simulated answer for one point.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PointResult {
    /// Completion time of the slowest rank, picoseconds.
    pub completion_ps: u64,
    /// Messages the collective put on the network.
    pub messages: u64,
    /// Payload bytes presented to the network.
    pub payload_bytes: u64,
}

impl PointResult {
    /// Bytes this result charges against a cache budget.
    pub fn cache_bytes(&self) -> u64 {
        std::mem::size_of::<PointResult>() as u64
    }
}

fn net(p: u32) -> Network {
    let topo = match p {
        16 => Topology::new(TopologyKind::FatTree { k: 4 }),
        128 => Topology::new(TopologyKind::FatTree { k: 8 }),
        1024 => Topology::new(TopologyKind::FatTree { k: 16 }),
        _ => Topology::new(TopologyKind::Crossbar { hosts: p }),
    };
    Network::new(topo, Generation::InfiniBand4x.link_model())
}

impl PointSpec {
    /// Run the simulation for this point (the cache-miss path).
    pub fn compute(&self) -> PointResult {
        let r = simulate_collective(
            &mut net(self.nodes),
            self.collective,
            self.payload_bytes,
            ExecParams::default(),
        );
        PointResult {
            completion_ps: r.completion.0,
            messages: r.messages,
            payload_bytes: r.payload_bytes,
        }
    }
}

/// The full spec space a figure sweep (and the Zipf client population)
/// draws from: every (scale, collective, payload) cell of the F3-style
/// sweep at the given scales.
pub fn figure_specs(scales: &[u32]) -> Vec<PointSpec> {
    let mut specs = Vec::new();
    for &p in scales {
        for (collective, payload_bytes) in [
            (Collective::Barrier(BarrierAlgo::Dissemination), 0),
            (Collective::Barrier(BarrierAlgo::Tree), 0),
            (Collective::Allreduce(AllreduceAlgo::RecursiveDoubling), 64),
            (Collective::Allreduce(AllreduceAlgo::Ring), 64),
            (Collective::Allreduce(AllreduceAlgo::ReduceBcast), 64),
            (Collective::Allreduce(AllreduceAlgo::RecursiveDoubling), 1 << 16),
            (Collective::Allreduce(AllreduceAlgo::Ring), 1 << 16),
            (Collective::Allreduce(AllreduceAlgo::ReduceBcast), 1 << 16),
            (Collective::Bcast(BcastAlgo::Binomial), 1 << 14),
            (Collective::Bcast(BcastAlgo::ScatterAllgather), 1 << 14),
        ] {
            specs.push(PointSpec { nodes: p, collective, payload_bytes });
        }
    }
    specs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canonical::SpecHash;

    #[test]
    fn distinct_cells_get_distinct_addresses() {
        let specs = figure_specs(&[4, 16, 64]);
        let mut hashes: Vec<_> = specs.iter().map(SpecHash::of).collect();
        hashes.sort();
        hashes.dedup();
        assert_eq!(hashes.len(), specs.len(), "spec space must be collision-free");
    }

    #[test]
    fn recomputation_is_deterministic() {
        let spec = PointSpec {
            nodes: 16,
            collective: Collective::Allreduce(AllreduceAlgo::Ring),
            payload_bytes: 1 << 16,
        };
        assert_eq!(spec.compute(), spec.compute());
        assert!(spec.compute().completion_ps > 0);
    }
}
