//! Fabric-level chaos: deterministic packet drop and corruption for the
//! virtual NIC, mirroring how real verbs hardware surfaces wire faults.
//!
//! Enabled via [`crate::fabric::Fabric::set_chaos`], the chaos layer
//! judges every two-sided send crossing the fabric:
//!
//! - **drop** — the message never reaches the peer; after (modeled)
//!   transport retry exhaustion the *sender* gets a
//!   [`CqeStatus::RetryExceeded`](crate::cq::CqeStatus) error completion,
//!   exactly as an RC QP reports a lost packet whose acks never came.
//! - **corrupt** — the payload is delivered with a byte flipped; the
//!   receiver's ICRC check fails and its receive completes with
//!   [`CqeStatus::ChecksumError`](crate::cq::CqeStatus), while the
//!   sender sees `RetryExceeded` (on hardware, the receiver NACKs the
//!   bad packet and the sender retries until the retry budget dies).
//!
//! One-sided RDMA and atomics are exempt: the reliability experiments
//! scope chaos to the two-sided path, which carries every control
//! envelope and eager payload of the messaging layer above.
//!
//! The decision stream is a seeded SplitMix64, so a fixed seed and a
//! fixed posting order reproduce the identical fault pattern.

use polaris_simnet::rng::SplitMix64;

/// Chaos configuration: seed plus per-send fault probabilities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosParams {
    /// Seed for the deterministic decision stream.
    pub seed: u64,
    /// Probability a two-sided send is dropped outright.
    pub drop_prob: f64,
    /// Probability a surviving send is delivered corrupted.
    pub corrupt_prob: f64,
}

impl ChaosParams {
    /// Pure uniform loss.
    pub fn drop_only(seed: u64, drop_prob: f64) -> Self {
        ChaosParams { seed, drop_prob, corrupt_prob: 0.0 }
    }
}

/// What the chaos layer decided for one send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosVerdict {
    Deliver,
    Drop,
    Corrupt,
}

/// Counters of injected faults (for tests and experiment reporting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChaosStats {
    pub drops: u64,
    pub corruptions: u64,
}

/// Runtime state behind the fabric's chaos knob.
#[derive(Debug)]
pub(crate) struct ChaosState {
    params: ChaosParams,
    rng: SplitMix64,
    stats: ChaosStats,
}

impl ChaosState {
    pub(crate) fn new(params: ChaosParams) -> Self {
        ChaosState {
            rng: SplitMix64::new(params.seed),
            params,
            stats: ChaosStats::default(),
        }
    }

    pub(crate) fn judge(&mut self) -> ChaosVerdict {
        if self.rng.chance(self.params.drop_prob) {
            self.stats.drops += 1;
            return ChaosVerdict::Drop;
        }
        if self.rng.chance(self.params.corrupt_prob) {
            self.stats.corruptions += 1;
            return ChaosVerdict::Corrupt;
        }
        ChaosVerdict::Deliver
    }

    pub(crate) fn stats(&self) -> ChaosStats {
        self.stats
    }
}

/// CRC-32 (IEEE 802.3 polynomial, bit-reversed 0xEDB88320), the same
/// family of check an IB ICRC or Ethernet FCS performs. Bitwise — plenty
/// fast for the message sizes the chaos tests push.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_detects_single_byte_flip() {
        let mut data = b"the quick brown fox".to_vec();
        let clean = crc32(&data);
        data[7] ^= 0x5A;
        assert_ne!(crc32(&data), clean);
    }

    #[test]
    fn chaos_stream_is_deterministic() {
        let params = ChaosParams { seed: 9, drop_prob: 0.3, corrupt_prob: 0.3 };
        let mut a = ChaosState::new(params);
        let mut b = ChaosState::new(params);
        let va: Vec<ChaosVerdict> = (0..500).map(|_| a.judge()).collect();
        let vb: Vec<ChaosVerdict> = (0..500).map(|_| b.judge()).collect();
        assert_eq!(va, vb);
        assert_eq!(a.stats(), b.stats());
        assert!(a.stats().drops > 0 && a.stats().corruptions > 0);
    }

    #[test]
    fn zero_probabilities_never_fault() {
        let mut s = ChaosState::new(ChaosParams { seed: 1, drop_prob: 0.0, corrupt_prob: 0.0 });
        assert!((0..100).all(|_| s.judge() == ChaosVerdict::Deliver));
        assert_eq!(s.stats(), ChaosStats::default());
    }
}
