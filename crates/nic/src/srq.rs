//! Shared receive queues.
//!
//! With per-QP receive buffering, an endpoint's eager-buffer memory grows
//! linearly with the number of peers — at the keynote's "exploding"
//! scales, thousands of peers times a per-peer window is gigabytes of
//! pinned memory per node. An SRQ lets all of a node's QPs consume
//! receives from one shared pool, making receive memory O(inflight)
//! instead of O(peers). Inbound messages that find the pool empty park
//! (in arrival order, preserving per-sender FIFO) until a buffer is
//! posted — the virtual equivalent of RNR retry.

use crate::cq::{Cqe, CqeOpcode, CqeStatus};
use crate::error::{NicError, Result};
use crate::fabric::FabricInner;
use crate::qp::{drop_guard_deliver, Inbound, QpInner};
use crate::wr::RecvWr;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::{Arc, Weak};

pub(crate) struct SrqState {
    pub(crate) posted: VecDeque<RecvWr>,
    /// Inbound work parked for want of a buffer, with the receiving QP
    /// it belongs to (completion routing).
    pub(crate) parked: VecDeque<(Weak<QpInner>, Inbound)>,
}

pub(crate) struct SrqInner {
    pub(crate) state: Mutex<SrqState>,
    fabric: Weak<FabricInner>,
}

/// A shared receive queue handle. Attach to QPs at creation via
/// [`crate::fabric::Nic::create_qp_with_srq`].
#[derive(Clone)]
pub struct SharedReceiveQueue {
    pub(crate) inner: Arc<SrqInner>,
}

impl SharedReceiveQueue {
    pub(crate) fn new(fabric: Weak<FabricInner>) -> Self {
        SharedReceiveQueue {
            inner: Arc::new(SrqInner {
                state: Mutex::new(SrqState {
                    posted: VecDeque::new(),
                    parked: VecDeque::new(),
                }),
                fabric,
            }),
        }
    }

    /// Post a receive buffer to the shared pool. If inbound work is
    /// parked, the oldest is delivered immediately (on the posting
    /// thread, like every transfer in the virtual NIC).
    pub fn post_recv(&self, wr: RecvWr) -> Result<()> {
        let fabric = self.inner.fabric.upgrade().ok_or(NicError::FabricDown)?;
        let mut st = self.inner.state.lock();
        // Drain the oldest parked inbound whose QP is still alive.
        while let Some((qp_weak, _)) = st.parked.front() {
            match qp_weak.upgrade() {
                Some(qp) => {
                    let (_, inbound) = st.parked.pop_front().expect("front exists");
                    drop_guard_deliver(&qp, inbound, wr, &fabric);
                    return Ok(());
                }
                None => {
                    st.parked.pop_front();
                }
            }
        }
        st.posted.push_back(wr);
        Ok(())
    }

    /// Buffers currently available and messages currently parked.
    pub fn depths(&self) -> (usize, usize) {
        let st = self.inner.state.lock();
        (st.posted.len(), st.parked.len())
    }

    /// Handle an inbound message for `rx` (a QP attached to this SRQ):
    /// deliver with a pooled buffer or park.
    pub(crate) fn handle_inbound(
        &self,
        rx: &Arc<QpInner>,
        inbound: Inbound,
        fabric: &Arc<FabricInner>,
    ) {
        let mut st = self.inner.state.lock();
        if let Some(recv) = st.posted.pop_front() {
            drop_guard_deliver(rx, inbound, recv, fabric);
        } else {
            st.parked.push_back((Arc::downgrade(rx), inbound));
        }
    }

    /// Flush all posted buffers (error/teardown): each produces a
    /// flushed completion on `cq_of` the owning QP is unknown for pool
    /// buffers, so the caller supplies the CQ to notify.
    pub fn flush_to(&self, cq: &crate::cq::CompletionQueue) {
        let fabric = self.inner.fabric.upgrade();
        let mut st = self.inner.state.lock();
        for wr in st.posted.drain(..) {
            // Pool buffers have no owning QP, so only the fabric-wide
            // CQE ledger can account for the flush.
            if let Some(f) = &fabric {
                f.count_cqe(false);
            }
            cq.push(Cqe {
                wr_id: wr.wr_id,
                status: CqeStatus::Flushed,
                opcode: CqeOpcode::Recv,
                byte_len: 0,
                imm: None,
                qp: crate::types::QpNum(u32::MAX),
            });
        }
        st.parked.clear();
    }
}

impl std::fmt::Debug for SharedReceiveQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (posted, parked) = self.depths();
        f.debug_struct("SharedReceiveQueue")
            .field("posted", &posted)
            .field("parked", &parked)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use std::time::Duration;

    type SrqWorld = (
        Fabric,
        Nic,
        Vec<QueuePair>,
        Vec<(Nic, QueuePair)>,
        SharedReceiveQueue,
        CompletionQueue,
    );

    /// Three senders, one receiver with an SRQ shared by all three QPs.
    fn world() -> SrqWorld {
        let fabric = Fabric::new();
        let rx_nic = fabric.create_nic();
        let rx_pd = rx_nic.alloc_pd();
        let rx_cq = CompletionQueue::new(64);
        let srq = rx_nic.create_srq();
        let mut rx_qps = Vec::new();
        let mut senders = Vec::new();
        for _ in 0..3 {
            let rx_qp = rx_nic
                .create_qp_with_srq(rx_pd, &rx_cq, &rx_cq, &srq)
                .unwrap();
            let tx_nic = fabric.create_nic();
            let tx_pd = tx_nic.alloc_pd();
            let tx_cq = CompletionQueue::new(64);
            let tx_qp = tx_nic.create_qp(tx_pd, &tx_cq, &tx_cq).unwrap();
            fabric.connect(&rx_qp, &tx_qp).unwrap();
            rx_qps.push(rx_qp);
            senders.push((tx_nic, tx_qp));
        }
        (fabric, rx_nic, rx_qps, senders, srq, rx_cq)
    }

    #[test]
    fn one_pool_serves_many_peers() {
        let (_f, rx_nic, rx_qps, senders, srq, rx_cq) = world();
        let rx_pd = rx_qps[0].pd();
        // Post two pooled buffers for three senders.
        let bufs: Vec<MemoryRegion> =
            (0..2).map(|_| rx_nic.register(rx_pd, 64).unwrap()).collect();
        for (i, mr) in bufs.iter().enumerate() {
            srq.post_recv(RecvWr::new(i as u64, vec![Sge::whole(mr)])).unwrap();
        }
        // All three senders fire.
        for (i, (nic, qp)) in senders.iter().enumerate() {
            let src = nic
                .register_from(qp.pd(), format!("msg{i}").as_bytes())
                .unwrap();
            qp.post_send(SendWr::Send {
                wr_id: 100 + i as u64,
                sges: crate::sge_list![Sge::whole(&src)],
                imm: None,
            })
            .unwrap();
        }
        // Two delivered, one parked.
        let c1 = rx_cq.wait_one(Duration::from_secs(1)).unwrap();
        let c2 = rx_cq.wait_one(Duration::from_secs(1)).unwrap();
        assert_eq!(c1.opcode, CqeOpcode::Recv);
        assert_ne!(c1.qp, c2.qp, "completions route to the right QP");
        let (posted, parked) = srq.depths();
        assert_eq!((posted, parked), (0, 1));
        // Posting one more buffer drains the parked message.
        let late = rx_nic.register(rx_pd, 64).unwrap();
        srq.post_recv(RecvWr::new(9, vec![Sge::whole(&late)])).unwrap();
        let c3 = rx_cq.wait_one(Duration::from_secs(1)).unwrap();
        assert_eq!(c3.wr_id, 9);
        assert_eq!(late.to_vec(0, 4).unwrap(), b"msg2");
        assert_eq!(srq.depths(), (0, 0));
    }

    #[test]
    fn qp_with_srq_rejects_direct_post_recv() {
        let (_f, rx_nic, rx_qps, _senders, _srq, _cq) = world();
        let mr = rx_nic.register(rx_qps[0].pd(), 8).unwrap();
        let err = rx_qps[0]
            .post_recv(RecvWr::new(1, vec![Sge::whole(&mr)]))
            .unwrap_err();
        assert!(matches!(err, NicError::UsesSrq(_)));
    }

    #[test]
    fn parked_messages_drain_in_arrival_order() {
        let (_f, rx_nic, rx_qps, senders, srq, rx_cq) = world();
        let rx_pd = rx_qps[0].pd();
        // No buffers posted: all three park in order.
        for (i, (nic, qp)) in senders.iter().enumerate() {
            let src = nic.register_from(qp.pd(), &[i as u8]).unwrap();
            qp.post_send(SendWr::Send {
                wr_id: i as u64,
                sges: crate::sge_list![Sge::whole(&src)],
                imm: None,
            })
            .unwrap();
        }
        assert_eq!(srq.depths(), (0, 3));
        for i in 0..3u64 {
            let mr = rx_nic.register(rx_pd, 8).unwrap();
            srq.post_recv(RecvWr::new(i, vec![Sge::whole(&mr)])).unwrap();
            let c = rx_cq.wait_one(Duration::from_secs(1)).unwrap();
            assert_eq!(c.wr_id, i);
            assert_eq!(mr.to_vec(0, 1).unwrap(), vec![i as u8]);
        }
    }

    #[test]
    fn flush_produces_flushed_completions() {
        let (_f, rx_nic, rx_qps, _senders, srq, rx_cq) = world();
        let rx_pd = rx_qps[0].pd();
        let mr = rx_nic.register(rx_pd, 8).unwrap();
        srq.post_recv(RecvWr::new(7, vec![Sge::whole(&mr)])).unwrap();
        srq.flush_to(&rx_cq);
        let c = rx_cq.wait_one(Duration::from_secs(1)).unwrap();
        assert_eq!(c.status, CqeStatus::Flushed);
        assert_eq!(c.wr_id, 7);
        assert_eq!(srq.depths(), (0, 0));
    }
}
