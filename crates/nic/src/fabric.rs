//! The shared-memory fabric: NIC creation, out-of-band connection setup,
//! rkey resolution, and fabric-wide DMA accounting.
//!
//! One [`Fabric`] represents a cluster's interconnect. Each node owns a
//! [`Nic`], through which it allocates protection domains, registers
//! memory, and creates queue pairs. `Fabric::connect` is the out-of-band
//! channel real deployments implement over Ethernet or a job launcher.
//!
//! The DMA counters are how the zero-copy experiments are *verified*
//! rather than merely asserted: tests check that the rendezvous path
//! moves each payload byte exactly once while the eager and sockets
//! paths move it two and four times respectively.

use crate::chaos::{ChaosParams, ChaosState, ChaosStats, ChaosVerdict};
use crate::cq::CompletionQueue;
use crate::error::{NicError, Result};
use crate::mr::{MemoryRegion, MrInner, ProtectionDomain};
use crate::qp::{QpInner, QpState, QueuePair, RecvState};
use crate::srq::SharedReceiveQueue;
use crate::types::{NodeId, PdId, QpNum, Rkey};
use parking_lot::{Mutex, RwLock};
use polaris_obs::{Counter, Obs};
use polaris_simnet::shard::Partition;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Weak};

/// Fabric-wide data-movement statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FabricStats {
    /// Individual DMA operations executed.
    pub dma_ops: u64,
    /// Payload bytes moved by DMA.
    pub dma_bytes: u64,
    /// Memory registrations performed across all NICs.
    pub registrations: u64,
    /// Bytes pinned by those registrations.
    pub registered_bytes: u64,
}

pub(crate) struct NicInner {
    node: NodeId,
    next_pd: AtomicU32,
    next_qp: AtomicU32,
    mrs: RwLock<HashMap<Rkey, Weak<MrInner>>>,
    qps: RwLock<HashMap<QpNum, Arc<QpInner>>>,
}

/// Fabric-wide observability hooks: the shared plane plus counter
/// handles cached once at attach time so hot paths pay one atomic add,
/// not a registry lookup.
pub(crate) struct FabObs {
    pub(crate) obs: Obs,
    dma_ops: Counter,
    dma_bytes: Counter,
    cqe_ok: Counter,
    cqe_err: Counter,
    chaos_drops: Counter,
    chaos_corruptions: Counter,
}

impl FabObs {
    fn new(obs: Obs) -> Self {
        FabObs {
            dma_ops: obs.counter("nic_dma_ops_total", &[]),
            dma_bytes: obs.counter("nic_dma_bytes_total", &[]),
            cqe_ok: obs.counter("nic_cqe_total", &[("status", "ok")]),
            cqe_err: obs.counter("nic_cqe_total", &[("status", "err")]),
            chaos_drops: obs.counter("nic_chaos_drops_total", &[]),
            chaos_corruptions: obs.counter("nic_chaos_corruptions_total", &[]),
            obs,
        }
    }
}

pub(crate) struct FabricInner {
    nodes: RwLock<HashMap<NodeId, Arc<NicInner>>>,
    next_node: AtomicU32,
    dma_ops: AtomicU64,
    dma_bytes: AtomicU64,
    registrations: AtomicU64,
    registered_bytes: AtomicU64,
    /// Fault injection for two-sided sends; `None` = healthy fabric.
    chaos: Mutex<Option<ChaosState>>,
    /// Observability plane; `None` = unobserved (zero overhead).
    obs: RwLock<Option<Arc<FabObs>>>,
    /// Engine-shard affinity per node (see [`Fabric::assign_shards`]);
    /// unmapped nodes implicitly live on shard 0.
    shards: RwLock<HashMap<NodeId, u32>>,
}

impl FabricInner {
    pub(crate) fn lookup_qp(&self, node: NodeId, qp: QpNum) -> Result<Arc<QpInner>> {
        let nodes = self.nodes.read();
        let nic = nodes.get(&node).ok_or(NicError::UnknownNode(node))?;
        let qps = nic.qps.read();
        qps.get(&qp).cloned().ok_or(NicError::NotConnected(qp))
    }

    pub(crate) fn lookup_mr(&self, node: NodeId, rkey: Rkey) -> Result<Arc<MrInner>> {
        let nodes = self.nodes.read();
        let nic = nodes.get(&node).ok_or(NicError::UnknownNode(node))?;
        let mrs = nic.mrs.read();
        mrs.get(&rkey)
            .and_then(Weak::upgrade)
            .ok_or(NicError::BadRkey(rkey))
    }

    pub(crate) fn count_dma(&self, bytes: u64) {
        self.dma_ops.fetch_add(1, Ordering::Relaxed);
        self.dma_bytes.fetch_add(bytes, Ordering::Relaxed);
        if let Some(fo) = &*self.obs.read() {
            fo.dma_ops.inc();
            fo.dma_bytes.add(bytes);
        }
    }

    pub(crate) fn obs(&self) -> Option<Arc<FabObs>> {
        self.obs.read().clone()
    }

    /// Bump the fabric-wide completion counters (`nic_cqe_total`).
    /// Every CQE push in the crate funnels through here exactly once,
    /// which is what lets tests reconcile error CQEs against the chaos
    /// layer's injection counts.
    pub(crate) fn count_cqe(&self, ok: bool) {
        if let Some(fo) = &*self.obs.read() {
            if ok {
                fo.cqe_ok.inc();
            } else {
                fo.cqe_err.inc();
            }
        }
    }

    /// Chaos verdict for one two-sided send, plus whether chaos is on
    /// at all (so the send path can skip CRC work on healthy fabrics).
    pub(crate) fn chaos_judge(&self) -> Option<ChaosVerdict> {
        let verdict = self.chaos.lock().as_mut().map(ChaosState::judge);
        match verdict {
            Some(ChaosVerdict::Drop) => {
                if let Some(fo) = &*self.obs.read() {
                    fo.chaos_drops.inc();
                }
            }
            Some(ChaosVerdict::Corrupt) => {
                if let Some(fo) = &*self.obs.read() {
                    fo.chaos_corruptions.inc();
                }
            }
            _ => {}
        }
        verdict
    }
}

/// The cluster fabric handle. Cloning shares the fabric.
#[derive(Clone)]
pub struct Fabric {
    inner: Arc<FabricInner>,
}

impl Default for Fabric {
    fn default() -> Self {
        Self::new()
    }
}

impl Fabric {
    pub fn new() -> Self {
        Fabric {
            inner: Arc::new(FabricInner {
                nodes: RwLock::new(HashMap::new()),
                next_node: AtomicU32::new(0),
                dma_ops: AtomicU64::new(0),
                dma_bytes: AtomicU64::new(0),
                registrations: AtomicU64::new(0),
                registered_bytes: AtomicU64::new(0),
                chaos: Mutex::new(None),
                obs: RwLock::new(None),
                shards: RwLock::new(HashMap::new()),
            }),
        }
    }

    /// Attach an observability plane. DMA, completion, and chaos
    /// counters land in the registry under `nic_*`; QPs created after
    /// this call additionally get per-QP `nic_qp_*{node,qp}` series.
    pub fn set_obs(&self, obs: Obs) {
        *self.inner.obs.write() = Some(Arc::new(FabObs::new(obs)));
    }

    /// Arm deterministic fault injection on every two-sided send
    /// crossing this fabric (see [`crate::chaos`]). Replaces any
    /// previous chaos configuration and resets its counters.
    pub fn set_chaos(&self, params: ChaosParams) {
        *self.inner.chaos.lock() = Some(ChaosState::new(params));
    }

    /// Disarm fault injection.
    pub fn clear_chaos(&self) {
        *self.inner.chaos.lock() = None;
    }

    /// Counters of injected faults, if chaos is armed.
    pub fn chaos_stats(&self) -> Option<ChaosStats> {
        self.inner.chaos.lock().as_ref().map(ChaosState::stats)
    }

    /// Attach a new NIC (node) to the fabric, assigning the next rank.
    pub fn create_nic(&self) -> Nic {
        let id = NodeId(self.inner.next_node.fetch_add(1, Ordering::Relaxed));
        let nic = Arc::new(NicInner {
            node: id,
            next_pd: AtomicU32::new(0),
            next_qp: AtomicU32::new(0),
            mrs: RwLock::new(HashMap::new()),
            qps: RwLock::new(HashMap::new()),
        });
        self.inner.nodes.write().insert(id, nic.clone());
        Nic {
            inner: nic,
            fabric: Arc::downgrade(&self.inner),
        }
    }

    /// Connect two queue pairs (the out-of-band exchange). Both must be
    /// in `Init`; both end up in `Rts`.
    pub fn connect(&self, a: &QueuePair, b: &QueuePair) -> Result<()> {
        for qp in [a, b] {
            let st = qp.state();
            if st != QpState::Init {
                return Err(NicError::InvalidQpState {
                    qp: qp.num(),
                    state: match st {
                        QpState::Reset => "Reset",
                        QpState::Init => "Init",
                        QpState::Rts => "Rts",
                        QpState::Error => "Error",
                    },
                });
            }
        }
        *a.inner.peer.lock() = Some((b.node(), b.num()));
        *b.inner.peer.lock() = Some((a.node(), a.num()));
        *a.inner.state.lock() = QpState::Rts;
        *b.inner.state.lock() = QpState::Rts;
        Ok(())
    }

    pub fn stats(&self) -> FabricStats {
        FabricStats {
            dma_ops: self.inner.dma_ops.load(Ordering::Relaxed),
            dma_bytes: self.inner.dma_bytes.load(Ordering::Relaxed),
            registrations: self.inner.registrations.load(Ordering::Relaxed),
            registered_bytes: self.inner.registered_bytes.load(Ordering::Relaxed),
        }
    }

    pub fn node_count(&self) -> usize {
        self.inner.nodes.read().len()
    }

    /// Pin one node to an engine shard (overriding any block
    /// assignment). Affinity is advisory metadata: the fabric itself
    /// stays shared-memory, but a sharded driver reads this map to
    /// decide which worker thread owns each node's event stream.
    pub fn set_node_shard(&self, node: NodeId, shard: u32) {
        self.inner.shards.write().insert(node, shard);
    }

    /// The engine shard a node is pinned to (0 when never assigned).
    pub fn node_shard(&self, node: NodeId) -> u32 {
        self.inner.shards.read().get(&node).copied().unwrap_or(0)
    }

    /// Block-partition every currently attached node across `nshards`
    /// engine shards using the same contiguous [`Partition`] arithmetic
    /// the sharded simulator uses (node id = rank), and record the
    /// per-node affinity. Returns the partition so callers can size
    /// their shard worlds consistently. Nodes attached later default to
    /// shard 0 until assigned.
    pub fn assign_shards(&self, nshards: u32) -> Partition {
        let nodes = self.inner.nodes.read();
        let part = Partition::block(nodes.len() as u32, nshards);
        let mut shards = self.inner.shards.write();
        for &node in nodes.keys() {
            shards.insert(node, part.shard_of(node.0));
        }
        part
    }

    /// All nodes pinned to `shard`, in node-id order.
    pub fn nodes_on_shard(&self, shard: u32) -> Vec<NodeId> {
        let shards = self.inner.shards.read();
        let mut nodes: Vec<NodeId> = shards
            .iter()
            .filter(|&(_, &s)| s == shard)
            .map(|(&n, _)| n)
            .collect();
        nodes.sort_unstable();
        nodes
    }
}

/// A node's NIC handle.
#[derive(Clone)]
pub struct Nic {
    inner: Arc<NicInner>,
    fabric: Weak<FabricInner>,
}

impl Nic {
    pub fn node_id(&self) -> NodeId {
        self.inner.node
    }

    /// Allocate a protection domain.
    pub fn alloc_pd(&self) -> ProtectionDomain {
        ProtectionDomain {
            node: self.inner.node,
            id: PdId(self.inner.next_pd.fetch_add(1, Ordering::Relaxed)),
        }
    }

    /// Register (allocate + pin) `len` bytes of DMA-able memory in `pd`.
    pub fn register(&self, pd: ProtectionDomain, len: usize) -> Result<MemoryRegion> {
        if pd.node != self.inner.node {
            return Err(NicError::PdMismatch);
        }
        let fabric = self.fabric.upgrade().ok_or(NicError::FabricDown)?;
        let mr = MemoryRegion::allocate(pd, len);
        self.inner
            .mrs
            .write()
            .insert(mr.rkey(), Arc::downgrade(&mr.inner));
        fabric.registrations.fetch_add(1, Ordering::Relaxed);
        fabric
            .registered_bytes
            .fetch_add(len as u64, Ordering::Relaxed);
        Ok(mr)
    }

    /// Register a region and copy `data` into it.
    pub fn register_from(&self, pd: ProtectionDomain, data: &[u8]) -> Result<MemoryRegion> {
        let mr = self.register(pd, data.len())?;
        mr.write_at(0, data)?;
        Ok(mr)
    }

    /// Create a queue pair in the `Init` state.
    pub fn create_qp(
        &self,
        pd: ProtectionDomain,
        send_cq: &CompletionQueue,
        recv_cq: &CompletionQueue,
    ) -> Result<QueuePair> {
        self.create_qp_inner(pd, send_cq, recv_cq, None)
    }

    /// Create a queue pair whose receives come from a shared receive
    /// queue instead of a per-QP posted list.
    pub fn create_qp_with_srq(
        &self,
        pd: ProtectionDomain,
        send_cq: &CompletionQueue,
        recv_cq: &CompletionQueue,
        srq: &SharedReceiveQueue,
    ) -> Result<QueuePair> {
        self.create_qp_inner(pd, send_cq, recv_cq, Some(srq.clone()))
    }

    /// Create a shared receive queue on this NIC.
    pub fn create_srq(&self) -> SharedReceiveQueue {
        SharedReceiveQueue::new(self.fabric.clone())
    }

    fn create_qp_inner(
        &self,
        pd: ProtectionDomain,
        send_cq: &CompletionQueue,
        recv_cq: &CompletionQueue,
        srq: Option<SharedReceiveQueue>,
    ) -> Result<QueuePair> {
        if pd.node != self.inner.node {
            return Err(NicError::PdMismatch);
        }
        let num = QpNum(self.inner.next_qp.fetch_add(1, Ordering::Relaxed));
        let qp_obs = self
            .fabric
            .upgrade()
            .and_then(|f| f.obs())
            .map(|fo| crate::qp::QpObs::new(&fo.obs, self.inner.node, num));
        let qp = Arc::new(QpInner {
            num,
            node: self.inner.node,
            pd,
            sq_cq: send_cq.clone(),
            rq_cq: recv_cq.clone(),
            state: Mutex::new(QpState::Init),
            peer: Mutex::new(None),
            recv: Mutex::new(RecvState {
                posted: VecDeque::new(),
                inbound: VecDeque::new(),
            }),
            srq,
            fabric: self.fabric.clone(),
            obs: qp_obs,
        });
        self.inner.qps.write().insert(num, qp.clone());
        Ok(QueuePair { inner: qp })
    }

    /// Drop the NIC's record of a memory region, invalidating its rkey
    /// for future remote access (existing handles keep the memory alive).
    pub fn deregister(&self, mr: &MemoryRegion) {
        self.inner.mrs.write().remove(&mr.rkey());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cq::{CqeOpcode, CqeStatus};
    use crate::types::RemoteAddr;
    use crate::wr::{RecvWr, SendWr, Sge};
    use std::time::Duration;

    struct Pair {
        fabric: Fabric,
        a: QueuePair,
        b: QueuePair,
        nic_a: Nic,
        nic_b: Nic,
        pd_a: ProtectionDomain,
        pd_b: ProtectionDomain,
        cq_a: CompletionQueue,
        cq_b: CompletionQueue,
    }

    fn pair() -> Pair {
        let fabric = Fabric::new();
        let nic_a = fabric.create_nic();
        let nic_b = fabric.create_nic();
        let pd_a = nic_a.alloc_pd();
        let pd_b = nic_b.alloc_pd();
        let cq_a = CompletionQueue::new(128);
        let cq_b = CompletionQueue::new(128);
        let a = nic_a.create_qp(pd_a, &cq_a, &cq_a).unwrap();
        let b = nic_b.create_qp(pd_b, &cq_b, &cq_b).unwrap();
        fabric.connect(&a, &b).unwrap();
        Pair {
            fabric,
            a,
            b,
            nic_a,
            nic_b,
            pd_a,
            pd_b,
            cq_a,
            cq_b,
        }
    }

    #[test]
    fn send_recv_moves_data_once() {
        let p = pair();
        let src = p.nic_a.register_from(p.pd_a, b"ping!").unwrap();
        let dst = p.nic_b.register(p.pd_b, 32).unwrap();
        p.b
            .post_recv(RecvWr::new(1, vec![Sge::whole(&dst)]))
            .unwrap();
        p.a
            .post_send(SendWr::Send {
                wr_id: 2,
                sges: crate::sge_list![Sge::whole(&src)],
                imm: Some(99),
            })
            .unwrap();
        let rx = p.cq_b.wait_one(Duration::from_secs(1)).unwrap();
        assert_eq!(rx.status, CqeStatus::Success);
        assert_eq!(rx.opcode, CqeOpcode::Recv);
        assert_eq!(rx.byte_len, 5);
        assert_eq!(rx.imm, Some(99));
        assert_eq!(rx.wr_id, 1);
        let tx = p.cq_a.wait_one(Duration::from_secs(1)).unwrap();
        assert_eq!(tx.wr_id, 2);
        assert_eq!(tx.status, CqeStatus::Success);
        assert_eq!(dst.to_vec(0, 5).unwrap(), b"ping!");
        let stats = p.fabric.stats();
        assert_eq!(stats.dma_ops, 1);
        assert_eq!(stats.dma_bytes, 5);
    }

    #[test]
    fn unmatched_send_parks_until_recv_posted() {
        let p = pair();
        let src = p.nic_a.register_from(p.pd_a, b"late").unwrap();
        p.a
            .post_send(SendWr::Send {
                wr_id: 1,
                sges: crate::sge_list![Sge::whole(&src)],
                imm: None,
            })
            .unwrap();
        // No completion yet on either side.
        assert!(p.cq_a.poll_one().unwrap().is_none());
        assert_eq!(p.b.recv_depths(), (0, 1));
        let dst = p.nic_b.register(p.pd_b, 8).unwrap();
        p.b
            .post_recv(RecvWr::new(2, vec![Sge::whole(&dst)]))
            .unwrap();
        assert_eq!(dst.to_vec(0, 4).unwrap(), b"late");
        assert!(p.cq_a.poll_one().unwrap().is_some());
        assert!(p.cq_b.poll_one().unwrap().is_some());
    }

    #[test]
    fn sends_match_receives_in_order() {
        let p = pair();
        let dst1 = p.nic_b.register(p.pd_b, 8).unwrap();
        let dst2 = p.nic_b.register(p.pd_b, 8).unwrap();
        p.b
            .post_recv(RecvWr::new(10, vec![Sge::whole(&dst1)]))
            .unwrap();
        p.b
            .post_recv(RecvWr::new(11, vec![Sge::whole(&dst2)]))
            .unwrap();
        for (i, msg) in [b"first..." as &[u8], b"second.."].iter().enumerate() {
            let src = p.nic_a.register_from(p.pd_a, msg).unwrap();
            p.a
                .post_send(SendWr::Send {
                    wr_id: i as u64,
                    sges: crate::sge_list![Sge::whole(&src)],
                    imm: None,
                })
                .unwrap();
        }
        let r1 = p.cq_b.poll_one().unwrap().unwrap();
        let r2 = p.cq_b.poll_one().unwrap().unwrap();
        assert_eq!(r1.wr_id, 10);
        assert_eq!(r2.wr_id, 11);
        assert_eq!(dst1.to_vec(0, 8).unwrap(), b"first...");
        assert_eq!(dst2.to_vec(0, 8).unwrap(), b"second..");
    }

    #[test]
    fn rdma_write_is_one_sided() {
        let p = pair();
        let src = p.nic_a.register_from(p.pd_a, b"onesided").unwrap();
        let dst = p.nic_b.register(p.pd_b, 16).unwrap();
        p.a
            .post_send(SendWr::RdmaWrite {
                wr_id: 5,
                sges: crate::sge_list![Sge::whole(&src)],
                remote: RemoteAddr {
                    node: p.b.node(),
                    rkey: dst.rkey(),
                    offset: 4,
                },
            })
            .unwrap();
        let c = p.cq_a.wait_one(Duration::from_secs(1)).unwrap();
        assert_eq!(c.status, CqeStatus::Success);
        assert_eq!(c.opcode, CqeOpcode::RdmaWrite);
        // The target CPU saw nothing.
        assert!(p.cq_b.poll_one().unwrap().is_none());
        assert_eq!(dst.to_vec(4, 8).unwrap(), b"onesided");
    }

    #[test]
    fn rdma_write_imm_notifies_receiver() {
        let p = pair();
        let src = p.nic_a.register_from(p.pd_a, b"notify").unwrap();
        let dst = p.nic_b.register(p.pd_b, 16).unwrap();
        let note = p.nic_b.register(p.pd_b, 0).unwrap();
        p.b
            .post_recv(RecvWr::new(7, vec![Sge::whole(&note)]))
            .unwrap();
        p.a
            .post_send(SendWr::RdmaWriteImm {
                wr_id: 6,
                sges: crate::sge_list![Sge::whole(&src)],
                remote: RemoteAddr {
                    node: p.b.node(),
                    rkey: dst.rkey(),
                    offset: 0,
                },
                imm: 0xfeed,
            })
            .unwrap();
        let rx = p.cq_b.wait_one(Duration::from_secs(1)).unwrap();
        assert_eq!(rx.opcode, CqeOpcode::RecvRdmaImm);
        assert_eq!(rx.imm, Some(0xfeed));
        assert_eq!(rx.byte_len, 6);
        assert_eq!(dst.to_vec(0, 6).unwrap(), b"notify");
    }

    #[test]
    fn rdma_read_pulls_remote_data() {
        let p = pair();
        let remote_src = p.nic_b.register_from(p.pd_b, b"pull me!").unwrap();
        let local_dst = p.nic_a.register(p.pd_a, 8).unwrap();
        p.a
            .post_send(SendWr::RdmaRead {
                wr_id: 9,
                sges: crate::sge_list![Sge::whole(&local_dst)],
                remote: RemoteAddr {
                    node: p.b.node(),
                    rkey: remote_src.rkey(),
                    offset: 0,
                },
            })
            .unwrap();
        let c = p.cq_a.wait_one(Duration::from_secs(1)).unwrap();
        assert_eq!(c.status, CqeStatus::Success);
        assert_eq!(c.opcode, CqeOpcode::RdmaRead);
        assert_eq!(local_dst.to_vec(0, 8).unwrap(), b"pull me!");
    }

    #[test]
    fn bad_rkey_yields_remote_access_error() {
        let p = pair();
        let src = p.nic_a.register_from(p.pd_a, b"x").unwrap();
        p.a
            .post_send(SendWr::RdmaWrite {
                wr_id: 1,
                sges: crate::sge_list![Sge::whole(&src)],
                remote: RemoteAddr {
                    node: p.b.node(),
                    rkey: Rkey(0xdead),
                    offset: 0,
                },
            })
            .unwrap();
        let c = p.cq_a.poll_one().unwrap().unwrap();
        assert_eq!(c.status, CqeStatus::RemoteAccessError);
    }

    #[test]
    fn deregistered_rkey_is_rejected() {
        let p = pair();
        let src = p.nic_a.register_from(p.pd_a, b"x").unwrap();
        let dst = p.nic_b.register(p.pd_b, 8).unwrap();
        let rkey = dst.rkey();
        p.nic_b.deregister(&dst);
        p.a
            .post_send(SendWr::RdmaWrite {
                wr_id: 1,
                sges: crate::sge_list![Sge::whole(&src)],
                remote: RemoteAddr {
                    node: p.b.node(),
                    rkey,
                    offset: 0,
                },
            })
            .unwrap();
        let c = p.cq_a.poll_one().unwrap().unwrap();
        assert_eq!(c.status, CqeStatus::RemoteAccessError);
    }

    #[test]
    fn remote_bounds_violation_fails_cleanly() {
        let p = pair();
        let src = p.nic_a.register_from(p.pd_a, &[0u8; 32]).unwrap();
        let dst = p.nic_b.register(p.pd_b, 16).unwrap();
        p.a
            .post_send(SendWr::RdmaWrite {
                wr_id: 1,
                sges: crate::sge_list![Sge::whole(&src)],
                remote: RemoteAddr {
                    node: p.b.node(),
                    rkey: dst.rkey(),
                    offset: 0,
                },
            })
            .unwrap();
        let c = p.cq_a.poll_one().unwrap().unwrap();
        assert_eq!(c.status, CqeStatus::RemoteAccessError);
        // Nothing was written.
        assert_eq!(dst.to_vec(0, 16).unwrap(), vec![0u8; 16]);
    }

    #[test]
    fn truncating_send_errors_both_sides() {
        let p = pair();
        let src = p.nic_a.register_from(p.pd_a, &[7u8; 64]).unwrap();
        let dst = p.nic_b.register(p.pd_b, 16).unwrap();
        p.b
            .post_recv(RecvWr::new(1, vec![Sge::whole(&dst)]))
            .unwrap();
        p.a
            .post_send(SendWr::Send {
                wr_id: 2,
                sges: crate::sge_list![Sge::whole(&src)],
                imm: None,
            })
            .unwrap();
        assert_eq!(
            p.cq_b.poll_one().unwrap().unwrap().status,
            CqeStatus::LocalProtectionError
        );
        assert_eq!(
            p.cq_a.poll_one().unwrap().unwrap().status,
            CqeStatus::RemoteAccessError
        );
    }

    #[test]
    fn fetch_add_and_compare_swap() {
        let p = pair();
        let counter = p.nic_b.register(p.pd_b, 8).unwrap();
        counter.write_at(0, &5u64.to_le_bytes()).unwrap();
        let old = p.nic_a.register(p.pd_a, 8).unwrap();
        let remote = RemoteAddr {
            node: p.b.node(),
            rkey: counter.rkey(),
            offset: 0,
        };
        p.a
            .post_send(SendWr::FetchAdd {
                wr_id: 1,
                local: Sge::whole(&old),
                remote,
                add: 10,
            })
            .unwrap();
        let c = p.cq_a.poll_one().unwrap().unwrap();
        assert_eq!(c.status, CqeStatus::Success);
        assert_eq!(
            u64::from_le_bytes(old.to_vec(0, 8).unwrap().try_into().unwrap()),
            5
        );
        assert_eq!(
            u64::from_le_bytes(counter.to_vec(0, 8).unwrap().try_into().unwrap()),
            15
        );
        // CAS success.
        p.a
            .post_send(SendWr::CompareSwap {
                wr_id: 2,
                local: Sge::whole(&old),
                remote,
                expect: 15,
                swap: 100,
            })
            .unwrap();
        p.cq_a.poll_one().unwrap().unwrap();
        assert_eq!(
            u64::from_le_bytes(counter.to_vec(0, 8).unwrap().try_into().unwrap()),
            100
        );
        // CAS failure leaves the value alone but reports the old value.
        p.a
            .post_send(SendWr::CompareSwap {
                wr_id: 3,
                local: Sge::whole(&old),
                remote,
                expect: 15,
                swap: 0,
            })
            .unwrap();
        p.cq_a.poll_one().unwrap().unwrap();
        assert_eq!(
            u64::from_le_bytes(old.to_vec(0, 8).unwrap().try_into().unwrap()),
            100
        );
        assert_eq!(
            u64::from_le_bytes(counter.to_vec(0, 8).unwrap().try_into().unwrap()),
            100
        );
    }

    #[test]
    fn atomic_requires_aligned_8_bytes() {
        let p = pair();
        let small = p.nic_a.register(p.pd_a, 4).unwrap();
        let remote = RemoteAddr {
            node: p.b.node(),
            rkey: Rkey(1),
            offset: 0,
        };
        let r = p.a.post_send(SendWr::FetchAdd {
            wr_id: 1,
            local: Sge::whole(&small),
            remote,
            add: 1,
        });
        assert_eq!(r, Err(NicError::BadAtomicBuffer));
        let ok = p.nic_a.register(p.pd_a, 8).unwrap();
        let misaligned = RemoteAddr {
            node: p.b.node(),
            rkey: Rkey(1),
            offset: 3,
        };
        let r = p.a.post_send(SendWr::FetchAdd {
            wr_id: 1,
            local: Sge::whole(&ok),
            remote: misaligned,
            add: 1,
        });
        assert_eq!(r, Err(NicError::BadAtomicBuffer));
    }

    #[test]
    fn post_before_connect_is_rejected() {
        let fabric = Fabric::new();
        let nic = fabric.create_nic();
        let pd = nic.alloc_pd();
        let cq = CompletionQueue::new(8);
        let qp = nic.create_qp(pd, &cq, &cq).unwrap();
        let mr = nic.register(pd, 8).unwrap();
        // Recv pre-posting in Init is allowed.
        assert!(qp.post_recv(RecvWr::new(1, vec![Sge::whole(&mr)])).is_ok());
        // Sends are not.
        let r = qp.post_send(SendWr::Send {
            wr_id: 1,
            sges: crate::sge_list![Sge::whole(&mr)],
            imm: None,
        });
        assert!(matches!(r, Err(NicError::InvalidQpState { .. })));
    }

    #[test]
    fn pd_mismatch_rejected_at_post() {
        let p = pair();
        let other_pd = p.nic_a.alloc_pd();
        let mr = p.nic_a.register(other_pd, 8).unwrap();
        let r = p.a.post_send(SendWr::Send {
            wr_id: 1,
            sges: crate::sge_list![Sge::whole(&mr)],
            imm: None,
        });
        assert_eq!(r, Err(NicError::PdMismatch));
    }

    #[test]
    fn error_state_flushes_receives_and_sends() {
        let p = pair();
        let dst = p.nic_b.register(p.pd_b, 8).unwrap();
        p.b
            .post_recv(RecvWr::new(1, vec![Sge::whole(&dst)]))
            .unwrap();
        p.b.set_error();
        let c = p.cq_b.poll_one().unwrap().unwrap();
        assert_eq!(c.status, CqeStatus::Flushed);
        assert_eq!(c.wr_id, 1);
        // A send toward the dead QP flushes locally.
        let src = p.nic_a.register_from(p.pd_a, b"x").unwrap();
        p.a
            .post_send(SendWr::Send {
                wr_id: 2,
                sges: crate::sge_list![Sge::whole(&src)],
                imm: None,
            })
            .unwrap();
        let c = p.cq_a.poll_one().unwrap().unwrap();
        assert_eq!(c.status, CqeStatus::Flushed);
    }

    #[test]
    fn scatter_gather_across_multiple_sges() {
        let p = pair();
        let a1 = p.nic_a.register_from(p.pd_a, b"abcd").unwrap();
        let a2 = p.nic_a.register_from(p.pd_a, b"efgh").unwrap();
        let d1 = p.nic_b.register(p.pd_b, 3).unwrap();
        let d2 = p.nic_b.register(p.pd_b, 5).unwrap();
        p.b
            .post_recv(RecvWr::new(1, vec![Sge::whole(&d1), Sge::whole(&d2)]))
            .unwrap();
        p.a
            .post_send(SendWr::Send {
                wr_id: 2,
                sges: crate::sge_list![Sge::whole(&a1), Sge::whole(&a2)],
                imm: None,
            })
            .unwrap();
        assert_eq!(d1.to_vec(0, 3).unwrap(), b"abc");
        assert_eq!(d2.to_vec(0, 5).unwrap(), b"defgh");
    }

    #[test]
    fn cross_thread_ping_pong() {
        let p = pair();
        let iterations = 200;
        let nic_b = p.nic_b.clone();
        let pd_b = p.pd_b;
        let b = p.b.clone();
        let cq_b = p.cq_b.clone();
        let t = std::thread::spawn(move || {
            let buf = nic_b.register(pd_b, 8).unwrap();
            let reply = nic_b.register(pd_b, 8).unwrap();
            for i in 0..iterations {
                buf.write_at(0, &[0u8; 8]).unwrap();
                nic_b_post_recv(&b, &buf, i);
                let c = cq_b.wait_one(Duration::from_secs(5)).unwrap();
                assert_eq!(c.opcode, CqeOpcode::Recv);
                reply.write_at(0, &buf.to_vec(0, 8).unwrap()).unwrap();
                b.post_send(SendWr::Send {
                    wr_id: 1000 + i,
                    sges: crate::sge_list![Sge::whole(&reply)],
                    imm: None,
                })
                .unwrap();
                // Reap the send completion.
                let c = cq_b.wait_one(Duration::from_secs(5)).unwrap();
                assert_eq!(c.opcode, CqeOpcode::Send);
            }
        });
        let out = p.nic_a.register(p.pd_a, 8).unwrap();
        let back = p.nic_a.register(p.pd_a, 8).unwrap();
        for i in 0..iterations {
            out.write_at(0, &i.to_le_bytes()).unwrap();
            p.a
                .post_recv(RecvWr::new(i, vec![Sge::whole(&back)]))
                .unwrap();
            p.a
                .post_send(SendWr::Send {
                    wr_id: 500 + i,
                    sges: crate::sge_list![Sge::whole(&out)],
                    imm: None,
                })
                .unwrap();
            let mut got_recv = false;
            for _ in 0..2 {
                let c = p.cq_a.wait_one(Duration::from_secs(5)).unwrap();
                if c.opcode == CqeOpcode::Recv {
                    got_recv = true;
                    assert_eq!(
                        u64::from_le_bytes(back.to_vec(0, 8).unwrap().try_into().unwrap()),
                        i
                    );
                }
            }
            assert!(got_recv);
        }
        t.join().unwrap();
    }

    fn nic_b_post_recv(qp: &QueuePair, mr: &MemoryRegion, wr_id: u64) {
        qp.post_recv(RecvWr::new(wr_id, vec![Sge::whole(mr)])).unwrap();
    }

    #[test]
    fn chaos_drop_surfaces_retry_exceeded_to_sender_only() {
        let p = pair();
        // drop_prob = 1.0: every send dies on the wire.
        p.fabric.set_chaos(ChaosParams::drop_only(7, 1.0));
        let src = p.nic_a.register_from(p.pd_a, b"lost").unwrap();
        let dst = p.nic_b.register(p.pd_b, 8).unwrap();
        p.b.post_recv(RecvWr::new(1, vec![Sge::whole(&dst)])).unwrap();
        p.a.post_send(SendWr::Send {
            wr_id: 2,
            sges: crate::sge_list![Sge::whole(&src)],
            imm: None,
        })
        .unwrap();
        let tx = p.cq_a.poll_one().unwrap().unwrap();
        assert_eq!(tx.status, CqeStatus::RetryExceeded);
        assert_eq!(tx.wr_id, 2);
        // Nothing reached the receiver; its recv is still posted.
        assert!(p.cq_b.poll_one().unwrap().is_none());
        assert_eq!(p.b.recv_depths(), (1, 0));
        assert_eq!(dst.to_vec(0, 4).unwrap(), vec![0u8; 4]);
        assert_eq!(p.fabric.chaos_stats().unwrap().drops, 1);
    }

    #[test]
    fn chaos_corruption_fails_icrc_on_both_sides() {
        let p = pair();
        p.fabric.set_chaos(ChaosParams { seed: 7, drop_prob: 0.0, corrupt_prob: 1.0 });
        let src = p.nic_a.register_from(p.pd_a, b"fragile!").unwrap();
        let dst = p.nic_b.register(p.pd_b, 8).unwrap();
        p.b.post_recv(RecvWr::new(1, vec![Sge::whole(&dst)])).unwrap();
        p.a.post_send(SendWr::Send {
            wr_id: 2,
            sges: crate::sge_list![Sge::whole(&src)],
            imm: None,
        })
        .unwrap();
        let rx = p.cq_b.poll_one().unwrap().unwrap();
        assert_eq!(rx.status, CqeStatus::ChecksumError);
        assert_eq!(rx.byte_len, 0);
        let tx = p.cq_a.poll_one().unwrap().unwrap();
        assert_eq!(tx.status, CqeStatus::RetryExceeded);
        // The payload landed damaged: exactly one byte differs.
        let got = dst.to_vec(0, 8).unwrap();
        let diff = got.iter().zip(b"fragile!").filter(|(a, b)| a != b).count();
        assert_eq!(diff, 1);
        assert_eq!(p.fabric.chaos_stats().unwrap().corruptions, 1);
    }

    #[test]
    fn chaos_armed_clean_sends_pass_icrc() {
        let p = pair();
        p.fabric.set_chaos(ChaosParams { seed: 7, drop_prob: 0.0, corrupt_prob: 0.0 });
        let src = p.nic_a.register_from(p.pd_a, b"verified").unwrap();
        let dst = p.nic_b.register(p.pd_b, 8).unwrap();
        p.b.post_recv(RecvWr::new(1, vec![Sge::whole(&dst)])).unwrap();
        p.a.post_send(SendWr::Send {
            wr_id: 2,
            sges: crate::sge_list![Sge::whole(&src)],
            imm: None,
        })
        .unwrap();
        assert_eq!(p.cq_b.poll_one().unwrap().unwrap().status, CqeStatus::Success);
        assert_eq!(p.cq_a.poll_one().unwrap().unwrap().status, CqeStatus::Success);
        assert_eq!(dst.to_vec(0, 8).unwrap(), b"verified");
        p.fabric.clear_chaos();
        assert!(p.fabric.chaos_stats().is_none());
    }

    #[test]
    fn chaos_verdicts_replay_identically_across_fabrics() {
        let run = |seed: u64| -> Vec<CqeStatus> {
            let p = pair();
            p.fabric.set_chaos(ChaosParams { seed, drop_prob: 0.3, corrupt_prob: 0.3 });
            let src = p.nic_a.register_from(p.pd_a, b"replayme").unwrap();
            let dst = p.nic_b.register(p.pd_b, 8).unwrap();
            (0..100)
                .map(|i| {
                    p.b.post_recv(RecvWr::new(i, vec![Sge::whole(&dst)])).unwrap();
                    p.a.post_send(SendWr::Send {
                        wr_id: 1000 + i,
                        sges: crate::sge_list![Sge::whole(&src)],
                        imm: None,
                    })
                    .unwrap();
                    p.cq_a.poll_one().unwrap().unwrap().status
                })
                .collect()
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a, b);
        assert!(a.contains(&CqeStatus::RetryExceeded));
        assert!(a.contains(&CqeStatus::Success));
    }

    #[test]
    fn chaos_spares_one_sided_rdma() {
        let p = pair();
        p.fabric.set_chaos(ChaosParams { seed: 3, drop_prob: 1.0, corrupt_prob: 0.0 });
        let src = p.nic_a.register_from(p.pd_a, b"immune").unwrap();
        let dst = p.nic_b.register(p.pd_b, 8).unwrap();
        p.a.post_send(SendWr::RdmaWrite {
            wr_id: 1,
            sges: crate::sge_list![Sge::whole(&src)],
            remote: RemoteAddr {
                node: p.b.node(),
                rkey: dst.rkey(),
                offset: 0,
            },
        })
        .unwrap();
        assert_eq!(p.cq_a.poll_one().unwrap().unwrap().status, CqeStatus::Success);
        assert_eq!(dst.to_vec(0, 6).unwrap(), b"immune");
    }

    #[test]
    fn node_ids_are_sequential() {
        let f = Fabric::new();
        assert_eq!(f.create_nic().node_id(), NodeId(0));
        assert_eq!(f.create_nic().node_id(), NodeId(1));
        assert_eq!(f.node_count(), 2);
    }

    #[test]
    fn shard_affinity_blocks_and_overrides() {
        let f = Fabric::new();
        let nics: Vec<Nic> = (0..8).map(|_| f.create_nic()).collect();
        // Unassigned nodes default to shard 0.
        assert_eq!(f.node_shard(nics[5].node_id()), 0);
        let part = f.assign_shards(4);
        assert_eq!(part, Partition::block(8, 4));
        for nic in &nics {
            let node = nic.node_id();
            assert_eq!(f.node_shard(node), part.shard_of(node.0));
        }
        // nodes_on_shard tiles the id space contiguously and completely.
        let mut covered = Vec::new();
        for s in 0..part.nshards {
            let on_shard = f.nodes_on_shard(s);
            assert_eq!(
                on_shard,
                part.ranks_of(s).map(NodeId).collect::<Vec<_>>()
            );
            covered.extend(on_shard);
        }
        assert_eq!(covered.len(), 8);
        // Manual pinning overrides the block assignment.
        f.set_node_shard(nics[0].node_id(), 3);
        assert_eq!(f.node_shard(nics[0].node_id()), 3);
        assert!(f.nodes_on_shard(3).contains(&nics[0].node_id()));
    }

    #[test]
    fn registration_stats_accumulate() {
        let p = pair();
        let before = p.fabric.stats();
        p.nic_a.register(p.pd_a, 4096).unwrap();
        let after = p.fabric.stats();
        assert_eq!(after.registrations, before.registrations + 1);
        assert_eq!(after.registered_bytes, before.registered_bytes + 4096);
    }
}
