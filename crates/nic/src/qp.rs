//! Queue pairs: the reliable-connected endpoints of the virtual NIC.
//!
//! A [`QueuePair`] follows the IB verbs life cycle (`Reset → Init → Rts`,
//! with `Error` reachable from anywhere). Work posted to the send queue is
//! executed synchronously by the posting thread — the "NIC processor" is
//! borrowed from the caller — which keeps the fabric deterministic while
//! preserving the verbs completion semantics: every send-queue work
//! request produces exactly one completion on the send CQ, every consumed
//! receive produces one on the receive CQ, and one-sided RDMA touches the
//! target's memory without involving its CPU.

use crate::cq::{CompletionQueue, Cqe, CqeOpcode, CqeStatus};
use crate::error::{NicError, Result};
use crate::fabric::FabricInner;
use crate::srq::SharedReceiveQueue;
use crate::mr::ProtectionDomain;
use crate::types::{NodeId, QpNum, RemoteAddr};
use crate::wr::{sge_len, RecvWr, SendWr, Sge, SgeList};
use parking_lot::Mutex;
use polaris_obs::{Counter, Obs};
use std::collections::VecDeque;
use std::sync::{Arc, Weak};

/// Queue-pair state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QpState {
    /// Freshly created; nothing may be posted.
    Reset,
    /// Receives may be posted (pre-posting before connect is the normal
    /// pattern); sends may not.
    Init,
    /// Connected: fully operational.
    Rts,
    /// Broken: all work flushes.
    Error,
}

impl QpState {
    fn name(self) -> &'static str {
        match self {
            QpState::Reset => "Reset",
            QpState::Init => "Init",
            QpState::Rts => "Rts",
            QpState::Error => "Error",
        }
    }
}

/// An inbound message parked at the target waiting for a receive to be
/// posted (the virtual equivalent of infinite RNR retry).
pub(crate) enum Inbound {
    /// A two-sided send: the sender's gather list is held (keeping its
    /// regions alive) until a receive arrives to scatter into.
    Send {
        sges: SgeList,
        imm: Option<u32>,
        sender_cq: CompletionQueue,
        sender_qp: QpNum,
        /// The sender QP itself, for per-QP completion accounting when
        /// the CQE is finally generated at delivery time (the parked
        /// message may outlive the handle, hence weak).
        sender: Weak<QpInner>,
        sender_wr_id: u64,
        /// Invariant CRC computed over the payload at post time; only
        /// carried when the fabric's chaos layer is armed.
        icrc: Option<u32>,
        /// Chaos verdict: flip a byte in flight so the receiver's ICRC
        /// check fails.
        corrupt: bool,
    },
    /// An RDMA-write-with-immediate whose data already landed; only the
    /// notification (and receive consumption) is pending.
    WriteImm {
        byte_len: usize,
        imm: u32,
        sender_cq: CompletionQueue,
        sender_qp: QpNum,
        /// See [`Inbound::Send::sender`].
        sender: Weak<QpInner>,
        sender_wr_id: u64,
    },
}

/// Receive-side state guarded by one lock so that match decisions are
/// atomic: either a send finds a receive, or it parks — never both.
pub(crate) struct RecvState {
    pub(crate) posted: VecDeque<RecvWr>,
    pub(crate) inbound: VecDeque<Inbound>,
}

/// Per-QP observability counters, labelled `{node,qp}`. Created at QP
/// creation time when the fabric has an attached plane; handles are
/// cached so the data path pays one atomic add per event.
pub(crate) struct QpObs {
    wqe_posted: Counter,
    cqe_ok: Counter,
    cqe_err: Counter,
    rdma_ops: Counter,
    bytes: Counter,
}

impl QpObs {
    pub(crate) fn new(obs: &Obs, node: NodeId, qp: QpNum) -> Self {
        let n = node.0.to_string();
        let q = qp.0.to_string();
        let labels: [(&str, &str); 2] = [("node", &n), ("qp", &q)];
        QpObs {
            wqe_posted: obs.counter("nic_qp_wqe_total", &labels),
            cqe_ok: obs.counter("nic_qp_cqe_total", &[("node", &n), ("qp", &q), ("status", "ok")]),
            cqe_err: obs.counter("nic_qp_cqe_total", &[("node", &n), ("qp", &q), ("status", "err")]),
            rdma_ops: obs.counter("nic_qp_rdma_total", &labels),
            bytes: obs.counter("nic_qp_bytes_total", &labels),
        }
    }
}

pub(crate) struct QpInner {
    pub(crate) num: QpNum,
    pub(crate) node: NodeId,
    pub(crate) pd: ProtectionDomain,
    pub(crate) sq_cq: CompletionQueue,
    pub(crate) rq_cq: CompletionQueue,
    pub(crate) state: Mutex<QpState>,
    /// (peer node, peer qp) once connected.
    pub(crate) peer: Mutex<Option<(NodeId, QpNum)>>,
    pub(crate) recv: Mutex<RecvState>,
    /// When attached, receives come from the shared pool instead of the
    /// per-QP queue.
    pub(crate) srq: Option<SharedReceiveQueue>,
    pub(crate) fabric: Weak<FabricInner>,
    pub(crate) obs: Option<QpObs>,
}

impl QpInner {
    /// Account one completion against this QP's counters and the
    /// fabric-wide `nic_cqe_total`; call exactly once per CQE pushed.
    pub(crate) fn note_cqe(&self, status: CqeStatus, byte_len: usize) {
        if let Some(o) = &self.obs {
            if status == CqeStatus::Success {
                o.cqe_ok.inc();
                o.bytes.add(byte_len as u64);
            } else {
                o.cqe_err.inc();
            }
        }
        if let Some(f) = self.fabric.upgrade() {
            f.count_cqe(status == CqeStatus::Success);
        }
    }

    pub(crate) fn note_wqe(&self) {
        if let Some(o) = &self.obs {
            o.wqe_posted.inc();
        }
    }
}

/// A reliable-connected queue pair handle.
#[derive(Clone)]
pub struct QueuePair {
    pub(crate) inner: Arc<QpInner>,
}

impl QueuePair {
    pub fn num(&self) -> QpNum {
        self.inner.num
    }

    pub fn node(&self) -> NodeId {
        self.inner.node
    }

    pub fn state(&self) -> QpState {
        *self.inner.state.lock()
    }

    pub fn pd(&self) -> ProtectionDomain {
        self.inner.pd
    }

    /// The CQ receiving send-queue completions.
    pub fn send_cq(&self) -> &CompletionQueue {
        &self.inner.sq_cq
    }

    /// The CQ receiving receive-queue completions.
    pub fn recv_cq(&self) -> &CompletionQueue {
        &self.inner.rq_cq
    }

    /// Peer coordinates once connected.
    pub fn peer(&self) -> Option<(NodeId, QpNum)> {
        *self.inner.peer.lock()
    }

    /// Whether the connected peer QP is currently operational: `None`
    /// if unconnected or the fabric is gone, otherwise whether the peer
    /// is not in the error state. This is the liveness signal failure
    /// detectors build on.
    pub fn peer_alive(&self) -> Option<bool> {
        let (node, num) = (*self.inner.peer.lock())?;
        let fabric = self.inner.fabric.upgrade()?;
        let peer = fabric.lookup_qp(node, num).ok()?;
        let state = *peer.state.lock();
        Some(state != QpState::Error)
    }

    /// Post a receive. Legal in `Init` (pre-posting) and `Rts`.
    /// QPs attached to an SRQ must post to the SRQ instead.
    pub fn post_recv(&self, wr: RecvWr) -> Result<()> {
        if self.inner.srq.is_some() {
            return Err(NicError::UsesSrq(self.num()));
        }
        let state = self.state();
        if !matches!(state, QpState::Init | QpState::Rts) {
            return Err(NicError::InvalidQpState {
                qp: self.num(),
                state: state.name(),
            });
        }
        for sge in &wr.sges {
            if sge.mr.pd() != self.inner.pd {
                return Err(NicError::PdMismatch);
            }
            sge.mr.inner.check_bounds(sge.offset, sge.len)?;
        }
        let fabric = self.fabric()?;
        self.inner.note_wqe();
        let mut rs = self.inner.recv.lock();
        if let Some(inbound) = rs.inbound.pop_front() {
            // A sender is already parked: match immediately.
            drop_guard_deliver(&self.inner, inbound, wr, &fabric);
        } else {
            rs.posted.push_back(wr);
        }
        Ok(())
    }

    /// Post a send-queue work request. Legal only in `Rts`.
    pub fn post_send(&self, wr: SendWr) -> Result<()> {
        let state = self.state();
        if state != QpState::Rts {
            return Err(NicError::InvalidQpState {
                qp: self.num(),
                state: state.name(),
            });
        }
        self.validate_local(&wr)?;
        let fabric = self.fabric()?;
        self.inner.note_wqe();
        if let Some(o) = &self.inner.obs {
            if !matches!(wr, SendWr::Send { .. }) {
                o.rdma_ops.inc();
            }
        }
        let (peer_node, peer_qp) = self.peer().ok_or(NicError::NotConnected(self.num()))?;
        let peer = fabric.lookup_qp(peer_node, peer_qp)?;
        if *peer.state.lock() == QpState::Error {
            // Retry exhaustion on real hardware: flush locally.
            self.complete_send(&wr, CqeStatus::Flushed, 0);
            return Ok(());
        }
        match wr {
            SendWr::Send {
                wr_id,
                sges,
                imm,
            } => {
                // Chaos layer: two-sided sends ride the lossy wire.
                let (icrc, corrupt) = match fabric.chaos_judge() {
                    None => (None, false),
                    Some(crate::chaos::ChaosVerdict::Drop) => {
                        // Lost on the wire; transport retries exhaust
                        // and the sender learns via an error CQE.
                        self.push_sq(Cqe {
                            wr_id,
                            status: CqeStatus::RetryExceeded,
                            opcode: CqeOpcode::Send,
                            byte_len: 0,
                            imm: None,
                            qp: self.inner.num,
                        });
                        return Ok(());
                    }
                    Some(verdict) => (
                        Some(crate::chaos::crc32(&gather_bytes(&sges))),
                        verdict == crate::chaos::ChaosVerdict::Corrupt,
                    ),
                };
                let inbound = Inbound::Send {
                    sges,
                    imm,
                    sender_cq: self.inner.sq_cq.clone(),
                    sender_qp: self.inner.num,
                    sender: Arc::downgrade(&self.inner),
                    sender_wr_id: wr_id,
                    icrc,
                    corrupt,
                };
                if let Some(srq) = &peer.srq {
                    srq.handle_inbound(&peer, inbound, &fabric);
                } else {
                    let mut rs = peer.recv.lock();
                    if let Some(recv) = rs.posted.pop_front() {
                        drop_guard_deliver(&peer, inbound, recv, &fabric);
                    } else {
                        rs.inbound.push_back(inbound);
                    }
                }
            }
            SendWr::RdmaWrite {
                wr_id,
                sges,
                remote,
            } => {
                let n = self.rdma_write(&fabric, &peer, &sges, remote, wr_id)?;
                if let Some(n) = n {
                    self.push_sq(Cqe {
                        wr_id,
                        status: CqeStatus::Success,
                        opcode: CqeOpcode::RdmaWrite,
                        byte_len: n,
                        imm: None,
                        qp: self.inner.num,
                    });
                }
            }
            SendWr::RdmaWriteImm {
                wr_id,
                sges,
                remote,
                imm,
            } => {
                let n = self.rdma_write(&fabric, &peer, &sges, remote, wr_id)?;
                if let Some(n) = n {
                    // Data is in place; consume (or park for) a receive.
                    let inbound = Inbound::WriteImm {
                        byte_len: n,
                        imm,
                        sender_cq: self.inner.sq_cq.clone(),
                        sender_qp: self.inner.num,
                        sender: Arc::downgrade(&self.inner),
                        sender_wr_id: wr_id,
                    };
                    if let Some(srq) = &peer.srq {
                        srq.handle_inbound(&peer, inbound, &fabric);
                    } else {
                        let mut rs = peer.recv.lock();
                        if let Some(recv) = rs.posted.pop_front() {
                            drop_guard_deliver(&peer, inbound, recv, &fabric);
                        } else {
                            rs.inbound.push_back(inbound);
                        }
                    }
                }
            }
            SendWr::RdmaRead {
                wr_id,
                sges,
                remote,
            } => {
                let total = sge_len(&sges);
                match fabric.lookup_mr(peer_node, remote.rkey) {
                    Ok(mr) => {
                        if mr.check_bounds(remote.offset, total).is_err() {
                            self.push_sq(Cqe {
                                wr_id,
                                status: CqeStatus::RemoteAccessError,
                                opcode: CqeOpcode::RdmaRead,
                                byte_len: 0,
                                imm: None,
                                qp: self.inner.num,
                            });
                        } else {
                            let mut off = remote.offset;
                            for sge in &sges {
                                // SAFETY: bounds checked above and at post
                                // validation; ownership contract covers
                                // concurrent access.
                                unsafe {
                                    std::ptr::copy_nonoverlapping(
                                        mr.ptr().add(off),
                                        sge.mr.inner.ptr().add(sge.offset),
                                        sge.len,
                                    );
                                }
                                off += sge.len;
                            }
                            fabric.count_dma(total as u64);
                            self.push_sq(Cqe {
                                wr_id,
                                status: CqeStatus::Success,
                                opcode: CqeOpcode::RdmaRead,
                                byte_len: total,
                                imm: None,
                                qp: self.inner.num,
                            });
                        }
                    }
                    Err(_) => self.push_sq(Cqe {
                        wr_id,
                        status: CqeStatus::RemoteAccessError,
                        opcode: CqeOpcode::RdmaRead,
                        byte_len: 0,
                        imm: None,
                        qp: self.inner.num,
                    }),
                }
            }
            SendWr::CompareSwap {
                wr_id,
                local,
                remote,
                expect,
                swap,
            } => {
                self.remote_atomic(&fabric, peer_node, wr_id, local, remote, |old| {
                    if old == expect {
                        Some(swap)
                    } else {
                        None
                    }
                })?;
            }
            SendWr::FetchAdd {
                wr_id,
                local,
                remote,
                add,
            } => {
                self.remote_atomic(&fabric, peer_node, wr_id, local, remote, |old| {
                    Some(old.wrapping_add(add))
                })?;
            }
        }
        Ok(())
    }

    /// Force the QP into the error state, flushing posted receives.
    pub fn set_error(&self) {
        *self.inner.state.lock() = QpState::Error;
        let mut rs = self.inner.recv.lock();
        for wr in rs.posted.drain(..) {
            self.inner.note_cqe(CqeStatus::Flushed, 0);
            self.inner.rq_cq.push(Cqe {
                wr_id: wr.wr_id,
                status: CqeStatus::Flushed,
                opcode: CqeOpcode::Recv,
                byte_len: 0,
                imm: None,
                qp: self.inner.num,
            });
        }
        rs.inbound.clear();
    }

    /// Receives currently posted and inbound messages currently parked.
    pub fn recv_depths(&self) -> (usize, usize) {
        let rs = self.inner.recv.lock();
        (rs.posted.len(), rs.inbound.len())
    }

    fn fabric(&self) -> Result<Arc<FabricInner>> {
        self.inner.fabric.upgrade().ok_or(NicError::FabricDown)
    }

    fn validate_local(&self, wr: &SendWr) -> Result<()> {
        let check = |sges: &[Sge]| -> Result<()> {
            for sge in sges {
                if sge.mr.pd() != self.inner.pd {
                    return Err(NicError::PdMismatch);
                }
                sge.mr.inner.check_bounds(sge.offset, sge.len)?;
            }
            Ok(())
        };
        match wr {
            SendWr::Send { sges, .. }
            | SendWr::RdmaWrite { sges, .. }
            | SendWr::RdmaWriteImm { sges, .. }
            | SendWr::RdmaRead { sges, .. } => check(sges),
            SendWr::CompareSwap { local, remote, .. }
            | SendWr::FetchAdd { local, remote, .. } => {
                check(std::slice::from_ref(local))?;
                if local.len != 8 || remote.offset % 8 != 0 {
                    return Err(NicError::BadAtomicBuffer);
                }
                Ok(())
            }
        }
    }

    fn complete_send(&self, wr: &SendWr, status: CqeStatus, byte_len: usize) {
        let opcode = match wr {
            SendWr::Send { .. } => CqeOpcode::Send,
            SendWr::RdmaWrite { .. } | SendWr::RdmaWriteImm { .. } => CqeOpcode::RdmaWrite,
            SendWr::RdmaRead { .. } => CqeOpcode::RdmaRead,
            SendWr::CompareSwap { .. } | SendWr::FetchAdd { .. } => CqeOpcode::Atomic,
        };
        self.push_sq(Cqe {
            wr_id: wr.wr_id(),
            status,
            opcode,
            byte_len,
            imm: None,
            qp: self.inner.num,
        });
    }

    fn push_sq(&self, cqe: Cqe) {
        self.inner.note_cqe(cqe.status, cqe.byte_len);
        self.inner.sq_cq.push(cqe);
    }

    /// Execute the data movement of an RDMA write. Returns `Ok(Some(n))`
    /// on success, `Ok(None)` if an error completion was generated.
    fn rdma_write(
        &self,
        fabric: &Arc<FabricInner>,
        _peer: &Arc<QpInner>,
        sges: &[Sge],
        remote: RemoteAddr,
        wr_id: u64,
    ) -> Result<Option<usize>> {
        let total = sge_len(sges);
        let mr = match fabric.lookup_mr(remote.node, remote.rkey) {
            Ok(mr) => mr,
            Err(_) => {
                self.push_sq(Cqe {
                    wr_id,
                    status: CqeStatus::RemoteAccessError,
                    opcode: CqeOpcode::RdmaWrite,
                    byte_len: 0,
                    imm: None,
                    qp: self.inner.num,
                });
                return Ok(None);
            }
        };
        if mr.check_bounds(remote.offset, total).is_err() {
            self.push_sq(Cqe {
                wr_id,
                status: CqeStatus::RemoteAccessError,
                opcode: CqeOpcode::RdmaWrite,
                byte_len: 0,
                imm: None,
                qp: self.inner.num,
            });
            return Ok(None);
        }
        let mut off = remote.offset;
        for sge in sges {
            // SAFETY: both sides bounds-checked; ownership contract covers
            // concurrent access.
            unsafe {
                std::ptr::copy_nonoverlapping(
                    sge.mr.inner.ptr().add(sge.offset),
                    mr.ptr().add(off),
                    sge.len,
                );
            }
            off += sge.len;
        }
        fabric.count_dma(total as u64);
        Ok(Some(total))
    }

    fn remote_atomic(
        &self,
        fabric: &Arc<FabricInner>,
        peer_node: NodeId,
        wr_id: u64,
        local: Sge,
        remote: RemoteAddr,
        op: impl FnOnce(u64) -> Option<u64>,
    ) -> Result<()> {
        let fail = |qp: &Self| {
            qp.push_sq(Cqe {
                wr_id,
                status: CqeStatus::RemoteAccessError,
                opcode: CqeOpcode::Atomic,
                byte_len: 0,
                imm: None,
                qp: qp.inner.num,
            })
        };
        let mr = match fabric.lookup_mr(peer_node, remote.rkey) {
            Ok(mr) => mr,
            Err(_) => {
                fail(self);
                return Ok(());
            }
        };
        if mr.check_bounds(remote.offset, 8).is_err() {
            fail(self);
            return Ok(());
        }
        let old = {
            let _g = mr.atomic_lock.lock();
            // SAFETY: bounds checked; atomicity provided by the lock.
            unsafe {
                let p = mr.ptr().add(remote.offset) as *mut u64;
                let old = p.read_unaligned();
                if let Some(new) = op(old) {
                    p.write_unaligned(new);
                }
                old
            }
        };
        local.mr.write_at(local.offset, &old.to_le_bytes())?;
        fabric.count_dma(8);
        self.push_sq(Cqe {
            wr_id,
            status: CqeStatus::Success,
            opcode: CqeOpcode::Atomic,
            byte_len: 8,
            imm: None,
            qp: self.inner.num,
        });
        Ok(())
    }
}

/// Deliver a matched (inbound, receive) pair at the receiver `rx`.
///
/// Named for the invariant that callers must still hold (or have just
/// released) the receiver's recv lock such that the match decision was
/// atomic; the copy itself happens outside any sender-side locks.
pub(crate) fn drop_guard_deliver(
    rx: &Arc<QpInner>,
    inbound: Inbound,
    recv: RecvWr,
    fabric: &Arc<FabricInner>,
) {
    match inbound {
        Inbound::Send {
            sges,
            imm,
            sender_cq,
            sender_qp,
            sender,
            sender_wr_id,
            icrc,
            corrupt,
        } => {
            let total = sge_len(&sges);
            if total > recv.capacity() {
                rx.note_cqe(CqeStatus::LocalProtectionError, 0);
                rx.rq_cq.push(Cqe {
                    wr_id: recv.wr_id,
                    status: CqeStatus::LocalProtectionError,
                    opcode: CqeOpcode::Recv,
                    byte_len: 0,
                    imm: None,
                    qp: rx.num,
                });
                complete_remote_send(
                    &sender,
                    fabric,
                    &sender_cq,
                    Cqe {
                        wr_id: sender_wr_id,
                        status: CqeStatus::RemoteAccessError,
                        opcode: CqeOpcode::Send,
                        byte_len: 0,
                        imm: None,
                        qp: sender_qp,
                    },
                );
                return;
            }
            // Gather from the sender's regions, scatter into the
            // receiver's: this is the fabric "DMA", the single copy of
            // the two-sided path.
            scatter_gather(&sges, &recv.sges);
            fabric.count_dma(total as u64);
            if corrupt && total > 0 {
                flip_byte(&recv.sges, total / 2);
            }
            // ICRC check (chaos runs only): recompute over what landed
            // and compare with what the sender stamped.
            if let Some(expect) = icrc {
                let got = crate::chaos::crc32(&read_scatter(&recv.sges, total));
                if got != expect {
                    rx.note_cqe(CqeStatus::ChecksumError, 0);
                    rx.rq_cq.push(Cqe {
                        wr_id: recv.wr_id,
                        status: CqeStatus::ChecksumError,
                        opcode: CqeOpcode::Recv,
                        byte_len: 0,
                        imm: None,
                        qp: rx.num,
                    });
                    // The receiver NACKs the bad packet; the sender's
                    // retries exhaust.
                    complete_remote_send(
                        &sender,
                        fabric,
                        &sender_cq,
                        Cqe {
                            wr_id: sender_wr_id,
                            status: CqeStatus::RetryExceeded,
                            opcode: CqeOpcode::Send,
                            byte_len: 0,
                            imm: None,
                            qp: sender_qp,
                        },
                    );
                    return;
                }
            }
            rx.note_cqe(CqeStatus::Success, total);
            rx.rq_cq.push(Cqe {
                wr_id: recv.wr_id,
                status: CqeStatus::Success,
                opcode: CqeOpcode::Recv,
                byte_len: total,
                imm,
                qp: rx.num,
            });
            complete_remote_send(
                &sender,
                fabric,
                &sender_cq,
                Cqe {
                    wr_id: sender_wr_id,
                    status: CqeStatus::Success,
                    opcode: CqeOpcode::Send,
                    byte_len: total,
                    imm: None,
                    qp: sender_qp,
                },
            );
        }
        Inbound::WriteImm {
            byte_len,
            imm,
            sender_cq,
            sender_qp,
            sender,
            sender_wr_id,
        } => {
            rx.note_cqe(CqeStatus::Success, byte_len);
            rx.rq_cq.push(Cqe {
                wr_id: recv.wr_id,
                status: CqeStatus::Success,
                opcode: CqeOpcode::RecvRdmaImm,
                byte_len,
                imm: Some(imm),
                qp: rx.num,
            });
            complete_remote_send(
                &sender,
                fabric,
                &sender_cq,
                Cqe {
                    wr_id: sender_wr_id,
                    status: CqeStatus::Success,
                    opcode: CqeOpcode::RdmaWrite,
                    byte_len,
                    imm: None,
                    qp: sender_qp,
                },
            );
        }
    }
}

/// Generate the sender-side completion of a remotely-delivered
/// operation. Attribution goes through the sender QP's [`note_cqe`]
/// (which also bumps the fabric-wide `nic_cqe_total`) so the per-QP
/// WQE/CQE books balance — the conservation audit asserts
/// `wqe == cqe + armed receives` per fabric. If the sender QP handle
/// was dropped while the message was parked, only the fabric-wide
/// counter can be credited.
///
/// [`note_cqe`]: QpInner::note_cqe
fn complete_remote_send(
    sender: &Weak<QpInner>,
    fabric: &Arc<FabricInner>,
    sender_cq: &CompletionQueue,
    cqe: Cqe,
) {
    match sender.upgrade() {
        Some(qp) => qp.note_cqe(cqe.status, cqe.byte_len),
        None => fabric.count_cqe(cqe.status == CqeStatus::Success),
    }
    sender_cq.push(cqe);
}

/// Gather a scatter list's bytes into one contiguous buffer (ICRC input).
fn gather_bytes(sges: &[Sge]) -> Vec<u8> {
    read_scatter(sges, sge_len(sges))
}

/// Read the first `total` bytes spanned by a scatter list.
fn read_scatter(sges: &[Sge], total: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(total);
    let mut left = total;
    for s in sges {
        if left == 0 {
            break;
        }
        let n = s.len.min(left);
        // SAFETY: callers bounds-checked the list against its regions;
        // ownership contract covers concurrency.
        unsafe {
            let p = s.mr.inner.ptr().add(s.offset);
            out.extend_from_slice(std::slice::from_raw_parts(p, n));
        }
        left -= n;
    }
    out
}

/// Flip one byte at logical offset `at` within a scatter list: wire
/// corruption injected by the chaos layer.
fn flip_byte(sges: &[Sge], at: usize) {
    let mut off = at;
    for s in sges {
        if off < s.len {
            // SAFETY: offset is within the SGE, which the caller
            // bounds-checked against its region.
            unsafe {
                let p = s.mr.inner.ptr().add(s.offset + off);
                *p ^= 0x5A;
            }
            return;
        }
        off -= s.len;
    }
}

/// Copy `src` gather list into `dst` scatter list, byte-exact.
fn scatter_gather(src: &[Sge], dst: &[Sge]) {
    let mut di = 0;
    let mut doff = 0;
    for s in src {
        let mut soff = 0;
        while soff < s.len {
            let d = &dst[di];
            let n = (s.len - soff).min(d.len - doff);
            // SAFETY: callers bounds-checked both lists against their
            // regions; ownership contract covers concurrency.
            unsafe {
                std::ptr::copy_nonoverlapping(
                    s.mr.inner.ptr().add(s.offset + soff),
                    d.mr.inner.ptr().add(d.offset + doff),
                    n,
                );
            }
            soff += n;
            doff += n;
            if doff == d.len {
                di += 1;
                doff = 0;
            }
        }
    }
}
