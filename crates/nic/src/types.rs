//! Identifier newtypes shared across the NIC crate.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// A node (host) identity on the fabric, equal to its rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Queue-pair number, unique per node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QpNum(pub u32);

/// Protection-domain identity, unique per node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PdId(pub u32);

/// Local access key for a registered memory region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Lkey(pub u64);

/// Remote access key for a registered memory region. Handing the rkey to
/// a peer is what grants it RDMA access, exactly as on real hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rkey(pub u64);

/// A remote buffer coordinate: the target node, the rkey naming one of
/// its memory regions, and an offset within that region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoteAddr {
    pub node: NodeId,
    pub rkey: Rkey,
    pub offset: usize,
}

/// Process-wide key generator. Keys are never reused, so a stale rkey
/// from a deregistered MR can be detected rather than silently aliasing.
pub(crate) struct KeyGen {
    next: AtomicU64,
}

impl KeyGen {
    pub(crate) const fn new() -> Self {
        KeyGen {
            next: AtomicU64::new(1),
        }
    }

    pub(crate) fn next_pair(&self) -> (Lkey, Rkey) {
        let base = self.next.fetch_add(2, Ordering::Relaxed);
        (Lkey(base), Rkey(base + 1))
    }
}

pub(crate) static KEYS: KeyGen = KeyGen::new();

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

impl fmt::Display for QpNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "qp{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_pairs_are_unique() {
        let (l1, r1) = KEYS.next_pair();
        let (l2, r2) = KEYS.next_pair();
        assert_ne!(l1, l2);
        assert_ne!(r1, r2);
        assert_ne!(l1.0, r1.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId(3).to_string(), "node3");
        assert_eq!(QpNum(7).to_string(), "qp7");
    }
}
