//! Work requests: what applications post to queue pairs.

use crate::mr::MemoryRegion;
use crate::types::RemoteAddr;

/// A scatter/gather element: a range within a registered region.
#[derive(Debug, Clone)]
pub struct Sge {
    pub mr: MemoryRegion,
    pub offset: usize,
    pub len: usize,
}

impl Sge {
    pub fn new(mr: &MemoryRegion, offset: usize, len: usize) -> Self {
        Sge {
            mr: mr.clone(),
            offset,
            len,
        }
    }

    /// The whole region as one element.
    pub fn whole(mr: &MemoryRegion) -> Self {
        Sge {
            mr: mr.clone(),
            offset: 0,
            len: mr.len(),
        }
    }
}

/// Total byte length of a gather list.
pub fn sge_len(sges: &[Sge]) -> usize {
    sges.iter().map(|s| s.len).sum()
}

/// Inline capacity of [`SgeList`]: almost every work request carries one
/// element (a bounce slot or a whole user buffer), and a header+payload
/// gather carries two. Longer lists (noncontiguous layouts) spill.
pub const SGE_INLINE: usize = 2;

/// A gather/scatter list that stores up to [`SGE_INLINE`] elements
/// inline, spilling to the heap only beyond that. Posting a one- or
/// two-element work request therefore allocates nothing, which is what
/// keeps the eager fast path heap-free.
///
/// Invariant: when `len <= SGE_INLINE`, the first `len` inline slots are
/// initialized and `spill` is empty; when `len > SGE_INLINE`, every
/// element lives in `spill` (the inline slots were moved out and must
/// not be dropped).
pub struct SgeList {
    inline: [std::mem::MaybeUninit<Sge>; SGE_INLINE],
    spill: Vec<Sge>,
    len: usize,
}

impl SgeList {
    pub const fn new() -> Self {
        SgeList {
            inline: [
                std::mem::MaybeUninit::uninit(),
                std::mem::MaybeUninit::uninit(),
            ],
            spill: Vec::new(),
            len: 0,
        }
    }

    /// The common case: a single-element list, built without touching
    /// the heap.
    pub fn single(sge: Sge) -> Self {
        let mut l = SgeList::new();
        l.push(sge);
        l
    }

    pub fn push(&mut self, sge: Sge) {
        if self.len < SGE_INLINE {
            self.inline[self.len].write(sge);
            self.len += 1;
            return;
        }
        if self.len == SGE_INLINE {
            self.spill.reserve(SGE_INLINE + 1);
            for slot in &self.inline {
                // SAFETY: all inline slots are initialized here; they are
                // moved into the spill vector and, because `len` only ever
                // grows, never read or dropped from the inline storage
                // again.
                self.spill.push(unsafe { slot.assume_init_read() });
            }
        }
        self.spill.push(sge);
        self.len += 1;
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the list overflowed its inline storage (diagnostics).
    pub fn spilled(&self) -> bool {
        self.len > SGE_INLINE
    }

    pub fn as_slice(&self) -> &[Sge] {
        if self.len <= SGE_INLINE {
            // SAFETY: per the invariant, the first `len` inline slots are
            // initialized, and MaybeUninit<Sge> has the layout of Sge.
            unsafe {
                std::slice::from_raw_parts(self.inline.as_ptr() as *const Sge, self.len)
            }
        } else {
            &self.spill
        }
    }

    pub fn iter(&self) -> std::slice::Iter<'_, Sge> {
        self.as_slice().iter()
    }
}

impl Drop for SgeList {
    fn drop(&mut self) {
        if self.len <= SGE_INLINE {
            for slot in &mut self.inline[..self.len] {
                // SAFETY: per the invariant these slots are initialized.
                unsafe { slot.assume_init_drop() };
            }
        }
    }
}

impl Default for SgeList {
    fn default() -> Self {
        SgeList::new()
    }
}

impl Clone for SgeList {
    fn clone(&self) -> Self {
        self.as_slice().iter().cloned().collect()
    }
}

impl std::ops::Deref for SgeList {
    type Target = [Sge];
    fn deref(&self) -> &[Sge] {
        self.as_slice()
    }
}

impl std::fmt::Debug for SgeList {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl From<Vec<Sge>> for SgeList {
    fn from(v: Vec<Sge>) -> Self {
        v.into_iter().collect()
    }
}

impl FromIterator<Sge> for SgeList {
    fn from_iter<I: IntoIterator<Item = Sge>>(iter: I) -> Self {
        let mut l = SgeList::new();
        for s in iter {
            l.push(s);
        }
        l
    }
}

impl<'a> IntoIterator for &'a SgeList {
    type Item = &'a Sge;
    type IntoIter = std::slice::Iter<'a, Sge>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// Build an [`SgeList`] from element expressions, like `vec!` but
/// inline-first.
#[macro_export]
macro_rules! sge_list {
    ($($sge:expr),* $(,)?) => {{
        let mut list = $crate::wr::SgeList::new();
        $(list.push($sge);)*
        list
    }};
}

/// A send-queue work request.
#[derive(Debug, Clone)]
pub enum SendWr {
    /// Two-sided send; consumes a posted receive at the peer. `imm`
    /// travels in the completion the peer reaps.
    Send {
        wr_id: u64,
        sges: SgeList,
        imm: Option<u32>,
    },
    /// One-sided RDMA write into the peer's memory; the peer's CPU is not
    /// involved and sees no completion.
    RdmaWrite {
        wr_id: u64,
        sges: SgeList,
        remote: RemoteAddr,
    },
    /// RDMA write that additionally consumes a posted receive at the peer
    /// and delivers `imm` in its completion — the standard way to notify
    /// the peer that a one-sided transfer finished.
    RdmaWriteImm {
        wr_id: u64,
        sges: SgeList,
        remote: RemoteAddr,
        imm: u32,
    },
    /// One-sided RDMA read from the peer's memory into local regions.
    RdmaRead {
        wr_id: u64,
        sges: SgeList,
        remote: RemoteAddr,
    },
    /// 8-byte remote compare-and-swap; the prior remote value lands in
    /// the local buffer.
    CompareSwap {
        wr_id: u64,
        local: Sge,
        remote: RemoteAddr,
        expect: u64,
        swap: u64,
    },
    /// 8-byte remote fetch-and-add; the prior remote value lands in the
    /// local buffer.
    FetchAdd {
        wr_id: u64,
        local: Sge,
        remote: RemoteAddr,
        add: u64,
    },
}

impl SendWr {
    pub fn wr_id(&self) -> u64 {
        match self {
            SendWr::Send { wr_id, .. }
            | SendWr::RdmaWrite { wr_id, .. }
            | SendWr::RdmaWriteImm { wr_id, .. }
            | SendWr::RdmaRead { wr_id, .. }
            | SendWr::CompareSwap { wr_id, .. }
            | SendWr::FetchAdd { wr_id, .. } => *wr_id,
        }
    }

    /// Payload bytes this request moves.
    pub fn byte_len(&self) -> usize {
        match self {
            SendWr::Send { sges, .. }
            | SendWr::RdmaWrite { sges, .. }
            | SendWr::RdmaWriteImm { sges, .. }
            | SendWr::RdmaRead { sges, .. } => sge_len(sges),
            SendWr::CompareSwap { .. } | SendWr::FetchAdd { .. } => 8,
        }
    }
}

/// A receive-queue work request: scatter targets for an inbound send.
#[derive(Debug, Clone)]
pub struct RecvWr {
    pub wr_id: u64,
    pub sges: SgeList,
}

impl RecvWr {
    pub fn new(wr_id: u64, sges: impl Into<SgeList>) -> Self {
        RecvWr {
            wr_id,
            sges: sges.into(),
        }
    }

    pub fn capacity(&self) -> usize {
        sge_len(&self.sges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mr::{MemoryRegion, ProtectionDomain};
    use crate::types::{NodeId, PdId, Rkey};

    fn mr(len: usize) -> MemoryRegion {
        MemoryRegion::allocate(
            ProtectionDomain {
                node: NodeId(0),
                id: PdId(0),
            },
            len,
        )
    }

    #[test]
    fn sge_helpers() {
        let m = mr(100);
        let s = Sge::whole(&m);
        assert_eq!(s.len, 100);
        assert_eq!(sge_len(&[Sge::new(&m, 0, 10), Sge::new(&m, 50, 20)]), 30);
    }

    #[test]
    fn wr_accessors() {
        let m = mr(64);
        let wr = SendWr::Send {
            wr_id: 42,
            sges: crate::sge_list![Sge::whole(&m)],
            imm: Some(7),
        };
        assert_eq!(wr.wr_id(), 42);
        assert_eq!(wr.byte_len(), 64);
        let atomic = SendWr::FetchAdd {
            wr_id: 1,
            local: Sge::new(&m, 0, 8),
            remote: RemoteAddr {
                node: NodeId(1),
                rkey: Rkey(9),
                offset: 0,
            },
            add: 5,
        };
        assert_eq!(atomic.byte_len(), 8);
    }

    #[test]
    fn sge_list_stays_inline_up_to_cap() {
        let m = mr(64);
        let mut l = SgeList::new();
        assert!(l.is_empty());
        l.push(Sge::new(&m, 0, 8));
        l.push(Sge::new(&m, 8, 8));
        assert_eq!(l.len(), 2);
        assert!(!l.spilled());
        assert_eq!(sge_len(&l), 16);
        assert_eq!(l.as_slice()[1].offset, 8);
    }

    #[test]
    fn sge_list_spills_beyond_cap_and_keeps_order() {
        let m = mr(64);
        let mut l = SgeList::new();
        for i in 0..5 {
            l.push(Sge::new(&m, i * 4, 4));
        }
        assert_eq!(l.len(), 5);
        assert!(l.spilled());
        let offsets: Vec<usize> = l.iter().map(|s| s.offset).collect();
        assert_eq!(offsets, [0, 4, 8, 12, 16]);
        let c = l.clone();
        assert_eq!(c.len(), 5);
        assert_eq!(c.as_slice()[4].offset, 16);
    }

    #[test]
    fn sge_list_drops_inline_elements_exactly_once() {
        // Sge holds an Arc'd region: the strong count tracks clones, so
        // a double-drop or leak in the inline storage shows up here.
        let m = mr(64);
        let base = std::sync::Arc::strong_count(&m.inner);
        {
            let mut l = SgeList::new();
            l.push(Sge::whole(&m));
            l.push(Sge::whole(&m));
            assert_eq!(std::sync::Arc::strong_count(&m.inner), base + 2);
        }
        assert_eq!(std::sync::Arc::strong_count(&m.inner), base);
        {
            let mut l = SgeList::new();
            for _ in 0..4 {
                l.push(Sge::whole(&m)); // spills at the third push
            }
            assert_eq!(std::sync::Arc::strong_count(&m.inner), base + 4);
        }
        assert_eq!(std::sync::Arc::strong_count(&m.inner), base);
    }

    #[test]
    fn sge_list_macro_and_from_vec() {
        let m = mr(32);
        let l = crate::sge_list![Sge::new(&m, 0, 16), Sge::new(&m, 16, 16)];
        assert_eq!(l.len(), 2);
        let v: SgeList = vec![Sge::whole(&m)].into();
        assert_eq!(v.len(), 1);
        assert_eq!(sge_len(&v), 32);
    }

    #[test]
    fn recv_capacity_sums_sges() {
        let m = mr(128);
        let r = RecvWr::new(3, vec![Sge::new(&m, 0, 64), Sge::new(&m, 64, 64)]);
        assert_eq!(r.capacity(), 128);
        assert_eq!(r.wr_id, 3);
    }
}
