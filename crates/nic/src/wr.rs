//! Work requests: what applications post to queue pairs.

use crate::mr::MemoryRegion;
use crate::types::RemoteAddr;

/// A scatter/gather element: a range within a registered region.
#[derive(Debug, Clone)]
pub struct Sge {
    pub mr: MemoryRegion,
    pub offset: usize,
    pub len: usize,
}

impl Sge {
    pub fn new(mr: &MemoryRegion, offset: usize, len: usize) -> Self {
        Sge {
            mr: mr.clone(),
            offset,
            len,
        }
    }

    /// The whole region as one element.
    pub fn whole(mr: &MemoryRegion) -> Self {
        Sge {
            mr: mr.clone(),
            offset: 0,
            len: mr.len(),
        }
    }
}

/// Total byte length of a gather list.
pub fn sge_len(sges: &[Sge]) -> usize {
    sges.iter().map(|s| s.len).sum()
}

/// A send-queue work request.
#[derive(Debug, Clone)]
pub enum SendWr {
    /// Two-sided send; consumes a posted receive at the peer. `imm`
    /// travels in the completion the peer reaps.
    Send {
        wr_id: u64,
        sges: Vec<Sge>,
        imm: Option<u32>,
    },
    /// One-sided RDMA write into the peer's memory; the peer's CPU is not
    /// involved and sees no completion.
    RdmaWrite {
        wr_id: u64,
        sges: Vec<Sge>,
        remote: RemoteAddr,
    },
    /// RDMA write that additionally consumes a posted receive at the peer
    /// and delivers `imm` in its completion — the standard way to notify
    /// the peer that a one-sided transfer finished.
    RdmaWriteImm {
        wr_id: u64,
        sges: Vec<Sge>,
        remote: RemoteAddr,
        imm: u32,
    },
    /// One-sided RDMA read from the peer's memory into local regions.
    RdmaRead {
        wr_id: u64,
        sges: Vec<Sge>,
        remote: RemoteAddr,
    },
    /// 8-byte remote compare-and-swap; the prior remote value lands in
    /// the local buffer.
    CompareSwap {
        wr_id: u64,
        local: Sge,
        remote: RemoteAddr,
        expect: u64,
        swap: u64,
    },
    /// 8-byte remote fetch-and-add; the prior remote value lands in the
    /// local buffer.
    FetchAdd {
        wr_id: u64,
        local: Sge,
        remote: RemoteAddr,
        add: u64,
    },
}

impl SendWr {
    pub fn wr_id(&self) -> u64 {
        match self {
            SendWr::Send { wr_id, .. }
            | SendWr::RdmaWrite { wr_id, .. }
            | SendWr::RdmaWriteImm { wr_id, .. }
            | SendWr::RdmaRead { wr_id, .. }
            | SendWr::CompareSwap { wr_id, .. }
            | SendWr::FetchAdd { wr_id, .. } => *wr_id,
        }
    }

    /// Payload bytes this request moves.
    pub fn byte_len(&self) -> usize {
        match self {
            SendWr::Send { sges, .. }
            | SendWr::RdmaWrite { sges, .. }
            | SendWr::RdmaWriteImm { sges, .. }
            | SendWr::RdmaRead { sges, .. } => sge_len(sges),
            SendWr::CompareSwap { .. } | SendWr::FetchAdd { .. } => 8,
        }
    }
}

/// A receive-queue work request: scatter targets for an inbound send.
#[derive(Debug, Clone)]
pub struct RecvWr {
    pub wr_id: u64,
    pub sges: Vec<Sge>,
}

impl RecvWr {
    pub fn new(wr_id: u64, sges: Vec<Sge>) -> Self {
        RecvWr { wr_id, sges }
    }

    pub fn capacity(&self) -> usize {
        sge_len(&self.sges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mr::{MemoryRegion, ProtectionDomain};
    use crate::types::{NodeId, PdId, Rkey};

    fn mr(len: usize) -> MemoryRegion {
        MemoryRegion::allocate(
            ProtectionDomain {
                node: NodeId(0),
                id: PdId(0),
            },
            len,
        )
    }

    #[test]
    fn sge_helpers() {
        let m = mr(100);
        let s = Sge::whole(&m);
        assert_eq!(s.len, 100);
        assert_eq!(sge_len(&[Sge::new(&m, 0, 10), Sge::new(&m, 50, 20)]), 30);
    }

    #[test]
    fn wr_accessors() {
        let m = mr(64);
        let wr = SendWr::Send {
            wr_id: 42,
            sges: vec![Sge::whole(&m)],
            imm: Some(7),
        };
        assert_eq!(wr.wr_id(), 42);
        assert_eq!(wr.byte_len(), 64);
        let atomic = SendWr::FetchAdd {
            wr_id: 1,
            local: Sge::new(&m, 0, 8),
            remote: RemoteAddr {
                node: NodeId(1),
                rkey: Rkey(9),
                offset: 0,
            },
            add: 5,
        };
        assert_eq!(atomic.byte_len(), 8);
    }

    #[test]
    fn recv_capacity_sums_sges() {
        let m = mr(128);
        let r = RecvWr::new(3, vec![Sge::new(&m, 0, 64), Sge::new(&m, 64, 64)]);
        assert_eq!(r.capacity(), 128);
        assert_eq!(r.wr_id, 3);
    }
}
