//! # polaris-nic
//!
//! A virtual user-level NIC with InfiniBand-verbs semantics: protection
//! domains, registered memory regions (lkey/rkey), reliable-connected
//! queue pairs, completion queues, two-sided send/receive, one-sided RDMA
//! read/write (with immediate), and remote atomics.
//!
//! This crate is the substitution for the RDMA hardware the CLUSTER 2002
//! keynote anticipates ("anticipated advances in networking including
//! Infiniband"): the same control structures real HCAs expose, backed by
//! a shared-memory fabric in which every node is a thread and the "DMA"
//! is a single accounted memory copy. The accounting
//! ([`fabric::FabricStats`]) is what lets the messaging layer *prove* its
//! zero-copy properties in tests rather than assert them.
//!
//! ```
//! use polaris_nic::prelude::*;
//! use std::time::Duration;
//!
//! let fabric = Fabric::new();
//! let (na, nb) = (fabric.create_nic(), fabric.create_nic());
//! let (pa, pb) = (na.alloc_pd(), nb.alloc_pd());
//! let (ca, cb) = (CompletionQueue::new(16), CompletionQueue::new(16));
//! let qa = na.create_qp(pa, &ca, &ca).unwrap();
//! let qb = nb.create_qp(pb, &cb, &cb).unwrap();
//! fabric.connect(&qa, &qb).unwrap();
//!
//! let src = na.register_from(pa, b"hello").unwrap();
//! let dst = nb.register(pb, 16).unwrap();
//! qb.post_recv(RecvWr::new(1, vec![Sge::whole(&dst)])).unwrap();
//! qa.post_send(SendWr::Send { wr_id: 2, sges: polaris_nic::sge_list![Sge::whole(&src)], imm: None }).unwrap();
//! let cqe = cb.wait_one(Duration::from_secs(1)).unwrap();
//! assert_eq!(cqe.byte_len, 5);
//! assert_eq!(dst.to_vec(0, 5).unwrap(), b"hello");
//! ```

pub mod chaos;
pub mod cq;
pub mod error;
pub mod fabric;
pub mod mr;
pub mod qp;
pub mod srq;
pub mod types;
pub mod wr;

pub mod prelude {
    pub use crate::chaos::{crc32, ChaosParams, ChaosStats, ChaosVerdict};
    pub use crate::cq::{CompletionQueue, Cqe, CqeOpcode, CqeStatus};
    pub use crate::error::{NicError, Result as NicResult};
    pub use crate::fabric::{Fabric, FabricStats, Nic};
    pub use crate::mr::{MemoryRegion, ProtectionDomain};
    pub use crate::qp::{QpState, QueuePair};
    pub use crate::srq::SharedReceiveQueue;
    pub use crate::types::{Lkey, NodeId, PdId, QpNum, RemoteAddr, Rkey};
    pub use crate::wr::{sge_len, RecvWr, SendWr, Sge, SgeList};
}
