//! Completion queues.
//!
//! Work completes asynchronously; the application learns about it by
//! polling (latency-optimal, burns a core) or blocking (frees the core,
//! pays a wakeup) on a [`CompletionQueue`]. Both modes are exercised by
//! the A3 ablation.

use crate::error::{NicError, Result};
use crate::types::QpNum;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Completion status, mirroring the interesting subset of IB statuses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CqeStatus {
    Success,
    /// Local SGE exceeded its memory region.
    LocalProtectionError,
    /// The remote rkey/bounds check failed.
    RemoteAccessError,
    /// The work request was flushed because the QP entered the error
    /// state before it executed.
    Flushed,
    /// Transport retries exhausted without an ack: the packet (or its
    /// ack) was lost on the wire. Injected by the fabric chaos layer;
    /// the message was *not* delivered.
    RetryExceeded,
    /// The payload arrived but its invariant CRC check failed
    /// (corruption on the wire). Receive-side status; the buffer
    /// contents must not be trusted.
    ChecksumError,
}

/// What kind of work completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CqeOpcode {
    Send,
    Recv,
    /// A receive consumed by an RDMA-write-with-immediate.
    RecvRdmaImm,
    RdmaWrite,
    RdmaRead,
    Atomic,
}

/// A completion-queue entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cqe {
    pub wr_id: u64,
    pub status: CqeStatus,
    pub opcode: CqeOpcode,
    /// Payload bytes moved (valid on success).
    pub byte_len: usize,
    /// Immediate data, if the sender attached any.
    pub imm: Option<u32>,
    /// The local QP this completion belongs to.
    pub qp: QpNum,
}

struct CqInner {
    queue: Mutex<VecDeque<Cqe>>,
    cond: Condvar,
    capacity: usize,
    overflowed: Mutex<bool>,
    /// Number of completions ever delivered (stats / ablations).
    delivered: AtomicU64,
}

/// A completion queue handle. Cloning shares the queue.
#[derive(Clone)]
pub struct CompletionQueue {
    inner: Arc<CqInner>,
}

impl CompletionQueue {
    /// Create a CQ holding at most `capacity` outstanding completions.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "CQ capacity must be nonzero");
        CompletionQueue {
            inner: Arc::new(CqInner {
                queue: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
                cond: Condvar::new(),
                capacity,
                overflowed: Mutex::new(false),
                delivered: AtomicU64::new(0),
            }),
        }
    }

    /// Push a completion (NIC side). Overflow latches an error that
    /// surfaces on the next poll, as real hardware raises a fatal event.
    pub(crate) fn push(&self, cqe: Cqe) {
        let mut q = self.inner.queue.lock();
        if q.len() >= self.inner.capacity {
            *self.inner.overflowed.lock() = true;
            return;
        }
        q.push_back(cqe);
        self.inner.delivered.fetch_add(1, Ordering::Relaxed);
        drop(q);
        self.inner.cond.notify_all();
    }

    fn check_overflow(&self) -> Result<()> {
        if *self.inner.overflowed.lock() {
            Err(NicError::CqOverflow)
        } else {
            Ok(())
        }
    }

    /// Non-blocking poll of up to `max` completions.
    pub fn poll(&self, max: usize) -> Result<Vec<Cqe>> {
        let mut out = Vec::new();
        self.poll_into(&mut out, max)?;
        Ok(out)
    }

    /// Non-blocking batched poll of up to `max` completions, appended to
    /// a caller-owned scratch buffer (cleared first). The progress loops
    /// call this every iteration; reusing the buffer keeps steady-state
    /// polling allocation-free. Returns the number of entries reaped.
    pub fn poll_into(&self, out: &mut Vec<Cqe>, max: usize) -> Result<usize> {
        self.check_overflow()?;
        out.clear();
        let mut q = self.inner.queue.lock();
        let n = max.min(q.len());
        out.extend(q.drain(..n));
        Ok(n)
    }

    /// Non-blocking poll of a single completion.
    pub fn poll_one(&self) -> Result<Option<Cqe>> {
        self.check_overflow()?;
        Ok(self.inner.queue.lock().pop_front())
    }

    /// Busy-poll until a completion arrives or `timeout` elapses.
    /// This is the latency-optimal mode.
    pub fn spin_one(&self, timeout: Duration) -> Result<Cqe> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(c) = self.poll_one()? {
                return Ok(c);
            }
            if Instant::now() >= deadline {
                return Err(NicError::Timeout);
            }
            std::hint::spin_loop();
        }
    }

    /// Block on a condition variable until a completion arrives or
    /// `timeout` elapses. This is the core-friendly mode.
    pub fn wait_one(&self, timeout: Duration) -> Result<Cqe> {
        let deadline = Instant::now() + timeout;
        let mut q = self.inner.queue.lock();
        loop {
            self.check_overflow_locked()?;
            if let Some(c) = q.pop_front() {
                return Ok(c);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(NicError::Timeout);
            }
            if self
                .inner
                .cond
                .wait_until(&mut q, deadline)
                .timed_out()
            {
                return match q.pop_front() {
                    Some(c) => Ok(c),
                    None => Err(NicError::Timeout),
                };
            }
        }
    }

    fn check_overflow_locked(&self) -> Result<()> {
        if *self.inner.overflowed.lock() {
            Err(NicError::CqOverflow)
        } else {
            Ok(())
        }
    }

    /// Completions currently waiting to be reaped.
    pub fn depth(&self) -> usize {
        self.inner.queue.lock().len()
    }

    /// Total completions ever delivered to this CQ.
    pub fn delivered(&self) -> u64 {
        self.inner.delivered.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for CompletionQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompletionQueue")
            .field("depth", &self.depth())
            .field("capacity", &self.inner.capacity)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn cqe(wr_id: u64) -> Cqe {
        Cqe {
            wr_id,
            status: CqeStatus::Success,
            opcode: CqeOpcode::Send,
            byte_len: 0,
            imm: None,
            qp: QpNum(0),
        }
    }

    #[test]
    fn poll_drains_fifo() {
        let cq = CompletionQueue::new(16);
        for i in 0..5 {
            cq.push(cqe(i));
        }
        let got = cq.poll(3).unwrap();
        assert_eq!(got.iter().map(|c| c.wr_id).collect::<Vec<_>>(), [0, 1, 2]);
        assert_eq!(cq.depth(), 2);
        assert_eq!(cq.poll(10).unwrap().len(), 2);
        assert!(cq.poll_one().unwrap().is_none());
        assert_eq!(cq.delivered(), 5);
    }

    #[test]
    fn poll_into_reuses_buffer_without_realloc() {
        let cq = CompletionQueue::new(64);
        let mut scratch = Vec::with_capacity(32);
        let cap = scratch.capacity();
        for round in 0..10u64 {
            for i in 0..8 {
                cq.push(cqe(round * 8 + i));
            }
            let n = cq.poll_into(&mut scratch, 32).unwrap();
            assert_eq!(n, 8);
            assert_eq!(scratch.len(), 8);
            assert_eq!(scratch[0].wr_id, round * 8);
            assert_eq!(scratch.capacity(), cap, "scratch must not regrow");
        }
    }

    #[test]
    fn overflow_latches_error() {
        let cq = CompletionQueue::new(2);
        cq.push(cqe(0));
        cq.push(cqe(1));
        cq.push(cqe(2)); // lost
        assert_eq!(cq.poll(10), Err(NicError::CqOverflow));
    }

    #[test]
    fn wait_one_wakes_on_push() {
        let cq = CompletionQueue::new(4);
        let cq2 = cq.clone();
        let h = thread::spawn(move || cq2.wait_one(Duration::from_secs(5)).unwrap());
        thread::sleep(Duration::from_millis(20));
        cq.push(cqe(77));
        assert_eq!(h.join().unwrap().wr_id, 77);
    }

    #[test]
    fn wait_one_times_out() {
        let cq = CompletionQueue::new(4);
        let r = cq.wait_one(Duration::from_millis(10));
        assert_eq!(r, Err(NicError::Timeout));
    }

    #[test]
    fn spin_one_sees_completion_from_another_thread() {
        let cq = CompletionQueue::new(4);
        let cq2 = cq.clone();
        let h = thread::spawn(move || cq2.spin_one(Duration::from_secs(5)).unwrap());
        thread::sleep(Duration::from_millis(5));
        cq.push(cqe(5));
        assert_eq!(h.join().unwrap().wr_id, 5);
    }

    #[test]
    fn spin_one_times_out() {
        let cq = CompletionQueue::new(4);
        assert_eq!(
            cq.spin_one(Duration::from_millis(5)),
            Err(NicError::Timeout)
        );
    }

    #[test]
    #[should_panic(expected = "capacity must be nonzero")]
    fn zero_capacity_rejected() {
        CompletionQueue::new(0);
    }
}
