//! Protection domains and registered memory regions.
//!
//! A [`MemoryRegion`] is the unit of DMA-able memory: library-allocated,
//! "pinned" (it never moves — the storage lives behind an `Arc`), and
//! named by an lkey (local work requests) and an rkey (remote RDMA
//! access). Handing an rkey to a peer grants that peer access, exactly as
//! on real RDMA hardware.
//!
//! # Safety contract
//!
//! Real RDMA hardware writes application memory asynchronously; the
//! program must not touch a buffer between posting a work request that
//! uses it and reaping the corresponding completion. The virtual NIC has
//! the same contract: [`MemoryRegion::as_slice`]/[`as_mut_slice`] are
//! `unsafe fn`s whose caller asserts no DMA targeting the region is in
//! flight. The safe `read_at`/`write_at` accessors carry the same
//! contract in their documentation; violating it is a data race in the
//! application, just as it would be under ibverbs. Completion delivery
//! goes through a mutex-protected queue, which establishes the
//! happens-before edge that makes post → complete → access well defined.

use crate::error::{NicError, Result};
use crate::types::{Lkey, NodeId, PdId, Rkey, KEYS};
use parking_lot::Mutex;
use std::cell::UnsafeCell;
use std::sync::Arc;

/// A protection domain: memory regions and queue pairs must share one for
/// work requests to be authorized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtectionDomain {
    pub node: NodeId,
    pub id: PdId,
}

pub(crate) struct MrStorage {
    data: UnsafeCell<Box<[u8]>>,
    len: usize,
}

// SAFETY: concurrent access is governed by the RDMA ownership contract
// documented above; all cross-thread hand-offs go through locked queues.
unsafe impl Sync for MrStorage {}
unsafe impl Send for MrStorage {}

pub(crate) struct MrInner {
    pub(crate) storage: MrStorage,
    pub(crate) lkey: Lkey,
    pub(crate) rkey: Rkey,
    pub(crate) pd: ProtectionDomain,
    /// Serializes remote atomic operations on this region.
    pub(crate) atomic_lock: Mutex<()>,
}

impl MrInner {
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.storage.len
    }

    #[inline]
    pub(crate) fn ptr(&self) -> *mut u8 {
        // SAFETY: the box never moves while the Arc is alive.
        unsafe { (*self.storage.data.get()).as_mut_ptr() }
    }

    pub(crate) fn check_bounds(&self, offset: usize, len: usize) -> Result<()> {
        if offset.checked_add(len).is_none_or(|end| end > self.len()) {
            Err(NicError::OutOfBounds {
                offset,
                len,
                mr_len: self.len(),
            })
        } else {
            Ok(())
        }
    }
}

/// A registered, pinned, DMA-able memory region.
#[derive(Clone)]
pub struct MemoryRegion {
    pub(crate) inner: Arc<MrInner>,
}

impl MemoryRegion {
    pub(crate) fn allocate(pd: ProtectionDomain, len: usize) -> Self {
        let (lkey, rkey) = KEYS.next_pair();
        MemoryRegion {
            inner: Arc::new(MrInner {
                storage: MrStorage {
                    data: UnsafeCell::new(vec![0u8; len].into_boxed_slice()),
                    len,
                },
                lkey,
                rkey,
                pd,
                atomic_lock: Mutex::new(()),
            }),
        }
    }

    pub fn len(&self) -> usize {
        self.inner.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn lkey(&self) -> Lkey {
        self.inner.lkey
    }

    /// The remote key. Sharing this value with a peer grants it RDMA
    /// access to the region.
    pub fn rkey(&self) -> Rkey {
        self.inner.rkey
    }

    pub fn pd(&self) -> ProtectionDomain {
        self.inner.pd
    }

    /// Copy `src` into the region at `offset`.
    ///
    /// Must not be called while a posted work request targets the
    /// overlapping range (the RDMA ownership contract).
    pub fn write_at(&self, offset: usize, src: &[u8]) -> Result<()> {
        self.inner.check_bounds(offset, src.len())?;
        // SAFETY: bounds checked; exclusivity per the ownership contract.
        unsafe {
            std::ptr::copy_nonoverlapping(src.as_ptr(), self.inner.ptr().add(offset), src.len());
        }
        Ok(())
    }

    /// Copy from the region at `offset` into `dst`.
    pub fn read_at(&self, offset: usize, dst: &mut [u8]) -> Result<()> {
        self.inner.check_bounds(offset, dst.len())?;
        // SAFETY: bounds checked; exclusivity per the ownership contract.
        unsafe {
            std::ptr::copy_nonoverlapping(self.inner.ptr().add(offset), dst.as_mut_ptr(), dst.len());
        }
        Ok(())
    }

    /// Copy out a range as a fresh vector (convenience for tests).
    pub fn to_vec(&self, offset: usize, len: usize) -> Result<Vec<u8>> {
        let mut v = vec![0u8; len];
        self.read_at(offset, &mut v)?;
        Ok(v)
    }

    /// Borrow the whole region as a slice without copying.
    ///
    /// # Safety
    /// The caller asserts that no in-flight work request (local or remote
    /// RDMA) may write the region for the lifetime of the returned slice.
    pub unsafe fn as_slice(&self) -> &[u8] {
        std::slice::from_raw_parts(self.inner.ptr(), self.len())
    }

    /// Borrow the whole region mutably without copying.
    ///
    /// # Safety
    /// The caller asserts that no in-flight work request may access the
    /// region, and that no other slice borrow is live.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn as_mut_slice(&self) -> &mut [u8] {
        std::slice::from_raw_parts_mut(self.inner.ptr(), self.len())
    }

    /// True if both handles name the same registration.
    pub fn same_region(&self, other: &MemoryRegion) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl std::fmt::Debug for MemoryRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryRegion")
            .field("len", &self.len())
            .field("lkey", &self.lkey())
            .field("rkey", &self.rkey())
            .field("pd", &self.inner.pd.id)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pd() -> ProtectionDomain {
        ProtectionDomain {
            node: NodeId(0),
            id: PdId(0),
        }
    }

    #[test]
    fn write_read_roundtrip() {
        let mr = MemoryRegion::allocate(pd(), 64);
        mr.write_at(10, b"hello").unwrap();
        assert_eq!(mr.to_vec(10, 5).unwrap(), b"hello");
        // Unwritten bytes are zeroed.
        assert_eq!(mr.to_vec(0, 10).unwrap(), vec![0u8; 10]);
    }

    #[test]
    fn bounds_are_enforced() {
        let mr = MemoryRegion::allocate(pd(), 16);
        assert!(mr.write_at(10, &[0u8; 7]).is_err());
        assert!(mr.write_at(16, &[0u8; 1]).is_err());
        assert!(mr.write_at(usize::MAX, &[0u8; 1]).is_err());
        let mut buf = [0u8; 17];
        assert!(mr.read_at(0, &mut buf).is_err());
        // Exactly at the end is fine.
        assert!(mr.write_at(15, &[1]).is_ok());
        assert!(mr.write_at(16, &[]).is_ok());
    }

    #[test]
    fn keys_are_distinct_per_region() {
        let a = MemoryRegion::allocate(pd(), 8);
        let b = MemoryRegion::allocate(pd(), 8);
        assert_ne!(a.lkey(), b.lkey());
        assert_ne!(a.rkey(), b.rkey());
        assert!(!a.same_region(&b));
        assert!(a.same_region(&a.clone()));
    }

    #[test]
    fn zero_length_region() {
        let mr = MemoryRegion::allocate(pd(), 0);
        assert!(mr.is_empty());
        assert!(mr.write_at(0, &[]).is_ok());
        assert!(mr.write_at(0, &[1]).is_err());
    }

    #[test]
    fn unsafe_slices_see_writes() {
        let mr = MemoryRegion::allocate(pd(), 4);
        mr.write_at(0, &[1, 2, 3, 4]).unwrap();
        // SAFETY: no work requests exist in this test.
        unsafe {
            assert_eq!(mr.as_slice(), &[1, 2, 3, 4]);
            mr.as_mut_slice()[0] = 9;
        }
        assert_eq!(mr.to_vec(0, 1).unwrap(), vec![9]);
    }
}
