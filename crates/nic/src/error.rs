//! NIC error types.

use crate::types::{NodeId, QpNum, Rkey};
use std::fmt;

/// Errors surfaced synchronously by verbs calls (posting, connecting,
/// registering). Asynchronous failures arrive as error completions
/// instead, mirroring real hardware.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NicError {
    /// The QP is not in a state that allows the requested operation.
    InvalidQpState { qp: QpNum, state: &'static str },
    /// The QP has no connected peer.
    NotConnected(QpNum),
    /// The target node does not exist on the fabric.
    UnknownNode(NodeId),
    /// A work request referenced memory outside its region.
    OutOfBounds {
        offset: usize,
        len: usize,
        mr_len: usize,
    },
    /// The rkey does not name a live memory region on the target node.
    BadRkey(Rkey),
    /// An SGE's memory region belongs to a different protection domain
    /// than the QP.
    PdMismatch,
    /// A completion queue overflowed; completions were lost.
    CqOverflow,
    /// Atomic operations require 8-byte aligned, 8-byte buffers.
    BadAtomicBuffer,
    /// Timed out waiting for a completion.
    Timeout,
    /// The fabric has been shut down.
    FabricDown,
    /// The QP is attached to a shared receive queue; post receives there.
    UsesSrq(QpNum),
}

impl fmt::Display for NicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NicError::InvalidQpState { qp, state } => {
                write!(f, "{qp} in state {state} cannot perform this operation")
            }
            NicError::NotConnected(qp) => write!(f, "{qp} is not connected"),
            NicError::UnknownNode(n) => write!(f, "{n} is not on the fabric"),
            NicError::OutOfBounds {
                offset,
                len,
                mr_len,
            } => write!(
                f,
                "access [{offset}, {}) exceeds region of {mr_len} bytes",
                offset + len
            ),
            NicError::BadRkey(r) => write!(f, "rkey {:#x} does not name a live region", r.0),
            NicError::PdMismatch => write!(f, "memory region and QP protection domains differ"),
            NicError::CqOverflow => write!(f, "completion queue overflow"),
            NicError::BadAtomicBuffer => {
                write!(f, "atomic operations require aligned 8-byte buffers")
            }
            NicError::Timeout => write!(f, "timed out waiting for completion"),
            NicError::FabricDown => write!(f, "fabric has been shut down"),
            NicError::UsesSrq(qp) => {
                write!(f, "{qp} uses a shared receive queue; post receives to the SRQ")
            }
        }
    }
}

impl std::error::Error for NicError {}

pub type Result<T> = std::result::Result<T, NicError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = NicError::OutOfBounds {
            offset: 10,
            len: 20,
            mr_len: 16,
        };
        assert_eq!(e.to_string(), "access [10, 30) exceeds region of 16 bytes");
        assert!(NicError::BadRkey(Rkey(0xabc)).to_string().contains("0xabc"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(NicError::PdMismatch, NicError::PdMismatch);
        assert_ne!(
            NicError::NotConnected(QpNum(1)),
            NicError::NotConnected(QpNum(2))
        );
    }
}
