//! Property suite for Dragonfly and multi-pod fat-tree routing over
//! randomly drawn topology dimensions: routes terminate, respect the
//! hop bounds (≤5 links minimal on a Dragonfly, ≤2× the minimal
//! diameter under Valiant), are deterministic per Valiant seed, walk
//! contiguous edges from source to destination, and agree with the
//! retained reference graph. The `#[ignore]`d wide-range variants run
//! on the nightly `--include-ignored` schedule.

use polaris_simnet::link::LinkId;
use polaris_simnet::topology::{Routing, Topology, TopologyKind, Vertex};
use proptest::prelude::*;

/// Walk a route's links through `link_endpoints`, asserting each link
/// starts where the previous one ended, the first starts at `src`, and
/// the last ends at `dst`.
fn assert_contiguous(topo: &Topology, src: u32, dst: u32, route: &[LinkId]) {
    if src == dst {
        assert!(route.is_empty(), "self-route must be empty");
        return;
    }
    let mut at = Vertex::Host(src);
    for &l in route {
        let (from, to) = topo.link_endpoints(l);
        assert_eq!(from, at, "route {src}->{dst} broke at link {l:?}");
        at = to;
    }
    assert_eq!(at, Vertex::Host(dst), "route {src}->{dst} ended elsewhere");
}

/// Exhaustive pair check on one topology instance under one routing.
fn check_all_pairs(kind: TopologyKind, routing: Routing) {
    let topo = Topology::new_reference(kind).with_routing(routing);
    let hosts = topo.hosts();
    let bound = topo.diameter();
    for s in 0..hosts {
        for d in 0..hosts {
            let route = topo.route(s, d);
            assert_contiguous(&topo, s, d, &route);
            assert!(
                route.len() as u32 <= bound,
                "{kind:?} {routing:?} {s}->{d}: {} hops > diameter {bound}",
                route.len()
            );
            assert_eq!(route, topo.route_reference(s, d), "{kind:?} {routing:?} {s}->{d}");
            assert_eq!(route.len() as u32, topo.hops(s, d));
            if let TopologyKind::Dragonfly { .. } = kind {
                if matches!(routing, Routing::Minimal) {
                    assert!(
                        route.len() <= 5,
                        "{kind:?} minimal {s}->{d}: {} hops > 5",
                        route.len()
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // Dragonfly minimal + Valiant routing over random (g, a, h) dims.
    #[test]
    fn dragonfly_routing_properties(
        groups in 1u32..=8,
        routers in 1u32..=4,
        hpr in 1u32..=3,
        seed in any::<u64>(),
    ) {
        let kind = TopologyKind::Dragonfly {
            groups,
            routers_per_group: routers,
            hosts_per_router: hpr,
        };
        check_all_pairs(kind, Routing::Minimal);
        check_all_pairs(kind, Routing::Valiant { seed });
        // Valiant never exceeds 2x the minimal diameter.
        let minimal = Topology::new(kind).diameter();
        let valiant = Topology::new(kind).with_routing(Routing::Valiant { seed }).diameter();
        prop_assert!(valiant <= 2 * minimal.max(1));
    }

    // Multi-pod fat-tree routing over random (k, pods).
    #[test]
    fn multi_pod_fat_tree_routing_properties(
        half in 1u32..=4,
        pods_frac in 0u32..=3,
        seed in any::<u64>(),
    ) {
        let k = 2 * half;
        let pods = 1 + pods_frac * (k - 1) / 3; // spread over 1..=k
        let kind = TopologyKind::FatTreePods { k, pods };
        check_all_pairs(kind, Routing::Minimal);
        check_all_pairs(kind, Routing::Valiant { seed });
    }

    // Valiant routes are a pure function of the routing seed: same
    // seed, same routes; and re-deriving the topology changes nothing.
    #[test]
    fn valiant_routes_are_deterministic_per_seed(
        groups in 2u32..=8,
        routers in 1u32..=4,
        hpr in 1u32..=3,
        seed in any::<u64>(),
    ) {
        let kind = TopologyKind::Dragonfly {
            groups,
            routers_per_group: routers,
            hosts_per_router: hpr,
        };
        let a = Topology::new(kind).with_routing(Routing::Valiant { seed });
        let b = Topology::new(kind).with_routing(Routing::Valiant { seed });
        let hosts = a.hosts();
        for s in 0..hosts.min(24) {
            for d in 0..hosts.min(24) {
                prop_assert_eq!(a.route(s, d), b.route(s, d));
            }
        }
    }
}

/// Nightly wide-range variant: larger machines, sampled pairs. Plain
/// seeded loops (the vendored proptest macro cannot carry `#[ignore]`),
/// run by the nightly `--include-ignored` schedule.
#[test]
#[ignore = "nightly: wide dimension ranges"]
fn dragonfly_routing_properties_wide() {
    let mut dims = polaris_simnet::rng::SplitMix64::new(0xD24A_60F1);
    for case in 0..96u32 {
        let groups = 1 + dims.next_below(48) as u32;
        let routers = 1 + dims.next_below(16) as u32;
        let hpr = 1 + dims.next_below(8) as u32;
        let seed = dims.next_u64();
        let kind = TopologyKind::Dragonfly {
            groups,
            routers_per_group: routers,
            hosts_per_router: hpr,
        };
        for routing in [Routing::Minimal, Routing::Valiant { seed }] {
            let topo = Topology::new_reference(kind).with_routing(routing);
            let hosts = topo.hosts();
            let bound = topo.diameter();
            let mut rng = polaris_simnet::rng::SplitMix64::new(seed ^ 0xA5);
            for _ in 0..2_000 {
                let s = rng.next_below(hosts as u64) as u32;
                let d = rng.next_below(hosts as u64) as u32;
                let route = topo.route(s, d);
                assert_contiguous(&topo, s, d, &route);
                assert!(route.len() as u32 <= bound, "case {case}: {kind:?} {routing:?}");
                assert_eq!(route, topo.route_reference(s, d), "case {case}");
            }
        }
    }
}

/// Nightly wide-range variant for the multi-pod fat tree.
#[test]
#[ignore = "nightly: wide dimension ranges"]
fn multi_pod_routing_properties_wide() {
    let mut dims = polaris_simnet::rng::SplitMix64::new(0x0F47_BEE5);
    for case in 0..96u32 {
        let k = 2 * (1 + dims.next_below(8) as u32);
        let pods = 1 + (dims.next_below(16) as u32) % k;
        let seed = dims.next_u64();
        let kind = TopologyKind::FatTreePods { k, pods };
        let topo = Topology::new_reference(kind).with_routing(Routing::Valiant { seed });
        let hosts = topo.hosts();
        let bound = topo.diameter();
        let mut rng = polaris_simnet::rng::SplitMix64::new(seed ^ 0x5A);
        for _ in 0..2_000 {
            let s = rng.next_below(hosts as u64) as u32;
            let d = rng.next_below(hosts as u64) as u32;
            let route = topo.route(s, d);
            assert_contiguous(&topo, s, d, &route);
            assert!(route.len() as u32 <= bound, "case {case}: {kind:?}");
            assert_eq!(route, topo.route_reference(s, d), "case {case}");
        }
    }
}
