//! Property suite for the per-channel lookahead math behind the
//! conservative window protocol (round 2 of the parallel engine).
//!
//! Two contracts from the design note in `shard.rs`, checked against
//! randomly drawn lookahead matrices and published-minimum vectors:
//!
//! * **Safety** — a shard's window end never exceeds what any single
//!   inbound channel promises (`mins[src] + la[src][dst]`), so no
//!   event can ever arrive below the window boundary.
//! * **Progress** — the per-channel window is always at least the old
//!   global window (`min(mins) + min(la)`), so round 2 can only widen
//!   windows, never narrow them.
//!
//! Plus the commit-bound consistency the speculation protocol relies
//! on, and an end-to-end shard-count/speculation invariance property
//! over randomly seeded token workloads.

use polaris_simnet::prelude::{
    Lookahead, Partition, ShardCtx, ShardSim, ShardWorld, SimDuration, SimTime,
};
use proptest::prelude::*;

/// Build a matrix from a flat entry vector (row-major, diagonal
/// ignored).
fn matrix(n: u32, entries: &[u64]) -> Lookahead {
    Lookahead::from_fn(n, |src, dst| SimDuration(entries[(src * n + dst) as usize]))
}

/// The old global window: every shard advanced to the same bound,
/// `min(published minimums) + min(all channel promises)`.
fn global_window(mins: &[u64], la: &Lookahead) -> u64 {
    mins.iter().copied().min().unwrap().saturating_add(la.min())
}

/// Independent min-plus closure reference: relax every edge until a
/// fixed point (Bellman-Ford style), seeded with the single edges and
/// a saturated diagonal so every path keeps at least one edge. The
/// engine uses Floyd-Warshall; agreement between the two is the
/// differential the property suite leans on.
fn reference_closure(n: usize, entries: &[u64]) -> Vec<u64> {
    let mut dist = vec![u64::MAX; n * n];
    for src in 0..n {
        for dst in 0..n {
            if src != dst {
                dist[src * n + dst] = entries[src * n + dst];
            }
        }
    }
    loop {
        let mut changed = false;
        for i in 0..n {
            for k in 0..n {
                if i == k {
                    continue;
                }
                for j in 0..n {
                    let through = dist[i * n + k].saturating_add(entries[k * n + j]);
                    if k != j && through < dist[i * n + j] {
                        dist[i * n + j] = through;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            return dist;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // The closure matches an independent reference: repeated
    // Bellman-Ford-style relaxation from the raw edges. This is the
    // ground truth for every other property here.
    #[test]
    fn closure_matches_bellman_ford_reference(
        n in 2u32..=6,
        entries in collection::vec(1u64..=1_000, 36..37),
    ) {
        let la = matrix(n, &entries);
        let reference = reference_closure(n as usize, &entries);
        for src in 0..n {
            for dst in 0..n {
                prop_assert!(
                    la.dist(src, dst) == reference[(src * n + dst) as usize],
                    "dist({src},{dst}) = {} but reference says {}",
                    la.dist(src, dst),
                    reference[(src * n + dst) as usize]
                );
            }
        }
    }

    // Safety: `window_end(mins, dst)` never exceeds the earliest
    // arrival any causal chain could produce — `mins[src] +
    // dist(src, dst)` for every source, including `dst`'s own round
    // trip — and is tight: some chain achieves it exactly.
    #[test]
    fn window_end_is_safe_and_tight(
        n in 2u32..=6,
        entries in collection::vec(1u64..=1_000, 36..37),
        mins in collection::vec(0u64..=10_000, 6..7),
    ) {
        let la = matrix(n, &entries);
        let mins = &mins[..n as usize];
        for dst in 0..n as usize {
            let wend = la.window_end(mins, dst);
            let mut tight = false;
            for (src, &m) in mins.iter().enumerate() {
                let promise = m.saturating_add(la.dist(src as u32, dst as u32));
                prop_assert!(
                    wend <= promise,
                    "dst {dst}: window {wend} outruns chain {src}->{dst} promise {promise}"
                );
                tight |= wend == promise;
            }
            prop_assert!(tight, "dst {dst}: window {wend} is not achieved by any chain");
        }
    }

    // Progress: the per-channel window is at least the old global
    // window for every shard.
    #[test]
    fn window_end_dominates_the_global_window(
        n in 2u32..=6,
        entries in collection::vec(1u64..=1_000, 36..37),
        mins in collection::vec(0u64..=10_000, 6..7),
    ) {
        let la = matrix(n, &entries);
        let mins = &mins[..n as usize];
        let global = global_window(mins, &la);
        for dst in 0..n as usize {
            let wend = la.window_end(mins, dst);
            prop_assert!(
                wend >= global,
                "dst {dst}: per-channel window {wend} below global window {global}"
            );
        }
    }

    // A uniform matrix collapses to the global behavior plus the
    // self round trip: `window_end(dst) = min(min over src≠dst of
    // mins[src] + d, mins[dst] + 2d)`.
    #[test]
    fn uniform_matrix_reduces_to_global(
        n in 2u32..=6,
        d in 1u64..=1_000,
        mins in collection::vec(0u64..=10_000, 6..7),
    ) {
        let la = Lookahead::uniform(n, SimDuration(d));
        let mins = &mins[..n as usize];
        for dst in 0..n as usize {
            let others = mins
                .iter()
                .enumerate()
                .filter(|&(s, _)| s != dst)
                .map(|(_, &m)| m)
                .min()
                .unwrap();
            let expect = (others + d).min(mins[dst] + 2 * d);
            prop_assert_eq!(la.window_end(mins, dst), expect);
        }
    }

    // The commit bound is, by construction, next round's window end:
    // evaluating `window_end` over the vector of this round's window
    // ends reproduces it exactly. And whenever the published minimums
    // are protocol-consistent (no shard's window end sits below its
    // own published minimum), the commit bound dominates the window
    // end — the speculation interval `[wend, commit_bound)` is never
    // inverted.
    #[test]
    fn commit_bound_is_next_windows_end(
        n in 2u32..=6,
        entries in collection::vec(1u64..=1_000, 36..37),
        mins in collection::vec(0u64..=10_000, 6..7),
    ) {
        let la = matrix(n, &entries);
        let mins = &mins[..n as usize];
        let wends: Vec<u64> = (0..n as usize).map(|s| la.window_end(mins, s)).collect();
        for dst in 0..n as usize {
            prop_assert_eq!(la.commit_bound(mins, dst), la.window_end(&wends, dst));
        }
        if wends.iter().zip(mins).all(|(&w, &m)| w >= m) {
            for dst in 0..n as usize {
                prop_assert!(la.commit_bound(mins, dst) >= la.window_end(mins, dst));
            }
        }
    }

    // Monotonicity: raising any one published minimum never narrows
    // any shard's window (the barrier protocol depends on windows
    // only ever moving forward as minimums advance).
    #[test]
    fn window_end_is_monotone_in_the_minimums(
        n in 2u32..=6,
        entries in collection::vec(1u64..=1_000, 36..37),
        mins in collection::vec(0u64..=10_000, 6..7),
        bump_at in 0usize..6,
        bump in 1u64..=5_000,
    ) {
        let la = matrix(n, &entries);
        let mins = &mins[..n as usize];
        let mut bumped = mins.to_vec();
        let i = bump_at % n as usize;
        bumped[i] += bump;
        for dst in 0..n as usize {
            prop_assert!(
                la.window_end(&bumped, dst) >= la.window_end(mins, dst),
                "raising min[{i}] narrowed dst {dst}'s window"
            );
        }
    }
}

/// A `u64::MAX` entry declares "this pair never exchanges events" and
/// drops the channel from the window computation: with every other
/// channel saturated, the one live channel alone bounds the window.
#[test]
fn saturated_channels_drop_out_of_the_window() {
    let la = Lookahead::from_fn(3, |src, dst| {
        if src == 0 && dst == 2 {
            SimDuration(7)
        } else {
            SimDuration(u64::MAX)
        }
    });
    let mins = [10u64, 1, 1];
    assert_eq!(la.window_end(&mins, 2), 17);
    assert_eq!(la.window_end(&mins, 1), u64::MAX);
}

/// A concrete witness that per-channel lookahead is a *strict*
/// improvement: with one slow channel into shard 0 and fast channels
/// everywhere else, shard 1's window runs well past the old global
/// bound.
#[test]
fn asymmetric_matrix_strictly_widens_some_window() {
    let la = Lookahead::from_fn(2, |src, _| SimDuration(if src == 0 { 1 } else { 100 }));
    let mins = [50u64, 50];
    let global = global_window(&mins, &la);
    assert_eq!(global, 51);
    assert_eq!(la.window_end(&mins, 0), 150); // fed only by the slow channel
    assert!(la.window_end(&mins, 0) > global);
}

// ---------------------------------------------------------------------
// End-to-end: shard-count and speculation invariance over random
// token workloads
// ---------------------------------------------------------------------

/// A token-passing world: each token logs its arrival and forwards to
/// the next rank exactly one global-minimum lookahead later — the
/// window edge, the worst case for speculation. Identical to the unit
/// suite's ping world but driven with random token placement here.
#[derive(Clone)]
struct TokenWorld {
    part: Partition,
    base: u32,
    seqs: Vec<u64>,
    log: Vec<(u64, u32)>,
}

#[derive(Clone)]
struct Token {
    rank: u32,
    hops_left: u32,
}

impl ShardWorld for TokenWorld {
    type Event = Token;
    fn handle(&mut self, ctx: &mut ShardCtx<'_, Token>, ev: Token) {
        self.log.push((ctx.now().0, ev.rank));
        if ev.hops_left == 0 {
            return;
        }
        let next = (ev.rank + 1) % self.part.hosts;
        let seq = &mut self.seqs[(ev.rank - self.base) as usize];
        *seq += 1;
        let key = ((ev.rank as u64) << 32) | *seq;
        let at = SimTime(ctx.now().0 + ctx.lookahead().0);
        ctx.send(
            self.part.shard_of(next),
            at,
            key,
            Token { rank: next, hops_left: ev.hops_left - 1 },
        );
    }
}

/// Run `hosts` ranks split over `nshards`, seeding a token at every
/// rank whose bit is set in `mask`, and return the merged event log
/// sorted by `(time, rank)`.
fn run_tokens(hosts: u32, nshards: u32, mask: u16, hops: u32, spec: bool) -> Vec<(u64, u32)> {
    let part = Partition::block(hosts, nshards);
    let worlds: Vec<TokenWorld> = (0..part.nshards)
        .map(|sh| {
            let ranks = part.ranks_of(sh);
            TokenWorld {
                part,
                base: ranks.start,
                seqs: ranks.map(|_| 0).collect(),
                log: Vec::new(),
            }
        })
        .collect();
    let mut sim = ShardSim::uniform(worlds, SimDuration(3));
    for r in 0..hosts {
        if mask & (1 << (r % 16)) != 0 {
            sim.schedule(
                part.shard_of(r),
                SimTime(r as u64),
                (r as u64) << 32,
                Token { rank: r, hops_left: hops },
            );
        }
    }
    if spec {
        sim.run_spec(false, None);
    } else {
        sim.run(false, None);
    }
    let mut log: Vec<(u64, u32)> = sim.worlds().flat_map(|w| w.log.iter().copied()).collect();
    log.sort_unstable();
    log
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // The ground truth: 1-shard conservative execution. Every shard
    // count, with and without speculation, must reproduce its event
    // log bit for bit — even though every cross-shard send lands
    // exactly on the window edge.
    #[test]
    fn shard_count_and_speculation_invariance(
        hosts in 4u32..=12,
        mask in 1u16..=0xffff,
        hops in 1u32..=48,
    ) {
        // Guarantee at least one token lands inside `hosts` ranks.
        let mask = mask | 1;
        let reference = run_tokens(hosts, 1, mask, hops, false);
        prop_assert!(!reference.is_empty());
        for nshards in [1u32, 2, 3, 4] {
            for spec in [false, true] {
                let log = run_tokens(hosts, nshards, mask, hops, spec);
                prop_assert!(
                    log == reference,
                    "diverged at nshards={nshards} spec={spec}: {} events vs {}",
                    log.len(),
                    reference.len()
                );
            }
        }
    }
}

/// Regression: the case this suite's invariance proptest first
/// failed on. Tokens at ranks 0, 2 and 3 of a 5-host ring over 2
/// shards drive shard 1's queue empty mid-run; with the single-edge
/// window formula, shard 0 then saw a `u64::MAX` peer minimum,
/// computed an unbounded window, and drained events that its own
/// in-flight sends (relayed back through shard 1 at
/// `m0 + la[0][1] + la[1][0]`) were about to invalidate — tripping
/// the `remote event inside a drained window` assertion. The min-plus
/// closure's round-trip diagonal bounds the window correctly.
#[test]
fn idle_peer_round_trip_regression() {
    let reference = run_tokens(5, 1, 0xd, 5, false);
    for spec in [false, true] {
        for nshards in [2u32, 3] {
            assert_eq!(run_tokens(5, nshards, 0xd, 5, spec), reference, "nshards={nshards} spec={spec}");
        }
    }
}

/// Exhaustive sweep of small token configurations (thousands of
/// cases, ~15 s) on the nightly `--include-ignored` schedule; the
/// per-commit proptest above samples the same space.
#[test]
#[ignore]
fn exhaustive_small_configuration_sweep() {
    for hosts in 4u32..=12 {
        for nshards in [2u32, 3, 4] {
            for hops in 1u32..=20 {
                for mask in 1u16..64 {
                    let log = run_tokens(hosts, nshards, mask, hops, true);
                    let reference = run_tokens(hosts, 1, mask, hops, false);
                    assert_eq!(
                        log, reference,
                        "hosts={hosts} nshards={nshards} hops={hops} mask={mask:#x}"
                    );
                }
            }
        }
    }
}
