//! Determinism property suite for the calendar event queue.
//!
//! The queue contract is total: events come out ordered by `(time,
//! insertion sequence)`, bit-for-bit, no matter how the internals
//! bucket, spill, or rebuild. [`reference::HeapQueue`] — the original
//! binary-heap implementation — is the ordering oracle; every generated
//! schedule is driven through both queues in lockstep and any
//! divergence is a bug in the calendar machinery (the golden trace
//! files in `tests/golden/` then serve as the end-to-end check that the
//! engine built on top still produces byte-identical runs).
//!
//! Proptest-style without the dependency: a seeded [`SplitMix64`] walks
//! a matrix of seeds x workload shapes, and each failure message names
//! the (seed, shape, step) triple so a divergence replays exactly.

use polaris_simnet::event::{reference::HeapQueue, EventQueue};
use polaris_simnet::rng::SplitMix64;
use polaris_simnet::time::SimTime;

/// Workload shapes chosen to stress different queue internals.
#[derive(Clone, Copy, Debug)]
enum Shape {
    /// Uniform times over a wide range: wheel laps + far-heap spill.
    WideUniform,
    /// A handful of discrete deltas from the current time: the
    /// simulator's link-latency pattern, heavy on exact ties.
    QuantizedDeltas,
    /// Everything lands on very few distinct instants: giant same-tick
    /// batches, FIFO tie-break does all the ordering work.
    FewInstants,
    /// Times *before* the last popped time (the Scheduler clamps to
    /// `now`, but the queue must order any past push correctly too).
    PastClamped,
    /// Mixed magnitudes forcing rebuilds and horizon crossings.
    MixedMagnitude,
}

const SHAPES: [Shape; 5] = [
    Shape::WideUniform,
    Shape::QuantizedDeltas,
    Shape::FewInstants,
    Shape::PastClamped,
    Shape::MixedMagnitude,
];

fn gen_time(shape: Shape, rng: &mut SplitMix64, now: u64) -> u64 {
    match shape {
        Shape::WideUniform => rng.next_below(1 << 30),
        Shape::QuantizedDeltas => {
            let deltas = [0u64, 10_000, 25_000, 50_000, 100_000];
            now + deltas[rng.next_below(5) as usize]
        }
        Shape::FewInstants => rng.next_below(4) * 1_000_000,
        Shape::PastClamped => {
            // Half the pushes aim below `now`; the queue must slot them
            // ahead of everything later regardless of the cursor.
            if rng.chance(0.5) {
                now.saturating_sub(rng.next_below(100_000))
            } else {
                now + rng.next_below(100_000)
            }
        }
        Shape::MixedMagnitude => {
            let exp = rng.next_below(40);
            rng.next_below(1u64 << exp.max(1))
        }
    }
}

/// Drive both queues through an identical op sequence and assert
/// identical observable behaviour at every step.
fn lockstep(seed: u64, shape: Shape) {
    let mut cal: EventQueue<u64> = if seed.is_multiple_of(2) {
        EventQueue::new()
    } else {
        EventQueue::with_capacity(1 << (seed % 13) as usize)
    };
    let mut heap: HeapQueue<u64> = HeapQueue::new();
    let mut rng = SplitMix64::new(seed);
    let mut now = 0u64;
    for step in 0..4000u64 {
        let ctx = || format!("seed={seed} shape={shape:?} step={step}");
        if rng.next_below(4) < 3 {
            let t = gen_time(shape, &mut rng, now);
            cal.push(SimTime(t), step);
            heap.push(SimTime(t), step);
        } else {
            let a = cal.pop();
            let b = heap.pop();
            assert_eq!(a, b, "pop diverged at {}", ctx());
            if let Some((t, _)) = a {
                now = t.0;
            }
        }
        assert_eq!(cal.len(), heap.len(), "len diverged at {}", ctx());
    }
    // Drain fully; order must match to the last event.
    loop {
        assert_eq!(cal.peek_time(), heap.peek_time(), "peek diverged draining");
        let a = cal.pop();
        let b = heap.pop();
        assert_eq!(a, b, "drain diverged at seed={seed} shape={shape:?}");
        if a.is_none() {
            break;
        }
    }
}

#[test]
fn calendar_matches_heap_oracle_across_shapes_and_seeds() {
    for shape in SHAPES {
        for seed in 1..=8u64 {
            lockstep(seed * 0x9e37_79b9, shape);
        }
    }
}

/// `pop_at` is the engine's same-timestamp batch drain: popping with the
/// staged batch's time must yield exactly the events the oracle pops
/// while its head matches that time — including follow-ups pushed at
/// the instant being drained.
#[test]
fn pop_at_batch_drain_matches_oracle() {
    for seed in 1..=8u64 {
        let mut cal: EventQueue<u64> = EventQueue::new();
        let mut heap: HeapQueue<u64> = HeapQueue::new();
        let mut rng = SplitMix64::new(seed);
        let mut next_id = 0u64;
        for _ in 0..64 {
            let t = rng.next_below(50) * 1000;
            cal.push(SimTime(t), next_id);
            heap.push(SimTime(t), next_id);
            next_id += 1;
        }
        while let Some(t) = cal.peek_time() {
            assert_eq!(heap.peek_time(), Some(t));
            let mut drained = 0u32;
            while let Some((at, ev)) = cal.pop_at(t) {
                assert_eq!(at, t);
                let (ht, hev) = heap.pop().expect("oracle has the event");
                assert_eq!((ht, hev), (at, ev), "batch drain diverged seed={seed}");
                drained += 1;
                // A same-instant follow-up mid-drain must join this
                // batch, exactly like a handler scheduling for "now".
                if drained == 1 && rng.chance(0.5) {
                    cal.push(SimTime(t.0), next_id);
                    heap.push(SimTime(t.0), next_id);
                    next_id += 1;
                }
            }
            // The next pending event (if any) is strictly later.
            if let Some(nt) = cal.peek_time() {
                assert!(nt > t, "pop_at left same-time events behind");
            }
        }
        assert!(heap.pop().is_none(), "oracle has leftovers");
    }
}

/// Two identical interleaved runs must agree event-for-event — the
/// queue-level statement of the golden-trace byte-identity property.
#[test]
fn replay_is_bit_for_bit_identical() {
    let run = || {
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut rng = SplitMix64::new(42);
        let mut trace = Vec::new();
        let mut now = 0u64;
        for step in 0..3000u64 {
            if rng.next_below(3) < 2 {
                q.push(SimTime(gen_time(Shape::QuantizedDeltas, &mut rng, now), ), step);
            } else if let Some((t, ev)) = q.pop() {
                now = t.0;
                trace.push((t.0, ev));
            }
        }
        while let Some((t, ev)) = q.pop() {
            trace.push((t.0, ev));
        }
        trace
    };
    assert_eq!(run(), run());
}
