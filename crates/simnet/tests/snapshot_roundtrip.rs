//! Snapshot round-trip suite for the serving plane's checkpoint/restore
//! layer.
//!
//! Two contracts:
//!
//! * **Queue identity** — an [`EventQueue`] snapshot (including a trip
//!   through JSON) restores to a queue whose pop sequence, and whose
//!   behavior under further pushes, is bit-identical to the original.
//!   The calendar layout (wheel vs behind vs far, arena slot numbers)
//!   is deliberately *not* part of the contract; only the `(time, key)`
//!   total order is, and pops are a pure function of it.
//! * **Simulator identity** — `run`/`run_spec` interrupted at an
//!   arbitrary horizon, snapshotted, serialized to JSON, restored in a
//!   fresh simulator, and resumed, produces bit-identical model results
//!   to the uninterrupted run — across 1/2/4 shards and with
//!   speculation on or off.

use polaris_simnet::prelude::*;
use proptest::prelude::*;
use serde::{Deserialize, Serialize};

// ---------------------------------------------------------------------
// Event-queue snapshot round trip
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Build a queue with traffic spread across the calendar's wheel,
    // behind-heap, and far-heap; drain part of it so `current` holds a
    // partially consumed batch; snapshot; round-trip the snapshot
    // through JSON; restore; then demand the original and the restored
    // queue agree on every remaining pop *and* on pops of events pushed
    // after the restore (same `next_seq` ⇒ same tie-break keys).
    #[test]
    fn queue_snapshot_restores_bit_identically(
        times in proptest::collection::vec(0u64..=50_000, 1..80),
        extra in proptest::collection::vec(0u64..=60_000, 0..16),
        drained in 0usize..32,
    ) {
        let mut q = EventQueue::with_capacity(8);
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime(t), i as u64);
        }
        for _ in 0..drained.min(times.len() / 2) {
            q.pop();
        }
        let snap = q.snapshot();
        prop_assert_eq!(snap.len(), q.len());

        let json = serde_json::to_string(&snap).expect("snapshot serializes");
        let back: QueueSnapshot<u64> = serde_json::from_str(&json).expect("snapshot parses");
        prop_assert_eq!(&back, &snap);

        let mut restored = EventQueue::from_snapshot(back);
        prop_assert_eq!(restored.len(), q.len());
        prop_assert_eq!(restored.scheduled_total(), q.scheduled_total());

        // Continued behavior must match too: both queues accept the
        // same post-restore pushes and interleave them identically.
        for (i, &t) in extra.iter().enumerate() {
            q.push(SimTime(t), (1 << 32) | i as u64);
            restored.push(SimTime(t), (1 << 32) | i as u64);
        }
        loop {
            let a = q.pop().map(|(t, e)| (t.0, e));
            let b = restored.pop().map(|(t, e)| (t.0, e));
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}

// ---------------------------------------------------------------------
// ShardSim checkpoint → JSON → restore → resume ≡ uninterrupted run
// ---------------------------------------------------------------------

/// Serde-friendly token-passing world: each token logs its arrival
/// (parallel `log_time`/`log_rank` vectors — the vendored serde shim
/// has no tuple impls) and forwards to the next rank exactly one
/// minimum-lookahead later, the window edge, which is the worst case
/// for both the conservative protocol and speculation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
struct SnapWorld {
    part: Partition,
    base: u32,
    /// Hop delay as a multiple of the channel lookahead: 1 puts every
    /// send exactly on the window edge (worst case, rollback-heavy);
    /// larger strides land sends well inside peers' windows
    /// (commit-heavy).
    stride: u64,
    seqs: Vec<u64>,
    log_time: Vec<u64>,
    log_rank: Vec<u32>,
}

#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
struct Token {
    rank: u32,
    hops_left: u32,
}

impl ShardWorld for SnapWorld {
    type Event = Token;
    fn handle(&mut self, ctx: &mut ShardCtx<'_, Token>, ev: Token) {
        self.log_time.push(ctx.now().0);
        self.log_rank.push(ev.rank);
        if ev.hops_left == 0 {
            return;
        }
        let next = (ev.rank + 1) % self.part.hosts;
        let seq = &mut self.seqs[(ev.rank - self.base) as usize];
        *seq += 1;
        let key = ((ev.rank as u64) << 32) | *seq;
        let at = SimTime(ctx.now().0 + self.stride * ctx.lookahead().0);
        ctx.send(
            self.part.shard_of(next),
            at,
            key,
            Token { rank: next, hops_left: ev.hops_left - 1 },
        );
    }
}

fn fresh_sim_stride(
    hosts: u32,
    nshards: u32,
    stride: u64,
) -> (Partition, ShardSim<SnapWorld>) {
    let part = Partition::block(hosts, nshards);
    let worlds: Vec<SnapWorld> = (0..part.nshards)
        .map(|sh| {
            let ranks = part.ranks_of(sh);
            SnapWorld {
                part,
                base: ranks.start,
                stride,
                seqs: ranks.map(|_| 0).collect(),
                log_time: Vec::new(),
                log_rank: Vec::new(),
            }
        })
        .collect();
    let sim = ShardSim::uniform(worlds, SimDuration(3));
    (part, sim)
}

fn fresh_sim(hosts: u32, nshards: u32) -> (Partition, ShardSim<SnapWorld>) {
    fresh_sim_stride(hosts, nshards, 1)
}

fn seed_tokens(sim: &mut ShardSim<SnapWorld>, part: Partition, mask: u16, hops: u32) {
    for r in 0..part.hosts {
        if mask & (1 << (r % 16)) != 0 {
            sim.schedule(
                part.shard_of(r),
                SimTime(r as u64),
                (r as u64) << 32,
                Token { rank: r, hops_left: hops },
            );
        }
    }
}

/// Merged event log sorted by `(time, rank)` — the model result the
/// bit-identity contract is stated over.
fn logs(sim: &ShardSim<SnapWorld>) -> Vec<(u64, u32)> {
    let mut log: Vec<(u64, u32)> = sim
        .worlds()
        .flat_map(|w| w.log_time.iter().copied().zip(w.log_rank.iter().copied()))
        .collect();
    log.sort_unstable();
    log
}

fn drive(sim: &mut ShardSim<SnapWorld>, spec: bool, horizon: Option<SimTime>) {
    if spec {
        sim.run_spec(false, horizon);
    } else {
        sim.run(false, horizon);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // The tentpole contract: interrupt at a horizon, snapshot, push
    // the snapshot through JSON, restore into a fresh simulator,
    // resume to completion — and get the exact event log the
    // uninterrupted run produces, at every shard count, with and
    // without speculation on either side of the cut.
    #[test]
    fn split_run_restored_from_json_matches_uninterrupted(
        hosts in 4u32..=10,
        mask in 1u16..=0xffff,
        hops in 4u32..=40,
        cut in 1u64..=120,
        spec_sel in 0u32..=3,
    ) {
        let mask = mask | 1;
        let (spec_before, spec_after) = (spec_sel & 1 != 0, spec_sel & 2 != 0);
        let (part, mut reference) = fresh_sim(hosts, 1);
        seed_tokens(&mut reference, part, mask, hops);
        drive(&mut reference, false, None);
        let want = logs(&reference);
        prop_assert!(!want.is_empty());

        for nshards in [1u32, 2, 4] {
            let (part, mut sim) = fresh_sim(hosts, nshards);
            seed_tokens(&mut sim, part, mask, hops);
            drive(&mut sim, spec_before, Some(SimTime(cut)));

            let snap = sim.snapshot();
            let json = serde_json::to_string(&snap).expect("snapshot serializes");
            let back: ShardSnapshot<SnapWorld> =
                serde_json::from_str(&json).expect("snapshot parses");
            let mut restored = back.restore();

            drive(&mut restored, spec_after, None);
            prop_assert!(
                logs(&restored) == want,
                "diverged at nshards={nshards} cut={cut} spec=({spec_before},{spec_after})"
            );
        }
    }
}

/// A chain of checkpoints: snapshot/restore at several successive
/// horizons (each resume from a *restored* simulator), ending with a
/// full drain — still bit-identical. Pinned seeds, no randomness.
#[test]
fn chained_checkpoints_stay_bit_identical() {
    let (part, mut reference) = fresh_sim(9, 1);
    seed_tokens(&mut reference, part, 0x2d7, 36);
    reference.run(false, None);
    let want = logs(&reference);
    assert!(!want.is_empty());

    for nshards in [1u32, 2, 4] {
        for spec in [false, true] {
            let (part, mut sim) = fresh_sim(9, nshards);
            seed_tokens(&mut sim, part, 0x2d7, 36);
            for cut in [5u64, 17, 40, 77] {
                drive(&mut sim, spec, Some(SimTime(cut)));
                let json = serde_json::to_string(&sim.snapshot()).expect("serializes");
                let back: ShardSnapshot<SnapWorld> =
                    serde_json::from_str(&json).expect("parses");
                sim = back.restore();
            }
            drive(&mut sim, spec, None);
            assert_eq!(logs(&sim), want, "nshards={nshards} spec={spec}");
        }
    }
}

/// A snapshot taken mid-stream still carries committed-but-undelivered
/// speculative sends (`deferred`): force that path explicitly by
/// cutting a speculative multi-shard run at many horizons and checking
/// each restore. (If `deferred` were dropped, tokens would vanish and
/// the log would shrink.)
#[test]
fn deferred_sends_survive_the_snapshot() {
    let (part, mut reference) = fresh_sim(8, 1);
    seed_tokens(&mut reference, part, 0xff, 30);
    reference.run(false, None);
    let want = logs(&reference);

    for cut in 1u64..=60 {
        let (part, mut sim) = fresh_sim(8, 4);
        seed_tokens(&mut sim, part, 0xff, 30);
        sim.run_spec(false, Some(SimTime(cut)));
        let mut restored = sim.snapshot().restore();
        restored.run_spec(false, None);
        assert_eq!(logs(&restored), want, "cut={cut}");
    }
}

// ---------------------------------------------------------------------
// Adaptive speculation depth (satellite): pinned deterministic test
// ---------------------------------------------------------------------

/// The AIMD speculation depth is a pure function of the commit/rollback
/// sequence, so two identical serial runs report identical final
/// depths — a window-edge workload (rollbacks dominate) drives the
/// depth *down* toward its floor of 8, a relaxed-stride workload
/// (commits dominate) drives it *up* past its initial 64, and the cap
/// keeps every trajectory within [8, 4096].
#[test]
fn adaptive_speculation_depth_is_deterministic_and_adapts() {
    let run_depths = |nshards: u32, stride: u64, mask: u16, hops: u32| {
        let (part, mut sim) = fresh_sim_stride(10, nshards, stride);
        seed_tokens(&mut sim, part, mask, hops);
        let stats = sim.run_spec(false, None);
        stats.spec_final_depth
    };

    // Determinism: bit-equal depth vectors run to run, both regimes.
    let edge = run_depths(4, 1, 0x3ff, 48);
    assert_eq!(edge, run_depths(4, 1, 0x3ff, 48), "depth adaptation must be deterministic");
    let relaxed = run_depths(4, 7, 0x3ff, 48);
    assert_eq!(relaxed, run_depths(4, 7, 0x3ff, 48), "depth adaptation must be deterministic");
    assert_eq!((edge.len(), relaxed.len()), (4, 4));
    for d in edge.iter().chain(&relaxed) {
        assert!((8..=4096).contains(d), "depth {d} out of AIMD range");
    }

    // Window-edge sends invalidate nearly every speculative window, so
    // the halving path pulls at least one shard below the initial
    // depth; relaxed sends commit windows, so the doubling path pushes
    // at least one shard above it.
    assert!(edge.iter().any(|&d| d < 64), "edge workload never adapted down: {edge:?}");
    assert!(relaxed.iter().any(|&d| d > 64), "relaxed workload never adapted up: {relaxed:?}");

    // Single-shard runs never speculate: depth stays pinned at 64.
    assert_eq!(run_depths(1, 1, 0x3ff, 48), vec![64]);
}
