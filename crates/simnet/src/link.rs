//! Link and interconnect-generation models.
//!
//! A [`LinkModel`] captures the parameters that determine how long a
//! message occupies a wire: data bandwidth, per-hop latency (propagation
//! plus switch traversal), maximum transfer unit, per-packet header bytes,
//! and whether switches forward cut-through or store-and-forward.
//!
//! [`Generation`] provides presets for the interconnects the keynote names
//! as the present and future of commodity clusters circa 2002: Fast
//! Ethernet, Gigabit Ethernet, Myrinet-2000, InfiniBand 4x, and an optical
//! circuit switch. Figures are published-era ballpark values; the
//! experiments depend on their relative shape, not their third digit.

use crate::time::{SimDuration, SimTime, PS_PER_SEC};
use serde::{Deserialize, Serialize};

/// Physical/link-layer model of one interconnect technology.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkModel {
    /// Usable data bandwidth in bytes per second (after coding overhead).
    pub bandwidth_bps: u64,
    /// Per-hop latency: propagation plus switch pipeline, excluding
    /// serialization.
    pub hop_latency: SimDurationPs,
    /// Maximum payload bytes per packet.
    pub mtu: u32,
    /// Header + trailer bytes added to each packet on the wire.
    pub header_bytes: u32,
    /// Cut-through switches forward a packet after the header arrives;
    /// store-and-forward switches re-serialize the whole packet per hop.
    pub cut_through: bool,
}

/// Picosecond duration that serializes as a plain integer.
pub type SimDurationPs = u64;

/// The interconnect generations discussed in the keynote.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Generation {
    /// 100 Mb/s switched Fast Ethernet, the baseline Beowulf fabric.
    FastEthernet,
    /// 1 Gb/s Ethernet, the 2002 commodity upgrade path.
    GigabitEthernet,
    /// Myrinet-2000: 2 Gb/s, cut-through, source-routed.
    Myrinet2000,
    /// InfiniBand 4x: 10 Gb/s signalling, 8 Gb/s data.
    InfiniBand4x,
    /// Forward-looking optical circuit switching (see `circuit.rs` for the
    /// setup/teardown model; this entry models the established circuit).
    Optical,
}

impl Generation {
    pub const ALL: [Generation; 5] = [
        Generation::FastEthernet,
        Generation::GigabitEthernet,
        Generation::Myrinet2000,
        Generation::InfiniBand4x,
        Generation::Optical,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Generation::FastEthernet => "fast-ethernet",
            Generation::GigabitEthernet => "gigabit-ethernet",
            Generation::Myrinet2000 => "myrinet-2000",
            Generation::InfiniBand4x => "infiniband-4x",
            Generation::Optical => "optical",
        }
    }

    pub fn link_model(self) -> LinkModel {
        match self {
            Generation::FastEthernet => LinkModel {
                bandwidth_bps: 12_500_000, // 100 Mb/s
                hop_latency: SimDuration::from_us(10).as_ps(),
                mtu: 1500,
                header_bytes: 38, // Ethernet framing + IFG equivalent
                cut_through: false,
            },
            Generation::GigabitEthernet => LinkModel {
                bandwidth_bps: 125_000_000, // 1 Gb/s
                hop_latency: SimDuration::from_us(3).as_ps(),
                mtu: 1500,
                header_bytes: 38,
                cut_through: false,
            },
            Generation::Myrinet2000 => LinkModel {
                bandwidth_bps: 250_000_000, // 2 Gb/s
                hop_latency: SimDuration::from_ns(400).as_ps(),
                mtu: 4096,
                header_bytes: 16,
                cut_through: true,
            },
            Generation::InfiniBand4x => LinkModel {
                bandwidth_bps: 1_000_000_000, // 8 Gb/s data rate
                hop_latency: SimDuration::from_ns(200).as_ps(),
                mtu: 2048,
                header_bytes: 30, // LRH+BTH+ICRC+VCRC
                cut_through: true,
            },
            Generation::Optical => LinkModel {
                bandwidth_bps: 5_000_000_000, // 40 Gb/s
                hop_latency: SimDuration::from_ns(50).as_ps(),
                mtu: 65536,
                header_bytes: 8,
                cut_through: true,
            },
        }
    }
}

impl LinkModel {
    /// Picoseconds to serialize one byte onto the wire.
    #[inline]
    pub fn ps_per_byte(&self) -> f64 {
        PS_PER_SEC as f64 / self.bandwidth_bps as f64
    }

    /// Time to serialize `wire_bytes` bytes (headers included by caller).
    #[inline]
    pub fn serialize(&self, wire_bytes: u64) -> SimDuration {
        SimDuration::from_ps((wire_bytes as f64 * self.ps_per_byte()).round() as u64)
    }

    /// Number of packets a payload of `bytes` occupies.
    pub fn packets_for(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            1 // a zero-length message still sends one packet
        } else {
            bytes.div_ceil(self.mtu as u64)
        }
    }

    /// Total bytes on the wire for a payload, including per-packet headers.
    pub fn wire_bytes(&self, bytes: u64) -> u64 {
        bytes + self.packets_for(bytes) * self.header_bytes as u64
    }

    /// Time to serialize an entire payload (all packets, with headers).
    pub fn serialize_payload(&self, bytes: u64) -> SimDuration {
        self.serialize(self.wire_bytes(bytes))
    }

    /// End-to-end time for a message of `bytes` over `hops` links of this
    /// model with no contention.
    ///
    /// Cut-through: hops pipeline; the tail arrives one full serialization
    /// plus `hops` hop-latencies after injection. Store-and-forward: each
    /// hop re-serializes, but successive packets pipeline across hops, so
    /// the total is `hops` serializations of one packet plus one
    /// serialization of the remaining packets.
    pub fn message_time(&self, bytes: u64, hops: u32) -> SimDuration {
        let hops = hops.max(1) as u64;
        let total_ser = self.serialize_payload(bytes);
        let lat = SimDuration::from_ps(self.hop_latency).saturating_mul(hops);
        if self.cut_through {
            total_ser + lat
        } else {
            let npkts = self.packets_for(bytes);
            let last_pkt_payload = if bytes == 0 {
                0
            } else {
                bytes - (npkts - 1) * self.mtu as u64
            };
            // First (npkts-1) packets pipeline: pay their serialization once.
            let lead = self.serialize(
                (npkts - 1) * (self.mtu as u64 + self.header_bytes as u64),
            );
            // The last packet is re-serialized at every hop.
            let tail = self
                .serialize(last_pkt_payload + self.header_bytes as u64)
                .saturating_mul(hops);
            lead + tail + lat
        }
    }

    /// Effective bandwidth (payload bytes / message time) for a given size
    /// and hop count, in bytes per second.
    pub fn effective_bandwidth(&self, bytes: u64, hops: u32) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        let t = self.message_time(bytes, hops).as_secs();
        bytes as f64 / t
    }

    /// Convenience: half round-trip time for a minimal message, the
    /// canonical "latency" number.
    pub fn min_latency(&self, hops: u32) -> SimDuration {
        self.message_time(8, hops)
    }
}

/// Identifier for a directed link inside a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub u32);

/// Per-link occupancy state used by the flow-level contention model.
#[derive(Debug, Clone, Default)]
pub struct LinkState {
    /// Time at which the link next becomes free.
    pub busy_until: SimTime,
    /// Total bytes carried (payload + headers).
    pub bytes_carried: u64,
    /// Total time the link has spent busy.
    pub busy_time: SimDuration,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_bandwidth_ordering() {
        let bw: Vec<u64> = Generation::ALL
            .iter()
            .map(|g| g.link_model().bandwidth_bps)
            .collect();
        assert!(bw.windows(2).all(|w| w[0] < w[1]), "generations must be ordered slowest to fastest: {bw:?}");
    }

    #[test]
    fn generation_latency_ordering() {
        let lat: Vec<u64> = Generation::ALL
            .iter()
            .map(|g| g.link_model().hop_latency)
            .collect();
        assert!(lat.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn serialization_scales_linearly() {
        let m = Generation::GigabitEthernet.link_model();
        let t1 = m.serialize(1000).as_ps();
        let t2 = m.serialize(2000).as_ps();
        assert!((t2 as i64 - 2 * t1 as i64).abs() <= 1);
        // 1000 bytes at 125 MB/s = 8 us.
        assert!((m.serialize(1000).as_us() - 8.0).abs() < 0.001);
    }

    #[test]
    fn packets_and_wire_bytes() {
        let m = Generation::GigabitEthernet.link_model();
        assert_eq!(m.packets_for(0), 1);
        assert_eq!(m.packets_for(1), 1);
        assert_eq!(m.packets_for(1500), 1);
        assert_eq!(m.packets_for(1501), 2);
        assert_eq!(m.wire_bytes(1500), 1500 + 38);
        assert_eq!(m.wire_bytes(3000), 3000 + 2 * 38);
    }

    #[test]
    fn cut_through_beats_store_and_forward_over_hops() {
        let myri = Generation::Myrinet2000.link_model();
        let mut sf = myri;
        sf.cut_through = false;
        let bytes = 4096;
        let ct_time = myri.message_time(bytes, 5);
        let sf_time = sf.message_time(bytes, 5);
        assert!(ct_time < sf_time, "{ct_time} !< {sf_time}");
    }

    #[test]
    fn message_time_monotone_in_size_and_hops() {
        for g in Generation::ALL {
            let m = g.link_model();
            let mut prev = SimDuration::ZERO;
            for bytes in [0u64, 8, 64, 1024, 65536, 1 << 20] {
                let t = m.message_time(bytes, 3);
                assert!(t >= prev, "{g:?} not monotone in size");
                prev = t;
            }
            assert!(m.message_time(1024, 5) >= m.message_time(1024, 1));
        }
    }

    #[test]
    fn effective_bandwidth_approaches_link_rate() {
        let ib = Generation::InfiniBand4x.link_model();
        let eff = ib.effective_bandwidth(16 << 20, 1);
        let frac = eff / ib.bandwidth_bps as f64;
        assert!(frac > 0.9 && frac <= 1.0, "eff frac = {frac}");
    }

    #[test]
    fn small_message_latency_dominated_by_hop_latency() {
        let fe = Generation::FastEthernet.link_model();
        // One hop of 10us dominates 8B serialization (~3.7us incl header).
        let lat = fe.min_latency(1);
        assert!(lat.as_us() > 10.0 && lat.as_us() < 20.0, "{lat}");
    }

    #[test]
    fn zero_hops_treated_as_one() {
        let m = Generation::InfiniBand4x.link_model();
        assert_eq!(m.message_time(100, 0), m.message_time(100, 1));
    }
}
