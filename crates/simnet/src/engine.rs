//! The discrete-event simulation engine.
//!
//! The engine is deliberately minimal: a clock, an event queue, and a
//! dispatch loop. Model state lives in a user-supplied [`World`]; the
//! engine hands each event to `World::handle` together with a
//! [`Scheduler`] through which the handler may schedule further events.
//! Keeping the world outside the engine sidesteps borrow conflicts between
//! "the thing being simulated" and "the queue of things to do to it".
//!
//! The dispatch loop inherits the arena/structure-of-arrays layout of
//! [`EventQueue`] for free: calendar buckets hold small `Copy` handles
//! (time, key, arena slot) while payloads stay put in a slab, so the
//! hot pop-compare-dispatch path walks densely packed keys instead of
//! dragging whole events through the cache (see `crate::event`).

use crate::event::EventQueue;
use crate::time::{SimDuration, SimTime};

/// Scheduling interface handed to event handlers.
pub struct Scheduler<E> {
    now: SimTime,
    queue: EventQueue<E>,
}

impl<E> Scheduler<E> {
    pub fn new() -> Self {
        Scheduler {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
        }
    }

    /// Pre-size the event queue for an expected live population of
    /// `capacity` concurrent events (e.g. one per rank, or one per link).
    pub fn with_capacity(capacity: usize) -> Self {
        Scheduler {
            now: SimTime::ZERO,
            queue: EventQueue::with_capacity(capacity),
        }
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule an event at an absolute time. Scheduling in the past is a
    /// model bug; the event is clamped to `now` and would fire next, which
    /// keeps the clock monotone, but debug builds assert.
    pub fn at(&mut self, time: SimTime, event: E) {
        debug_assert!(time >= self.now, "event scheduled in the past");
        self.queue.push(time.max(self.now), event);
    }

    /// Schedule an event `delay` after the current time.
    pub fn after(&mut self, delay: SimDuration, event: E) {
        self.queue.push(self.now + delay, event);
    }

    /// Schedule an event to run at the current time, after all events
    /// already queued for this instant.
    pub fn immediately(&mut self, event: E) {
        self.queue.push(self.now, event);
    }

    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// Model state driven by the engine.
pub trait World {
    type Event;
    /// Handle one event at the scheduler's current time.
    fn handle(&mut self, sched: &mut Scheduler<Self::Event>, event: Self::Event);
}

/// Outcome of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunStats {
    /// Events dispatched during the run.
    pub events_dispatched: u64,
    /// Simulated time when the run stopped.
    pub end_time: SimTime,
    /// True if the run stopped because the horizon was reached while
    /// events were still pending.
    pub horizon_reached: bool,
}

/// Drive `world` until the queue drains or `horizon` (if given) is passed.
///
/// Events scheduled exactly at the horizon still run; the first event
/// strictly beyond it stops the run and stays queued.
pub fn run<W: World>(
    world: &mut W,
    sched: &mut Scheduler<W::Event>,
    horizon: Option<SimTime>,
) -> RunStats {
    let mut dispatched = 0u64;
    while let Some(next_time) = sched.queue.peek_time() {
        if let Some(h) = horizon {
            if next_time > h {
                sched.now = h;
                return RunStats {
                    events_dispatched: dispatched,
                    end_time: h,
                    horizon_reached: true,
                };
            }
        }
        // Batch-drain every event at this instant: same-time events
        // can't cross the horizon, so the check above runs once per
        // distinct timestamp rather than once per event. Follow-ups a
        // handler schedules for "now" join the same drain.
        while let Some((time, event)) = sched.queue.pop_at(next_time) {
            debug_assert!(time >= sched.now, "clock must be monotone");
            sched.now = time;
            world.handle(sched, event);
            dispatched += 1;
        }
    }
    RunStats {
        events_dispatched: dispatched,
        end_time: sched.now,
        horizon_reached: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A world that counts down: each event schedules the next until zero.
    struct Countdown {
        fired: Vec<(u64, u32)>,
    }

    impl World for Countdown {
        type Event = u32;
        fn handle(&mut self, sched: &mut Scheduler<u32>, event: u32) {
            self.fired.push((sched.now().as_ps(), event));
            if event > 0 {
                sched.after(SimDuration::from_ps(10), event - 1);
            }
        }
    }

    #[test]
    fn chain_of_events_advances_clock() {
        let mut world = Countdown { fired: vec![] };
        let mut sched = Scheduler::new();
        sched.at(SimTime(5), 3u32);
        let stats = run(&mut world, &mut sched, None);
        assert_eq!(world.fired, vec![(5, 3), (15, 2), (25, 1), (35, 0)]);
        assert_eq!(stats.events_dispatched, 4);
        assert_eq!(stats.end_time, SimTime(35));
        assert!(!stats.horizon_reached);
    }

    #[test]
    fn horizon_stops_run_and_preserves_queue() {
        let mut world = Countdown { fired: vec![] };
        let mut sched = Scheduler::new();
        sched.at(SimTime(0), 10u32);
        let stats = run(&mut world, &mut sched, Some(SimTime(25)));
        assert!(stats.horizon_reached);
        assert_eq!(stats.end_time, SimTime(25));
        // Events at t=0,10,20 ran; t=30 remains queued.
        assert_eq!(world.fired.len(), 3);
        assert_eq!(sched.pending(), 1);
        // Resuming with a later horizon continues where we left off.
        let stats2 = run(&mut world, &mut sched, None);
        assert!(!stats2.horizon_reached);
        assert!(world.fired.len() > 3);
    }

    #[test]
    fn event_at_horizon_still_fires() {
        let mut world = Countdown { fired: vec![] };
        let mut sched = Scheduler::new();
        sched.at(SimTime(25), 0u32);
        let stats = run(&mut world, &mut sched, Some(SimTime(25)));
        assert_eq!(world.fired, vec![(25, 0)]);
        assert!(!stats.horizon_reached);
    }

    #[test]
    fn immediately_runs_after_current_instant_events() {
        struct W {
            order: Vec<&'static str>,
        }
        impl World for W {
            type Event = &'static str;
            fn handle(&mut self, sched: &mut Scheduler<&'static str>, ev: &'static str) {
                self.order.push(ev);
                if ev == "first" {
                    sched.immediately("follow-up");
                }
            }
        }
        let mut w = W { order: vec![] };
        let mut sched = Scheduler::new();
        sched.at(SimTime(0), "first");
        sched.at(SimTime(0), "second");
        run(&mut w, &mut sched, None);
        assert_eq!(w.order, vec!["first", "second", "follow-up"]);
    }

    #[test]
    fn empty_queue_returns_immediately() {
        let mut world = Countdown { fired: vec![] };
        let mut sched = Scheduler::new();
        let stats = run(&mut world, &mut sched, None);
        assert_eq!(stats.events_dispatched, 0);
        assert_eq!(stats.end_time, SimTime::ZERO);
    }
}
