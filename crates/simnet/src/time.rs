//! Simulated time.
//!
//! Time is kept as an integer count of **picoseconds** so that link
//! serialization times for single bytes on multi-gigabit links are exactly
//! representable. A `u64` of picoseconds covers ~213 days of simulated
//! time, far beyond any experiment in this repository.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in picoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in picoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

pub const PS_PER_NS: u64 = 1_000;
pub const PS_PER_US: u64 = 1_000_000;
pub const PS_PER_MS: u64 = 1_000_000_000;
pub const PS_PER_SEC: u64 = 1_000_000_000_000;

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);
    /// Largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    #[inline]
    pub fn as_ps(self) -> u64 {
        self.0
    }

    #[inline]
    pub fn as_ns(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }

    #[inline]
    pub fn as_us(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    #[inline]
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / PS_PER_MS as f64
    }

    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / PS_PER_SEC as f64
    }

    /// Duration elapsed since `earlier`. Saturates at zero rather than
    /// panicking so callers comparing concurrent completions stay total.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    #[inline]
    pub fn from_ps(ps: u64) -> Self {
        SimDuration(ps)
    }

    #[inline]
    pub fn from_ns(ns: u64) -> Self {
        SimDuration(ns * PS_PER_NS)
    }

    #[inline]
    pub fn from_us(us: u64) -> Self {
        SimDuration(us * PS_PER_US)
    }

    #[inline]
    pub fn from_ms(ms: u64) -> Self {
        SimDuration(ms * PS_PER_MS)
    }

    #[inline]
    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * PS_PER_SEC)
    }

    /// Fractional seconds, rounding to the nearest picosecond. Negative
    /// inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * PS_PER_SEC as f64).round() as u64)
    }

    #[inline]
    pub fn as_ps(self) -> u64 {
        self.0
    }

    #[inline]
    pub fn as_ns(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }

    #[inline]
    pub fn as_us(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / PS_PER_SEC as f64
    }

    /// Scale by an integer factor, saturating on overflow.
    #[inline]
    pub fn saturating_mul(self, k: u64) -> Self {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, d: SimDuration) {
        self.0 = self.0.saturating_add(d.0);
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, other: SimDuration) {
        self.0 = self.0.saturating_add(other.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ps(self.0, f)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ps(self.0, f)
    }
}

fn fmt_ps(ps: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if ps >= PS_PER_SEC {
        write!(f, "{:.3}s", ps as f64 / PS_PER_SEC as f64)
    } else if ps >= PS_PER_MS {
        write!(f, "{:.3}ms", ps as f64 / PS_PER_MS as f64)
    } else if ps >= PS_PER_US {
        write!(f, "{:.3}us", ps as f64 / PS_PER_US as f64)
    } else if ps >= PS_PER_NS {
        write!(f, "{:.3}ns", ps as f64 / PS_PER_NS as f64)
    } else {
        write!(f, "{ps}ps")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(SimDuration::from_us(3).as_ps(), 3 * PS_PER_US);
        assert_eq!(SimDuration::from_ns(7).as_ps(), 7_000);
        assert_eq!(SimDuration::from_ms(2).as_ps(), 2 * PS_PER_MS);
        assert_eq!(SimDuration::from_secs(1).as_secs(), 1.0);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_us(5);
        assert_eq!(t.as_us(), 5.0);
        let t2 = t + SimDuration::from_us(10);
        assert_eq!(t2.since(t).as_us(), 10.0);
        // since() saturates rather than underflowing.
        assert_eq!(t.since(t2), SimDuration::ZERO);
    }

    #[test]
    fn saturating_behaviour() {
        let big = SimTime(u64::MAX - 10);
        assert_eq!(big + SimDuration::from_secs(1), SimTime::MAX);
        assert_eq!(
            SimDuration(u64::MAX).saturating_mul(2),
            SimDuration(u64::MAX)
        );
    }

    #[test]
    fn from_secs_f64_clamps_and_rounds() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1e-12), SimDuration(1));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_us(1).to_string(), "1.000us");
        assert_eq!(SimDuration(500).to_string(), "500ps");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn ordering_is_by_instant() {
        assert!(SimTime(1) < SimTime(2));
        assert!(SimDuration::from_ns(999) < SimDuration::from_us(1));
    }
}
