//! Typed errors for the simulator core.
//!
//! The engine and the packet-level models used to `expect()` their
//! internal invariants; under fault injection those invariants are
//! exactly the interesting place for a model bug to surface, so the hot
//! paths now report structured errors instead of tearing down the
//! process.

/// An invariant violation inside a simulation model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimError {
    /// An output port signalled transmission-complete while its queue
    /// was empty (packet accounting bug in the switch model).
    EmptyOutputQueue { port: u32 },
    /// A port index exceeded the configured port count.
    PortOutOfRange { port: u32, ports: u32 },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::EmptyOutputQueue { port } => {
                write!(f, "output port {port} completed with an empty queue")
            }
            SimError::PortOutOfRange { port, ports } => {
                write!(f, "port {port} out of range (switch has {ports} ports)")
            }
        }
    }
}

impl std::error::Error for SimError {}
