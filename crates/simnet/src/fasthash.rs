//! A fast, non-cryptographic hasher for simulation-internal maps.
//!
//! The standard library's default SipHash is a DoS defence the simulator
//! does not need: keys here are small integers (ranks, vertex ids) under
//! our own control, and the multiply-xor scheme below (the same family
//! as rustc's FxHash) is several times faster on the hot lookup paths
//! (topology link index, per-pair mailboxes).
//!
//! Determinism note: swapping the hasher never changes simulation
//! results — these maps are only ever used for keyed lookups, not
//! iterated, so hash order cannot leak into event order. Keep it that
//! way: if a map needs deterministic iteration, use `BTreeMap`.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-xor hasher (FxHash family). Not DoS-resistant; do not use
/// for keys an adversary controls.
#[derive(Default)]
pub struct FastHasher {
    hash: u64,
}

/// Knuth's 64-bit multiplicative-hash constant.
const K: u64 = 0x9e37_79b9_7f4a_7c15;

impl FastHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // Final avalanche so sequential keys spread across buckets.
        let h = self.hash ^ (self.hash >> 32);
        h.wrapping_mul(K)
    }
}

pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

/// `HashMap` keyed by trusted simulation ids with the fast hasher.
pub type FastHashMap<K, V> = HashMap<K, V, FastBuildHasher>;

/// `HashSet` companion to [`FastHashMap`].
pub type FastHashSet<K> = HashSet<K, FastBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrips() {
        let mut m: FastHashMap<(u32, u32), u64> = FastHashMap::default();
        for a in 0..50u32 {
            for b in 0..50u32 {
                m.insert((a, b), u64::from(a * 1000 + b));
            }
        }
        assert_eq!(m.len(), 2500);
        for a in 0..50u32 {
            for b in 0..50u32 {
                assert_eq!(m.get(&(a, b)), Some(&u64::from(a * 1000 + b)));
            }
        }
    }

    #[test]
    fn sequential_keys_spread() {
        // Adjacent integers must not collapse onto one bucket chain: the
        // low 7 bits of the finished hash should take many values.
        let mut low_bits = std::collections::BTreeSet::new();
        for k in 0..128u64 {
            let mut h = FastHasher::default();
            h.write_u64(k);
            low_bits.insert(h.finish() & 0x7f);
        }
        assert!(low_bits.len() > 64, "only {} distinct buckets", low_bits.len());
    }
}
