//! Deterministic fault injection: seeded, serializable schedules of
//! link and node failures.
//!
//! The keynote's thesis — clusters built from commodity parts — implies
//! commodity failure rates: lossy links, flapping switch ports, nodes
//! that vanish mid-job. This module turns those into a first-class,
//! replayable experiment input. A [`FaultPlan`] is a pure description
//! (seed + rules) that serializes to JSON; a [`FaultInjector`] is its
//! deterministic runtime, consulted once per transfer. Every injected
//! event is appended to a replay log, so two runs of the same plan over
//! the same traffic produce bit-identical fault histories — the
//! property the chaos tests assert.
//!
//! Fault kinds:
//!
//! - [`FaultKind::UniformDrop`] — i.i.d. Bernoulli loss per link
//!   traversal (the classic `drop_prob` knob, now per-scope).
//! - [`FaultKind::GilbertElliott`] — two-state burst-loss channel: a
//!   `Good`/`Bad` Markov chain stepped once per observed transfer, with
//!   separate loss probabilities per state. Models the correlated loss
//!   bursts real cables and congested switch ports exhibit.
//! - [`FaultKind::Corrupt`] — the payload arrives, but damaged; the
//!   NIC layer surfaces this as a CRC/ICRC check failure.
//! - [`FaultKind::Flap`] — periodic link down/up windows (a loose
//!   transceiver, a port being reset by its switch).
//! - [`FaultKind::Crash`] — fail-stop node death at an absolute
//!   simulation time; all traffic to or from the node is lost from
//!   that instant.
//!
//! ```
//! use polaris_simnet::prelude::*;
//!
//! let plan = FaultPlan::new(42)
//!     .uniform_drop(0.05)
//!     .corrupt(0.01)
//!     .crash_node(3, SimTime(1_000_000));
//! let json = plan.to_json();
//! assert_eq!(FaultPlan::from_json(&json).unwrap(), plan);
//! ```

use crate::link::LinkId;
use crate::rng::SplitMix64;
use crate::time::SimTime;
use polaris_obs::{Obs, Subject};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// What a fault rule applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultScope {
    /// Every link in the topology.
    AllLinks,
    /// A single link, by topology link index.
    Link(u32),
    /// A single node: `Crash` kills it; link-style kinds apply to every
    /// transfer whose source or destination is the node.
    Node(u32),
}

impl FaultScope {
    fn matches_link(&self, link: u32, src: u32, dst: u32) -> bool {
        match self {
            FaultScope::AllLinks => true,
            FaultScope::Link(l) => *l == link,
            FaultScope::Node(n) => *n == src || *n == dst,
        }
    }
}

/// One kind of injected misbehaviour. All probabilities are per link
/// traversal; all times are picoseconds of simulation time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Drop each traversal independently with probability `prob`.
    UniformDrop { prob: f64 },
    /// Gilbert–Elliott burst loss. The channel holds a `Good`/`Bad`
    /// state per (rule, link) pair and steps the chain once per
    /// observed transfer: from `Good` it moves to `Bad` with
    /// probability `p_good_bad` (and vice versa with `p_bad_good`),
    /// then drops with the current state's loss probability.
    GilbertElliott {
        p_good_bad: f64,
        p_bad_good: f64,
        drop_good: f64,
        drop_bad: f64,
    },
    /// Deliver the payload, but corrupted, with probability `prob`.
    Corrupt { prob: f64 },
    /// Periodic link flap: down for `down_ps`, up for `up_ps`,
    /// repeating, with the first outage starting at `first_down_ps`.
    Flap {
        first_down_ps: u64,
        down_ps: u64,
        up_ps: u64,
    },
    /// Fail-stop node crash at absolute time `at_ps`. Only meaningful
    /// with [`FaultScope::Node`].
    Crash { at_ps: u64 },
}

/// One scoped fault rule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultRule {
    pub scope: FaultScope,
    pub kind: FaultKind,
}

/// A seeded, serializable fault schedule: the complete description of
/// an experiment's injected failures. Two [`FaultInjector`]s built from
/// equal plans and shown the same transfer sequence make identical
/// decisions and produce identical [`FaultEvent`] logs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for the injector's deterministic random stream.
    pub seed: u64,
    /// Rules, evaluated in order for every transfer.
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan (no faults) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, rules: Vec::new() }
    }

    /// Add an arbitrary rule.
    pub fn rule(mut self, scope: FaultScope, kind: FaultKind) -> Self {
        self.rules.push(FaultRule { scope, kind });
        self
    }

    /// Uniform i.i.d. loss on every link.
    pub fn uniform_drop(self, prob: f64) -> Self {
        self.rule(FaultScope::AllLinks, FaultKind::UniformDrop { prob })
    }

    /// Gilbert–Elliott burst loss on every link.
    pub fn burst_drop(
        self,
        p_good_bad: f64,
        p_bad_good: f64,
        drop_good: f64,
        drop_bad: f64,
    ) -> Self {
        self.rule(
            FaultScope::AllLinks,
            FaultKind::GilbertElliott { p_good_bad, p_bad_good, drop_good, drop_bad },
        )
    }

    /// Payload corruption on every link.
    pub fn corrupt(self, prob: f64) -> Self {
        self.rule(FaultScope::AllLinks, FaultKind::Corrupt { prob })
    }

    /// Periodic down/up flapping on one link.
    pub fn flap_link(self, link: u32, first_down: SimTime, down: u64, up: u64) -> Self {
        self.rule(
            FaultScope::Link(link),
            FaultKind::Flap { first_down_ps: first_down.as_ps(), down_ps: down, up_ps: up },
        )
    }

    /// Fail-stop crash of `node` at time `at`.
    pub fn crash_node(self, node: u32, at: SimTime) -> Self {
        self.rule(FaultScope::Node(node), FaultKind::Crash { at_ps: at.as_ps() })
    }

    /// Periodic down/up flapping on every transfer touching `node` —
    /// a loose NIC transceiver rather than a bad switch port. The
    /// lifecycle control plane reads this back via
    /// [`FaultPlan::node_rules`] to drive heartbeat loss.
    pub fn flap_node(self, node: u32, first_down: SimTime, down: u64, up: u64) -> Self {
        self.rule(
            FaultScope::Node(node),
            FaultKind::Flap { first_down_ps: first_down.as_ps(), down_ps: down, up_ps: up },
        )
    }

    /// Gilbert–Elliott burst loss on every transfer touching `node`:
    /// the "degrade" churn primitive — the node stays up but its link
    /// quality collapses in bursts.
    pub fn degrade_node(
        self,
        node: u32,
        p_good_bad: f64,
        p_bad_good: f64,
        drop_good: f64,
        drop_bad: f64,
    ) -> Self {
        self.rule(
            FaultScope::Node(node),
            FaultKind::GilbertElliott { p_good_bad, p_bad_good, drop_good, drop_bad },
        )
    }

    /// The scheduled crash instant for `node`, if the plan contains
    /// one (the earliest, if several).
    pub fn crash_time(&self, node: u32) -> Option<SimTime> {
        self.rules
            .iter()
            .filter_map(|r| match (r.scope, r.kind) {
                (FaultScope::Node(n), FaultKind::Crash { at_ps }) if n == node => {
                    Some(SimTime(at_ps))
                }
                _ => None,
            })
            .min()
    }

    /// All rules scoped to `node`, in plan order.
    pub fn node_rules(&self, node: u32) -> impl Iterator<Item = &FaultRule> + '_ {
        self.rules
            .iter()
            .filter(move |r| matches!(r.scope, FaultScope::Node(n) if n == node))
    }

    /// The distinct node ids named by `Node`-scoped rules, ascending.
    pub fn disturbed_nodes(&self) -> Vec<u32> {
        let mut nodes: Vec<u32> = self
            .rules
            .iter()
            .filter_map(|r| match r.scope {
                FaultScope::Node(n) => Some(n),
                _ => None,
            })
            .collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }

    /// Serialize to JSON (stable field order; suitable for replay files).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("plan serialization is infallible")
    }

    /// Parse a plan back from [`FaultPlan::to_json`] output.
    pub fn from_json(s: &str) -> Result<Self, String> {
        serde_json::from_str(s).map_err(|e| e.to_string())
    }
}

/// Why a transfer was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DropCause {
    /// Uniform i.i.d. loss.
    Uniform,
    /// Gilbert–Elliott channel in (or entering) its bad state.
    Burst,
    /// The link was inside a flap's down window.
    LinkDown,
    /// Source or destination node had crashed.
    NodeCrash,
}

/// What the injector did to one transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultAction {
    Drop(DropCause),
    Corrupt,
}

/// One replay-log entry: an injected fault, with enough context to
/// reproduce and audit the decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Simulation time of the affected transfer, picoseconds.
    pub at_ps: u64,
    /// Source node of the transfer.
    pub src: u32,
    /// Destination node of the transfer.
    pub dst: u32,
    /// Link index the fault fired on (`u32::MAX` for node-level faults).
    pub link: u32,
    /// What happened.
    pub action: FaultAction,
}

/// The injector's verdict for a single transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultVerdict {
    /// Deliver untouched.
    Deliver,
    /// Deliver, but the payload is damaged in flight.
    DeliverCorrupted,
    /// The transfer is lost.
    Drop(DropCause),
}

/// Deterministic runtime for a [`FaultPlan`]: per-link channel state,
/// one seeded random stream, and the replay log. Consulted via
/// [`FaultInjector::judge`] once per transfer, in transfer order —
/// determinism holds whenever the presented transfer sequence is
/// identical, which the discrete-event executors guarantee.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: SplitMix64,
    /// Gilbert–Elliott state per (rule index, link): `true` = bad.
    ge_bad: HashMap<(usize, u32), bool>,
    log: Vec<FaultEvent>,
    obs: Option<Obs>,
}

/// Append `ev` to the replay log and, when an observability plane is
/// attached, mirror it into the metrics registry and flight recorder.
/// Free function so call sites inside `judge`'s rule loop don't need a
/// second `&mut self` borrow.
fn note_fault(obs: &Option<Obs>, log: &mut Vec<FaultEvent>, ev: FaultEvent) {
    if let Some(obs) = obs {
        let (action, name) = match ev.action {
            FaultAction::Drop(DropCause::Uniform) => ("drop_uniform", "fault_drop"),
            FaultAction::Drop(DropCause::Burst) => ("drop_burst", "fault_drop"),
            FaultAction::Drop(DropCause::LinkDown) => ("drop_linkdown", "fault_drop"),
            FaultAction::Drop(DropCause::NodeCrash) => ("drop_crash", "fault_drop"),
            FaultAction::Corrupt => ("corrupt", "fault_corrupt"),
        };
        obs.counter("sim_faults_total", &[("action", action)]).inc();
        let subject = if ev.link == u32::MAX {
            Subject::Node(ev.src)
        } else {
            Subject::Link(ev.link)
        };
        obs.instant(
            ev.at_ps,
            subject,
            name,
            &[("src", ev.src as u64), ("dst", ev.dst as u64)],
        );
    }
    log.push(ev);
}

impl FaultInjector {
    pub fn new(plan: FaultPlan) -> Self {
        let rng = SplitMix64::new(plan.seed);
        FaultInjector { plan, rng, ge_bad: HashMap::new(), log: Vec::new(), obs: None }
    }

    /// Attach an observability plane: every injected fault also bumps
    /// `sim_faults_total{action}` and records a trace instant.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = Some(obs);
    }

    /// The plan this injector was built from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The replay log of every fault injected so far.
    pub fn log(&self) -> &[FaultEvent] {
        &self.log
    }

    /// Whether `node` is crashed (per the plan's schedule) at `now`.
    pub fn node_crashed(&self, node: u32, now: SimTime) -> bool {
        self.plan.rules.iter().any(|r| {
            matches!(
                (r.scope, r.kind),
                (FaultScope::Node(n), FaultKind::Crash { at_ps })
                    if n == node && at_ps <= now.as_ps()
            )
        })
    }

    /// Discard accumulated channel state and the log, rewinding the
    /// injector to its initial (fresh-seed) state for a replay.
    pub fn reset(&mut self) {
        self.rng = SplitMix64::new(self.plan.seed);
        self.ge_bad.clear();
        self.log.clear();
    }

    /// Judge one transfer crossing `route` from `src` to `dst` at
    /// `now`. Rules are evaluated in plan order for each link along the
    /// route; the first drop wins, and corruption applies only if
    /// nothing dropped the transfer.
    pub fn judge(&mut self, now: SimTime, src: u32, dst: u32, route: &[LinkId]) -> FaultVerdict {
        // Node crashes dominate: a dead endpoint loses everything.
        for node in [src, dst] {
            if self.node_crashed(node, now) {
                note_fault(
                    &self.obs,
                    &mut self.log,
                    FaultEvent {
                        at_ps: now.as_ps(),
                        src,
                        dst,
                        link: u32::MAX,
                        action: FaultAction::Drop(DropCause::NodeCrash),
                    },
                );
                return FaultVerdict::Drop(DropCause::NodeCrash);
            }
        }
        let mut corrupted = false;
        for link in route {
            let link = link.0;
            for (ri, rule) in self.plan.rules.iter().enumerate() {
                if !rule.scope.matches_link(link, src, dst) {
                    continue;
                }
                let dropped = match rule.kind {
                    FaultKind::UniformDrop { prob } => {
                        self.rng.chance(prob).then_some(DropCause::Uniform)
                    }
                    FaultKind::GilbertElliott {
                        p_good_bad,
                        p_bad_good,
                        drop_good,
                        drop_bad,
                    } => {
                        let bad = self.ge_bad.entry((ri, link)).or_insert(false);
                        let flip = self.rng.chance(if *bad { p_bad_good } else { p_good_bad });
                        if flip {
                            *bad = !*bad;
                        }
                        let p = if *bad { drop_bad } else { drop_good };
                        self.rng.chance(p).then_some(DropCause::Burst)
                    }
                    FaultKind::Corrupt { prob } => {
                        if self.rng.chance(prob) {
                            corrupted = true;
                        }
                        None
                    }
                    FaultKind::Flap { first_down_ps, down_ps, up_ps } => {
                        let t = now.as_ps();
                        let period = down_ps + up_ps;
                        let down = t >= first_down_ps
                            && period > 0
                            && (t - first_down_ps) % period < down_ps;
                        down.then_some(DropCause::LinkDown)
                    }
                    // Crash handled above (scope is the node, not a link).
                    FaultKind::Crash { .. } => None,
                };
                if let Some(cause) = dropped {
                    note_fault(
                        &self.obs,
                        &mut self.log,
                        FaultEvent {
                            at_ps: now.as_ps(),
                            src,
                            dst,
                            link,
                            action: FaultAction::Drop(cause),
                        },
                    );
                    return FaultVerdict::Drop(cause);
                }
            }
        }
        if corrupted {
            // Attribute the corruption to the first link of the route
            // (the log needs one; the payload is equally damaged
            // wherever it happened).
            note_fault(
                &self.obs,
                &mut self.log,
                FaultEvent {
                    at_ps: now.as_ps(),
                    src,
                    dst,
                    link: route.first().map_or(u32::MAX, |l| l.0),
                    action: FaultAction::Corrupt,
                },
            );
            return FaultVerdict::DeliverCorrupted;
        }
        FaultVerdict::Deliver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn route(ids: &[u32]) -> Vec<LinkId> {
        ids.iter().map(|&i| LinkId(i)).collect()
    }

    #[test]
    fn plan_roundtrips_through_json() {
        let plan = FaultPlan::new(7)
            .uniform_drop(0.1)
            .burst_drop(0.05, 0.5, 0.001, 0.8)
            .corrupt(0.02)
            .flap_link(3, SimTime(1_000), 500, 1500)
            .crash_node(2, SimTime(9_999));
        let json = plan.to_json();
        let back = FaultPlan::from_json(&json).expect("parses");
        assert_eq!(back, plan);
    }

    #[test]
    fn same_plan_same_traffic_identical_log() {
        let plan = FaultPlan::new(11).uniform_drop(0.3).corrupt(0.1);
        let mut a = FaultInjector::new(plan.clone());
        let mut b = FaultInjector::new(plan);
        for i in 0..500u64 {
            let t = SimTime(i * 1_000);
            let va = a.judge(t, 0, 1, &route(&[0, 1]));
            let vb = b.judge(t, 0, 1, &route(&[0, 1]));
            assert_eq!(va, vb);
        }
        assert_eq!(a.log(), b.log());
        assert!(!a.log().is_empty());
    }

    #[test]
    fn reset_rewinds_to_initial_state() {
        let plan = FaultPlan::new(5).burst_drop(0.2, 0.2, 0.01, 0.9);
        let mut inj = FaultInjector::new(plan);
        let first: Vec<FaultVerdict> =
            (0..200).map(|i| inj.judge(SimTime(i), 0, 1, &route(&[0]))).collect();
        let log1 = inj.log().to_vec();
        inj.reset();
        let second: Vec<FaultVerdict> =
            (0..200).map(|i| inj.judge(SimTime(i), 0, 1, &route(&[0]))).collect();
        assert_eq!(first, second);
        assert_eq!(log1, inj.log());
    }

    #[test]
    fn crash_kills_traffic_in_both_directions_after_deadline() {
        let plan = FaultPlan::new(1).crash_node(2, SimTime(1_000));
        let mut inj = FaultInjector::new(plan);
        let r = route(&[0]);
        assert_eq!(inj.judge(SimTime(999), 0, 2, &r), FaultVerdict::Deliver);
        assert_eq!(
            inj.judge(SimTime(1_000), 0, 2, &r),
            FaultVerdict::Drop(DropCause::NodeCrash)
        );
        assert_eq!(
            inj.judge(SimTime(2_000), 2, 0, &r),
            FaultVerdict::Drop(DropCause::NodeCrash)
        );
        // Unrelated traffic is untouched.
        assert_eq!(inj.judge(SimTime(2_000), 0, 1, &r), FaultVerdict::Deliver);
        assert!(inj.node_crashed(2, SimTime(1_000)));
        assert!(!inj.node_crashed(2, SimTime(999)));
    }

    #[test]
    fn flap_windows_gate_exactly() {
        // Down at [100, 150), up at [150, 250), repeating every 150.
        let plan = FaultPlan::new(1).flap_link(4, SimTime(100), 50, 100);
        let mut inj = FaultInjector::new(plan);
        let r = route(&[4]);
        assert_eq!(inj.judge(SimTime(99), 0, 1, &r), FaultVerdict::Deliver);
        assert_eq!(
            inj.judge(SimTime(100), 0, 1, &r),
            FaultVerdict::Drop(DropCause::LinkDown)
        );
        assert_eq!(
            inj.judge(SimTime(149), 0, 1, &r),
            FaultVerdict::Drop(DropCause::LinkDown)
        );
        assert_eq!(inj.judge(SimTime(150), 0, 1, &r), FaultVerdict::Deliver);
        assert_eq!(inj.judge(SimTime(249), 0, 1, &r), FaultVerdict::Deliver);
        // Second outage window.
        assert_eq!(
            inj.judge(SimTime(250), 0, 1, &r),
            FaultVerdict::Drop(DropCause::LinkDown)
        );
        // A different link is unaffected.
        assert_eq!(inj.judge(SimTime(100), 0, 1, &route(&[5])), FaultVerdict::Deliver);
    }

    #[test]
    fn gilbert_elliott_bursts_cluster_losses() {
        // Rarely enter the bad state, but once there, drop nearly
        // everything and stay a while: losses should arrive in runs.
        let plan = FaultPlan::new(99).burst_drop(0.02, 0.2, 0.0, 0.95);
        let mut inj = FaultInjector::new(plan);
        let r = route(&[0]);
        let drops: Vec<bool> = (0..4000u64)
            .map(|i| {
                matches!(
                    inj.judge(SimTime(i * 10), 0, 1, &r),
                    FaultVerdict::Drop(DropCause::Burst)
                )
            })
            .collect();
        let total: usize = drops.iter().filter(|&&d| d).count();
        assert!(total > 50, "burst model should drop packets, got {total}");
        // Count runs of consecutive drops; bursty loss means the mean
        // run length is well above 1 (i.i.d. at the same rate gives
        // mean run length ~1/(1-p) which is near 1 for small p).
        let mut runs = 0usize;
        let mut prev = false;
        for &d in &drops {
            if d && !prev {
                runs += 1;
            }
            prev = d;
        }
        let mean_run = total as f64 / runs as f64;
        assert!(mean_run > 2.0, "expected bursty runs, mean run = {mean_run}");
    }

    #[test]
    fn node_scoped_plan_introspection() {
        let plan = FaultPlan::new(2)
            .crash_node(7, SimTime(5_000))
            .crash_node(7, SimTime(3_000))
            .flap_node(9, SimTime(100), 50, 150)
            .degrade_node(11, 0.02, 0.2, 0.0, 0.9)
            .uniform_drop(0.01);
        // Earliest crash wins; non-crashing nodes answer None.
        assert_eq!(plan.crash_time(7), Some(SimTime(3_000)));
        assert_eq!(plan.crash_time(9), None);
        assert_eq!(plan.disturbed_nodes(), vec![7, 9, 11]);
        assert_eq!(plan.node_rules(7).count(), 2);
        assert_eq!(plan.node_rules(9).count(), 1);
        assert!(matches!(
            plan.node_rules(9).next().unwrap().kind,
            FaultKind::Flap { first_down_ps: 100, down_ps: 50, up_ps: 150 }
        ));
        assert_eq!(plan.node_rules(1).count(), 0);
        // The AllLinks rule is not attributed to any node.
        assert!(!plan.disturbed_nodes().contains(&u32::MAX));
    }

    #[test]
    fn node_flap_and_degrade_judge_like_their_link_kin() {
        let plan = FaultPlan::new(4).flap_node(2, SimTime(100), 50, 100);
        let mut inj = FaultInjector::new(plan);
        let r = route(&[0]);
        // Transfers touching node 2 are gated by the flap window...
        assert_eq!(
            inj.judge(SimTime(120), 0, 2, &r),
            FaultVerdict::Drop(DropCause::LinkDown)
        );
        assert_eq!(inj.judge(SimTime(160), 2, 0, &r), FaultVerdict::Deliver);
        // ...while unrelated pairs pass untouched.
        assert_eq!(inj.judge(SimTime(120), 0, 1, &r), FaultVerdict::Deliver);
    }

    #[test]
    fn corruption_delivers_but_flags() {
        let plan = FaultPlan::new(3).corrupt(1.0);
        let mut inj = FaultInjector::new(plan);
        let v = inj.judge(SimTime(0), 0, 1, &route(&[0]));
        assert_eq!(v, FaultVerdict::DeliverCorrupted);
        assert_eq!(inj.log().len(), 1);
        assert_eq!(inj.log()[0].action, FaultAction::Corrupt);
    }

    #[test]
    fn drop_beats_corruption_when_both_fire() {
        let plan = FaultPlan::new(3).corrupt(1.0).uniform_drop(1.0);
        let mut inj = FaultInjector::new(plan);
        // Corrupt rule is first, but a later drop still loses the
        // transfer entirely (one event logged: the drop).
        let v = inj.judge(SimTime(0), 0, 1, &route(&[0]));
        assert_eq!(v, FaultVerdict::Drop(DropCause::Uniform));
    }
}
