//! Packet-level output-queued crossbar switch: the reference model.
//!
//! The flow-level model in `network.rs` approximates contention by
//! charging whole-message serialization against links. This module
//! simulates a single crossbar switch at packet granularity — input
//! serialization, switch traversal, per-output FIFO queueing — and is used
//! by tests to validate that the fast model's aggregate behaviour (fair
//! sharing, saturation throughput) matches a first-principles simulation.

use crate::engine::{run, Scheduler, World};
use crate::error::SimError;
use crate::link::LinkModel;
use crate::packet::{segment, Packet, Reassembled, Reassembler};
use crate::time::{SimDuration, SimTime};
use std::collections::VecDeque;

#[derive(Debug)]
pub enum SwEvent {
    /// Packet finished serializing on its input link and reaches the switch.
    ArriveAtSwitch(Packet),
    /// Output port finished transmitting its current packet.
    OutputDone(u32),
}

/// A message to inject at a given time.
#[derive(Debug, Clone, Copy)]
pub struct Injection {
    pub at: SimTime,
    pub src: u32,
    pub dst: u32,
    pub bytes: u64,
}

/// A completed message delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    pub msg: Reassembled,
    pub dst: u32,
    pub at: SimTime,
}

/// Packet-level model of `ports` hosts attached to one output-queued
/// crossbar switch.
pub struct CrossbarSim {
    model: LinkModel,
    /// Per-input link: time the input wire becomes free.
    input_free: Vec<SimTime>,
    /// Per-output port FIFO of packets awaiting transmission.
    out_queue: Vec<VecDeque<Packet>>,
    /// Whether each output port is currently transmitting.
    out_busy: Vec<bool>,
    reasm: Reassembler,
    completions: Vec<Completion>,
    next_msg_id: u64,
    /// First invariant violation observed, if any; once set the model
    /// stops scheduling work and the run drains.
    error: Option<SimError>,
}

impl CrossbarSim {
    pub fn new(ports: u32, model: LinkModel) -> Self {
        CrossbarSim {
            model,
            input_free: vec![SimTime::ZERO; ports as usize],
            out_queue: (0..ports).map(|_| VecDeque::new()).collect(),
            out_busy: vec![false; ports as usize],
            reasm: Reassembler::new(),
            completions: Vec::new(),
            next_msg_id: 0,
            error: None,
        }
    }

    /// Queue a message's packets onto the source's input link.
    fn inject(&mut self, sched: &mut Scheduler<SwEvent>, inj: Injection) {
        let id = self.next_msg_id;
        self.next_msg_id += 1;
        let pkts = segment(id, inj.src, inj.dst, inj.bytes, &self.model);
        let mut free = self.input_free[inj.src as usize].max(inj.at);
        let hop = SimDuration::from_ps(self.model.hop_latency);
        for p in pkts {
            let ser = self.model.serialize(p.wire_bytes(&self.model));
            free += ser;
            // The packet reaches the switch after serialization plus the
            // input link's propagation share.
            sched.at(free + hop, SwEvent::ArriveAtSwitch(p));
        }
        self.input_free[inj.src as usize] = free;
    }

    fn start_output(&mut self, sched: &mut Scheduler<SwEvent>, port: u32) {
        if self.out_busy[port as usize] {
            return;
        }
        if let Some(pkt) = self.out_queue[port as usize].front().copied() {
            self.out_busy[port as usize] = true;
            let ser = self.model.serialize(pkt.wire_bytes(&self.model));
            sched.after(ser, SwEvent::OutputDone(port));
        }
    }

    pub fn completions(&self) -> &[Completion] {
        &self.completions
    }

    /// First invariant violation observed during the run, if any.
    pub fn error(&self) -> Option<SimError> {
        self.error
    }
}

impl World for CrossbarSim {
    type Event = SwEvent;

    fn handle(&mut self, sched: &mut Scheduler<SwEvent>, event: SwEvent) {
        if self.error.is_some() {
            return;
        }
        match event {
            SwEvent::ArriveAtSwitch(pkt) => {
                self.out_queue[pkt.dst as usize].push_back(pkt);
                self.start_output(sched, pkt.dst);
            }
            SwEvent::OutputDone(port) => {
                let Some(pkt) = self.out_queue[port as usize].pop_front() else {
                    self.error = Some(SimError::EmptyOutputQueue { port });
                    return;
                };
                self.out_busy[port as usize] = false;
                if let Some(msg) = self.reasm.push(pkt) {
                    self.completions.push(Completion {
                        msg,
                        dst: port,
                        at: sched.now(),
                    });
                }
                self.start_output(sched, port);
            }
        }
    }
}

/// Run a packet-level crossbar simulation of the given injections and
/// return completions sorted by time, or the first model invariant
/// violation.
pub fn simulate_crossbar(
    ports: u32,
    model: LinkModel,
    injections: &[Injection],
) -> Result<Vec<Completion>, SimError> {
    let mut world = CrossbarSim::new(ports, model);
    let mut sched = Scheduler::with_capacity(injections.len());
    for inj in injections {
        if inj.src >= ports || inj.dst >= ports {
            return Err(SimError::PortOutOfRange {
                port: inj.src.max(inj.dst),
                ports,
            });
        }
    }
    // Injections are applied up front: input-link occupancy ensures the
    // wire is shared correctly even for same-time injections.
    let mut sorted: Vec<Injection> = injections.to_vec();
    sorted.sort_by_key(|i| i.at);
    for inj in sorted {
        world.inject(&mut sched, inj);
    }
    run(&mut world, &mut sched, None);
    if let Some(e) = world.error {
        return Err(e);
    }
    let mut done = world.completions;
    done.sort_by_key(|c| c.at);
    Ok(done)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::Generation;

    fn gige() -> LinkModel {
        Generation::GigabitEthernet.link_model()
    }

    #[test]
    fn single_message_matches_analytic_two_hop_time() {
        let m = gige();
        let done = simulate_crossbar(
            4,
            m,
            &[Injection {
                at: SimTime::ZERO,
                src: 0,
                dst: 1,
                bytes: 6000,
            }],
        ).unwrap();
        assert_eq!(done.len(), 1);
        let analytic = m.message_time(6000, 2);
        let sim = done[0].at.since(SimTime::ZERO);
        // Packet-level vs analytic pipelining agree within one hop latency
        // (the analytic model folds both hops' latency in, the packet
        // model pays the output side as serialization only).
        let diff = sim.as_ps().abs_diff(analytic.as_ps());
        assert!(
            diff <= 2 * m.hop_latency,
            "sim {sim} vs analytic {analytic}"
        );
    }

    #[test]
    fn two_senders_one_receiver_halves_throughput() {
        let m = gige();
        let bytes = 1 << 20;
        let solo = simulate_crossbar(
            4,
            m,
            &[Injection {
                at: SimTime::ZERO,
                src: 0,
                dst: 2,
                bytes,
            }],
        ).unwrap();
        let pair = simulate_crossbar(
            4,
            m,
            &[
                Injection {
                    at: SimTime::ZERO,
                    src: 0,
                    dst: 2,
                    bytes,
                },
                Injection {
                    at: SimTime::ZERO,
                    src: 1,
                    dst: 2,
                    bytes,
                },
            ],
        ).unwrap();
        let t_solo = solo[0].at.as_secs();
        let t_pair = pair.last().unwrap().at.as_secs();
        let ratio = t_pair / t_solo;
        assert!(
            (1.8..2.2).contains(&ratio),
            "congested/uncongested ratio = {ratio}"
        );
    }

    #[test]
    fn congested_flows_interleave_fairly() {
        let m = gige();
        let bytes = 512 * 1024;
        let done = simulate_crossbar(
            4,
            m,
            &[
                Injection {
                    at: SimTime::ZERO,
                    src: 0,
                    dst: 3,
                    bytes,
                },
                Injection {
                    at: SimTime::ZERO,
                    src: 1,
                    dst: 3,
                    bytes,
                },
            ],
        ).unwrap();
        // Both finish within ~one message serialization of each other:
        // packets interleave in the output queue rather than one flow
        // starving the other.
        let gap = done[1].at.since(done[0].at);
        let one_pkt = m.serialize((m.mtu + m.header_bytes) as u64);
        assert!(
            gap.as_ps() <= 4 * one_pkt.as_ps(),
            "unfair completion gap {gap}"
        );
    }

    #[test]
    fn disjoint_pairs_do_not_interact() {
        let m = gige();
        let done = simulate_crossbar(
            4,
            m,
            &[
                Injection {
                    at: SimTime::ZERO,
                    src: 0,
                    dst: 1,
                    bytes: 100_000,
                },
                Injection {
                    at: SimTime::ZERO,
                    src: 2,
                    dst: 3,
                    bytes: 100_000,
                },
            ],
        ).unwrap();
        assert_eq!(done[0].at, done[1].at);
    }

    #[test]
    fn flow_model_agrees_with_packet_model_on_saturation() {
        // Cross-validation: the fast flow model and the packet-level
        // reference should agree on total time for a many-to-one pattern
        // within 25%.
        use crate::network::Network;
        use crate::topology::{Topology, TopologyKind};
        let m = gige();
        let bytes = 256 * 1024;
        let senders = 4u32;
        let injections: Vec<Injection> = (1..=senders)
            .map(|s| Injection {
                at: SimTime::ZERO,
                src: s,
                dst: 0,
                bytes,
            })
            .collect();
        let pkt_done = simulate_crossbar(senders + 1, m, &injections).unwrap();
        let t_pkt = pkt_done.last().unwrap().at.as_secs();

        let mut flow = Network::new(
            Topology::new(TopologyKind::Crossbar { hosts: senders + 1 }),
            m,
        );
        let t_flow = injections
            .iter()
            .map(|i| flow.transfer(i.at, i.src, i.dst, i.bytes).arrival.as_secs())
            .fold(0.0, f64::max);
        let ratio = t_flow / t_pkt;
        assert!(
            (0.75..1.25).contains(&ratio),
            "flow {t_flow} vs packet {t_pkt}: ratio {ratio}"
        );
    }

    #[test]
    fn out_of_range_port_is_a_typed_error_not_a_panic() {
        let err = simulate_crossbar(
            2,
            gige(),
            &[Injection {
                at: SimTime::ZERO,
                src: 0,
                dst: 5,
                bytes: 64,
            }],
        )
        .unwrap_err();
        assert_eq!(err, SimError::PortOutOfRange { port: 5, ports: 2 });
        assert!(err.to_string().contains("out of range"));
    }
}
