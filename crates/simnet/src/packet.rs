//! Packets and message segmentation for the packet-level reference model.

use crate::link::LinkModel;

/// One packet of a segmented message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Message this packet belongs to.
    pub msg_id: u64,
    /// Source host rank.
    pub src: u32,
    /// Destination host rank.
    pub dst: u32,
    /// Payload bytes in this packet.
    pub payload: u32,
    /// Sequence number within the message, starting at 0.
    pub seq: u32,
    /// True for the final packet of the message.
    pub last: bool,
}

impl Packet {
    /// Bytes this packet occupies on the wire under `model`.
    pub fn wire_bytes(&self, model: &LinkModel) -> u64 {
        self.payload as u64 + model.header_bytes as u64
    }
}

/// Segment a message into MTU-sized packets. A zero-byte message still
/// produces one (empty) packet so that control messages exist on the wire.
pub fn segment(msg_id: u64, src: u32, dst: u32, bytes: u64, model: &LinkModel) -> Vec<Packet> {
    let mtu = model.mtu as u64;
    let npkts = model.packets_for(bytes);
    (0..npkts)
        .map(|i| {
            let off = i * mtu;
            let payload = if bytes == 0 {
                0
            } else {
                (bytes - off).min(mtu) as u32
            };
            Packet {
                msg_id,
                src,
                dst,
                payload,
                seq: i as u32,
                last: i + 1 == npkts,
            }
        })
        .collect()
}

/// Tracks reassembly of segmented messages at a receiver.
#[derive(Debug, Default)]
pub struct Reassembler {
    inflight: std::collections::HashMap<u64, (u64, bool)>, // msg_id -> (bytes, saw_last)
}

/// A fully reassembled message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reassembled {
    pub msg_id: u64,
    pub src: u32,
    pub bytes: u64,
}

impl Reassembler {
    pub fn new() -> Self {
        Self::default()
    }

    /// Account one arriving packet; returns the completed message if this
    /// packet finishes it. Packets of one message must arrive in order
    /// (the simulated fabrics preserve per-flow ordering).
    pub fn push(&mut self, pkt: Packet) -> Option<Reassembled> {
        let entry = self.inflight.entry(pkt.msg_id).or_insert((0, false));
        entry.0 += pkt.payload as u64;
        entry.1 |= pkt.last;
        if entry.1 {
            let (bytes, _) = self.inflight.remove(&pkt.msg_id).expect("entry exists");
            Some(Reassembled {
                msg_id: pkt.msg_id,
                src: pkt.src,
                bytes,
            })
        } else {
            None
        }
    }

    pub fn pending(&self) -> usize {
        self.inflight.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::Generation;

    #[test]
    fn segmentation_covers_payload_exactly() {
        let m = Generation::GigabitEthernet.link_model();
        for bytes in [0u64, 1, 1499, 1500, 1501, 10_000, 1 << 20] {
            let pkts = segment(1, 0, 1, bytes, &m);
            let total: u64 = pkts.iter().map(|p| p.payload as u64).sum();
            assert_eq!(total, bytes);
            assert_eq!(pkts.len() as u64, m.packets_for(bytes));
            assert!(pkts.last().unwrap().last);
            assert_eq!(pkts.iter().filter(|p| p.last).count(), 1);
            for (i, p) in pkts.iter().enumerate() {
                assert_eq!(p.seq as usize, i);
                assert!(p.payload <= m.mtu);
            }
        }
    }

    #[test]
    fn zero_byte_message_is_one_empty_packet() {
        let m = Generation::Myrinet2000.link_model();
        let pkts = segment(7, 2, 3, 0, &m);
        assert_eq!(pkts.len(), 1);
        assert_eq!(pkts[0].payload, 0);
        assert!(pkts[0].last);
    }

    #[test]
    fn reassembly_roundtrip() {
        let m = Generation::InfiniBand4x.link_model();
        let pkts = segment(42, 5, 6, 10_000, &m);
        let mut r = Reassembler::new();
        let mut done = None;
        for p in pkts {
            if let Some(msg) = r.push(p) {
                done = Some(msg);
            }
        }
        let msg = done.expect("message completes");
        assert_eq!(msg.msg_id, 42);
        assert_eq!(msg.src, 5);
        assert_eq!(msg.bytes, 10_000);
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn interleaved_messages_reassemble_independently() {
        let m = Generation::GigabitEthernet.link_model();
        let a = segment(1, 0, 9, 3000, &m);
        let b = segment(2, 1, 9, 3000, &m);
        let mut r = Reassembler::new();
        let mut finished = vec![];
        for (pa, pb) in a.into_iter().zip(b) {
            if let Some(x) = r.push(pa) {
                finished.push(x.msg_id);
            }
            if let Some(x) = r.push(pb) {
                finished.push(x.msg_id);
            }
        }
        assert_eq!(finished, vec![1, 2]);
    }

    #[test]
    fn wire_bytes_include_header() {
        let m = Generation::GigabitEthernet.link_model();
        let p = segment(1, 0, 1, 100, &m).pop().unwrap();
        assert_eq!(p.wire_bytes(&m), 100 + m.header_bytes as u64);
    }
}
