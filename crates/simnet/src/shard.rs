//! Sharded parallel discrete-event execution: conservative windows from
//! per-channel lookahead, plus speculative execution past the
//! conservative horizon with deterministic rollback.
//!
//! [`ShardSim`] partitions a model across worker shards, each owning an
//! independent calendar [`EventQueue`], and runs them in windows:
//!
//! * **Per-channel lookahead.** Every (src, dst) shard pair carries its
//!   own minimum latency promise in a [`Lookahead`] matrix — the
//!   null-message-style earliest-input-time (EIT) bound. Each window,
//!   every shard publishes the minimum timestamp it could still send
//!   (its queue minimum, adjusted for any committed-but-unflushed
//!   speculative sends), and shard `s` derives its *own* safe window
//!   end `wend_s = min over src≠s of (min_src + la[src][s])`. Sparsely
//!   coupled partitions (e.g. dragonfly group-aligned shards, where
//!   cross-group latency dwarfs local latency) get windows sized by the
//!   channels that actually constrain them, not by the global minimum
//!   link latency.
//! * **Speculative windows with rollback.** After draining its
//!   conservative window, a shard may keep executing into
//!   `[wend_s, B_s)` against a checkpoint, where the commit bound
//!   `B_s = min over src≠s of (wend_src + la[src][s])` is the earliest
//!   timestamp any *future* merge could deliver (every peer's next
//!   minimum is at least its current window end). The only events that
//!   can invalidate the speculation are therefore in *this* window's
//!   inbox: at the merge, if the inbox minimum `(time, key)` is ≤ the
//!   largest speculated `(time, key)`, the shard rolls back — restores
//!   the checkpointed world, re-inserts the journaled pops — and
//!   re-executes conservatively next window (with deterministic
//!   backoff). Otherwise it commits: staged local sends enter the real
//!   queue, and speculative cross-shard sends are *deferred* to the
//!   next window's flush point, with the published minimum adjusted by
//!   `min(t_e - la[s][dst_e])` so no peer's window can overtake them.
//!   Commit/rollback decisions depend only on deterministic values (the
//!   published minima and the inbox *set*, never arrival order), so
//!   results — and the spec commit/rollback counts themselves — are
//!   bit-identical across shard counts and serial/threaded execution.
//! * **Batched channel exchange.** Cross-shard sends buffer per
//!   destination and flush once per window through
//!   [`ShardChannel::push_batch`] — one release store per (src, dst)
//!   pair per window instead of one per event.
//!
//! Determinism — and, stronger, *shard-count invariance* — comes from
//! the key discipline: models supply tie-break keys derived from global
//! identities (rank, per-rank sequence), never from shard ids or
//! arrival order, so the `(time, key)` total order every shard executes
//! is the same whether the model runs on 1, 2, or 4 shards. The oracle
//! suite in `tests/parallel_determinism.rs` asserts exactly that, with
//! speculation on and off.
//!
//! Synchronization is three `std::sync::Barrier` waits per window
//! (publish local minima / adopt the window / exchange channels) —
//! blocking primitives throughout, never spin loops, so oversubscribed
//! hosts degrade gracefully instead of livelocking.

use crate::channel::ShardChannel;
use crate::event::{EventQueue, QueueSnapshot};
use crate::time::{SimDuration, SimTime};
use crate::topology::Topology;
use polaris_obs::Obs;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Barrier;

// ---------------------------------------------------------------------
// Partitioning
// ---------------------------------------------------------------------

/// Block partition of `hosts` simulated nodes across `nshards` engine
/// shards: shard `s` owns the contiguous rank range
/// `ceil(s*hosts/n) .. ceil((s+1)*hosts/n)`. Contiguity keeps each
/// shard's working set dense, and the arithmetic is exact for any
/// (hosts, nshards) pair — shard sizes differ by at most one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    pub hosts: u32,
    pub nshards: u32,
    /// Shard boundaries are snapped to multiples of `align` ranks.
    /// `block()` uses 1 (plain block partition); `for_topology` on a
    /// Dragonfly snaps to the group size so a group's dense local
    /// traffic never crosses a shard boundary.
    align: u32,
}

impl Partition {
    /// `nshards` is clamped to `1..=hosts` (an empty shard would stall
    /// no one, but there is no reason to create it).
    pub fn block(hosts: u32, nshards: u32) -> Self {
        Partition {
            hosts,
            nshards: nshards.clamp(1, hosts.max(1)),
            align: 1,
        }
    }

    /// Block partition whose shard boundaries fall only on multiples of
    /// `align` ranks (the last block absorbs any remainder). `nshards`
    /// is additionally clamped so no shard is empty.
    pub fn block_aligned(hosts: u32, nshards: u32, align: u32) -> Self {
        let align = align.clamp(1, hosts.max(1));
        let nblocks = hosts.div_ceil(align).max(1);
        Partition {
            hosts,
            nshards: nshards.clamp(1, nblocks),
            align,
        }
    }

    /// Partition the hosts of a topology. Dragonfly topologies are
    /// partitioned on group boundaries (all hosts of a group share a
    /// shard); every other kind gets the plain block partition.
    pub fn for_topology(topo: &Topology, nshards: u32) -> Self {
        match topo.kind() {
            crate::topology::TopologyKind::Dragonfly { .. } => {
                Self::block_aligned(topo.hosts(), nshards, topo.group_size())
            }
            _ => Self::block(topo.hosts(), nshards),
        }
    }

    /// The boundary-snapping unit (1 for plain block partitions).
    #[inline]
    pub fn align(&self) -> u32 {
        self.align
    }

    /// Number of indivisible alignment blocks.
    #[inline]
    fn nblocks(&self) -> u64 {
        (self.hosts as u64).div_ceil(self.align as u64).max(1)
    }

    /// Which shard owns `rank`.
    #[inline]
    pub fn shard_of(&self, rank: u32) -> u32 {
        debug_assert!(rank < self.hosts);
        let block = (rank / self.align) as u64;
        ((block * self.nshards as u64) / self.nblocks()) as u32
    }

    /// The contiguous rank range shard `shard` owns.
    pub fn ranks_of(&self, shard: u32) -> std::ops::Range<u32> {
        debug_assert!(shard < self.nshards);
        let nb = self.nblocks();
        let lo_b = (shard as u64 * nb).div_ceil(self.nshards as u64);
        let hi_b = ((shard as u64 + 1) * nb).div_ceil(self.nshards as u64);
        let lo = (lo_b * self.align as u64).min(self.hosts as u64) as u32;
        let hi = (hi_b * self.align as u64).min(self.hosts as u64) as u32;
        lo..hi
    }
}

// ---------------------------------------------------------------------
// Per-channel lookahead
// ---------------------------------------------------------------------

/// Per-channel lookahead matrix: `get(src, dst)` is the minimum delay
/// any event sent from shard `src` to shard `dst` carries — the EIT
/// promise backing the conservative window computation. Off-diagonal
/// entries must be positive; the diagonal is unused. An entry of
/// `u64::MAX` declares "this pair never exchanges events" and removes
/// the channel from the window computation entirely (saturating
/// arithmetic keeps the math well-defined).
///
/// Window math runs on the *min-plus transitive closure* of the
/// matrix, not on single edges: a future event at `dst` can be the end
/// of a causal chain that relays through any sequence of shards, so
/// the earliest possible arrival from `src`'s pending work is
/// `mins[src] + dist(src, dst)` where `dist` is the shortest-path
/// delay (at least one edge). Crucially the diagonal of the closure —
/// the cheapest round trip `dst -> ... -> dst` — bounds `dst`'s own
/// window too: with a single-edge formula, a shard whose peers have
/// all gone idle (published minimum `u64::MAX`) would compute an
/// unbounded window and drain events that its *own* in-flight sends
/// were about to invalidate on the rebound. The lookahead property
/// suite's shard-count invariance proptest caught exactly that.
#[derive(Debug, Clone)]
pub struct Lookahead {
    n: u32,
    /// `la[src * n + dst]`, picoseconds.
    la: Vec<u64>,
    /// Min-plus closure of `la`: `dist[src * n + dst]` is the cheapest
    /// delay of any path `src -> ... -> dst` with at least one edge
    /// (the diagonal holds the cheapest cycle through peers).
    dist: Vec<u64>,
    /// Minimum off-diagonal entry — the model-facing
    /// [`ShardCtx::lookahead`] value. For uniform matrices this is the
    /// construction value at any shard count (including 1), which is
    /// what keeps models that derive send times from it shard-count
    /// invariant.
    min_la: u64,
}

/// Min-plus (tropical) closure of an `n x n` edge matrix whose
/// diagonal is unused: Floyd–Warshall with saturating adds, seeded
/// with the single edges and a `u64::MAX` diagonal so every path in
/// the result has at least one edge.
fn min_plus_closure(n: usize, la: &[u64]) -> Vec<u64> {
    let mut dist = vec![u64::MAX; n * n];
    for src in 0..n {
        for dst in 0..n {
            if src != dst {
                dist[src * n + dst] = la[src * n + dst];
            }
        }
    }
    for k in 0..n {
        for i in 0..n {
            let ik = dist[i * n + k];
            if ik == u64::MAX {
                continue;
            }
            for j in 0..n {
                let through = ik.saturating_add(dist[k * n + j]);
                if through < dist[i * n + j] {
                    dist[i * n + j] = through;
                }
            }
        }
    }
    dist
}

impl Lookahead {
    /// Every cross-shard channel promises the same minimum delay — the
    /// pre-round-2 global-lookahead behavior.
    pub fn uniform(nshards: u32, min_latency: SimDuration) -> Self {
        assert!(nshards >= 1, "at least one shard required");
        assert!(min_latency.0 > 0, "conservative lookahead must be positive");
        let n = nshards as usize;
        let la = vec![min_latency.0; n * n];
        Lookahead {
            n: nshards,
            dist: min_plus_closure(n, &la),
            la,
            min_la: min_latency.0,
        }
    }

    /// Build the matrix from a per-pair extraction function (called for
    /// `src != dst` only). Entries must be positive.
    pub fn from_fn(nshards: u32, mut f: impl FnMut(u32, u32) -> SimDuration) -> Self {
        assert!(nshards >= 1, "at least one shard required");
        let n = nshards as usize;
        let mut la = vec![0u64; n * n];
        let mut min_la = u64::MAX;
        for src in 0..nshards {
            for dst in 0..nshards {
                if src == dst {
                    continue;
                }
                let d = f(src, dst).0;
                assert!(d > 0, "lookahead for channel {src}->{dst} must be positive");
                la[(src * nshards + dst) as usize] = d;
                min_la = min_la.min(d);
            }
        }
        Lookahead {
            n: nshards,
            dist: min_plus_closure(n, &la),
            la,
            min_la,
        }
    }

    #[inline]
    pub fn nshards(&self) -> u32 {
        self.n
    }

    /// The channel promise for `src -> dst`, in raw time units.
    #[inline]
    pub fn get(&self, src: u32, dst: u32) -> u64 {
        debug_assert!(src != dst, "diagonal lookahead is meaningless");
        self.la[(src * self.n + dst) as usize]
    }

    /// The minimum off-diagonal promise (`u64::MAX` for a 1-shard
    /// `from_fn` matrix, which has no channels).
    #[inline]
    pub fn min(&self) -> u64 {
        self.min_la
    }

    /// The closure delay for `src -> dst`: the cheapest relay path
    /// with at least one edge (the diagonal is the cheapest round
    /// trip through peers).
    #[inline]
    pub fn dist(&self, src: u32, dst: u32) -> u64 {
        self.dist[(src * self.n + dst) as usize]
    }

    /// Safe window end for shard `dst` given every shard's published
    /// minimum: no event can arrive at `dst` earlier than
    /// `min over all src of (mins[src] + dist(src, dst))`, where
    /// `dist` is the min-plus closure — every causal chain from a
    /// pending event to an arrival at `dst` relays through some path
    /// of channels, and `src == dst` contributes its own round trip.
    /// Public so the lookahead property suite can check
    /// safety/progress bounds directly against random matrices.
    pub fn window_end(&self, mins: &[u64], dst: usize) -> u64 {
        let mut wend = u64::MAX;
        for (src, &m) in mins.iter().enumerate() {
            wend = wend.min(m.saturating_add(self.dist(src as u32, dst as u32)));
        }
        wend
    }

    /// Commit bound for shard `dst`: the earliest timestamp any merge
    /// *after this window's* could deliver. Each shard's next
    /// published minimum is at least its current window end (it
    /// executes everything below it and inbound merges can't land
    /// below it either), so future arrivals at `dst` sit at or above
    /// `min over all src of (wend_src + dist(src, dst))` — the same
    /// closure as [`window_end`], one published-minimum generation
    /// later. Speculative events strictly below this bound are
    /// threatened only by the current window's inbox — which the
    /// merge inspects directly.
    ///
    /// [`window_end`]: Lookahead::window_end
    pub fn commit_bound(&self, mins: &[u64], dst: usize) -> u64 {
        let mut bound = u64::MAX;
        for src in 0..mins.len() {
            let wend_src = self.window_end(mins, src);
            bound = bound.min(wend_src.saturating_add(self.dist(src as u32, dst as u32)));
        }
        bound
    }
}

// ---------------------------------------------------------------------
// World interface
// ---------------------------------------------------------------------

/// One shard's slice of the model state, driven by [`ShardSim`].
///
/// The key discipline that makes runs shard-count invariant: every
/// event scheduled through [`ShardCtx::send`] carries a tie-break key
/// the model derives from *global* identities (e.g. `rank << 32 | seq`)
/// — never from the shard id, the thread, or channel arrival order.
pub trait ShardWorld: Send {
    type Event: Send;
    /// Handle one event at `ctx.now()`.
    fn handle(&mut self, ctx: &mut ShardCtx<'_, Self::Event>, event: Self::Event);
}

/// An event in flight between shards.
struct Remote<E> {
    time: SimTime,
    key: u64,
    event: E,
}

/// A local event produced *during speculation*, staged outside the real
/// calendar queue so a rollback can discard it (the calendar queue has
/// no remove operation). Min-ordered by `(time, key)`.
struct Staged<E> {
    time: SimTime,
    key: u64,
    event: E,
}

impl<E> Staged<E> {
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.key)
    }
}

impl<E> PartialEq for Staged<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<E> Eq for Staged<E> {}

impl<E> PartialOrd for Staged<E> {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Staged<E> {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other.key().cmp(&self.key())
    }
}

/// Scheduling interface handed to [`ShardWorld::handle`].
pub struct ShardCtx<'a, E> {
    now: SimTime,
    shard: u32,
    nshards: u32,
    la: &'a Lookahead,
    queue: &'a mut EventQueue<E>,
    /// During speculation, local sends divert here instead of the real
    /// queue (so a rollback can discard them); `None` in conservative
    /// execution.
    staging: Option<&'a mut BinaryHeap<Staged<E>>>,
    /// Per-destination outbound buffers: the conservative set in normal
    /// execution, the deferred (commit-pending) set during speculation.
    /// Flushed in one [`ShardChannel::push_batch`] per pair per window.
    outbufs: &'a mut [Vec<Remote<E>>],
    remote_sent: &'a mut u64,
}

impl<E> ShardCtx<'_, E> {
    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The shard this handler is executing on.
    #[inline]
    pub fn shard(&self) -> u32 {
        self.shard
    }

    #[inline]
    pub fn nshards(&self) -> u32 {
        self.nshards
    }

    /// The minimum cross-shard lookahead: cross-shard events are always
    /// safe at `now + lookahead()` regardless of destination. Models
    /// that derive send times from this should construct the simulator
    /// with a *uniform* matrix so the value is shard-count invariant.
    #[inline]
    pub fn lookahead(&self) -> SimDuration {
        SimDuration(self.la.min())
    }

    /// The per-channel promise to `dst`: cross-shard sends to `dst`
    /// must be scheduled at least this far past `now`.
    #[inline]
    pub fn lookahead_to(&self, dst: u32) -> SimDuration {
        SimDuration(self.la.get(self.shard, dst))
    }

    /// Schedule `event` at `time` on shard `dst`, tie-broken by `key`.
    ///
    /// Local sends (`dst == self.shard()`) may target any `time >= now`.
    /// Cross-shard sends must satisfy `time >= now + lookahead_to(dst)`
    /// — the per-channel window contract; debug builds assert it.
    pub fn send(&mut self, dst: u32, time: SimTime, key: u64, event: E) {
        debug_assert!(time >= self.now, "event scheduled in the past");
        if dst == self.shard {
            let time = time.max(self.now);
            match &mut self.staging {
                Some(staging) => staging.push(Staged { time, key, event }),
                None => self.queue.push_keyed(time, key, event),
            }
        } else {
            debug_assert!(
                time.0 >= self.now.0 + self.la.get(self.shard, dst),
                "cross-shard event at {} violates lookahead {} from {} ({} -> {})",
                time.0,
                self.la.get(self.shard, dst),
                self.now.0,
                self.shard,
                dst
            );
            *self.remote_sent += 1;
            self.outbufs[dst as usize].push(Remote { time, key, event });
        }
    }

    /// Schedule a local event (shorthand for `send` to the own shard).
    pub fn at(&mut self, time: SimTime, key: u64, event: E) {
        let shard = self.shard;
        self.send(shard, time, key, event);
    }
}

// ---------------------------------------------------------------------
// The sharded simulator
// ---------------------------------------------------------------------

/// After a rollback, skip speculation for a deterministic, doubling
/// number of windows up to this cap — bounding checkpoint-clone waste
/// on straggler-heavy workloads without any non-deterministic input.
const MAX_SPEC_BACKOFF: u32 = 8;

/// Adaptive speculation depth: each shard caps how many events one
/// speculative window may execute, scaling the cap by the observed
/// commit/rollback outcome — multiplicative increase on commit,
/// multiplicative decrease on rollback (AIMD on the rollback rate). A
/// shard whose speculation keeps committing earns deep windows; one
/// whose peers keep straggling stops cloning worlds it will throw away.
/// The trajectory is a pure function of the (deterministic) commit and
/// rollback sequence, so depths — like every other speculation decision
/// — are identical across serial and threaded execution.
const SPEC_DEPTH_INIT: u64 = 64;
const SPEC_DEPTH_MIN: u64 = 8;
const SPEC_DEPTH_MAX: u64 = 4096;

/// Outcome of a sharded run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRunStats {
    /// Events dispatched, summed over shards (each committed event
    /// counts once; rolled-back speculative work is excluded).
    pub events_dispatched: u64,
    /// Events dispatched per shard, indexed by shard id.
    pub per_shard_events: Vec<u64>,
    /// Windows executed.
    pub windows: u64,
    /// Events that crossed a shard boundary.
    pub remote_events: u64,
    /// Speculative windows that committed.
    pub spec_commits: u64,
    /// Speculative windows rolled back by a straggler.
    pub spec_rollbacks: u64,
    /// Events executed speculatively and committed.
    pub spec_events_committed: u64,
    /// Events executed speculatively then discarded by a rollback.
    pub spec_events_rolled_back: u64,
    /// Adaptive speculation depth each shard ended the run at, indexed
    /// by shard id (all `SPEC_DEPTH_INIT` when speculation never ran).
    /// Deterministic: the depth trajectory is a pure function of the
    /// commit/rollback sequence.
    pub spec_final_depth: Vec<u64>,
    /// Simulated time when the run stopped.
    pub end_time: SimTime,
    /// True if the run stopped at the horizon with events pending.
    pub horizon_reached: bool,
}

impl ShardRunStats {
    /// Export the run's counters through an observability registry:
    /// `shard_events_dispatched_total{shard=..}`, `shard_windows_total`,
    /// `shard_remote_events_total`, and — when speculation ran —
    /// `shard_spec_{commits,rollbacks,events_committed,events_rolled_back}_total`.
    /// Counters accumulate across runs sharing one registry, matching
    /// every other ledger in the stack.
    pub fn publish(&self, obs: &Obs) {
        for (s, &n) in self.per_shard_events.iter().enumerate() {
            let label = s.to_string();
            obs.counter("shard_events_dispatched_total", &[("shard", &label)])
                .add(n);
        }
        obs.counter("shard_windows_total", &[]).add(self.windows);
        obs.counter("shard_remote_events_total", &[]).add(self.remote_events);
        if self.spec_commits > 0 || self.spec_rollbacks > 0 {
            obs.counter("shard_spec_commits_total", &[]).add(self.spec_commits);
            obs.counter("shard_spec_rollbacks_total", &[]).add(self.spec_rollbacks);
            obs.counter("shard_spec_events_committed_total", &[])
                .add(self.spec_events_committed);
            obs.counter("shard_spec_events_rolled_back_total", &[])
                .add(self.spec_events_rolled_back);
        }
    }
}

struct ShardSlot<W: ShardWorld> {
    world: W,
    queue: EventQueue<W::Event>,
    now: SimTime,
    dispatched: u64,
    remote_sent: u64,
    /// Reusable merge buffer for inbound remote events.
    inbox: Vec<Remote<W::Event>>,
    /// Per-destination conservative outbound buffers; flushed in one
    /// `push_batch` per pair per window.
    outbufs: Vec<Vec<Remote<W::Event>>>,
    /// Committed speculative cross-shard sends awaiting the next flush
    /// point (they must not enter the channels mid-window, after peers
    /// may already have drained).
    deferred: Vec<Vec<Remote<W::Event>>>,
    /// `min over deferred events e of (e.time - la[s][dst_e])`: the
    /// published-minimum adjustment that keeps peers' windows below any
    /// deferred event until it is delivered. `u64::MAX` when empty.
    deferred_adj: u64,
    /// World snapshot taken at speculation start (post-conservative
    /// drain); `Some` only between a speculative run and its merge.
    checkpoint: Option<W>,
    /// Local events produced during speculation, outside the real queue.
    staging: BinaryHeap<Staged<W::Event>>,
    /// `(time, key, event)` journal of real-queue pops during
    /// speculation, re-inserted verbatim on rollback.
    undo: Vec<(SimTime, u64, W::Event)>,
    /// Clock/tally shadows during speculation; folded in on commit.
    spec_now: SimTime,
    spec_max: Option<(SimTime, u64)>,
    spec_dispatched: u64,
    spec_remote_sent: u64,
    /// Deterministic rollback backoff: windows left to skip, and the
    /// next skip length.
    spec_skip: u32,
    next_backoff: u32,
    /// Adaptive cap on events per speculative window (AIMD-adjusted at
    /// each commit/rollback; see [`SPEC_DEPTH_INIT`]).
    spec_depth: u64,
    // Per-shard speculation stats.
    spec_commits: u64,
    spec_rollbacks: u64,
    spec_events_committed: u64,
    spec_events_rolled_back: u64,
}

/// Compile-time switch between conservative-only and speculative
/// execution: both entry points run the identical window protocol, and
/// the `Clone` bounds speculation needs (world checkpointing, pop
/// journaling) attach only to the speculative instantiation.
trait SpecPolicy<W: ShardWorld> {
    const ENABLED: bool;
    fn snapshot(world: &W) -> Option<W>;
    fn clone_event(ev: &W::Event) -> W::Event;
}

/// Conservative-only execution (`ShardSim::run`).
struct NoSpec;

impl<W: ShardWorld> SpecPolicy<W> for NoSpec {
    const ENABLED: bool = false;
    fn snapshot(_: &W) -> Option<W> {
        None
    }
    fn clone_event(_: &W::Event) -> W::Event {
        unreachable!("speculation disabled")
    }
}

/// Speculative execution (`ShardSim::run_spec`).
struct WithSpec;

impl<W: ShardWorld + Clone> SpecPolicy<W> for WithSpec
where
    W::Event: Clone,
{
    const ENABLED: bool = true;
    fn snapshot(world: &W) -> Option<W> {
        Some(world.clone())
    }
    fn clone_event(ev: &W::Event) -> W::Event {
        ev.clone()
    }
}

/// Read-only per-run context shared by every phase function.
struct Shared<'a, W: ShardWorld> {
    n: usize,
    la: &'a Lookahead,
    /// Event-granular horizon cap: events with `t.0 > hcap` never
    /// execute (conservatively or speculatively).
    hcap: u64,
    channels: &'a [ShardChannel<Remote<W::Event>>],
}

/// A model partitioned across shards, executed in lookahead windows.
pub struct ShardSim<W: ShardWorld> {
    shards: Vec<ShardSlot<W>>,
    lookahead: Lookahead,
}

impl<W: ShardWorld> ShardSim<W> {
    /// One world per shard, with a per-channel [`Lookahead`] matrix
    /// (`lookahead.nshards()` must match `worlds.len()`).
    pub fn new(worlds: Vec<W>, lookahead: Lookahead) -> Self {
        assert!(!worlds.is_empty(), "at least one shard required");
        assert_eq!(
            worlds.len(),
            lookahead.nshards() as usize,
            "lookahead matrix size must match shard count"
        );
        let n = worlds.len();
        ShardSim {
            shards: worlds
                .into_iter()
                .map(|world| ShardSlot {
                    world,
                    queue: EventQueue::new(),
                    now: SimTime::ZERO,
                    dispatched: 0,
                    remote_sent: 0,
                    inbox: Vec::new(),
                    outbufs: (0..n).map(|_| Vec::new()).collect(),
                    deferred: (0..n).map(|_| Vec::new()).collect(),
                    deferred_adj: u64::MAX,
                    checkpoint: None,
                    staging: BinaryHeap::new(),
                    undo: Vec::new(),
                    spec_now: SimTime::ZERO,
                    spec_max: None,
                    spec_dispatched: 0,
                    spec_remote_sent: 0,
                    spec_skip: 0,
                    next_backoff: 1,
                    spec_depth: SPEC_DEPTH_INIT,
                    spec_commits: 0,
                    spec_rollbacks: 0,
                    spec_events_committed: 0,
                    spec_events_rolled_back: 0,
                })
                .collect(),
            lookahead,
        }
    }

    /// Convenience constructor: every channel promises the same
    /// `min_latency` (the pre-round-2 global-lookahead behavior).
    pub fn uniform(worlds: Vec<W>, min_latency: SimDuration) -> Self {
        let n = worlds.len() as u32;
        Self::new(worlds, Lookahead::uniform(n, min_latency))
    }

    pub fn nshards(&self) -> u32 {
        self.shards.len() as u32
    }

    /// Seed an event before the run (same key discipline as
    /// [`ShardCtx::send`]).
    pub fn schedule(&mut self, shard: u32, time: SimTime, key: u64, event: W::Event) {
        self.shards[shard as usize].queue.push_keyed(time, key, event);
    }

    /// The shard worlds, indexed by shard id (for result extraction).
    pub fn worlds(&self) -> impl Iterator<Item = &W> {
        self.shards.iter().map(|s| &s.world)
    }

    /// Run to completion (or `horizon`), conservative windows only.
    /// With `parallel` set, each shard gets its own worker thread;
    /// otherwise the same windowed algorithm runs on the calling
    /// thread, shard by shard — both paths execute the identical
    /// `(time, key)` order, so they produce identical results by
    /// construction.
    pub fn run(&mut self, parallel: bool, horizon: Option<SimTime>) -> ShardRunStats {
        self.run_inner::<NoSpec>(parallel, horizon)
    }

    /// Like [`run`], additionally executing speculative windows past
    /// each shard's conservative horizon, rolled back deterministically
    /// on straggler cross-shard events. Produces bit-identical model
    /// results to [`run`] — speculation is transparent — at a fraction
    /// of the window count when cross-shard traffic is sparse.
    ///
    /// [`run`]: ShardSim::run
    pub fn run_spec(&mut self, parallel: bool, horizon: Option<SimTime>) -> ShardRunStats
    where
        W: Clone,
        W::Event: Clone,
    {
        self.run_inner::<WithSpec>(parallel, horizon)
    }

    fn run_inner<P: SpecPolicy<W>>(
        &mut self,
        parallel: bool,
        horizon: Option<SimTime>,
    ) -> ShardRunStats {
        let n = self.shards.len();
        let channels: Vec<ShardChannel<Remote<W::Event>>> =
            (0..n * n).map(|_| ShardChannel::new()).collect();
        let windows = AtomicU64::new(0);
        let horizon_hit = AtomicBool::new(false);
        let shared = Shared::<W> {
            n,
            la: &self.lookahead,
            hcap: horizon.map_or(u64::MAX, |h| h.0),
            channels: &channels,
        };

        if !parallel || n == 1 {
            let mut mins = vec![u64::MAX; n];
            loop {
                for (m, slot) in mins.iter_mut().zip(self.shards.iter_mut()) {
                    *m = published_min(slot);
                }
                let gmin = *mins.iter().min().expect("n >= 1");
                if gmin == u64::MAX {
                    break;
                }
                if horizon.is_some_and(|h| gmin > h.0) {
                    horizon_hit.store(true, Ordering::Relaxed);
                    break;
                }
                windows.fetch_add(1, Ordering::Relaxed);
                for (s, slot) in self.shards.iter_mut().enumerate() {
                    let wend = shared.la.window_end(&mins, s);
                    drain_window(slot, s, &shared, wend);
                    flush_outbufs(slot, s, &shared);
                    if P::ENABLED {
                        let bound = shared.la.commit_bound(&mins, s);
                        speculate::<W, P>(slot, s, &shared, bound);
                    }
                }
                for (s, slot) in self.shards.iter_mut().enumerate() {
                    merge_inbox::<W, P>(slot, s, &shared);
                }
            }
        } else {
            let barrier = Barrier::new(n);
            let mins: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(u64::MAX)).collect();
            std::thread::scope(|scope| {
                for (s, slot) in self.shards.iter_mut().enumerate() {
                    let (shared, mins, barrier) = (&shared, &mins, &barrier);
                    let (windows, horizon_hit) = (&windows, &horizon_hit);
                    scope.spawn(move || {
                        worker::<W, P>(s, slot, shared, horizon, mins, barrier, windows, horizon_hit);
                    });
                }
            });
        }

        let per_shard_events: Vec<u64> = self.shards.iter().map(|s| s.dispatched).collect();
        let horizon_reached = horizon_hit.load(Ordering::Relaxed);
        let end_time = if horizon_reached {
            horizon.expect("horizon_reached implies a horizon")
        } else {
            self.shards.iter().map(|s| s.now).max().unwrap_or(SimTime::ZERO)
        };
        let stats = ShardRunStats {
            events_dispatched: per_shard_events.iter().sum(),
            per_shard_events,
            windows: windows.load(Ordering::Relaxed),
            remote_events: self.shards.iter().map(|s| s.remote_sent).sum(),
            spec_commits: self.shards.iter().map(|s| s.spec_commits).sum(),
            spec_rollbacks: self.shards.iter().map(|s| s.spec_rollbacks).sum(),
            spec_events_committed: self.shards.iter().map(|s| s.spec_events_committed).sum(),
            spec_events_rolled_back: self.shards.iter().map(|s| s.spec_events_rolled_back).sum(),
            spec_final_depth: self.shards.iter().map(|s| s.spec_depth).collect(),
            end_time,
            horizon_reached,
        };
        // Reset per-run tallies so repeated runs don't double-count.
        for s in &mut self.shards {
            s.dispatched = 0;
            s.remote_sent = 0;
            s.spec_commits = 0;
            s.spec_rollbacks = 0;
            s.spec_events_committed = 0;
            s.spec_events_rolled_back = 0;
            s.spec_skip = 0;
            s.next_backoff = 1;
            s.spec_depth = SPEC_DEPTH_INIT;
        }
        stats
    }
}

// ---------------------------------------------------------------------
// Checkpoint / restore
// ---------------------------------------------------------------------

/// Full serializable state of a [`ShardSim`] at a quiescent point
/// (between runs): the lookahead matrix, every shard's world, its
/// calendar queue (as a [`QueueSnapshot`] — entries behind stable
/// `(time, key)` identities, never arena slots), its clock, and any
/// committed-but-undelivered speculative cross-shard sends.
///
/// Stable-ID rules: nothing in a snapshot refers to process state —
/// no arena slot numbers, thread ids, channel indices, or `Weak`
/// custody. Shards are named by their dense shard id, events by their
/// `(time, key)` identity, and deferred sends by `(src, dst)` shard
/// ids, so a snapshot restores into a fresh process bit-identically.
///
/// Transient intra-window state (speculation checkpoints, staging,
/// undo journals, un-flushed outbufs, inboxes) is empty by
/// construction at every quiescent point; [`ShardSim::snapshot`]
/// asserts that rather than serializing it.
pub struct ShardSnapshot<W: ShardWorld> {
    nshards: u32,
    /// Row-major `nshards x nshards` lookahead edge matrix (the
    /// closure is recomputed on restore — it is a pure function of
    /// the edges).
    la: Vec<u64>,
    /// Serialized explicitly: `Lookahead::uniform(1, d)` carries
    /// `min_la = d` while a 1-shard `from_fn` matrix carries
    /// `u64::MAX`, and models that derive send times from
    /// [`ShardCtx::lookahead`] would diverge if a restore guessed.
    min_la: u64,
    worlds: Vec<W>,
    queues: Vec<QueueSnapshot<W::Event>>,
    /// Per-shard clock, picoseconds.
    nows: Vec<u64>,
    /// Per-shard published-minimum adjustment for the deferred sends.
    deferred_adjs: Vec<u64>,
    /// Committed speculative cross-shard sends awaiting delivery,
    /// flattened in (src, dst, buffer-order) order behind stable ids.
    deferred_src: Vec<u32>,
    deferred_dst: Vec<u32>,
    deferred_time: Vec<u64>,
    deferred_key: Vec<u64>,
    deferred_event: Vec<W::Event>,
}

impl<W: ShardWorld> ShardSnapshot<W> {
    pub fn nshards(&self) -> u32 {
        self.nshards
    }

    /// Pending events across all shard queues.
    pub fn pending_events(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    /// The latest shard clock in the snapshot, picoseconds.
    pub fn time(&self) -> SimTime {
        SimTime(self.nows.iter().copied().max().unwrap_or(0))
    }

    /// Rebuild a simulator from this snapshot. The result — worlds,
    /// queue contents, clocks, deferred sends, lookahead — continues
    /// exactly as the snapshotted simulator would have: `run` /
    /// `run_spec` from here produce bit-identical model results to the
    /// uninterrupted run (the snapshot round-trip proptests pin this).
    pub fn restore(&self) -> ShardSim<W>
    where
        W: Clone,
        W::Event: Clone,
    {
        let n = self.nshards as usize;
        assert!(n >= 1, "snapshot must hold at least one shard");
        assert_eq!(self.la.len(), n * n, "lookahead matrix size mismatch");
        assert!(
            self.worlds.len() == n
                && self.queues.len() == n
                && self.nows.len() == n
                && self.deferred_adjs.len() == n,
            "per-shard snapshot arrays must match the shard count"
        );
        let d = self.deferred_src.len();
        assert!(
            self.deferred_dst.len() == d
                && self.deferred_time.len() == d
                && self.deferred_key.len() == d
                && self.deferred_event.len() == d,
            "deferred-send snapshot arrays must be parallel"
        );
        let lookahead = Lookahead {
            n: self.nshards,
            dist: min_plus_closure(n, &self.la),
            la: self.la.clone(),
            min_la: self.min_la,
        };
        let mut sim = ShardSim::new(self.worlds.clone(), lookahead);
        for (s, slot) in sim.shards.iter_mut().enumerate() {
            slot.queue = EventQueue::from_snapshot(self.queues[s].snapshot_clone());
            slot.now = SimTime(self.nows[s]);
            slot.deferred_adj = self.deferred_adjs[s];
        }
        for i in 0..d {
            let (src, dst) = (self.deferred_src[i] as usize, self.deferred_dst[i] as usize);
            assert!(src < n && dst < n && src != dst, "deferred send has invalid shard ids");
            sim.shards[src].deferred[dst].push(Remote {
                time: SimTime(self.deferred_time[i]),
                key: self.deferred_key[i],
                event: self.deferred_event[i].clone(),
            });
        }
        sim
    }
}

impl<E: Clone> QueueSnapshot<E> {
    /// Owned copy (the snapshot type deliberately has no public
    /// `Clone` bound on its generic, so restores clone explicitly).
    fn snapshot_clone(&self) -> QueueSnapshot<E> {
        QueueSnapshot {
            times: self.times.clone(),
            keys: self.keys.clone(),
            events: self.events.clone(),
            next_seq: self.next_seq,
            scheduled_total: self.scheduled_total,
        }
    }
}

impl<W: ShardWorld + Clone> ShardSim<W>
where
    W::Event: Clone,
{
    /// Capture the full simulator state behind stable IDs. Must be
    /// called at a quiescent point — before any run, or after a run
    /// returned (including a horizon stop); panics if transient
    /// intra-window state is live.
    pub fn snapshot(&self) -> ShardSnapshot<W> {
        let n = self.shards.len();
        let mut deferred_src = Vec::new();
        let mut deferred_dst = Vec::new();
        let mut deferred_time = Vec::new();
        let mut deferred_key = Vec::new();
        let mut deferred_event = Vec::new();
        for (s, slot) in self.shards.iter().enumerate() {
            assert!(
                slot.checkpoint.is_none()
                    && slot.staging.is_empty()
                    && slot.undo.is_empty()
                    && slot.inbox.is_empty()
                    && slot.outbufs.iter().all(Vec::is_empty),
                "snapshot requires a quiescent simulator (between runs)"
            );
            for (dst, buf) in slot.deferred.iter().enumerate() {
                for r in buf {
                    deferred_src.push(s as u32);
                    deferred_dst.push(dst as u32);
                    deferred_time.push(r.time.0);
                    deferred_key.push(r.key);
                    deferred_event.push(r.event.clone());
                }
            }
        }
        ShardSnapshot {
            nshards: n as u32,
            la: self.lookahead.la.clone(),
            min_la: self.lookahead.min_la,
            worlds: self.shards.iter().map(|s| s.world.clone()).collect(),
            queues: self.shards.iter().map(|s| s.queue.snapshot()).collect(),
            nows: self.shards.iter().map(|s| s.now.0).collect(),
            deferred_adjs: self.shards.iter().map(|s| s.deferred_adj).collect(),
            deferred_src,
            deferred_dst,
            deferred_time,
            deferred_key,
            deferred_event,
        }
    }
}

/// Snapshot wire-format version tag (bump on layout changes).
const SHARD_SNAPSHOT_SCHEMA: &str = "polaris-shardsim-snapshot/1";

impl<W> Serialize for ShardSnapshot<W>
where
    W: ShardWorld + Serialize,
    W::Event: Serialize,
{
    fn to_value(&self) -> serde::value::Value {
        use serde::value::Value;
        // Hand-written (the vendored derive does not support
        // generics): field-ordered object matching the declaration.
        Value::Object(vec![
            ("schema".to_string(), Value::Str(SHARD_SNAPSHOT_SCHEMA.to_string())),
            ("nshards".to_string(), self.nshards.to_value()),
            ("la".to_string(), self.la.to_value()),
            ("min_la".to_string(), self.min_la.to_value()),
            ("worlds".to_string(), self.worlds.to_value()),
            ("queues".to_string(), self.queues.to_value()),
            ("nows".to_string(), self.nows.to_value()),
            ("deferred_adjs".to_string(), self.deferred_adjs.to_value()),
            ("deferred_src".to_string(), self.deferred_src.to_value()),
            ("deferred_dst".to_string(), self.deferred_dst.to_value()),
            ("deferred_time".to_string(), self.deferred_time.to_value()),
            ("deferred_key".to_string(), self.deferred_key.to_value()),
            ("deferred_event".to_string(), self.deferred_event.to_value()),
        ])
    }
}

impl<W> Deserialize for ShardSnapshot<W>
where
    W: ShardWorld + Deserialize,
    W::Event: Deserialize,
{
    fn from_value(v: &serde::value::Value) -> Result<Self, serde::DeError> {
        let schema = String::from_value(v.field("schema")?)?;
        if schema != SHARD_SNAPSHOT_SCHEMA {
            return Err(serde::DeError::new(format!(
                "unsupported shard snapshot schema {schema:?} (expected {SHARD_SNAPSHOT_SCHEMA:?})"
            )));
        }
        Ok(ShardSnapshot {
            nshards: u32::from_value(v.field("nshards")?)?,
            la: Vec::<u64>::from_value(v.field("la")?)?,
            min_la: u64::from_value(v.field("min_la")?)?,
            worlds: Vec::<W>::from_value(v.field("worlds")?)?,
            queues: Vec::<QueueSnapshot<W::Event>>::from_value(v.field("queues")?)?,
            nows: Vec::<u64>::from_value(v.field("nows")?)?,
            deferred_adjs: Vec::<u64>::from_value(v.field("deferred_adjs")?)?,
            deferred_src: Vec::<u32>::from_value(v.field("deferred_src")?)?,
            deferred_dst: Vec::<u32>::from_value(v.field("deferred_dst")?)?,
            deferred_time: Vec::<u64>::from_value(v.field("deferred_time")?)?,
            deferred_key: Vec::<u64>::from_value(v.field("deferred_key")?)?,
            deferred_event: Vec::<W::Event>::from_value(v.field("deferred_event")?)?,
        })
    }
}

/// The minimum timestamp shard `slot` could still introduce anywhere:
/// its queue minimum, adjusted for committed-but-unflushed speculative
/// sends (each deferred event `e` to `dst` contributes
/// `e.time - la[s][dst]`, pre-folded into `deferred_adj` at commit) so
/// no peer's window end can overtake a deferred delivery.
fn published_min<W: ShardWorld>(slot: &mut ShardSlot<W>) -> u64 {
    let qmin = slot.queue.peek_time().map_or(u64::MAX, |t| t.0);
    qmin.min(slot.deferred_adj)
}

/// Drain one shard's events strictly below `wend` (and at or below the
/// horizon cap), buffering cross-shard sends per destination.
fn drain_window<W: ShardWorld>(slot: &mut ShardSlot<W>, s: usize, sh: &Shared<'_, W>, wend: u64) {
    loop {
        match slot.queue.peek_time() {
            Some(t) if t.0 < wend && t.0 <= sh.hcap => {}
            _ => break,
        }
        let (t, event) = slot.queue.pop().expect("peeked");
        debug_assert!(t >= slot.now, "clock must be monotone");
        slot.now = t;
        let mut ctx = ShardCtx {
            now: t,
            shard: s as u32,
            nshards: sh.n as u32,
            la: sh.la,
            queue: &mut slot.queue,
            staging: None,
            outbufs: &mut slot.outbufs,
            remote_sent: &mut slot.remote_sent,
        };
        slot.world.handle(&mut ctx, event);
        slot.dispatched += 1;
    }
}

/// Publish this window's outbound buffers — last window's committed
/// speculative sends first, then the conservative sends — one
/// `push_batch` per non-empty buffer: a single release store per
/// (src, dst) pair per window.
fn flush_outbufs<W: ShardWorld>(slot: &mut ShardSlot<W>, s: usize, sh: &Shared<'_, W>) {
    for dst in 0..sh.n {
        if dst == s {
            continue;
        }
        let ch = &sh.channels[s * sh.n + dst];
        if !slot.deferred[dst].is_empty() {
            ch.push_batch(&mut slot.deferred[dst]);
        }
        if !slot.outbufs[dst].is_empty() {
            ch.push_batch(&mut slot.outbufs[dst]);
        }
    }
    slot.deferred_adj = u64::MAX;
}

/// Execute past the conservative horizon, strictly below the commit
/// `bound`, against a checkpoint: pops from the real queue are
/// journaled (with a payload clone) for rollback, locally produced
/// events stage outside the queue, and cross-shard sends buffer in
/// `deferred` pending the commit decision at the merge.
fn speculate<W: ShardWorld, P: SpecPolicy<W>>(
    slot: &mut ShardSlot<W>,
    s: usize,
    sh: &Shared<'_, W>,
    bound: u64,
) {
    if slot.spec_skip > 0 {
        slot.spec_skip -= 1;
        return;
    }
    // Only checkpoint when there is something to speculate on.
    match slot.queue.peek_time() {
        Some(t) if t.0 < bound && t.0 <= sh.hcap => {}
        _ => return,
    }
    debug_assert!(slot.staging.is_empty() && slot.undo.is_empty());
    slot.checkpoint = P::snapshot(&slot.world);
    slot.spec_now = slot.now;
    slot.spec_max = None;
    slot.spec_dispatched = 0;
    slot.spec_remote_sent = 0;
    loop {
        if slot.spec_dispatched >= slot.spec_depth {
            // Adaptive depth cap: stop extending a window whose
            // rollback would discard ever more work. The cap only cuts
            // a window short — never below one event — so results stay
            // identical; only how far ahead the shard risks running
            // changes.
            break;
        }
        let from_queue = {
            let qn = slot.queue.peek_entry();
            let sn = slot.staging.peek().map(|st| (st.time, st.key));
            let ((t, k), from_queue) = match (qn, sn) {
                (None, None) => break,
                (Some(q), None) => (q, true),
                (None, Some(st)) => (st, false),
                (Some(q), Some(st)) => {
                    if q <= st {
                        (q, true)
                    } else {
                        (st, false)
                    }
                }
            };
            if t.0 >= bound || t.0 > sh.hcap {
                break;
            }
            slot.spec_now = t;
            slot.spec_max = Some((t, k));
            from_queue
        };
        let (t, event) = if from_queue {
            let (t, k, event) = slot.queue.pop_entry().expect("peeked");
            slot.undo.push((t, k, P::clone_event(&event)));
            (t, event)
        } else {
            let st = slot.staging.pop().expect("peeked");
            (st.time, st.event)
        };
        let mut ctx = ShardCtx {
            now: t,
            shard: s as u32,
            nshards: sh.n as u32,
            la: sh.la,
            queue: &mut slot.queue,
            staging: Some(&mut slot.staging),
            outbufs: &mut slot.deferred,
            remote_sent: &mut slot.spec_remote_sent,
        };
        slot.world.handle(&mut ctx, event);
        slot.spec_dispatched += 1;
    }
}

/// Merge everything other shards sent to shard `s` into its queue,
/// first resolving any pending speculation: a rollback restores the
/// checkpoint and the pop journal; a commit folds the staged local
/// events into the queue, defers the speculative cross-shard sends to
/// the next flush, and advances the clock. Arrival order is
/// irrelevant: the decision reads the inbox *minimum*, and
/// `push_keyed` restores the global `(time, key)` order.
fn merge_inbox<W: ShardWorld, P: SpecPolicy<W>>(
    slot: &mut ShardSlot<W>,
    s: usize,
    sh: &Shared<'_, W>,
) {
    for src in 0..sh.n {
        sh.channels[src * sh.n + s].drain_into(&mut slot.inbox);
    }
    if P::ENABLED && slot.checkpoint.is_some() {
        let spec_max = slot.spec_max.expect("speculation executed at least one event");
        let inbox_min = slot.inbox.iter().map(|r| (r.time, r.key)).min();
        if inbox_min.is_some_and(|im| im <= spec_max) {
            // Straggler at or below the speculated frontier: discard.
            slot.world = slot.checkpoint.take().expect("checked");
            for (t, k, ev) in slot.undo.drain(..) {
                slot.queue.push_keyed(t, k, ev);
            }
            slot.staging.clear();
            for d in &mut slot.deferred {
                d.clear();
            }
            slot.spec_rollbacks += 1;
            slot.spec_events_rolled_back += slot.spec_dispatched;
            slot.spec_skip = slot.next_backoff;
            slot.next_backoff = (slot.next_backoff * 2).min(MAX_SPEC_BACKOFF);
            slot.spec_depth = (slot.spec_depth / 2).max(SPEC_DEPTH_MIN);
        } else {
            slot.checkpoint = None;
            slot.undo.clear();
            while let Some(st) = slot.staging.pop() {
                slot.queue.push_keyed(st.time, st.key, st.event);
            }
            let mut adj = u64::MAX;
            for (dst, d) in slot.deferred.iter().enumerate() {
                if dst == s {
                    continue;
                }
                for r in d {
                    adj = adj.min(r.time.0 - sh.la.get(s as u32, dst as u32));
                }
            }
            slot.deferred_adj = adj;
            slot.now = slot.spec_now;
            slot.dispatched += slot.spec_dispatched;
            slot.remote_sent += slot.spec_remote_sent;
            slot.spec_commits += 1;
            slot.spec_events_committed += slot.spec_dispatched;
            slot.next_backoff = 1;
            slot.spec_depth = (slot.spec_depth * 2).min(SPEC_DEPTH_MAX);
        }
        slot.spec_max = None;
    }
    for r in slot.inbox.drain(..) {
        debug_assert!(r.time >= slot.now, "remote event inside a drained window");
        slot.queue.push_keyed(r.time, r.key, r.event);
    }
}

/// One shard's worker loop: three barrier waits per window.
///
/// 1. publish the local minimum, barrier, so every shard sees all minima;
/// 2. compute the window bounds (identically on every shard), barrier,
///    so no shard can republish its minimum for the *next* window while
///    a peer is still reading this one's;
/// 3. drain the window, flush, speculate, barrier, then merge inbound
///    channels — the barrier orders every producer's channel pushes
///    before every consumer's drain, and speculation touches only
///    shard-local state, so it overlaps peers' drains for free.
#[allow(clippy::too_many_arguments)]
fn worker<W: ShardWorld, P: SpecPolicy<W>>(
    s: usize,
    slot: &mut ShardSlot<W>,
    sh: &Shared<'_, W>,
    horizon: Option<SimTime>,
    mins: &[AtomicU64],
    barrier: &Barrier,
    windows: &AtomicU64,
    horizon_hit: &AtomicBool,
) {
    let mut local_mins = vec![u64::MAX; sh.n];
    loop {
        let local_min = published_min(slot);
        // Release/Acquire pairs the min publication with its reads: every
        // shard's window computation observes every peer's freshly stored
        // minimum, independent of what ordering the barrier implementation
        // happens to provide. A Relaxed pair here leans on the barrier
        // being a full fence — true for std's Mutex/Condvar barrier, but
        // not a contract, and a stale minimum read would widen the
        // conservative window and violate lookahead.
        mins[s].store(local_min, Ordering::Release);
        barrier.wait();
        for (lm, m) in local_mins.iter_mut().zip(mins.iter()) {
            *lm = m.load(Ordering::Acquire);
        }
        barrier.wait();
        let gmin = *local_mins.iter().min().expect("n >= 1");
        if gmin == u64::MAX {
            break;
        }
        if horizon.is_some_and(|h| gmin > h.0) {
            if s == 0 {
                horizon_hit.store(true, Ordering::Relaxed);
            }
            break;
        }
        if s == 0 {
            windows.fetch_add(1, Ordering::Relaxed);
        }
        let wend = sh.la.window_end(&local_mins, s);
        drain_window(slot, s, sh, wend);
        flush_outbufs(slot, s, sh);
        if P::ENABLED {
            let bound = sh.la.commit_bound(&local_mins, s);
            speculate::<W, P>(slot, s, sh, bound);
        }
        barrier.wait();
        merge_inbox::<W, P>(slot, s, sh);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A ping-pong world: rank r bounces a token to rank (r+1)%hosts,
    /// `hops` times, one hop per lookahead-multiple. Rank state is the
    /// hop count; keys are rank-derived, so any shard count must
    /// produce the identical trace.
    #[derive(Clone)]
    struct PingWorld {
        part: Partition,
        base: u32,
        /// (hops remaining, per-rank event seq) for each local rank.
        ranks: Vec<(u32, u64)>,
        log: Vec<(u64, u32)>,
    }

    #[derive(Debug, Clone)]
    struct Token {
        rank: u32,
        hops_left: u32,
    }

    impl PingWorld {
        fn key(&mut self, rank: u32) -> u64 {
            let st = &mut self.ranks[(rank - self.base) as usize];
            st.1 += 1;
            ((rank as u64) << 32) | st.1
        }
    }

    impl ShardWorld for PingWorld {
        type Event = Token;
        fn handle(&mut self, ctx: &mut ShardCtx<'_, Token>, ev: Token) {
            self.log.push((ctx.now().0, ev.rank));
            self.ranks[(ev.rank - self.base) as usize].0 += 1;
            if ev.hops_left == 0 {
                return;
            }
            let next = (ev.rank + 1) % self.part.hosts;
            let key = self.key(ev.rank);
            let at = SimTime(ctx.now().0 + ctx.lookahead().0);
            ctx.send(
                self.part.shard_of(next),
                at,
                key,
                Token {
                    rank: next,
                    hops_left: ev.hops_left - 1,
                },
            );
        }
    }

    fn ping_worlds(part: Partition) -> Vec<PingWorld> {
        (0..part.nshards)
            .map(|sh| {
                let ranks = part.ranks_of(sh);
                PingWorld {
                    part,
                    base: ranks.start,
                    ranks: ranks.map(|_| (0, 0)).collect(),
                    log: Vec::new(),
                }
            })
            .collect()
    }

    fn seed_ping(sim: &mut ShardSim<PingWorld>, part: Partition, hosts: u32, hops: u32) {
        for r in 0..hosts {
            sim.schedule(
                part.shard_of(r),
                SimTime(r as u64),
                (r as u64) << 32,
                Token {
                    rank: r,
                    hops_left: hops,
                },
            );
        }
    }

    fn run_ping(
        hosts: u32,
        nshards: u32,
        parallel: bool,
        spec: bool,
    ) -> (ShardRunStats, Vec<(u64, u32)>) {
        let part = Partition::block(hosts, nshards);
        let mut sim = ShardSim::uniform(ping_worlds(part), SimDuration(100));
        seed_ping(&mut sim, part, hosts, 40);
        let stats = if spec {
            sim.run_spec(parallel, None)
        } else {
            sim.run(parallel, None)
        };
        // Merge per-shard logs into one global trace ordered by (time, rank).
        let mut log: Vec<(u64, u32)> = sim.worlds().flat_map(|w| w.log.iter().copied()).collect();
        log.sort_unstable();
        (stats, log)
    }

    /// Like [`run_ping`] but with only two tokens on the 8-rank ring —
    /// one per shard at 2 shards, so cross-shard hops happen 1 window
    /// in 4 instead of every window. The sparse traffic is what lets
    /// speculative windows commit (the full ring stragglers every
    /// single merge by construction).
    fn run_two_tokens(
        hops: u32,
        parallel: bool,
        spec: bool,
    ) -> (ShardRunStats, Vec<(u64, u32)>) {
        let hosts = 8;
        let part = Partition::block(hosts, 2);
        let mut sim = ShardSim::uniform(ping_worlds(part), SimDuration(100));
        for r in [0, hosts / 2] {
            sim.schedule(
                part.shard_of(r),
                SimTime(r as u64),
                (r as u64) << 32,
                Token { rank: r, hops_left: hops },
            );
        }
        let stats = if spec {
            sim.run_spec(parallel, None)
        } else {
            sim.run(parallel, None)
        };
        let mut log: Vec<(u64, u32)> = sim.worlds().flat_map(|w| w.log.iter().copied()).collect();
        log.sort_unstable();
        (stats, log)
    }

    #[test]
    fn partition_is_exact_and_contiguous() {
        for hosts in [1u32, 5, 16, 31, 1024] {
            for n in [1u32, 2, 3, 4, 7] {
                let p = Partition::block(hosts, n);
                let mut covered = 0u32;
                for s in 0..p.nshards {
                    let r = p.ranks_of(s);
                    assert_eq!(r.start, covered, "shards must tile contiguously");
                    for rank in r.clone() {
                        assert_eq!(p.shard_of(rank), s);
                    }
                    covered = r.end;
                }
                assert_eq!(covered, hosts);
            }
        }
    }

    #[test]
    fn lookahead_window_math() {
        // 3 shards; la[src][dst] asymmetric. Direct edges are always
        // the cheapest path here, so off-diagonal closure == edges;
        // the diagonal picks up the cheapest round trip.
        let la = Lookahead::from_fn(3, |src, dst| SimDuration(100 * (src as u64 + 1) + dst as u64));
        assert_eq!(la.dist(1, 0), 200);
        assert_eq!(la.dist(0, 0), 301); // 0 -> 1 -> 0 = 101 + 200
        assert_eq!(la.dist(2, 2), 402); // 2 -> 0 -> 2 = 300 + 102
        // mins: shard 0 at 1000, shard 1 at 2000, shard 2 empty.
        let mins = [1000u64, 2000, u64::MAX];
        // wend_0 = min(m0 + rt_0, m1 + la[1][0], m2 + la[2][0])
        //        = min(1000+301, 2000+200, MAX) = 1301
        assert_eq!(la.window_end(&mins, 0), 1301);
        // wend_1 = min(1000+101, 2000+301, MAX) = 1101
        assert_eq!(la.window_end(&mins, 1), 1101);
        // wend_2 = min(1000+102, 2000+202, MAX) = 1102
        assert_eq!(la.window_end(&mins, 2), 1102);
        // bound_0 = min(wend_0 + rt_0, wend_1 + la[1][0], wend_2 + la[2][0])
        //         = min(1301+301, 1101+200, 1102+300) = 1301
        assert_eq!(la.commit_bound(&mins, 0), 1301);
        // With every peer idle, a shard's own pending work still bounds
        // its window through the cheapest round trip — the single-edge
        // formula returned MAX here and drained events its own
        // in-flight sends were about to invalidate.
        let solo = [1000u64, u64::MAX, u64::MAX];
        assert_eq!(la.window_end(&solo, 0), 1301);
        // An empty system never schedules a window.
        let empty = [u64::MAX, u64::MAX, u64::MAX];
        assert_eq!(la.window_end(&empty, 0), u64::MAX);
        // Uniform matrix minimum is the construction value at any n.
        assert_eq!(Lookahead::uniform(1, SimDuration(7)).min(), 7);
        assert_eq!(Lookahead::uniform(4, SimDuration(7)).min(), 7);
    }

    #[test]
    fn shard_counts_produce_identical_traces() {
        let (base_stats, base_log) = run_ping(8, 1, false, false);
        assert_eq!(base_stats.events_dispatched, 8 * 41);
        for nshards in [2u32, 4] {
            for parallel in [false, true] {
                for spec in [false, true] {
                    let (stats, log) = run_ping(8, nshards, parallel, spec);
                    assert_eq!(log, base_log, "nshards={nshards} parallel={parallel} spec={spec}");
                    assert_eq!(stats.events_dispatched, base_stats.events_dispatched);
                    assert_eq!(stats.end_time, base_stats.end_time);
                }
            }
        }
    }

    #[test]
    fn speculation_commits_and_is_jobs_invariant() {
        // Two tokens on the 8-rank ring make cross-shard traffic sparse
        // (1 hop in 4 crosses a boundary), so speculative windows must
        // commit, and the spec stats themselves (decided by published
        // minima and inbox sets, never thread timing) must agree between
        // serial and threaded runs.
        let (serial, log_serial) = run_two_tokens(40, false, true);
        let (threaded, log_threaded) = run_two_tokens(40, true, true);
        assert!(serial.spec_commits > 0, "expected committed speculation");
        assert!(serial.spec_events_committed > 0);
        assert_eq!(serial.spec_commits, threaded.spec_commits);
        assert_eq!(serial.spec_rollbacks, threaded.spec_rollbacks);
        assert_eq!(serial.spec_events_committed, threaded.spec_events_committed);
        assert_eq!(serial.windows, threaded.windows);
        assert_eq!(log_serial, log_threaded);
        // Speculation commits whole conservative windows early, so the
        // windowed run count must strictly drop vs the conservative run.
        let (conservative, cons_log) = run_two_tokens(40, false, false);
        assert_eq!(log_serial, cons_log, "speculation must be transparent");
        assert_eq!(serial.events_dispatched, conservative.events_dispatched);
        assert!(
            serial.windows < conservative.windows,
            "speculation should reduce windows: spec={} conservative={}",
            serial.windows,
            conservative.windows
        );
    }

    /// Two chains engineered so a speculative window meets a straggler:
    /// rank 0 (shard 0) ticks at t=100,200,... and fires a remote
    /// notification at `tick+100` into shard 1; rank 1 (shard 1) ticks
    /// at t=150,250,... — shard 1's speculative execution of its
    /// t=250 tick is invalidated by shard 0's t=200 notification
    /// arriving in the same merge.
    #[derive(Clone)]
    struct StragglerWorld {
        part: Partition,
        base: u32,
        /// (ticks remaining, send seq) per local rank.
        ranks: Vec<(u32, u64)>,
        log: Vec<(u64, u64, u8)>,
    }

    #[derive(Clone, Debug)]
    enum SEv {
        Tick { rank: u32 },
        Note { rank: u32 },
    }

    impl ShardWorld for StragglerWorld {
        type Event = SEv;
        fn handle(&mut self, ctx: &mut ShardCtx<'_, SEv>, ev: SEv) {
            match ev {
                SEv::Tick { rank } => {
                    let st = &mut self.ranks[(rank - self.base) as usize];
                    st.0 -= 1;
                    st.1 += 1;
                    let key = ((rank as u64) << 32) | st.1;
                    self.log.push((ctx.now().0, key, 0));
                    let remaining = st.0;
                    if remaining > 0 {
                        ctx.at(SimTime(ctx.now().0 + 100), key, SEv::Tick { rank });
                    }
                    if rank == 0 {
                        // Cross-shard straggler: lands exactly at the
                        // receiving shard's next window edge.
                        let st = &mut self.ranks[(rank - self.base) as usize];
                        st.1 += 1;
                        let nkey = ((rank as u64) << 32) | st.1;
                        ctx.send(
                            self.part.shard_of(1),
                            SimTime(ctx.now().0 + 100),
                            nkey,
                            SEv::Note { rank: 1 },
                        );
                    }
                }
                SEv::Note { rank } => {
                    self.log.push((ctx.now().0, (rank as u64) << 48, 1));
                }
            }
        }
    }

    fn run_straggler(nshards: u32, parallel: bool, spec: bool) -> (ShardRunStats, Vec<(u64, u64, u8)>) {
        let part = Partition::block(2, nshards);
        let worlds: Vec<StragglerWorld> = (0..part.nshards)
            .map(|sh| {
                let ranks = part.ranks_of(sh);
                StragglerWorld {
                    part,
                    base: ranks.start,
                    ranks: ranks.map(|_| (10, 0)).collect(),
                    log: Vec::new(),
                }
            })
            .collect();
        let mut sim = ShardSim::uniform(worlds, SimDuration(100));
        sim.schedule(part.shard_of(0), SimTime(100), 0, SEv::Tick { rank: 0 });
        sim.schedule(part.shard_of(1), SimTime(150), 1 << 32, SEv::Tick { rank: 1 });
        let stats = if spec {
            sim.run_spec(parallel, None)
        } else {
            sim.run(parallel, None)
        };
        let mut log: Vec<(u64, u64, u8)> =
            sim.worlds().flat_map(|w| w.log.iter().copied()).collect();
        log.sort_unstable();
        (stats, log)
    }

    #[test]
    fn straggler_at_window_edge_rolls_back_and_stays_deterministic() {
        let (stats, log) = run_straggler(2, false, true);
        assert!(stats.spec_rollbacks > 0, "expected at least one rollback");
        assert!(stats.spec_events_rolled_back > 0);
        // Rolled-back work never counts as dispatched, and the final
        // trace matches both the 1-shard run and the conservative run.
        let (base_stats, base_log) = run_straggler(1, false, false);
        assert_eq!(log, base_log);
        assert_eq!(stats.events_dispatched, base_stats.events_dispatched);
        assert_eq!(stats.end_time, base_stats.end_time);
        let (cons_stats, cons_log) = run_straggler(2, false, false);
        assert_eq!(log, cons_log);
        assert_eq!(stats.events_dispatched, cons_stats.events_dispatched);
        // And the threaded run agrees on the rollback accounting too.
        let (threaded, tlog) = run_straggler(2, true, true);
        assert_eq!(tlog, log);
        assert_eq!(threaded.spec_rollbacks, stats.spec_rollbacks);
        assert_eq!(threaded.spec_commits, stats.spec_commits);
    }

    /// A 2-rank exchange with asymmetric per-channel latency: rank 0
    /// messages rank 1 with a 100-tick delay, rank 1 replies with a
    /// 700-tick delay. The per-channel matrix lets shard 0 run 700-wide
    /// windows where the old global minimum (100) would have forced
    /// 7× as many.
    #[derive(Clone)]
    struct AsymWorld {
        part: Partition,
        seq: u64,
        log: Vec<(u64, u32)>,
    }

    #[derive(Clone, Debug)]
    struct Ball {
        rank: u32,
        bounces_left: u32,
    }

    const A_TO_B: u64 = 100;
    const B_TO_A: u64 = 700;

    impl ShardWorld for AsymWorld {
        type Event = Ball;
        fn handle(&mut self, ctx: &mut ShardCtx<'_, Ball>, ev: Ball) {
            self.log.push((ctx.now().0, ev.rank));
            if ev.bounces_left == 0 {
                return;
            }
            let (next, delay) = if ev.rank == 0 { (1, A_TO_B) } else { (0, B_TO_A) };
            self.seq += 1;
            let key = ((ev.rank as u64) << 32) | self.seq;
            ctx.send(
                self.part.shard_of(next),
                SimTime(ctx.now().0 + delay),
                key,
                Ball {
                    rank: next,
                    bounces_left: ev.bounces_left - 1,
                },
            );
        }
    }

    fn run_asym(nshards: u32, spec: bool) -> (ShardRunStats, Vec<(u64, u32)>) {
        let part = Partition::block(2, nshards);
        let la = if part.nshards == 1 {
            Lookahead::uniform(1, SimDuration(A_TO_B))
        } else {
            Lookahead::from_fn(2, |src, _| {
                SimDuration(if src == 0 { A_TO_B } else { B_TO_A })
            })
        };
        let worlds: Vec<AsymWorld> = (0..part.nshards)
            .map(|_| AsymWorld {
                part,
                seq: 0,
                log: Vec::new(),
            })
            .collect();
        let mut sim = ShardSim::new(worlds, la);
        sim.schedule(part.shard_of(0), SimTime(0), 0, Ball { rank: 0, bounces_left: 30 });
        let stats = if spec {
            sim.run_spec(true, None)
        } else {
            sim.run(true, None)
        };
        let mut log: Vec<(u64, u32)> = sim.worlds().flat_map(|w| w.log.iter().copied()).collect();
        log.sort_unstable();
        (stats, log)
    }

    #[test]
    fn per_channel_lookahead_widens_windows_without_changing_results() {
        let (wide_stats, wide_log) = run_asym(2, false);
        let (base_stats, base_log) = run_asym(1, false);
        assert_eq!(wide_log, base_log);
        assert_eq!(wide_stats.events_dispatched, base_stats.events_dispatched);
        // Each 800-tick round trip costs at most 2 windows under the
        // per-channel matrix; the old uniform-100 window would have
        // needed ~8. Bound it loosely to stay robust.
        assert!(
            wide_stats.windows <= 2 * 31 + 4,
            "windows should scale with per-channel latency, got {}",
            wide_stats.windows
        );
        let (spec_stats, spec_log) = run_asym(2, true);
        assert_eq!(spec_log, base_log);
        assert_eq!(spec_stats.events_dispatched, base_stats.events_dispatched);
    }

    #[test]
    fn remote_events_counted_and_published() {
        let (stats, _) = run_ping(8, 4, true, false);
        // Hops from the last rank of one shard to the first of the next
        // cross a boundary; with 8 ranks on 4 shards half of all hops do.
        assert!(stats.remote_events > 0);
        assert!(stats.windows > 0);
        let obs = Obs::new();
        stats.publish(&obs);
        let total: u64 = (0..4)
            .map(|s| {
                obs.registry
                    .counter_value("shard_events_dispatched_total", &[("shard", &s.to_string())])
            })
            .sum();
        assert_eq!(total, stats.events_dispatched);
        assert_eq!(
            obs.registry.counter_value("shard_remote_events_total", &[]),
            stats.remote_events
        );
        assert_eq!(
            obs.registry.counter_value("shard_windows_total", &[]),
            stats.windows
        );
    }

    #[test]
    fn spec_counters_published_when_speculating() {
        let (stats, _) = run_two_tokens(40, false, true);
        assert!(stats.spec_commits > 0);
        let obs = Obs::new();
        stats.publish(&obs);
        assert_eq!(
            obs.registry.counter_value("shard_spec_commits_total", &[]),
            stats.spec_commits
        );
        assert_eq!(
            obs.registry
                .counter_value("shard_spec_events_committed_total", &[]),
            stats.spec_events_committed
        );
    }

    /// Targeted race test for the cross-shard min-time handoff (runs
    /// under the scheduled TSan job via the `shard` filter): N threads
    /// repeat the worker loop's publish/compute protocol — Release-store
    /// a local minimum, barrier, Acquire-load all minima — and every
    /// thread must compute the true global minimum of the values
    /// actually published this window. A stale read (the failure mode of
    /// an unfenced Relaxed pair on a weaker barrier) surfaces as a
    /// mismatch here and as a data race under TSan.
    #[test]
    fn shard_min_handoff_never_reads_stale_minima() {
        use std::sync::atomic::AtomicU64;
        use std::sync::Barrier;

        const THREADS: usize = 4;
        const WINDOWS: u64 = 500;
        let mins: Vec<AtomicU64> = (0..THREADS).map(|_| AtomicU64::new(0)).collect();
        let barrier = Barrier::new(THREADS);
        std::thread::scope(|scope| {
            let mins = &mins;
            let barrier = &barrier;
            for t in 0..THREADS {
                scope.spawn(move || {
                    // Deterministic per-thread value stream; every thread
                    // can recompute every peer's publication for the
                    // window and hence the expected minimum.
                    let val = |thread: u64, window: u64| {
                        crate::rng::SplitMix64::new(thread ^ (window << 8)).next_u64()
                    };
                    for w in 0..WINDOWS {
                        mins[t].store(val(t as u64, w), Ordering::Release);
                        barrier.wait();
                        let gmin = mins
                            .iter()
                            .map(|m| m.load(Ordering::Acquire))
                            .min()
                            .expect("n >= 1");
                        let expect =
                            (0..THREADS as u64).map(|p| val(p, w)).min().expect("n >= 1");
                        assert_eq!(gmin, expect, "thread {t} read a stale minimum in window {w}");
                        barrier.wait();
                    }
                });
            }
        });
    }

    #[test]
    fn horizon_stops_windows() {
        let part = Partition::block(4, 2);
        let worlds = ping_worlds(part);
        let mut sim = ShardSim::uniform(worlds, SimDuration(100));
        sim.schedule(0, SimTime::ZERO, 0, Token { rank: 0, hops_left: 1000 });
        let stats = sim.run(true, Some(SimTime(500)));
        assert!(stats.horizon_reached);
        assert_eq!(stats.end_time, SimTime(500));
        assert!(stats.events_dispatched <= 7);
    }

    #[test]
    fn horizon_is_event_granular() {
        // Events land at 0,100,...; horizon 500 admits exactly t <= 500
        // (six events), never a "same window but past the horizon"
        // straggler — and the identical count with speculation on.
        for spec in [false, true] {
            let part = Partition::block(4, 2);
            let worlds = ping_worlds(part);
            let mut sim = ShardSim::uniform(worlds, SimDuration(100));
            sim.schedule(0, SimTime::ZERO, 0, Token { rank: 0, hops_left: 1000 });
            let stats = if spec {
                sim.run_spec(true, Some(SimTime(500)))
            } else {
                sim.run(true, Some(SimTime(500)))
            };
            assert_eq!(stats.events_dispatched, 6, "spec={spec}");
            assert!(stats.horizon_reached);
        }
    }
}
