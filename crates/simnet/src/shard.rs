//! Sharded conservative-parallel discrete-event execution.
//!
//! [`ShardSim`] partitions a model across worker shards, each owning an
//! independent calendar [`EventQueue`], and runs them in *conservative
//! time windows*: every round, the shards agree on the global minimum
//! pending timestamp `T` and each drains its local events in
//! `[T, T + L)`, where the lookahead `L` is the minimum cross-shard
//! link latency (`LinkModel::hop_latency` via `LinkModel::min_latency`
//! in the network models built on this). Conservative synchronization
//! is sound because an event executing at `t >= T` can only schedule a
//! *remote* event at `t' >= t + L >= T + L` — strictly beyond the
//! window — so when a shard drains a window, every event that could
//! fall inside it is already in its queue.
//!
//! Cross-shard events travel through bounded lock-free SPSC
//! [`ShardChannel`]s (one per shard pair) and are merged at the window
//! barrier into the destination's calendar queue via
//! [`EventQueue::push_keyed`]. Determinism — and, stronger,
//! *shard-count invariance* — comes from the key discipline: models
//! supply tie-break keys derived from global identities (rank, per-rank
//! sequence), never from shard ids or arrival order, so the
//! `(time, key)` total order every shard executes is the same whether
//! the model runs on 1, 2, or 4 shards. The oracle suite in
//! `tests/parallel_determinism.rs` asserts exactly that.
//!
//! Synchronization is three `std::sync::Barrier` waits per window
//! (publish local minima / adopt the window / exchange channels) —
//! blocking primitives throughout, never spin loops, so oversubscribed
//! hosts degrade gracefully instead of livelocking.

use crate::channel::ShardChannel;
use crate::event::EventQueue;
use crate::time::{SimDuration, SimTime};
use crate::topology::Topology;
use polaris_obs::Obs;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Barrier;

// ---------------------------------------------------------------------
// Partitioning
// ---------------------------------------------------------------------

/// Block partition of `hosts` simulated nodes across `nshards` engine
/// shards: shard `s` owns the contiguous rank range
/// `ceil(s*hosts/n) .. ceil((s+1)*hosts/n)`. Contiguity keeps each
/// shard's working set dense, and the arithmetic is exact for any
/// (hosts, nshards) pair — shard sizes differ by at most one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partition {
    pub hosts: u32,
    pub nshards: u32,
    /// Shard boundaries are snapped to multiples of `align` ranks.
    /// `block()` uses 1 (plain block partition); `for_topology` on a
    /// Dragonfly snaps to the group size so a group's dense local
    /// traffic never crosses a shard boundary.
    align: u32,
}

impl Partition {
    /// `nshards` is clamped to `1..=hosts` (an empty shard would stall
    /// no one, but there is no reason to create it).
    pub fn block(hosts: u32, nshards: u32) -> Self {
        Partition {
            hosts,
            nshards: nshards.clamp(1, hosts.max(1)),
            align: 1,
        }
    }

    /// Block partition whose shard boundaries fall only on multiples of
    /// `align` ranks (the last block absorbs any remainder). `nshards`
    /// is additionally clamped so no shard is empty.
    pub fn block_aligned(hosts: u32, nshards: u32, align: u32) -> Self {
        let align = align.clamp(1, hosts.max(1));
        let nblocks = hosts.div_ceil(align).max(1);
        Partition {
            hosts,
            nshards: nshards.clamp(1, nblocks),
            align,
        }
    }

    /// Partition the hosts of a topology. Dragonfly topologies are
    /// partitioned on group boundaries (all hosts of a group share a
    /// shard); every other kind gets the plain block partition.
    pub fn for_topology(topo: &Topology, nshards: u32) -> Self {
        match topo.kind() {
            crate::topology::TopologyKind::Dragonfly { .. } => {
                Self::block_aligned(topo.hosts(), nshards, topo.group_size())
            }
            _ => Self::block(topo.hosts(), nshards),
        }
    }

    /// The boundary-snapping unit (1 for plain block partitions).
    #[inline]
    pub fn align(&self) -> u32 {
        self.align
    }

    /// Number of indivisible alignment blocks.
    #[inline]
    fn nblocks(&self) -> u64 {
        (self.hosts as u64).div_ceil(self.align as u64).max(1)
    }

    /// Which shard owns `rank`.
    #[inline]
    pub fn shard_of(&self, rank: u32) -> u32 {
        debug_assert!(rank < self.hosts);
        let block = (rank / self.align) as u64;
        ((block * self.nshards as u64) / self.nblocks()) as u32
    }

    /// The contiguous rank range shard `shard` owns.
    pub fn ranks_of(&self, shard: u32) -> std::ops::Range<u32> {
        debug_assert!(shard < self.nshards);
        let nb = self.nblocks();
        let lo_b = (shard as u64 * nb).div_ceil(self.nshards as u64);
        let hi_b = ((shard as u64 + 1) * nb).div_ceil(self.nshards as u64);
        let lo = (lo_b * self.align as u64).min(self.hosts as u64) as u32;
        let hi = (hi_b * self.align as u64).min(self.hosts as u64) as u32;
        lo..hi
    }
}

// ---------------------------------------------------------------------
// World interface
// ---------------------------------------------------------------------

/// One shard's slice of the model state, driven by [`ShardSim`].
///
/// The key discipline that makes runs shard-count invariant: every
/// event scheduled through [`ShardCtx::send`] carries a tie-break key
/// the model derives from *global* identities (e.g. `rank << 32 | seq`)
/// — never from the shard id, the thread, or channel arrival order.
pub trait ShardWorld: Send {
    type Event: Send;
    /// Handle one event at `ctx.now()`.
    fn handle(&mut self, ctx: &mut ShardCtx<'_, Self::Event>, event: Self::Event);
}

/// An event in flight between shards.
struct Remote<E> {
    time: SimTime,
    key: u64,
    event: E,
}

/// Scheduling interface handed to [`ShardWorld::handle`].
pub struct ShardCtx<'a, E> {
    now: SimTime,
    shard: u32,
    nshards: u32,
    lookahead: SimDuration,
    queue: &'a mut EventQueue<E>,
    /// This shard's outbound channel row, indexed by destination shard.
    outboxes: &'a [ShardChannel<Remote<E>>],
    remote_sent: &'a mut u64,
}

impl<E> ShardCtx<'_, E> {
    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The shard this handler is executing on.
    #[inline]
    pub fn shard(&self) -> u32 {
        self.shard
    }

    #[inline]
    pub fn nshards(&self) -> u32 {
        self.nshards
    }

    /// The conservative lookahead: cross-shard events must be scheduled
    /// at least this far past `now`.
    #[inline]
    pub fn lookahead(&self) -> SimDuration {
        self.lookahead
    }

    /// Schedule `event` at `time` on shard `dst`, tie-broken by `key`.
    ///
    /// Local sends (`dst == self.shard()`) may target any `time >= now`.
    /// Cross-shard sends must satisfy `time >= now + lookahead` — the
    /// conservative window contract; debug builds assert it.
    pub fn send(&mut self, dst: u32, time: SimTime, key: u64, event: E) {
        debug_assert!(time >= self.now, "event scheduled in the past");
        if dst == self.shard {
            self.queue.push_keyed(time.max(self.now), key, event);
        } else {
            debug_assert!(
                time.0 >= self.now.0 + self.lookahead.0,
                "cross-shard event at {} violates lookahead {} from {}",
                time.0,
                self.lookahead.0,
                self.now.0
            );
            *self.remote_sent += 1;
            self.outboxes[dst as usize].push(Remote { time, key, event });
        }
    }

    /// Schedule a local event (shorthand for `send` to the own shard).
    pub fn at(&mut self, time: SimTime, key: u64, event: E) {
        let shard = self.shard;
        self.send(shard, time, key, event);
    }
}

// ---------------------------------------------------------------------
// The sharded simulator
// ---------------------------------------------------------------------

/// Outcome of a sharded run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRunStats {
    /// Events dispatched, summed over shards.
    pub events_dispatched: u64,
    /// Events dispatched per shard, indexed by shard id.
    pub per_shard_events: Vec<u64>,
    /// Conservative windows executed.
    pub windows: u64,
    /// Events that crossed a shard boundary.
    pub remote_events: u64,
    /// Simulated time when the run stopped.
    pub end_time: SimTime,
    /// True if the run stopped at the horizon with events pending.
    pub horizon_reached: bool,
}

impl ShardRunStats {
    /// Export the run's counters through an observability registry:
    /// `shard_events_dispatched_total{shard=..}`, `shard_windows_total`,
    /// and `shard_remote_events_total`. Counters accumulate across runs
    /// sharing one registry, matching every other ledger in the stack.
    pub fn publish(&self, obs: &Obs) {
        for (s, &n) in self.per_shard_events.iter().enumerate() {
            let label = s.to_string();
            obs.counter("shard_events_dispatched_total", &[("shard", &label)])
                .add(n);
        }
        obs.counter("shard_windows_total", &[]).add(self.windows);
        obs.counter("shard_remote_events_total", &[]).add(self.remote_events);
    }
}

struct ShardSlot<W: ShardWorld> {
    world: W,
    queue: EventQueue<W::Event>,
    now: SimTime,
    dispatched: u64,
    remote_sent: u64,
    /// Reusable merge buffer for inbound remote events.
    inbox: Vec<Remote<W::Event>>,
}

/// A model partitioned across shards, executed in conservative windows.
pub struct ShardSim<W: ShardWorld> {
    shards: Vec<ShardSlot<W>>,
    lookahead: SimDuration,
}

impl<W: ShardWorld> ShardSim<W> {
    /// One world per shard. `lookahead` must be positive — it is the
    /// minimum latency of any cross-shard interaction, and a zero
    /// lookahead would make the conservative window empty.
    pub fn new(worlds: Vec<W>, lookahead: SimDuration) -> Self {
        assert!(!worlds.is_empty(), "at least one shard required");
        assert!(lookahead.0 > 0, "conservative lookahead must be positive");
        ShardSim {
            shards: worlds
                .into_iter()
                .map(|world| ShardSlot {
                    world,
                    queue: EventQueue::new(),
                    now: SimTime::ZERO,
                    dispatched: 0,
                    remote_sent: 0,
                    inbox: Vec::new(),
                })
                .collect(),
            lookahead,
        }
    }

    pub fn nshards(&self) -> u32 {
        self.shards.len() as u32
    }

    /// Seed an event before the run (same key discipline as
    /// [`ShardCtx::send`]).
    pub fn schedule(&mut self, shard: u32, time: SimTime, key: u64, event: W::Event) {
        self.shards[shard as usize].queue.push_keyed(time, key, event);
    }

    /// The shard worlds, indexed by shard id (for result extraction).
    pub fn worlds(&self) -> impl Iterator<Item = &W> {
        self.shards.iter().map(|s| &s.world)
    }

    /// Run to completion (or `horizon`). With `parallel` set, each
    /// shard gets its own worker thread; otherwise the same windowed
    /// algorithm runs on the calling thread, shard by shard — both
    /// paths execute the identical `(time, key)` order, so they produce
    /// identical results by construction.
    pub fn run(&mut self, parallel: bool, horizon: Option<SimTime>) -> ShardRunStats {
        let n = self.shards.len();
        let lookahead = self.lookahead;
        let channels: Vec<ShardChannel<Remote<W::Event>>> =
            (0..n * n).map(|_| ShardChannel::new()).collect();
        let windows = AtomicU64::new(0);
        let horizon_hit = AtomicBool::new(false);

        if !parallel || n == 1 {
            loop {
                let gmin = self
                    .shards
                    .iter_mut()
                    .filter_map(|s| s.queue.peek_time())
                    .map(|t| t.0)
                    .min();
                let Some(gmin) = gmin else { break };
                if horizon.is_some_and(|h| gmin > h.0) {
                    horizon_hit.store(true, Ordering::Relaxed);
                    break;
                }
                windows.fetch_add(1, Ordering::Relaxed);
                let wend = gmin.saturating_add(lookahead.0);
                for (s, slot) in self.shards.iter_mut().enumerate() {
                    drain_window(slot, s, n, lookahead, wend, &channels);
                }
                for (s, slot) in self.shards.iter_mut().enumerate() {
                    merge_inbox(slot, s, n, &channels);
                }
            }
        } else {
            let barrier = Barrier::new(n);
            let mins: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(u64::MAX)).collect();
            std::thread::scope(|scope| {
                for (s, slot) in self.shards.iter_mut().enumerate() {
                    let (channels, mins, barrier) = (&channels, &mins, &barrier);
                    let (windows, horizon_hit) = (&windows, &horizon_hit);
                    scope.spawn(move || {
                        worker(
                            s, n, slot, lookahead, horizon, channels, mins, barrier, windows,
                            horizon_hit,
                        );
                    });
                }
            });
        }

        let per_shard_events: Vec<u64> = self.shards.iter().map(|s| s.dispatched).collect();
        let horizon_reached = horizon_hit.load(Ordering::Relaxed);
        let end_time = if horizon_reached {
            horizon.expect("horizon_reached implies a horizon")
        } else {
            self.shards.iter().map(|s| s.now).max().unwrap_or(SimTime::ZERO)
        };
        // Reset per-run tallies so repeated runs don't double-count.
        let stats = ShardRunStats {
            events_dispatched: per_shard_events.iter().sum(),
            per_shard_events,
            windows: windows.load(Ordering::Relaxed),
            remote_events: self.shards.iter().map(|s| s.remote_sent).sum(),
            end_time,
            horizon_reached,
        };
        for s in &mut self.shards {
            s.dispatched = 0;
            s.remote_sent = 0;
        }
        stats
    }
}

/// Drain one shard's events in `[.., wend)`, routing cross-shard sends
/// into the channel matrix row `s`.
fn drain_window<W: ShardWorld>(
    slot: &mut ShardSlot<W>,
    s: usize,
    n: usize,
    lookahead: SimDuration,
    wend: u64,
    channels: &[ShardChannel<Remote<W::Event>>],
) {
    let outboxes = &channels[s * n..(s + 1) * n];
    loop {
        match slot.queue.peek_time() {
            Some(t) if t.0 < wend => {}
            _ => break,
        }
        let (t, event) = slot.queue.pop().expect("peeked");
        debug_assert!(t >= slot.now, "clock must be monotone");
        slot.now = t;
        let mut ctx = ShardCtx {
            now: t,
            shard: s as u32,
            nshards: n as u32,
            lookahead,
            queue: &mut slot.queue,
            outboxes,
            remote_sent: &mut slot.remote_sent,
        };
        slot.world.handle(&mut ctx, event);
        slot.dispatched += 1;
    }
}

/// Merge everything other shards sent to shard `s` into its queue.
/// Arrival order is irrelevant: `push_keyed` restores the global
/// `(time, key)` order.
fn merge_inbox<W: ShardWorld>(
    slot: &mut ShardSlot<W>,
    s: usize,
    n: usize,
    channels: &[ShardChannel<Remote<W::Event>>],
) {
    for src in 0..n {
        channels[src * n + s].drain_into(&mut slot.inbox);
    }
    for r in slot.inbox.drain(..) {
        debug_assert!(r.time >= slot.now, "remote event inside a drained window");
        slot.queue.push_keyed(r.time, r.key, r.event);
    }
}

/// One shard's worker loop: three barrier waits per window.
///
/// 1. publish the local minimum, barrier, so every shard sees all minima;
/// 2. compute the window (identically on every shard), barrier, so no
///    shard can republish its minimum for the *next* window while a
///    peer is still reading this one's;
/// 3. drain the window, barrier, then merge inbound channels — the
///    barrier orders every producer's channel pushes before every
///    consumer's drain.
#[allow(clippy::too_many_arguments)]
fn worker<W: ShardWorld>(
    s: usize,
    n: usize,
    slot: &mut ShardSlot<W>,
    lookahead: SimDuration,
    horizon: Option<SimTime>,
    channels: &[ShardChannel<Remote<W::Event>>],
    mins: &[AtomicU64],
    barrier: &Barrier,
    windows: &AtomicU64,
    horizon_hit: &AtomicBool,
) {
    loop {
        let local_min = slot.queue.peek_time().map_or(u64::MAX, |t| t.0);
        // Release/Acquire pairs the min publication with its reads: every
        // shard's window computation observes every peer's freshly stored
        // minimum, independent of what ordering the barrier implementation
        // happens to provide. A Relaxed pair here leans on the barrier
        // being a full fence — true for std's Mutex/Condvar barrier, but
        // not a contract, and a stale minimum read would widen the
        // conservative window and violate lookahead.
        mins[s].store(local_min, Ordering::Release);
        barrier.wait();
        let gmin = mins.iter().map(|m| m.load(Ordering::Acquire)).min().expect("n >= 1");
        barrier.wait();
        if gmin == u64::MAX {
            break;
        }
        if horizon.is_some_and(|h| gmin > h.0) {
            if s == 0 {
                horizon_hit.store(true, Ordering::Relaxed);
            }
            break;
        }
        if s == 0 {
            windows.fetch_add(1, Ordering::Relaxed);
        }
        let wend = gmin.saturating_add(lookahead.0);
        drain_window(slot, s, n, lookahead, wend, channels);
        barrier.wait();
        merge_inbox(slot, s, n, channels);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A ping-pong world: rank r bounces a token to rank (r+1)%hosts,
    /// `hops` times, one hop per lookahead-multiple. Rank state is the
    /// hop count; keys are rank-derived, so any shard count must
    /// produce the identical trace.
    struct PingWorld {
        part: Partition,
        base: u32,
        /// (hops remaining, per-rank event seq) for each local rank.
        ranks: Vec<(u32, u64)>,
        log: Vec<(u64, u32)>,
    }

    #[derive(Debug)]
    struct Token {
        rank: u32,
        hops_left: u32,
    }

    impl PingWorld {
        fn key(&mut self, rank: u32) -> u64 {
            let st = &mut self.ranks[(rank - self.base) as usize];
            st.1 += 1;
            ((rank as u64) << 32) | st.1
        }
    }

    impl ShardWorld for PingWorld {
        type Event = Token;
        fn handle(&mut self, ctx: &mut ShardCtx<'_, Token>, ev: Token) {
            self.log.push((ctx.now().0, ev.rank));
            self.ranks[(ev.rank - self.base) as usize].0 += 1;
            if ev.hops_left == 0 {
                return;
            }
            let next = (ev.rank + 1) % self.part.hosts;
            let key = self.key(ev.rank);
            let at = SimTime(ctx.now().0 + ctx.lookahead().0);
            ctx.send(
                self.part.shard_of(next),
                at,
                key,
                Token {
                    rank: next,
                    hops_left: ev.hops_left - 1,
                },
            );
        }
    }

    fn run_ping(hosts: u32, nshards: u32, parallel: bool) -> (ShardRunStats, Vec<(u64, u32)>) {
        let part = Partition::block(hosts, nshards);
        let worlds: Vec<PingWorld> = (0..part.nshards)
            .map(|sh| {
                let ranks = part.ranks_of(sh);
                PingWorld {
                    part,
                    base: ranks.start,
                    ranks: ranks.map(|_| (0, 0)).collect(),
                    log: Vec::new(),
                }
            })
            .collect();
        let mut sim = ShardSim::new(worlds, SimDuration(100));
        for r in 0..hosts {
            sim.schedule(
                part.shard_of(r),
                SimTime(r as u64),
                (r as u64) << 32,
                Token {
                    rank: r,
                    hops_left: 40,
                },
            );
        }
        let stats = sim.run(parallel, None);
        // Merge per-shard logs into one global trace ordered by (time, rank).
        let mut log: Vec<(u64, u32)> = sim.worlds().flat_map(|w| w.log.iter().copied()).collect();
        log.sort_unstable();
        (stats, log)
    }

    #[test]
    fn partition_is_exact_and_contiguous() {
        for hosts in [1u32, 5, 16, 31, 1024] {
            for n in [1u32, 2, 3, 4, 7] {
                let p = Partition::block(hosts, n);
                let mut covered = 0u32;
                for s in 0..p.nshards {
                    let r = p.ranks_of(s);
                    assert_eq!(r.start, covered, "shards must tile contiguously");
                    for rank in r.clone() {
                        assert_eq!(p.shard_of(rank), s);
                    }
                    covered = r.end;
                }
                assert_eq!(covered, hosts);
            }
        }
    }

    #[test]
    fn shard_counts_produce_identical_traces() {
        let (base_stats, base_log) = run_ping(8, 1, false);
        assert_eq!(base_stats.events_dispatched, 8 * 41);
        for nshards in [2u32, 4] {
            for parallel in [false, true] {
                let (stats, log) = run_ping(8, nshards, parallel);
                assert_eq!(log, base_log, "nshards={nshards} parallel={parallel}");
                assert_eq!(stats.events_dispatched, base_stats.events_dispatched);
                assert_eq!(stats.end_time, base_stats.end_time);
            }
        }
    }

    #[test]
    fn remote_events_counted_and_published() {
        let (stats, _) = run_ping(8, 4, true);
        // Hops from the last rank of one shard to the first of the next
        // cross a boundary; with 8 ranks on 4 shards half of all hops do.
        assert!(stats.remote_events > 0);
        assert!(stats.windows > 0);
        let obs = Obs::new();
        stats.publish(&obs);
        let total: u64 = (0..4)
            .map(|s| {
                obs.registry
                    .counter_value("shard_events_dispatched_total", &[("shard", &s.to_string())])
            })
            .sum();
        assert_eq!(total, stats.events_dispatched);
        assert_eq!(
            obs.registry.counter_value("shard_remote_events_total", &[]),
            stats.remote_events
        );
        assert_eq!(
            obs.registry.counter_value("shard_windows_total", &[]),
            stats.windows
        );
    }

    /// Targeted race test for the cross-shard min-time handoff (runs
    /// under the scheduled TSan job via the `shard` filter): N threads
    /// repeat the worker loop's publish/compute protocol — Release-store
    /// a local minimum, barrier, Acquire-load all minima — and every
    /// thread must compute the true global minimum of the values
    /// actually published this window. A stale read (the failure mode of
    /// an unfenced Relaxed pair on a weaker barrier) surfaces as a
    /// mismatch here and as a data race under TSan.
    #[test]
    fn shard_min_handoff_never_reads_stale_minima() {
        use std::sync::atomic::AtomicU64;
        use std::sync::Barrier;

        const THREADS: usize = 4;
        const WINDOWS: u64 = 500;
        let mins: Vec<AtomicU64> = (0..THREADS).map(|_| AtomicU64::new(0)).collect();
        let barrier = Barrier::new(THREADS);
        std::thread::scope(|scope| {
            let mins = &mins;
            let barrier = &barrier;
            for t in 0..THREADS {
                scope.spawn(move || {
                    // Deterministic per-thread value stream; every thread
                    // can recompute every peer's publication for the
                    // window and hence the expected minimum.
                    let val = |thread: u64, window: u64| {
                        crate::rng::SplitMix64::new(thread ^ (window << 8)).next_u64()
                    };
                    for w in 0..WINDOWS {
                        mins[t].store(val(t as u64, w), Ordering::Release);
                        barrier.wait();
                        let gmin = mins
                            .iter()
                            .map(|m| m.load(Ordering::Acquire))
                            .min()
                            .expect("n >= 1");
                        let expect =
                            (0..THREADS as u64).map(|p| val(p, w)).min().expect("n >= 1");
                        assert_eq!(gmin, expect, "thread {t} read a stale minimum in window {w}");
                        barrier.wait();
                    }
                });
            }
        });
    }

    #[test]
    fn horizon_stops_windows() {
        let part = Partition::block(4, 2);
        let worlds: Vec<PingWorld> = (0..2)
            .map(|sh| {
                let ranks = part.ranks_of(sh);
                PingWorld {
                    part,
                    base: ranks.start,
                    ranks: ranks.map(|_| (0, 0)).collect(),
                    log: Vec::new(),
                }
            })
            .collect();
        let mut sim = ShardSim::new(worlds, SimDuration(100));
        sim.schedule(0, SimTime::ZERO, 0, Token { rank: 0, hops_left: 1000 });
        let stats = sim.run(true, Some(SimTime(500)));
        assert!(stats.horizon_reached);
        assert_eq!(stats.end_time, SimTime(500));
        assert!(stats.events_dispatched <= 7);
    }
}
