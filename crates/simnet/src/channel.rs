//! Bounded lock-free single-producer/single-consumer channels for
//! cross-shard event transport.
//!
//! The sharded engine wires one [`ShardChannel`] per (source shard,
//! destination shard) pair: exactly one thread ever pushes and exactly
//! one thread ever drains a given channel, so a classic SPSC ring with
//! acquire/release head/tail indices is sufficient — no CAS loops, no
//! spinning (which would be pathological on oversubscribed hosts where
//! worker threads share cores). When a window produces more cross-shard
//! events than the ring holds, the excess overflows into a mutex-guarded
//! spill vector instead of blocking: conservative windows drain every
//! channel at the next barrier, so the spill stays cold and correctness
//! never depends on ring capacity.
//!
//! Delivery order across the channel is whatever the producer pushed —
//! the consumer re-keys everything into its calendar queue by
//! `(time, key)`, so transport order is deliberately irrelevant to the
//! simulation outcome.

use parking_lot::Mutex;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default ring capacity per shard pair; sized for the largest window
/// burst the collective workloads produce without measurable memory
/// cost (a few KiB per pair).
pub const DEFAULT_RING_CAPACITY: usize = 1024;

/// A bounded SPSC ring with a mutex spill for overflow.
pub struct ShardChannel<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
    /// Next slot the consumer will read. Written by the consumer only.
    head: AtomicUsize,
    /// Next slot the producer will write. Written by the producer only.
    tail: AtomicUsize,
    /// Overflow beyond the ring; drained after the ring each sweep.
    spill: Mutex<Vec<T>>,
    /// Events that took the spill path (capacity-pressure telemetry).
    spilled: AtomicUsize,
}

// SAFETY: the ring hands each `T` from exactly one producer thread to
// exactly one consumer thread; slot publication is ordered by the
// release store of `tail` and the acquire load in `drain_into` (and
// symmetrically for `head` reuse). `T: Send` is all that transfer needs.
unsafe impl<T: Send> Send for ShardChannel<T> {}
unsafe impl<T: Send> Sync for ShardChannel<T> {}

impl<T> ShardChannel<T> {
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_RING_CAPACITY)
    }

    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(2);
        ShardChannel {
            buf: (0..cap).map(|_| UnsafeCell::new(MaybeUninit::uninit())).collect(),
            mask: cap - 1,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            spill: Mutex::new(Vec::new()),
            spilled: AtomicUsize::new(0),
        }
    }

    /// Enqueue from the owning producer thread. Never blocks: a full
    /// ring overflows into the spill vector.
    pub fn push(&self, value: T) {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) > self.mask {
            self.spilled.fetch_add(1, Ordering::Relaxed);
            self.spill.lock().push(value);
            return;
        }
        // SAFETY: `head <= tail - cap` was just excluded, so slot
        // `tail & mask` is not under the consumer; only this producer
        // writes slots at `tail`.
        unsafe {
            (*self.buf[tail & self.mask].get()).write(value);
        }
        self.tail.store(tail.wrapping_add(1), Ordering::Release);
    }

    /// Enqueue a whole window's worth of events from the owning producer
    /// thread in one publication: one acquire load of `head`, slot
    /// writes for everything that fits, and a *single* release store of
    /// `tail` — versus one release store per event through [`push`].
    /// Overflow moves into the spill vector under one lock acquisition.
    /// `items` is drained (left empty, capacity retained) so the caller
    /// can reuse its outbound buffer allocation every window.
    ///
    /// [`push`]: ShardChannel::push
    pub fn push_batch(&self, items: &mut Vec<T>) {
        if items.is_empty() {
            return;
        }
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        let room = (self.mask + 1) - tail.wrapping_sub(head);
        let fit = items.len().min(room);
        if fit < items.len() {
            self.spilled.fetch_add(items.len() - fit, Ordering::Relaxed);
            let mut spill = self.spill.lock();
            spill.extend(items.drain(fit..));
        }
        for (i, value) in items.drain(..).enumerate() {
            // SAFETY: slots `tail..tail+fit` are vacant (the `room`
            // check above excludes the consumer), and only this producer
            // writes at `tail`.
            unsafe {
                (*self.buf[tail.wrapping_add(i) & self.mask].get()).write(value);
            }
        }
        self.tail.store(tail.wrapping_add(fit), Ordering::Release);
    }

    /// Drain everything currently in the channel into `out`, from the
    /// owning consumer thread. Returns the number of events moved.
    pub fn drain_into(&self, out: &mut Vec<T>) -> usize {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        let n = tail.wrapping_sub(head);
        out.reserve(n);
        for i in 0..n {
            // SAFETY: slots `head..tail` were published by the producer's
            // release store of `tail`; only this consumer reads them, and
            // `head` is not advanced until after the reads.
            let v = unsafe { (*self.buf[(head.wrapping_add(i)) & self.mask].get()).assume_init_read() };
            out.push(v);
        }
        self.head.store(tail, Ordering::Release);
        let mut spill = self.spill.lock();
        let spilled = spill.len();
        out.append(&mut spill);
        n + spilled
    }

    /// Events that overflowed the ring into the spill path so far.
    pub fn spilled(&self) -> usize {
        self.spilled.load(Ordering::Relaxed)
    }
}

impl<T> Default for ShardChannel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Drop for ShardChannel<T> {
    fn drop(&mut self) {
        // Drop any undelivered ring occupants exactly once.
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Relaxed);
        for i in head..tail {
            unsafe {
                (*self.buf[i & self.mask].get()).assume_init_drop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn roundtrip_preserves_content() {
        let ch = ShardChannel::with_capacity(8);
        for i in 0..5 {
            ch.push(i);
        }
        let mut out = Vec::new();
        assert_eq!(ch.drain_into(&mut out), 5);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn overflow_spills_instead_of_blocking() {
        let ch = ShardChannel::with_capacity(4);
        for i in 0..20 {
            ch.push(i);
        }
        assert!(ch.spilled() > 0);
        let mut out = Vec::new();
        assert_eq!(ch.drain_into(&mut out), 20);
        out.sort_unstable();
        assert_eq!(out, (0..20).collect::<Vec<_>>());
        // Channel is reusable after a drain.
        ch.push(99);
        let mut out = Vec::new();
        assert_eq!(ch.drain_into(&mut out), 1);
        assert_eq!(out, vec![99]);
    }

    #[test]
    fn push_batch_roundtrips_and_reuses_buffer() {
        let ch = ShardChannel::with_capacity(8);
        let mut batch: Vec<i32> = (0..5).collect();
        let cap_before = batch.capacity();
        ch.push_batch(&mut batch);
        assert!(batch.is_empty());
        assert_eq!(batch.capacity(), cap_before, "buffer must be reusable");
        let mut out = Vec::new();
        assert_eq!(ch.drain_into(&mut out), 5);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn push_batch_overflow_spills_the_excess() {
        let ch = ShardChannel::with_capacity(4);
        let mut batch: Vec<i32> = (0..11).collect();
        ch.push_batch(&mut batch);
        assert_eq!(ch.spilled(), 7); // ring holds 4
        let mut out = Vec::new();
        assert_eq!(ch.drain_into(&mut out), 11);
        out.sort_unstable();
        assert_eq!(out, (0..11).collect::<Vec<_>>());
        // Ring slots freed by the drain are reused by the next batch.
        let mut batch: Vec<i32> = (100..103).collect();
        ch.push_batch(&mut batch);
        let mut out = Vec::new();
        assert_eq!(ch.drain_into(&mut out), 3);
        assert_eq!(out, vec![100, 101, 102]);
        assert_eq!(ch.spilled(), 7, "no new spills after drain");
    }

    #[test]
    fn push_batch_cross_thread_transfer_is_complete() {
        let ch = Arc::new(ShardChannel::with_capacity(64));
        let total = 10_000u64;
        let producer = {
            let ch = Arc::clone(&ch);
            std::thread::spawn(move || {
                let mut batch = Vec::new();
                for chunk in 0..(total / 100) {
                    batch.extend(chunk * 100..(chunk + 1) * 100);
                    ch.push_batch(&mut batch);
                }
            })
        };
        let mut seen = Vec::new();
        while seen.len() < total as usize {
            if ch.drain_into(&mut seen) == 0 {
                std::thread::yield_now();
            }
        }
        producer.join().unwrap();
        seen.sort_unstable();
        assert_eq!(seen, (0..total).collect::<Vec<_>>());
    }

    #[test]
    fn cross_thread_transfer_is_complete() {
        let ch = Arc::new(ShardChannel::with_capacity(64));
        let total = 10_000u64;
        let producer = {
            let ch = Arc::clone(&ch);
            std::thread::spawn(move || {
                for i in 0..total {
                    ch.push(i);
                }
            })
        };
        let mut seen = Vec::new();
        while seen.len() < total as usize {
            if ch.drain_into(&mut seen) == 0 {
                std::thread::yield_now();
            }
        }
        producer.join().unwrap();
        seen.sort_unstable();
        assert_eq!(seen, (0..total).collect::<Vec<_>>());
    }

    #[test]
    fn drop_releases_undelivered_items() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        DROPS.store(0, Ordering::Relaxed);
        {
            let ch = ShardChannel::with_capacity(4);
            for _ in 0..10 {
                ch.push(D); // 6 of these land in the spill
            }
        }
        assert_eq!(DROPS.load(Ordering::Relaxed), 10);
    }
}
