//! Deterministic pseudo-random numbers for the simulator core.
//!
//! The engine's own randomness (jitter, loss injection) uses a small
//! self-contained SplitMix64 so that simulation results are reproducible
//! from a seed without depending on `rand`'s version-to-version stream
//! stability. Workload generation elsewhere in the workspace uses `rand` /
//! `rand_distr`, where distribution quality matters more than stream
//! pinning.

/// SplitMix64 (Steele, Lea & Flood 2014): tiny, fast, passes BigCrush
/// when used as a 64-bit generator, and trivially seedable.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 high-quality bits -> [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero. Uses Lemire's
    /// multiply-shift rejection method for unbiased results.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be nonzero");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= low.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Bernoulli trial with probability `p` (clamped to `[0,1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_respects_bound_and_hits_all_values() {
        let mut r = SplitMix64::new(9);
        let mut seen = [false; 7];
        for _ in 0..10_000 {
            let v = r.next_below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should occur");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(11);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }

    #[test]
    fn chance_roughly_calibrated() {
        let mut r = SplitMix64::new(13);
        let hits = (0..100_000).filter(|_| r.chance(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "got {frac}");
    }
}
