//! Cluster interconnect topologies and deterministic routing.
//!
//! A topology is a directed graph over host and switch vertices with
//! analytic (table-free) routing: crossbar, ring, 2-D/3-D torus with
//! dimension-order routing, k-ary fat trees (single- and multi-pod) with
//! destination-based upstream spreading (D-mod-k), and a Dragonfly with
//! minimal or Valiant routing.
//!
//! Scale discipline: `Topology::new` stores **no per-link or per-pair
//! state** — link ids, link endpoints, and routes are all computed
//! arithmetically from coordinates, so a 1M-host Dragonfly costs the same
//! few bytes as a 4-host crossbar. Routes are produced by [`RoutePlan`],
//! an iterator that derives each hop's [`LinkId`] on the fly; the
//! contention model charges occupancy per yielded link without ever
//! materializing a route vector.
//!
//! Verification discipline: [`Topology::new_reference`] additionally
//! builds the explicit link table the pre-refactor code used (insertion
//! order via `add_bidi`, which defines the canonical link numbering for
//! the legacy kinds), and [`Topology::route_reference`] walks routes
//! through that table via the retained [`walk_route`] logic. The
//! differential oracle (`sentinel::oracle::route_oracle`, plus the
//! property suites) checks `RoutePlan` against this reference: same
//! links, same order, same hop count.

use crate::fasthash::FastHashMap;
use crate::link::LinkId;

/// A vertex in the interconnect graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Vertex {
    /// A compute node (host), identified by rank.
    Host(u32),
    /// A switch, identified by a topology-specific index.
    Switch(u32),
}

/// Topology construction parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyKind {
    /// All hosts attached to one ideal crossbar switch.
    Crossbar { hosts: u32 },
    /// Bidirectional ring of hosts (direct network, no switches).
    Ring { hosts: u32 },
    /// 2-D torus, `w * h` hosts, dimension-order (X then Y) routing.
    Torus2D { w: u32, h: u32 },
    /// 3-D torus, `x * y * z` hosts, dimension-order routing.
    Torus3D { x: u32, y: u32, z: u32 },
    /// k-ary fat tree (k even): `k^3/4` hosts, three switch tiers.
    FatTree { k: u32 },
    /// k-ary fat tree with a configurable pod count (`1 <= pods <= k`):
    /// `pods * (k/2)^2` hosts. `pods == k` is the classic full fat tree;
    /// fewer pods model an incrementally built-out plant with the full
    /// core layer already cabled.
    FatTreePods { k: u32, pods: u32 },
    /// Dragonfly: `groups` fully connected groups of
    /// `routers_per_group` routers, each with `hosts_per_router` hosts.
    /// Routers within a group are fully connected; every ordered group
    /// pair is joined by one global link whose endpoints spread
    /// round-robin across each group's routers.
    Dragonfly {
        groups: u32,
        routers_per_group: u32,
        hosts_per_router: u32,
    },
}

/// Route selection policy (Dragonfly only; all other kinds have a single
/// deterministic minimal path and ignore this).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Routing {
    /// Shortest path: up to 5 links on a Dragonfly
    /// (host→router, local, global, local, router→host).
    Minimal,
    /// Valiant load balancing: route minimally to a pseudo-random
    /// intermediate group (a pure function of `(seed, src, dst)`), then
    /// minimally to the destination — up to 8 links, at most 2× the
    /// minimal bound. Same-group traffic stays minimal.
    Valiant { seed: u64 },
}

/// Explicit link table built only by [`Topology::new_reference`]; the
/// oracle half of the routing refactor. Never present on the hot path.
#[derive(Debug, Clone, Default)]
struct RefGraph {
    /// Directed edges: (from, to), indexed by LinkId.
    links: Vec<(Vertex, Vertex)>,
    /// (from, to) -> LinkId. Lookup-only (never iterated), so the fast
    /// non-sip hasher cannot perturb determinism.
    index: FastHashMap<(Vertex, Vertex), LinkId>,
}

/// An interconnect graph with arithmetic O(1) routing.
#[derive(Debug, Clone)]
pub struct Topology {
    kind: TopologyKind,
    hosts: u32,
    routing: Routing,
    reference: Option<Box<RefGraph>>,
}

/// Sentinel for "no Valiant detour" in a [`RoutePlan`].
const NO_VIA: u32 = u32::MAX;

impl Topology {
    /// Build a topology. O(1) time and memory for every kind: no link
    /// table, no route storage — everything downstream is arithmetic.
    pub fn new(kind: TopologyKind) -> Self {
        let hosts = match kind {
            TopologyKind::Crossbar { hosts } => {
                assert!(hosts >= 1);
                hosts
            }
            TopologyKind::Ring { hosts } => {
                assert!(hosts >= 2, "ring needs at least two hosts");
                hosts
            }
            TopologyKind::Torus2D { w, h } => {
                assert!(w >= 2 && h >= 2, "torus dims must be >= 2");
                w * h
            }
            TopologyKind::Torus3D { x, y, z } => {
                assert!(x >= 2 && y >= 2 && z >= 2);
                x * y * z
            }
            TopologyKind::FatTree { k } => {
                assert!(k >= 2 && k % 2 == 0, "fat tree arity must be even");
                k * (k / 2) * (k / 2)
            }
            TopologyKind::FatTreePods { k, pods } => {
                assert!(k >= 2 && k % 2 == 0, "fat tree arity must be even");
                assert!(
                    pods >= 1 && pods <= k,
                    "pod count must be in 1..=k (core ports)"
                );
                pods * (k / 2) * (k / 2)
            }
            TopologyKind::Dragonfly {
                groups,
                routers_per_group,
                hosts_per_router,
            } => {
                assert!(groups >= 1 && routers_per_group >= 1 && hosts_per_router >= 1);
                groups * routers_per_group * hosts_per_router
            }
        };
        Topology {
            kind,
            hosts,
            routing: Routing::Minimal,
            reference: None,
        }
    }

    /// Like [`Topology::new`], but additionally builds the explicit
    /// per-link reference table so [`Topology::route_reference`] and
    /// [`Topology::reference_links`] work. O(links) memory — for oracle
    /// and property tests only.
    pub fn new_reference(kind: TopologyKind) -> Self {
        let mut t = Self::new(kind);
        t.build_reference();
        t
    }

    /// Select the routing policy (builder style).
    pub fn with_routing(mut self, routing: Routing) -> Self {
        self.routing = routing;
        self
    }

    pub fn routing(&self) -> Routing {
        self.routing
    }

    pub fn kind(&self) -> TopologyKind {
        self.kind
    }

    pub fn hosts(&self) -> u32 {
        self.hosts
    }

    /// Dragonfly group of a rank (0 for non-grouped topologies). Used by
    /// the shard partitioner to align shard boundaries with groups.
    pub fn group_of(&self, rank: u32) -> u32 {
        match self.kind {
            TopologyKind::Dragonfly {
                routers_per_group,
                hosts_per_router,
                ..
            } => rank / (routers_per_group * hosts_per_router),
            _ => 0,
        }
    }

    /// Hosts per Dragonfly group (the whole machine for other kinds).
    pub fn group_size(&self) -> u32 {
        match self.kind {
            TopologyKind::Dragonfly {
                routers_per_group,
                hosts_per_router,
                ..
            } => routers_per_group * hosts_per_router,
            _ => self.hosts,
        }
    }

    /// Total directed links, computed arithmetically.
    pub fn link_count(&self) -> usize {
        match self.kind {
            TopologyKind::Crossbar { hosts } => 2 * hosts as usize,
            TopologyKind::Ring { hosts } => {
                if hosts == 2 {
                    2
                } else {
                    2 * hosts as usize
                }
            }
            TopologyKind::Torus2D { w, h } => 2 * t2_pairs_before(w, h, (w * h) as u64) as usize,
            TopologyKind::Torus3D { x, y, z } => {
                2 * t3_pairs_before(x, y, z, (x * y * z) as u64) as usize
            }
            TopologyKind::FatTree { k } => {
                let half = (k / 2) as usize;
                k as usize * 6 * half * half
            }
            TopologyKind::FatTreePods { k, pods } => {
                let half = (k / 2) as usize;
                pods as usize * 6 * half * half
            }
            TopologyKind::Dragonfly {
                groups: g,
                routers_per_group: a,
                hosts_per_router: _,
            } => {
                let n = self.hosts as usize;
                let (g, a) = (g as usize, a as usize);
                2 * n + g * a * (a - 1) + g * (g - 1)
            }
        }
    }

    /// Endpoints of a link id, computed arithmetically (inverse of the
    /// link numbering; O(log hosts) worst case for tori, O(1) otherwise).
    pub fn link_endpoints(&self, id: LinkId) -> (Vertex, Vertex) {
        let i = id.0;
        match self.kind {
            TopologyKind::Crossbar { hosts } => {
                assert!(i < 2 * hosts, "link id out of range");
                let h = Vertex::Host(i / 2);
                if i.is_multiple_of(2) {
                    (h, Vertex::Switch(0))
                } else {
                    (Vertex::Switch(0), h)
                }
            }
            TopologyKind::Ring { hosts } => {
                assert!((i as usize) < self.link_count(), "link id out of range");
                let u = i / 2;
                let v = (u + 1) % hosts;
                if i.is_multiple_of(2) {
                    (Vertex::Host(u), Vertex::Host(v))
                } else {
                    (Vertex::Host(v), Vertex::Host(u))
                }
            }
            TopologyKind::Torus2D { w, h } => {
                let pair = (i / 2) as u64;
                // Find the host owning this pair: t2_pairs_before is
                // monotone in the host index, so binary search.
                let n = invert_monotone(self.hosts as u64, pair, |m| t2_pairs_before(w, h, m));
                let (x, y) = ((n as u32) % w, (n as u32) / w);
                let local = pair - t2_pairs_before(w, h, n);
                let has_e = w > 2 || x == 0;
                // Pair 0 is east when present, north otherwise.
                let east = local == 0 && has_e;
                let me = Vertex::Host(y * w + x);
                let other = if east {
                    Vertex::Host(y * w + (x + 1) % w)
                } else {
                    Vertex::Host(((y + 1) % h) * w + x)
                };
                if i.is_multiple_of(2) {
                    (me, other)
                } else {
                    (other, me)
                }
            }
            TopologyKind::Torus3D { x: wx, y: wy, z: wz } => {
                let pair = (i / 2) as u64;
                let n = invert_monotone(self.hosts as u64, pair, |m| {
                    t3_pairs_before(wx, wy, wz, m)
                });
                let nn = n as u32;
                let (ci, cj, ck) = (nn % wx, (nn / wx) % wy, nn / (wx * wy));
                let local = pair - t3_pairs_before(wx, wy, wz, n);
                let has = [wx > 2 || ci == 0, wy > 2 || cj == 0, wz > 2 || ck == 0];
                // local indexes the host's present pairs in x, y, z order.
                let mut axis = 0;
                let mut seen = 0u64;
                for (d, present) in has.iter().enumerate() {
                    if *present {
                        if seen == local {
                            axis = d;
                            break;
                        }
                        seen += 1;
                    }
                }
                let id3 = |a: u32, b: u32, c: u32| (c * wy + b) * wx + a;
                let me = Vertex::Host(id3(ci, cj, ck));
                let other = match axis {
                    0 => Vertex::Host(id3((ci + 1) % wx, cj, ck)),
                    1 => Vertex::Host(id3(ci, (cj + 1) % wy, ck)),
                    _ => Vertex::Host(id3(ci, cj, (ck + 1) % wz)),
                };
                if i.is_multiple_of(2) {
                    (me, other)
                } else {
                    (other, me)
                }
            }
            TopologyKind::FatTree { .. } | TopologyKind::FatTreePods { .. } => {
                let (k, pods) = self.ft_dims();
                let half = k / 2;
                let pod_block = 6 * half * half;
                let pod = i / pod_block;
                assert!(pod < pods, "link id out of range");
                let r = i % pod_block;
                let ft = FtIndex { k, pods };
                let (from, to) = if r < 4 * half * half {
                    let e = r / (4 * half);
                    let r2 = r % (4 * half);
                    if r2 < 2 * half {
                        let p = r2 / 2;
                        let hst = (pod * half + e) * half + p;
                        (Vertex::Host(hst), ft.edge(pod, e))
                    } else {
                        let a = (r2 - 2 * half) / 2;
                        (ft.edge(pod, e), ft.agg(pod, a))
                    }
                } else {
                    let r3 = r - 4 * half * half;
                    let a = r3 / (2 * half);
                    let up = (r3 % (2 * half)) / 2;
                    (ft.agg(pod, a), ft.core(a * half + up))
                };
                if i.is_multiple_of(2) {
                    (from, to)
                } else {
                    (to, from)
                }
            }
            TopologyKind::Dragonfly {
                groups: g,
                routers_per_group: a,
                hosts_per_router: hpr,
            } => {
                let n = self.hosts;
                let l0 = 2 * n;
                let g0 = l0 + g * a * (a - 1);
                if i < l0 {
                    let x = i / 2;
                    let h = Vertex::Host(x);
                    let r = Vertex::Switch(x / hpr);
                    if i.is_multiple_of(2) {
                        (h, r)
                    } else {
                        (r, h)
                    }
                } else if i < g0 {
                    let q = i - l0;
                    let per_group = a * (a - 1);
                    let gr = q / per_group;
                    let s = q % per_group;
                    let ri = s / (a - 1);
                    let t = s % (a - 1);
                    let rj = t + u32::from(t >= ri);
                    (
                        Vertex::Switch(gr * a + ri),
                        Vertex::Switch(gr * a + rj),
                    )
                } else {
                    let q = i - g0;
                    assert!(q < g * (g - 1), "link id out of range");
                    let gi = q / (g - 1);
                    let t = q % (g - 1);
                    let gj = t + u32::from(t >= gi);
                    (
                        Vertex::Switch(gi * a + df_owner(a, gi, gj)),
                        Vertex::Switch(gj * a + df_owner(a, gj, gi)),
                    )
                }
            }
        }
    }

    /// The deterministic route from host `src` to host `dst` as an O(1)
    /// on-the-fly iterator: no allocation, no per-pair storage. `src ==
    /// dst` yields an empty plan (loopback never hits the wire).
    pub fn route_plan(&self, src: u32, dst: u32) -> RoutePlan<'_> {
        assert!(src < self.hosts && dst < self.hosts, "rank out of range");
        let via = match self.routing {
            Routing::Minimal => NO_VIA,
            Routing::Valiant { seed } => self.valiant_via(seed, src, dst),
        };
        RoutePlan {
            topo: self,
            cur: Vertex::Host(src),
            dst,
            via,
            done: src == dst,
        }
    }

    /// The Valiant intermediate group for `(src, dst)`, or `NO_VIA` when
    /// the pair stays minimal (same group, tiny machine, or the drawn
    /// group coincides with an endpoint group).
    fn valiant_via(&self, seed: u64, src: u32, dst: u32) -> u32 {
        let TopologyKind::Dragonfly {
            groups: g,
            routers_per_group: a,
            hosts_per_router: h,
        } = self.kind
        else {
            return NO_VIA;
        };
        if g < 3 || src == dst {
            return NO_VIA;
        }
        let gs = a * h;
        let (sg, dg) = (src / gs, dst / gs);
        if sg == dg {
            return NO_VIA;
        }
        let mut x = seed ^ (((src as u64) << 32) | dst as u64);
        // One SplitMix64 scramble round: cheap, deterministic, and
        // well-mixed across (src, dst) pairs.
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        let vg = (x % g as u64) as u32;
        if vg == sg || vg == dg {
            NO_VIA
        } else {
            vg
        }
    }

    /// The deterministic route from host `src` to host `dst` as links.
    pub fn route(&self, src: u32, dst: u32) -> Vec<LinkId> {
        self.route_plan(src, dst).collect()
    }

    /// Like [`Topology::route`], but appends into a caller-owned buffer
    /// (cleared first). Retained for callers that need a slice; the hot
    /// path iterates [`Topology::route_plan`] directly.
    pub fn route_into(&self, src: u32, dst: u32, out: &mut Vec<LinkId>) {
        out.clear();
        out.extend(self.route_plan(src, dst));
    }

    /// Number of links on the route (0 for loopback).
    pub fn hops(&self, src: u32, dst: u32) -> u32 {
        self.route_plan(src, dst).count() as u32
    }

    /// Next vertex after `cur` on the path to `dst`. Pure arithmetic in
    /// the current vertex and destination; `via` carries the remaining
    /// Valiant waypoint (cleared once the detour group is reached).
    fn next_vertex(&self, cur: Vertex, dst: u32, via: &mut u32) -> Vertex {
        match self.kind {
            TopologyKind::Crossbar { .. } => match cur {
                Vertex::Host(_) => Vertex::Switch(0),
                Vertex::Switch(_) => Vertex::Host(dst),
            },
            TopologyKind::Ring { hosts } => {
                let Vertex::Host(c) = cur else {
                    unreachable!("ring has no switches")
                };
                Vertex::Host(step_toward(c, dst, hosts))
            }
            TopologyKind::Torus2D { w, h } => {
                let Vertex::Host(c) = cur else {
                    unreachable!("torus has no switches")
                };
                let (x, y) = (c % w, c / w);
                let (dx, dy) = (dst % w, dst / w);
                if x != dx {
                    Vertex::Host(y * w + step_toward(x, dx, w))
                } else {
                    Vertex::Host((step_toward(y, dy, h)) * w + x)
                }
            }
            TopologyKind::Torus3D { x: wx, y: wy, z: wz } => {
                let Vertex::Host(c) = cur else {
                    unreachable!("torus has no switches")
                };
                let (i, j, k) = (c % wx, (c / wx) % wy, c / (wx * wy));
                let (di, dj, dk) = (dst % wx, (dst / wx) % wy, dst / (wx * wy));
                let id3 = |a: u32, b: u32, c: u32| (c * wy + b) * wx + a;
                if i != di {
                    Vertex::Host(id3(step_toward(i, di, wx), j, k))
                } else if j != dj {
                    Vertex::Host(id3(i, step_toward(j, dj, wy), k))
                } else {
                    Vertex::Host(id3(i, j, step_toward(k, dk, wz)))
                }
            }
            TopologyKind::FatTree { .. } | TopologyKind::FatTreePods { .. } => {
                let (k, pods) = self.ft_dims();
                let half = k / 2;
                let ft = FtIndex { k, pods };
                let dp = dst / (half * half);
                let de = (dst / half) % half;
                let a_sel = dst % half;
                match cur {
                    Vertex::Host(x) => ft.edge(x / (half * half), (x / half) % half),
                    Vertex::Switch(s) => {
                        if s < pods * half {
                            // Edge switch.
                            let (pod, e) = (s / half, s % half);
                            if pod == dp && e == de {
                                Vertex::Host(dst)
                            } else {
                                ft.agg(pod, a_sel)
                            }
                        } else if s < 2 * pods * half {
                            // Aggregation switch.
                            let pod = (s - pods * half) / half;
                            if pod == dp {
                                ft.edge(dp, de)
                            } else {
                                ft.core(a_sel * half + de)
                            }
                        } else {
                            // Core switch.
                            ft.agg(dp, a_sel)
                        }
                    }
                }
            }
            TopologyKind::Dragonfly {
                groups: _,
                routers_per_group: a,
                hosts_per_router: h,
            } => {
                let dr = dst / h;
                let (dg, di) = (dr / a, dr % a);
                match cur {
                    Vertex::Host(x) => Vertex::Switch(x / h),
                    Vertex::Switch(r) => {
                        let (gr, i) = (r / a, r % a);
                        if *via == gr {
                            // Detour group reached; head home.
                            *via = NO_VIA;
                        }
                        let tg = if *via == NO_VIA { dg } else { *via };
                        if gr == dg && tg == dg {
                            // Descend.
                            if i == di {
                                Vertex::Host(dst)
                            } else {
                                Vertex::Switch(dg * a + di)
                            }
                        } else {
                            let exit = df_owner(a, gr, tg);
                            if i == exit {
                                Vertex::Switch(tg * a + df_owner(a, tg, gr))
                            } else {
                                Vertex::Switch(gr * a + exit)
                            }
                        }
                    }
                }
            }
        }
    }

    /// Arithmetic link id of the directed edge `from -> to`. `from` and
    /// `to` must be adjacent (as produced by [`Topology::next_vertex`]).
    fn link_id(&self, from: Vertex, to: Vertex) -> LinkId {
        let id = match self.kind {
            TopologyKind::Crossbar { .. } => match (from, to) {
                (Vertex::Host(x), Vertex::Switch(0)) => 2 * x,
                (Vertex::Switch(0), Vertex::Host(x)) => 2 * x + 1,
                _ => panic!("not adjacent: {from:?} -> {to:?}"),
            },
            TopologyKind::Ring { hosts } => {
                let (Vertex::Host(u), Vertex::Host(v)) = (from, to) else {
                    panic!("not adjacent: {from:?} -> {to:?}")
                };
                if hosts == 2 {
                    // Single deduplicated cable pair: (0,1)=0, (1,0)=1.
                    u
                } else if v == (u + 1) % hosts {
                    2 * u
                } else {
                    debug_assert_eq!(v, (u + hosts - 1) % hosts);
                    2 * v + 1
                }
            }
            TopologyKind::Torus2D { w, h } => {
                let (Vertex::Host(u), Vertex::Host(v)) = (from, to) else {
                    panic!("not adjacent: {from:?} -> {to:?}")
                };
                let (ux, uy) = (u % w, u / w);
                let (vx, vy) = (v % w, v / w);
                if uy == vy {
                    // X move.
                    t2_link_x(w, h, ux, uy, vx)
                } else {
                    debug_assert_eq!(ux, vx);
                    t2_link_y(w, h, ux, uy, vy)
                }
            }
            TopologyKind::Torus3D { x: wx, y: wy, z: wz } => {
                let (Vertex::Host(u), Vertex::Host(v)) = (from, to) else {
                    panic!("not adjacent: {from:?} -> {to:?}")
                };
                let (ui, uj, uk) = (u % wx, (u / wx) % wy, u / (wx * wy));
                let (vi, vj, vk) = (v % wx, (v / wx) % wy, v / (wx * wy));
                t3_link(wx, wy, wz, (ui, uj, uk), (vi, vj, vk))
            }
            TopologyKind::FatTree { .. } | TopologyKind::FatTreePods { .. } => {
                let (k, pods) = self.ft_dims();
                self.ft_link_id(k, pods, from, to)
            }
            TopologyKind::Dragonfly {
                groups: g,
                routers_per_group: a,
                ..
            } => {
                let n = self.hosts;
                let l0 = 2 * n;
                let g0 = l0 + g * a * (a - 1);
                match (from, to) {
                    (Vertex::Host(x), Vertex::Switch(_)) => 2 * x,
                    (Vertex::Switch(_), Vertex::Host(x)) => 2 * x + 1,
                    (Vertex::Switch(r1), Vertex::Switch(r2)) => {
                        let (g1, i1) = (r1 / a, r1 % a);
                        let (g2, i2) = (r2 / a, r2 % a);
                        if g1 == g2 {
                            let t = i2 - u32::from(i2 > i1);
                            l0 + g1 * (a * (a - 1)) + i1 * (a - 1) + t
                        } else {
                            debug_assert_eq!(i1, df_owner(a, g1, g2));
                            debug_assert_eq!(i2, df_owner(a, g2, g1));
                            let t = g2 - u32::from(g2 > g1);
                            g0 + g1 * (g - 1) + t
                        }
                    }
                    _ => panic!("not adjacent: {from:?} -> {to:?}"),
                }
            }
        };
        LinkId(id)
    }

    /// (k, pods) for the fat-tree family.
    fn ft_dims(&self) -> (u32, u32) {
        match self.kind {
            TopologyKind::FatTree { k } => (k, k),
            TopologyKind::FatTreePods { k, pods } => (k, pods),
            _ => unreachable!(),
        }
    }

    fn ft_link_id(&self, k: u32, pods: u32, from: Vertex, to: Vertex) -> u32 {
        let half = k / 2;
        let pod_block = 6 * half * half;
        let ft = FtIndex { k, pods };
        let host_ids = |hst: u32, up: bool| {
            let pod = hst / (half * half);
            let e = (hst / half) % half;
            let p = hst % half;
            pod * pod_block + e * 4 * half + 2 * p + u32::from(!up)
        };
        let edge_agg = |pod: u32, e: u32, a: u32, up: bool| {
            pod * pod_block + e * 4 * half + 2 * half + 2 * a + u32::from(!up)
        };
        let agg_core = |pod: u32, a: u32, up_idx: u32, up: bool| {
            pod * pod_block + 4 * half * half + a * 2 * half + 2 * up_idx + u32::from(!up)
        };
        match (from, to) {
            (Vertex::Host(x), Vertex::Switch(_)) => host_ids(x, true),
            (Vertex::Switch(_), Vertex::Host(x)) => host_ids(x, false),
            (Vertex::Switch(s1), Vertex::Switch(s2)) => {
                let class = |s: u32| {
                    if s < pods * half {
                        0 // edge
                    } else if s < 2 * pods * half {
                        1 // agg
                    } else {
                        2 // core
                    }
                };
                match (class(s1), class(s2)) {
                    (0, 1) => {
                        let (pod, e) = (s1 / half, s1 % half);
                        let a = ft.agg_index(s2);
                        edge_agg(pod, e, a, true)
                    }
                    (1, 0) => {
                        let (pod, e) = (s2 / half, s2 % half);
                        let a = ft.agg_index(s1);
                        edge_agg(pod, e, a, false)
                    }
                    (1, 2) => {
                        let pod = ft.agg_pod(s1);
                        let a = ft.agg_index(s1);
                        let c = s2 - 2 * pods * half;
                        agg_core(pod, a, c - a * half, true)
                    }
                    (2, 1) => {
                        let pod = ft.agg_pod(s2);
                        let a = ft.agg_index(s2);
                        let c = s1 - 2 * pods * half;
                        agg_core(pod, a, c - a * half, false)
                    }
                    _ => panic!("not adjacent: {from:?} -> {to:?}"),
                }
            }
            _ => panic!("not adjacent: {from:?} -> {to:?}"),
        }
    }

    /// Network diameter in links (max hops over all host pairs). Computed
    /// analytically per topology kind (and routing policy).
    pub fn diameter(&self) -> u32 {
        match self.kind {
            TopologyKind::Crossbar { .. } => 2,
            TopologyKind::Ring { hosts } => hosts / 2,
            TopologyKind::Torus2D { w, h } => w / 2 + h / 2,
            TopologyKind::Torus3D { x, y, z } => x / 2 + y / 2 + z / 2,
            TopologyKind::FatTree { .. } => 6,
            TopologyKind::FatTreePods { pods, .. } => {
                if pods == 1 {
                    4
                } else {
                    6
                }
            }
            TopologyKind::Dragonfly {
                groups: g,
                routers_per_group: a,
                ..
            } => {
                let global = u32::from(g > 1);
                let locals = u32::from(a > 1) * (1 + global);
                let minimal = 2 + global + locals;
                match self.routing {
                    Routing::Minimal => minimal,
                    // Two back-to-back minimal legs share the terminal
                    // host links.
                    Routing::Valiant { .. } => {
                        if g > 1 {
                            2 * minimal - 2
                        } else {
                            minimal
                        }
                    }
                }
            }
        }
    }

    /// Links crossing a balanced bisection (a capacity measure used by the
    /// scaling analyses).
    pub fn bisection_links(&self) -> u64 {
        match self.kind {
            TopologyKind::Crossbar { hosts } => hosts as u64, // ideal
            TopologyKind::Ring { .. } => 4,                   // 2 cables, both directions
            TopologyKind::Torus2D { w, h } => {
                // Cut across the smaller dimension: 2 cables per row/col
                // crossing, both directions.
                4 * w.min(h) as u64
            }
            TopologyKind::Torus3D { x, y, z } => {
                let a = x.max(y).max(z);
                // Cut perpendicular to the largest dimension.
                let plane = (x as u64 * y as u64 * z as u64) / a as u64;
                4 * plane
            }
            TopologyKind::FatTree { k } => (k as u64).pow(3) / 4, // full bisection
            TopologyKind::FatTreePods { k, pods } => {
                // Half the pods on each side; each pod reaches the core
                // with (k/2)^2 uplinks, both directions.
                let half = (k / 2) as u64;
                2 * (pods as u64 / 2) * half * half
            }
            TopologyKind::Dragonfly { groups: g, routers_per_group: a, .. } => {
                if g > 1 {
                    // Global links between the two halves of the group
                    // set, both directions (one cable pair per ordered
                    // group pair).
                    2 * (g as u64 / 2) * (g as u64 - g as u64 / 2)
                } else {
                    // Single group: local links across the router split.
                    2 * (a as u64 / 2) * (a as u64 - a as u64 / 2)
                }
            }
        }
    }

    // -----------------------------------------------------------------
    // Reference graph (oracle half)
    // -----------------------------------------------------------------

    /// Whether the explicit reference table is present.
    pub fn has_reference(&self) -> bool {
        self.reference.is_some()
    }

    /// The explicit reference link table (panics without
    /// [`Topology::new_reference`]).
    pub fn reference_links(&self) -> &[(Vertex, Vertex)] {
        &self.reference.as_ref().expect("reference graph not built").links
    }

    /// Reference route: the retained pre-refactor path — per-kind
    /// `walk_route` vertex streaming plus explicit-table link lookup.
    /// The differential oracle compares [`Topology::route_plan`] against
    /// this on every legacy kind.
    pub fn route_reference(&self, src: u32, dst: u32) -> Vec<LinkId> {
        assert!(src < self.hosts && dst < self.hosts, "rank out of range");
        let mut out = Vec::new();
        if src == dst {
            return out;
        }
        let mut prev = Vertex::Host(src);
        self.walk_route(src, dst, |v| {
            out.push(self.ref_link(prev, v));
            prev = v;
        });
        out
    }

    fn ref_link(&self, from: Vertex, to: Vertex) -> LinkId {
        let r = self.reference.as_ref().expect("reference graph not built");
        *r.index
            .get(&(from, to))
            .unwrap_or_else(|| panic!("no link {from:?} -> {to:?}"))
    }

    fn build_reference(&mut self) {
        let mut r = RefGraph::default();
        let mut add_bidi = |a: Vertex, b: Vertex| {
            // Idempotent: a torus dimension of width 2 wraps +1 and -1 to
            // the same neighbour; we model that as one shared cable pair.
            for (x, y) in [(a, b), (b, a)] {
                if r.index.contains_key(&(x, y)) {
                    continue;
                }
                let id = LinkId(r.links.len() as u32);
                r.links.push((x, y));
                r.index.insert((x, y), id);
            }
        };
        match self.kind {
            TopologyKind::Crossbar { hosts } => {
                for h in 0..hosts {
                    add_bidi(Vertex::Host(h), Vertex::Switch(0));
                }
            }
            TopologyKind::Ring { hosts } => {
                for h in 0..hosts {
                    add_bidi(Vertex::Host(h), Vertex::Host((h + 1) % hosts));
                }
            }
            TopologyKind::Torus2D { w, h } => {
                for y in 0..h {
                    for x in 0..w {
                        let me = y * w + x;
                        let east = y * w + (x + 1) % w;
                        let north = ((y + 1) % h) * w + x;
                        add_bidi(Vertex::Host(me), Vertex::Host(east));
                        add_bidi(Vertex::Host(me), Vertex::Host(north));
                    }
                }
            }
            TopologyKind::Torus3D { x, y, z } => {
                let id = |i: u32, j: u32, k: u32| (k * y + j) * x + i;
                for k in 0..z {
                    for j in 0..y {
                        for i in 0..x {
                            let me = id(i, j, k);
                            add_bidi(Vertex::Host(me), Vertex::Host(id((i + 1) % x, j, k)));
                            add_bidi(Vertex::Host(me), Vertex::Host(id(i, (j + 1) % y, k)));
                            add_bidi(Vertex::Host(me), Vertex::Host(id(i, j, (k + 1) % z)));
                        }
                    }
                }
            }
            TopologyKind::FatTree { .. } | TopologyKind::FatTreePods { .. } => {
                let (k, pods) = self.ft_dims();
                let half = k / 2;
                let ft = FtIndex { k, pods };
                for pod in 0..pods {
                    for e in 0..half {
                        for p in 0..half {
                            let hst = (pod * half + e) * half + p;
                            add_bidi(Vertex::Host(hst), ft.edge(pod, e));
                        }
                        for a in 0..half {
                            add_bidi(ft.edge(pod, e), ft.agg(pod, a));
                        }
                    }
                    for a in 0..half {
                        for up in 0..half {
                            // Aggregation switch `a` connects to core
                            // switches a*half..a*half+half.
                            add_bidi(ft.agg(pod, a), ft.core(a * half + up));
                        }
                    }
                }
            }
            TopologyKind::Dragonfly {
                groups: g,
                routers_per_group: a,
                hosts_per_router: hpr,
            } => {
                // Directed edges pushed in arithmetic id order — an
                // independent construction the closed-form numbering is
                // tested against.
                let mut push = |from: Vertex, to: Vertex| {
                    let id = LinkId(r.links.len() as u32);
                    r.links.push((from, to));
                    r.index.insert((from, to), id);
                };
                for x in 0..self.hosts {
                    push(Vertex::Host(x), Vertex::Switch(x / hpr));
                    push(Vertex::Switch(x / hpr), Vertex::Host(x));
                }
                for gr in 0..g {
                    for i in 0..a {
                        for j in 0..a {
                            if i != j {
                                push(
                                    Vertex::Switch(gr * a + i),
                                    Vertex::Switch(gr * a + j),
                                );
                            }
                        }
                    }
                }
                for gi in 0..g {
                    for gj in 0..g {
                        if gi != gj {
                            push(
                                Vertex::Switch(gi * a + df_owner(a, gi, gj)),
                                Vertex::Switch(gj * a + df_owner(a, gj, gi)),
                            );
                        }
                    }
                }
            }
        }
        self.reference = Some(Box::new(r));
    }

    /// Visit each vertex of the deterministic `src -> dst` path after the
    /// source, in order — the retained pre-refactor routing logic for the
    /// legacy kinds (the new kinds route through the same `next_vertex`
    /// the plan uses; their reference check is the explicit link table).
    fn walk_route(&self, src: u32, dst: u32, mut visit: impl FnMut(Vertex)) {
        match self.kind {
            TopologyKind::Crossbar { .. } => {
                visit(Vertex::Switch(0));
                visit(Vertex::Host(dst));
            }
            TopologyKind::Ring { hosts } => {
                let fwd = (dst + hosts - src) % hosts;
                let bwd = (src + hosts - dst) % hosts;
                let mut cur = src;
                if fwd <= bwd {
                    for _ in 0..fwd {
                        cur = (cur + 1) % hosts;
                        visit(Vertex::Host(cur));
                    }
                } else {
                    for _ in 0..bwd {
                        cur = (cur + hosts - 1) % hosts;
                        visit(Vertex::Host(cur));
                    }
                }
            }
            TopologyKind::Torus2D { w, h } => {
                let (mut x, mut y) = (src % w, src / w);
                let (dx, dy) = (dst % w, dst / w);
                while x != dx {
                    x = step_toward(x, dx, w);
                    visit(Vertex::Host(y * w + x));
                }
                while y != dy {
                    y = step_toward(y, dy, h);
                    visit(Vertex::Host(y * w + x));
                }
            }
            TopologyKind::Torus3D { x: wx, y: wy, z: wz } => {
                let coord = |n: u32| (n % wx, (n / wx) % wy, n / (wx * wy));
                let id = |i: u32, j: u32, k: u32| (k * wy + j) * wx + i;
                let (mut i, mut j, mut k) = coord(src);
                let (di, dj, dk) = coord(dst);
                while i != di {
                    i = step_toward(i, di, wx);
                    visit(Vertex::Host(id(i, j, k)));
                }
                while j != dj {
                    j = step_toward(j, dj, wy);
                    visit(Vertex::Host(id(i, j, k)));
                }
                while k != dk {
                    k = step_toward(k, dk, wz);
                    visit(Vertex::Host(id(i, j, k)));
                }
            }
            TopologyKind::FatTree { k } => {
                let half = k / 2;
                let pod_of = |hst: u32| hst / (half * half);
                let edge_of = |hst: u32| (hst / half) % half;
                let (sp, se) = (pod_of(src), edge_of(src));
                let (dp, de) = (pod_of(dst), edge_of(dst));
                let edge = |pod: u32, e: u32| Vertex::Switch(pod * half + e);
                let agg = |pod: u32, a: u32| Vertex::Switch(k * half + pod * half + a);
                let core = |c: u32| Vertex::Switch(2 * k * half + c);
                visit(edge(sp, se));
                if sp == dp && se == de {
                    // Same edge switch.
                } else if sp == dp {
                    // Up to an aggregation switch chosen by destination
                    // (D-mod-k spreading), back down.
                    let a = dst % half;
                    visit(agg(sp, a));
                    visit(edge(dp, de));
                } else {
                    // Up through agg and core, down the destination pod.
                    let a = dst % half;
                    let c = a * half + (dst / half) % half;
                    visit(agg(sp, a));
                    visit(core(c));
                    visit(agg(dp, a));
                    visit(edge(dp, de));
                }
                visit(Vertex::Host(dst));
            }
            TopologyKind::FatTreePods { .. } | TopologyKind::Dragonfly { .. } => {
                let mut via = match self.routing {
                    Routing::Minimal => NO_VIA,
                    Routing::Valiant { seed } => self.valiant_via(seed, src, dst),
                };
                let mut cur = Vertex::Host(src);
                loop {
                    cur = self.next_vertex(cur, dst, &mut via);
                    visit(cur);
                    if cur == Vertex::Host(dst) {
                        break;
                    }
                }
            }
        }
    }
}

/// Fat-tree switch numbering: edge switches `[0, pods*half)`, aggregation
/// switches `[pods*half, 2*pods*half)`, core `[2*pods*half, +half^2)`.
struct FtIndex {
    k: u32,
    pods: u32,
}

impl FtIndex {
    fn edge(&self, pod: u32, e: u32) -> Vertex {
        Vertex::Switch(pod * (self.k / 2) + e)
    }
    fn agg(&self, pod: u32, a: u32) -> Vertex {
        Vertex::Switch(self.pods * (self.k / 2) + pod * (self.k / 2) + a)
    }
    fn core(&self, c: u32) -> Vertex {
        Vertex::Switch(2 * self.pods * (self.k / 2) + c)
    }
    fn agg_pod(&self, s: u32) -> u32 {
        (s - self.pods * (self.k / 2)) / (self.k / 2)
    }
    fn agg_index(&self, s: u32) -> u32 {
        (s - self.pods * (self.k / 2)) % (self.k / 2)
    }
}

/// Router in `from_g` owning the global link to `to_g` (round-robin
/// spread of global endpoints across a group's routers).
#[inline]
fn df_owner(a: u32, from_g: u32, to_g: u32) -> u32 {
    let t = if to_g < from_g { to_g } else { to_g - 1 };
    t % a
}

/// Cable *pairs* inserted before host `n` in the 2-D torus reference
/// numbering (east pair then north pair per host, deduplicated when a
/// dimension has width 2).
fn t2_pairs_before(w: u32, h: u32, n: u64) -> u64 {
    let e = if w > 2 { n } else { n.div_ceil(w as u64) };
    let nn = if h > 2 { n } else { n.min(w as u64) };
    e + nn
}

/// Link id for an X move `(ux,uy) -> (vx,uy)` on a 2-D torus.
fn t2_link_x(w: u32, h: u32, ux: u32, uy: u32, vx: u32) -> u32 {
    let base = |x: u32, y: u32| 2 * t2_pairs_before(w, h, (y * w + x) as u64) as u32;
    if w == 2 {
        // One shared pair per row, owned by x == 0: (0,1)=+0, (1,0)=+1.
        base(0, uy) + u32::from(ux == 1)
    } else if vx == (ux + 1) % w {
        base(ux, uy) // own east pair, forward direction
    } else {
        base(vx, uy) + 1 // neighbour's east pair, reverse direction
    }
}

/// Link id for a Y move `(ux,uy) -> (ux,vy)` on a 2-D torus.
fn t2_link_y(w: u32, h: u32, ux: u32, uy: u32, vy: u32) -> u32 {
    let base = |x: u32, y: u32| 2 * t2_pairs_before(w, h, (y * w + x) as u64) as u32;
    // Offset of a host's north pair past its east pair (if present).
    let e_off = |x: u32| 2 * u32::from(w > 2 || x == 0);
    if h == 2 {
        base(ux, 0) + e_off(ux) + u32::from(uy == 1)
    } else if vy == (uy + 1) % h {
        base(ux, uy) + e_off(ux)
    } else {
        base(ux, vy) + e_off(ux) + 1
    }
}

/// Cable pairs inserted before host `n` in the 3-D torus reference
/// numbering (x, y, z pair per host, deduplicated at width 2).
fn t3_pairs_before(wx: u32, wy: u32, wz: u32, n: u64) -> u64 {
    let (wx64, wy64) = (wx as u64, wy as u64);
    let plane = wx64 * wy64;
    let ex = if wx > 2 { n } else { n.div_ceil(wx64) };
    let ey = if wy > 2 {
        n
    } else {
        // Hosts with j == 0 among the first n: wx per full plane plus the
        // first wx of a partial plane.
        (n / plane) * wx64 + (n % plane).min(wx64)
    };
    let ez = if wz > 2 { n } else { n.min(plane) };
    ex + ey + ez
}

/// Link id for a single-axis move on a 3-D torus.
fn t3_link(wx: u32, wy: u32, wz: u32, u: (u32, u32, u32), v: (u32, u32, u32)) -> u32 {
    let idx = |i: u32, j: u32, k: u32| ((k * wy + j) * wx + i) as u64;
    let base = |i: u32, j: u32, k: u32| 2 * t3_pairs_before(wx, wy, wz, idx(i, j, k)) as u32;
    let has = |w: u32, c: u32| u32::from(w > 2 || c == 0);
    let (ui, uj, uk) = u;
    let (vi, vj, vk) = v;
    if uj == vj && uk == vk {
        // X move: the x pair is a host's first pair.
        if wx == 2 {
            base(0, uj, uk) + u32::from(ui == 1)
        } else if vi == (ui + 1) % wx {
            base(ui, uj, uk)
        } else {
            base(vi, uj, uk) + 1
        }
    } else if ui == vi && uk == vk {
        // Y move: skip the x pair if present.
        let off = |i: u32| 2 * has(wx, i);
        if wy == 2 {
            base(ui, 0, uk) + off(ui) + u32::from(uj == 1)
        } else if vj == (uj + 1) % wy {
            base(ui, uj, uk) + off(ui)
        } else {
            base(ui, vj, uk) + off(ui) + 1
        }
    } else {
        // Z move: skip x and y pairs if present.
        debug_assert!(ui == vi && uj == vj);
        let off = |i: u32, j: u32| 2 * (has(wx, i) + has(wy, j));
        if wz == 2 {
            base(ui, uj, 0) + off(ui, uj) + u32::from(uk == 1)
        } else if vk == (uk + 1) % wz {
            base(ui, uj, uk) + off(ui, uj)
        } else {
            base(ui, uj, vk) + off(ui, uj) + 1
        }
    }
}

/// Largest `n in [0, hosts]` with `f(n) <= target`, by binary search over
/// the monotone pair-count function (used to invert link numbering).
fn invert_monotone(hosts: u64, target: u64, f: impl Fn(u64) -> u64) -> u64 {
    let (mut lo, mut hi) = (0u64, hosts);
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if f(mid) <= target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// An O(1)-state route iterator: yields the [`LinkId`] of each hop from
/// `src` to `dst`, computing both the next vertex and its link id
/// arithmetically from coordinates. No allocation, no per-pair storage.
#[derive(Clone)]
pub struct RoutePlan<'a> {
    topo: &'a Topology,
    cur: Vertex,
    dst: u32,
    /// Remaining Valiant waypoint group, or `NO_VIA`.
    via: u32,
    done: bool,
}

impl RoutePlan<'_> {
    /// The vertex the plan currently stands on.
    pub fn position(&self) -> Vertex {
        self.cur
    }
}

impl Iterator for RoutePlan<'_> {
    type Item = LinkId;

    fn next(&mut self) -> Option<LinkId> {
        if self.done {
            return None;
        }
        let next = self.topo.next_vertex(self.cur, self.dst, &mut self.via);
        let id = self.topo.link_id(self.cur, next);
        if next == Vertex::Host(self.dst) {
            self.done = true;
        }
        self.cur = next;
        Some(id)
    }
}

#[inline]
fn step_toward(cur: u32, dst: u32, width: u32) -> u32 {
    // One hop along the shorter direction around a ring of `width`.
    let fwd = (dst + width - cur) % width;
    let bwd = (cur + width - dst) % width;
    if fwd <= bwd {
        (cur + 1) % width
    } else {
        (cur + width - 1) % width
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_kinds() -> Vec<TopologyKind> {
        vec![
            TopologyKind::Crossbar { hosts: 9 },
            TopologyKind::Ring { hosts: 8 },
            TopologyKind::Ring { hosts: 7 },
            TopologyKind::Ring { hosts: 2 },
            TopologyKind::Torus2D { w: 4, h: 3 },
            TopologyKind::Torus2D { w: 2, h: 2 },
            TopologyKind::Torus2D { w: 2, h: 5 },
            TopologyKind::Torus3D { x: 2, y: 3, z: 2 },
            TopologyKind::Torus3D { x: 3, y: 2, z: 4 },
            TopologyKind::FatTree { k: 4 },
            TopologyKind::FatTreePods { k: 4, pods: 3 },
            TopologyKind::FatTreePods { k: 6, pods: 2 },
            TopologyKind::FatTreePods { k: 4, pods: 1 },
            TopologyKind::Dragonfly {
                groups: 5,
                routers_per_group: 3,
                hosts_per_router: 2,
            },
            TopologyKind::Dragonfly {
                groups: 2,
                routers_per_group: 1,
                hosts_per_router: 3,
            },
            TopologyKind::Dragonfly {
                groups: 1,
                routers_per_group: 4,
                hosts_per_router: 2,
            },
            TopologyKind::Dragonfly {
                groups: 9,
                routers_per_group: 2,
                hosts_per_router: 1,
            },
        ]
    }

    fn all_topologies() -> Vec<Topology> {
        let mut out: Vec<Topology> = all_kinds().into_iter().map(Topology::new).collect();
        out.push(
            Topology::new(TopologyKind::Dragonfly {
                groups: 5,
                routers_per_group: 3,
                hosts_per_router: 2,
            })
            .with_routing(Routing::Valiant { seed: 42 }),
        );
        out
    }

    #[test]
    fn routes_connect_all_pairs() {
        for t in all_topologies() {
            for s in 0..t.hosts() {
                for d in 0..t.hosts() {
                    let r = t.route(s, d);
                    if s == d {
                        assert!(r.is_empty());
                        continue;
                    }
                    // Route starts at src, ends at dst, and is contiguous.
                    let (first_from, _) = t.link_endpoints(r[0]);
                    let (_, last_to) = t.link_endpoints(*r.last().unwrap());
                    assert_eq!(first_from, Vertex::Host(s), "{:?}", t.kind());
                    assert_eq!(last_to, Vertex::Host(d), "{:?}", t.kind());
                    for w in r.windows(2) {
                        let (_, a_to) = t.link_endpoints(w[0]);
                        let (b_from, _) = t.link_endpoints(w[1]);
                        assert_eq!(a_to, b_from, "discontinuous route");
                    }
                }
            }
        }
    }

    #[test]
    fn hops_bounded_by_diameter() {
        for t in all_topologies() {
            let dia = t.diameter();
            for s in 0..t.hosts() {
                for d in 0..t.hosts() {
                    assert!(
                        t.hops(s, d) <= dia,
                        "{:?} ({:?}): hops({s},{d})={} > diameter {dia}",
                        t.kind(),
                        t.routing(),
                        t.hops(s, d)
                    );
                }
            }
        }
    }

    /// The arithmetic link numbering (route_plan + link_id) must agree
    /// with the retained insertion-order reference (walk_route + table)
    /// on every legacy kind — same links, same order.
    #[test]
    fn plan_matches_reference_on_legacy_kinds() {
        for kind in all_kinds() {
            let t = Topology::new_reference(kind);
            for s in 0..t.hosts() {
                for d in 0..t.hosts() {
                    assert_eq!(
                        t.route(s, d),
                        t.route_reference(s, d),
                        "{kind:?}: ({s},{d})"
                    );
                }
            }
        }
    }

    /// The closed-form link numbering must invert exactly: endpoints of
    /// id `i` re-encode to id `i`, and the reference table (built by an
    /// independent construction loop) agrees entry by entry.
    #[test]
    fn link_numbering_inverts_and_matches_reference_table() {
        for kind in all_kinds() {
            let t = Topology::new_reference(kind);
            assert_eq!(
                t.link_count(),
                t.reference_links().len(),
                "{kind:?}: link_count"
            );
            for i in 0..t.link_count() {
                let (from, to) = t.link_endpoints(LinkId(i as u32));
                assert_eq!(
                    t.link_id(from, to),
                    LinkId(i as u32),
                    "{kind:?}: endpoints({i}) do not re-encode"
                );
                assert_eq!(
                    t.reference_links()[i],
                    (from, to),
                    "{kind:?}: reference table disagrees at {i}"
                );
            }
        }
    }

    #[test]
    fn ring_takes_shorter_direction() {
        let t = Topology::new(TopologyKind::Ring { hosts: 8 });
        assert_eq!(t.hops(0, 1), 1);
        assert_eq!(t.hops(0, 7), 1);
        assert_eq!(t.hops(0, 4), 4);
        assert_eq!(t.hops(1, 6), 3);
    }

    #[test]
    fn crossbar_is_always_two_hops() {
        let t = Topology::new(TopologyKind::Crossbar { hosts: 5 });
        for s in 0..5 {
            for d in 0..5 {
                if s != d {
                    assert_eq!(t.hops(s, d), 2);
                }
            }
        }
    }

    #[test]
    fn torus2d_dimension_order_hop_count() {
        let t = Topology::new(TopologyKind::Torus2D { w: 4, h: 4 });
        // (0,0) -> (2,1): 2 X hops + 1 Y hop.
        assert_eq!(t.hops(0, 4 + 2), 3);
        // Wraparound: (0,0) -> (3,0) is 1 hop backwards.
        assert_eq!(t.hops(0, 3), 1);
    }

    #[test]
    fn fat_tree_host_count_and_hop_classes() {
        let t = Topology::new(TopologyKind::FatTree { k: 4 });
        assert_eq!(t.hosts(), 16);
        // Same edge switch: host 0 and 1 -> 2 hops.
        assert_eq!(t.hops(0, 1), 2);
        // Same pod, different edge: host 0 and 2 -> 4 hops.
        assert_eq!(t.hops(0, 2), 4);
        // Different pods: 6 hops.
        assert_eq!(t.hops(0, 15), 6);
    }

    #[test]
    fn fat_tree_has_full_bisection() {
        let t = Topology::new(TopologyKind::FatTree { k: 4 });
        assert_eq!(t.bisection_links(), 16);
    }

    #[test]
    fn multi_pod_fat_tree_counts() {
        let t = Topology::new(TopologyKind::FatTreePods { k: 4, pods: 3 });
        assert_eq!(t.hosts(), 12);
        assert_eq!(t.hops(0, 1), 2);
        assert_eq!(t.hops(0, 2), 4);
        assert_eq!(t.hops(0, 11), 6);
        // pods == k is link-for-link the classic fat tree.
        let full = Topology::new_reference(TopologyKind::FatTreePods { k: 4, pods: 4 });
        let classic = Topology::new_reference(TopologyKind::FatTree { k: 4 });
        assert_eq!(full.reference_links(), classic.reference_links());
        for s in 0..full.hosts() {
            for d in 0..full.hosts() {
                assert_eq!(full.route(s, d), classic.route(s, d));
            }
        }
    }

    #[test]
    fn dragonfly_counts_and_hop_classes() {
        let t = Topology::new(TopologyKind::Dragonfly {
            groups: 5,
            routers_per_group: 3,
            hosts_per_router: 2,
        });
        assert_eq!(t.hosts(), 30);
        assert_eq!(t.group_size(), 6);
        assert_eq!(t.group_of(0), 0);
        assert_eq!(t.group_of(29), 4);
        // Same router: host 0 and 1 -> 2 hops.
        assert_eq!(t.hops(0, 1), 2);
        // Same group, different router: <= 3 hops.
        assert_eq!(t.hops(0, 2), 3);
        // Cross-group: <= 5 hops, >= 3 (up, global, down).
        for s in 0..6 {
            for d in 6..12 {
                let h = t.hops(s, d);
                assert!((3..=5).contains(&h), "hops({s},{d}) = {h}");
            }
        }
    }

    #[test]
    fn dragonfly_global_links_spread_over_routers() {
        // groups=9, a=2: each router owns 4 global endpoints.
        let t = Topology::new(TopologyKind::Dragonfly {
            groups: 9,
            routers_per_group: 2,
            hosts_per_router: 1,
        });
        let mut per_router = vec![0u32; 18];
        let n = t.link_count();
        let global_base = n - 9 * 8;
        for i in global_base..n {
            let (from, _) = t.link_endpoints(LinkId(i as u32));
            let Vertex::Switch(r) = from else { panic!() };
            per_router[r as usize] += 1;
        }
        assert!(per_router.iter().all(|&c| c == 4), "{per_router:?}");
    }

    #[test]
    fn valiant_detours_and_stays_bounded() {
        let kind = TopologyKind::Dragonfly {
            groups: 8,
            routers_per_group: 4,
            hosts_per_router: 2,
        };
        let min = Topology::new(kind);
        let val = Topology::new(kind).with_routing(Routing::Valiant { seed: 7 });
        let mut detoured = 0;
        for s in 0..min.hosts() {
            for d in 0..min.hosts() {
                let hv = val.hops(s, d);
                let hm = min.hops(s, d);
                assert!(hv <= 2 * min.diameter(), "hops({s},{d}) = {hv}");
                assert!(hv <= val.diameter());
                if hv > hm {
                    detoured += 1;
                }
                // Same-group pairs must stay minimal.
                if min.group_of(s) == min.group_of(d) {
                    assert_eq!(hv, hm);
                }
            }
        }
        assert!(detoured > 0, "valiant never detoured");
        // Deterministic per seed.
        let val2 = Topology::new(kind).with_routing(Routing::Valiant { seed: 7 });
        assert_eq!(val.route(0, 63), val2.route(0, 63));
    }

    #[test]
    fn link_ids_are_dense_and_unique() {
        for t in all_topologies() {
            let n = t.link_count();
            let mut seen = vec![false; n];
            for s in 0..t.hosts() {
                for d in 0..t.hosts() {
                    for l in t.route(s, d) {
                        seen[l.0 as usize] = true;
                    }
                }
            }
            // Every link id is in range; most links are used by some route.
            assert!(seen.iter().filter(|&&s| s).count() > 0);
        }
    }

    #[test]
    #[should_panic(expected = "rank out of range")]
    fn out_of_range_rank_panics() {
        let t = Topology::new(TopologyKind::Ring { hosts: 4 });
        t.route(0, 9);
    }

    #[test]
    fn routes_are_deterministic() {
        let t = Topology::new(TopologyKind::FatTree { k: 4 });
        assert_eq!(t.route(3, 12), t.route(3, 12));
    }

    /// A 1M-host Dragonfly is O(1) to build and O(route length) to
    /// route — the hyperscale contract. (The counting-allocator version
    /// of this assertion lives in the root `interconnect_memory` suite.)
    #[test]
    fn million_host_dragonfly_routes_without_materialization() {
        let t = Topology::new(TopologyKind::Dragonfly {
            groups: 2048,
            routers_per_group: 32,
            hosts_per_router: 16,
        });
        assert_eq!(t.hosts(), 1 << 20);
        assert!(!t.has_reference());
        let mut total = 0u64;
        for (s, d) in [(0, 1), (0, 1_000_000), (123_456, 987_654), (7, 524_288)] {
            let h = t.hops(s, d);
            assert!(h <= t.diameter());
            total += h as u64;
        }
        assert!(total > 0);
        // Endpoint inversion works at scale too.
        let last = LinkId(t.link_count() as u32 - 1);
        let (from, to) = t.link_endpoints(last);
        assert_eq!(t.link_id(from, to), last);
    }
}
