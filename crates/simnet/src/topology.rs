//! Cluster interconnect topologies and deterministic routing.
//!
//! A topology is an explicit directed graph over host and switch vertices
//! with analytic (table-free) routing: crossbar, ring, 2-D/3-D torus with
//! dimension-order routing, and a k-ary fat tree with destination-based
//! upstream spreading (D-mod-k). Routes are returned as sequences of
//! [`LinkId`]s so the contention model can charge occupancy per link.

use crate::fasthash::FastHashMap;
use crate::link::LinkId;

/// A vertex in the interconnect graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Vertex {
    /// A compute node (host), identified by rank.
    Host(u32),
    /// A switch, identified by a topology-specific index.
    Switch(u32),
}

/// Topology construction parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyKind {
    /// All hosts attached to one ideal crossbar switch.
    Crossbar { hosts: u32 },
    /// Bidirectional ring of hosts (direct network, no switches).
    Ring { hosts: u32 },
    /// 2-D torus, `w * h` hosts, dimension-order (X then Y) routing.
    Torus2D { w: u32, h: u32 },
    /// 3-D torus, `x * y * z` hosts, dimension-order routing.
    Torus3D { x: u32, y: u32, z: u32 },
    /// k-ary fat tree (k even): `k^3/4` hosts, three switch tiers.
    FatTree { k: u32 },
}

/// An explicit interconnect graph with routing.
#[derive(Debug, Clone)]
pub struct Topology {
    kind: TopologyKind,
    hosts: u32,
    /// Directed edges: (from, to), indexed by LinkId.
    links: Vec<(Vertex, Vertex)>,
    /// (from, to) -> LinkId. Lookup-only (never iterated), so the fast
    /// non-sip hasher cannot perturb determinism.
    index: FastHashMap<(Vertex, Vertex), LinkId>,
}

impl Topology {
    pub fn new(kind: TopologyKind) -> Self {
        let mut t = Topology {
            kind,
            hosts: 0,
            links: Vec::new(),
            index: FastHashMap::default(),
        };
        match kind {
            TopologyKind::Crossbar { hosts } => {
                assert!(hosts >= 1);
                t.hosts = hosts;
                for h in 0..hosts {
                    t.add_bidi(Vertex::Host(h), Vertex::Switch(0));
                }
            }
            TopologyKind::Ring { hosts } => {
                assert!(hosts >= 2, "ring needs at least two hosts");
                t.hosts = hosts;
                for h in 0..hosts {
                    t.add_bidi(Vertex::Host(h), Vertex::Host((h + 1) % hosts));
                }
            }
            TopologyKind::Torus2D { w, h } => {
                assert!(w >= 2 && h >= 2, "torus dims must be >= 2");
                t.hosts = w * h;
                for y in 0..h {
                    for x in 0..w {
                        let me = y * w + x;
                        let east = y * w + (x + 1) % w;
                        let north = ((y + 1) % h) * w + x;
                        t.add_bidi(Vertex::Host(me), Vertex::Host(east));
                        t.add_bidi(Vertex::Host(me), Vertex::Host(north));
                    }
                }
            }
            TopologyKind::Torus3D { x, y, z } => {
                assert!(x >= 2 && y >= 2 && z >= 2);
                t.hosts = x * y * z;
                let id = |i: u32, j: u32, k: u32| (k * y + j) * x + i;
                for k in 0..z {
                    for j in 0..y {
                        for i in 0..x {
                            let me = id(i, j, k);
                            t.add_bidi(Vertex::Host(me), Vertex::Host(id((i + 1) % x, j, k)));
                            t.add_bidi(Vertex::Host(me), Vertex::Host(id(i, (j + 1) % y, k)));
                            t.add_bidi(Vertex::Host(me), Vertex::Host(id(i, j, (k + 1) % z)));
                        }
                    }
                }
            }
            TopologyKind::FatTree { k } => {
                assert!(k >= 2 && k % 2 == 0, "fat tree arity must be even");
                let half = k / 2;
                t.hosts = k * half * half;
                // Switch numbering: edge switches [0, k*half), aggregation
                // switches [k*half, 2*k*half), core switches
                // [2*k*half, 2*k*half + half*half).
                let edge = |pod: u32, e: u32| Vertex::Switch(pod * half + e);
                let agg = |pod: u32, a: u32| Vertex::Switch(k * half + pod * half + a);
                let core = |c: u32| Vertex::Switch(2 * k * half + c);
                for pod in 0..k {
                    for e in 0..half {
                        for p in 0..half {
                            let hst = (pod * half + e) * half + p;
                            t.add_bidi(Vertex::Host(hst), edge(pod, e));
                        }
                        for a in 0..half {
                            t.add_bidi(edge(pod, e), agg(pod, a));
                        }
                    }
                    for a in 0..half {
                        for up in 0..half {
                            // Aggregation switch `a` connects to core
                            // switches a*half..a*half+half.
                            t.add_bidi(agg(pod, a), core(a * half + up));
                        }
                    }
                }
            }
        }
        t
    }

    fn add_bidi(&mut self, a: Vertex, b: Vertex) {
        // Idempotent: a torus dimension of width 2 wraps +1 and -1 to the
        // same neighbour; we model that as a single (shared) cable pair.
        for (x, y) in [(a, b), (b, a)] {
            if self.index.contains_key(&(x, y)) {
                continue;
            }
            let id = LinkId(self.links.len() as u32);
            self.links.push((x, y));
            self.index.insert((x, y), id);
        }
    }

    pub fn kind(&self) -> TopologyKind {
        self.kind
    }

    pub fn hosts(&self) -> u32 {
        self.hosts
    }

    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    pub fn link_endpoints(&self, id: LinkId) -> (Vertex, Vertex) {
        self.links[id.0 as usize]
    }

    fn link(&self, from: Vertex, to: Vertex) -> LinkId {
        *self
            .index
            .get(&(from, to))
            .unwrap_or_else(|| panic!("no link {from:?} -> {to:?}"))
    }

    /// The deterministic route from host `src` to host `dst` as links.
    /// `src == dst` yields an empty route (loopback never hits the wire).
    pub fn route(&self, src: u32, dst: u32) -> Vec<LinkId> {
        let mut out = Vec::new();
        self.route_into(src, dst, &mut out);
        out
    }

    /// Like [`Topology::route`], but appends into a caller-owned buffer
    /// (cleared first) so the per-transfer hot path allocates nothing
    /// once the buffer has grown to the diameter.
    pub fn route_into(&self, src: u32, dst: u32, out: &mut Vec<LinkId>) {
        assert!(src < self.hosts && dst < self.hosts, "rank out of range");
        out.clear();
        if src == dst {
            return;
        }
        let mut prev = Vertex::Host(src);
        self.walk_route(src, dst, |v| {
            out.push(self.link(prev, v));
            prev = v;
        });
    }

    /// Number of links on the route (0 for loopback).
    pub fn hops(&self, src: u32, dst: u32) -> u32 {
        if src == dst {
            return 0;
        }
        let mut n = 0;
        self.walk_route(src, dst, |_| n += 1);
        n
    }

    /// Visit each vertex of the deterministic `src -> dst` path after the
    /// source, in order. The route algorithms stream their hops through
    /// `visit` so neither `route_into` nor `hops` builds a vertex list.
    fn walk_route(&self, src: u32, dst: u32, mut visit: impl FnMut(Vertex)) {
        match self.kind {
            TopologyKind::Crossbar { .. } => {
                visit(Vertex::Switch(0));
                visit(Vertex::Host(dst));
            }
            TopologyKind::Ring { hosts } => {
                let fwd = (dst + hosts - src) % hosts;
                let bwd = (src + hosts - dst) % hosts;
                let mut cur = src;
                if fwd <= bwd {
                    for _ in 0..fwd {
                        cur = (cur + 1) % hosts;
                        visit(Vertex::Host(cur));
                    }
                } else {
                    for _ in 0..bwd {
                        cur = (cur + hosts - 1) % hosts;
                        visit(Vertex::Host(cur));
                    }
                }
            }
            TopologyKind::Torus2D { w, h } => {
                let (mut x, mut y) = (src % w, src / w);
                let (dx, dy) = (dst % w, dst / w);
                while x != dx {
                    x = step_toward(x, dx, w);
                    visit(Vertex::Host(y * w + x));
                }
                while y != dy {
                    y = step_toward(y, dy, h);
                    visit(Vertex::Host(y * w + x));
                }
            }
            TopologyKind::Torus3D { x: wx, y: wy, z: wz } => {
                let coord = |n: u32| (n % wx, (n / wx) % wy, n / (wx * wy));
                let id = |i: u32, j: u32, k: u32| (k * wy + j) * wx + i;
                let (mut i, mut j, mut k) = coord(src);
                let (di, dj, dk) = coord(dst);
                while i != di {
                    i = step_toward(i, di, wx);
                    visit(Vertex::Host(id(i, j, k)));
                }
                while j != dj {
                    j = step_toward(j, dj, wy);
                    visit(Vertex::Host(id(i, j, k)));
                }
                while k != dk {
                    k = step_toward(k, dk, wz);
                    visit(Vertex::Host(id(i, j, k)));
                }
            }
            TopologyKind::FatTree { k } => {
                let half = k / 2;
                let pod_of = |hst: u32| hst / (half * half);
                let edge_of = |hst: u32| (hst / half) % half;
                let (sp, se) = (pod_of(src), edge_of(src));
                let (dp, de) = (pod_of(dst), edge_of(dst));
                let edge = |pod: u32, e: u32| Vertex::Switch(pod * half + e);
                let agg = |pod: u32, a: u32| Vertex::Switch(k * half + pod * half + a);
                let core = |c: u32| Vertex::Switch(2 * k * half + c);
                visit(edge(sp, se));
                if sp == dp && se == de {
                    // Same edge switch.
                } else if sp == dp {
                    // Up to an aggregation switch chosen by destination
                    // (D-mod-k spreading), back down.
                    let a = dst % half;
                    visit(agg(sp, a));
                    visit(edge(dp, de));
                } else {
                    // Up through agg and core, down the destination pod.
                    let a = dst % half;
                    let c = a * half + (dst / half) % half;
                    visit(agg(sp, a));
                    visit(core(c));
                    visit(agg(dp, a));
                    visit(edge(dp, de));
                }
                visit(Vertex::Host(dst));
            }
        }
    }

    /// Network diameter in links (max hops over all host pairs). Computed
    /// analytically per topology kind.
    pub fn diameter(&self) -> u32 {
        match self.kind {
            TopologyKind::Crossbar { .. } => 2,
            TopologyKind::Ring { hosts } => hosts / 2,
            TopologyKind::Torus2D { w, h } => w / 2 + h / 2,
            TopologyKind::Torus3D { x, y, z } => x / 2 + y / 2 + z / 2,
            TopologyKind::FatTree { .. } => 6,
        }
    }

    /// Links crossing a balanced bisection (a capacity measure used by the
    /// scaling analyses).
    pub fn bisection_links(&self) -> u32 {
        match self.kind {
            TopologyKind::Crossbar { hosts } => hosts, // ideal
            TopologyKind::Ring { .. } => 4,            // 2 cables, both directions
            TopologyKind::Torus2D { w, h } => {
                // Cut across the smaller dimension: 2 cables per row/col
                // crossing, both directions.
                4 * w.min(h)
            }
            TopologyKind::Torus3D { x, y, z } => {
                let (a, b, c) = (x.max(y).max(z), 0, 0);
                let _ = (b, c);
                // Cut perpendicular to the largest dimension.
                let plane = (x * y * z) / a;
                4 * plane
            }
            TopologyKind::FatTree { k } => k * k * k / 4, // full bisection
        }
    }
}

#[inline]
fn step_toward(cur: u32, dst: u32, width: u32) -> u32 {
    // One hop along the shorter direction around a ring of `width`.
    let fwd = (dst + width - cur) % width;
    let bwd = (cur + width - dst) % width;
    if fwd <= bwd {
        (cur + 1) % width
    } else {
        (cur + width - 1) % width
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_topologies() -> Vec<Topology> {
        vec![
            Topology::new(TopologyKind::Crossbar { hosts: 9 }),
            Topology::new(TopologyKind::Ring { hosts: 8 }),
            Topology::new(TopologyKind::Ring { hosts: 7 }),
            Topology::new(TopologyKind::Torus2D { w: 4, h: 3 }),
            Topology::new(TopologyKind::Torus3D { x: 2, y: 3, z: 2 }),
            Topology::new(TopologyKind::FatTree { k: 4 }),
        ]
    }

    #[test]
    fn routes_connect_all_pairs() {
        for t in all_topologies() {
            for s in 0..t.hosts() {
                for d in 0..t.hosts() {
                    let r = t.route(s, d);
                    if s == d {
                        assert!(r.is_empty());
                        continue;
                    }
                    // Route starts at src, ends at dst, and is contiguous.
                    let (first_from, _) = t.link_endpoints(r[0]);
                    let (_, last_to) = t.link_endpoints(*r.last().unwrap());
                    assert_eq!(first_from, Vertex::Host(s), "{:?}", t.kind());
                    assert_eq!(last_to, Vertex::Host(d), "{:?}", t.kind());
                    for w in r.windows(2) {
                        let (_, a_to) = t.link_endpoints(w[0]);
                        let (b_from, _) = t.link_endpoints(w[1]);
                        assert_eq!(a_to, b_from, "discontinuous route");
                    }
                }
            }
        }
    }

    #[test]
    fn hops_bounded_by_diameter() {
        for t in all_topologies() {
            let dia = t.diameter();
            for s in 0..t.hosts() {
                for d in 0..t.hosts() {
                    assert!(
                        t.hops(s, d) <= dia,
                        "{:?}: hops({s},{d})={} > diameter {dia}",
                        t.kind(),
                        t.hops(s, d)
                    );
                }
            }
        }
    }

    #[test]
    fn ring_takes_shorter_direction() {
        let t = Topology::new(TopologyKind::Ring { hosts: 8 });
        assert_eq!(t.hops(0, 1), 1);
        assert_eq!(t.hops(0, 7), 1);
        assert_eq!(t.hops(0, 4), 4);
        assert_eq!(t.hops(1, 6), 3);
    }

    #[test]
    fn crossbar_is_always_two_hops() {
        let t = Topology::new(TopologyKind::Crossbar { hosts: 5 });
        for s in 0..5 {
            for d in 0..5 {
                if s != d {
                    assert_eq!(t.hops(s, d), 2);
                }
            }
        }
    }

    #[test]
    fn torus2d_dimension_order_hop_count() {
        let t = Topology::new(TopologyKind::Torus2D { w: 4, h: 4 });
        // (0,0) -> (2,1): 2 X hops + 1 Y hop.
        assert_eq!(t.hops(0, 4 + 2), 3);
        // Wraparound: (0,0) -> (3,0) is 1 hop backwards.
        assert_eq!(t.hops(0, 3), 1);
    }

    #[test]
    fn fat_tree_host_count_and_hop_classes() {
        let t = Topology::new(TopologyKind::FatTree { k: 4 });
        assert_eq!(t.hosts(), 16);
        // Same edge switch: host 0 and 1 -> 2 hops.
        assert_eq!(t.hops(0, 1), 2);
        // Same pod, different edge: host 0 and 2 -> 4 hops.
        assert_eq!(t.hops(0, 2), 4);
        // Different pods: 6 hops.
        assert_eq!(t.hops(0, 15), 6);
    }

    #[test]
    fn fat_tree_has_full_bisection() {
        let t = Topology::new(TopologyKind::FatTree { k: 4 });
        assert_eq!(t.bisection_links(), 16);
    }

    #[test]
    fn link_ids_are_dense_and_unique() {
        for t in all_topologies() {
            let n = t.link_count();
            let mut seen = vec![false; n];
            for s in 0..t.hosts() {
                for d in 0..t.hosts() {
                    for l in t.route(s, d) {
                        seen[l.0 as usize] = true;
                    }
                }
            }
            // Every link id is in range; most links are used by some route.
            assert!(seen.iter().filter(|&&s| s).count() > 0);
        }
    }

    #[test]
    #[should_panic(expected = "rank out of range")]
    fn out_of_range_rank_panics() {
        let t = Topology::new(TopologyKind::Ring { hosts: 4 });
        t.route(0, 9);
    }

    #[test]
    fn routes_are_deterministic() {
        let t = Topology::new(TopologyKind::FatTree { k: 4 });
        assert_eq!(t.route(3, 12), t.route(3, 12));
    }
}
