//! Measurement helpers: streaming summaries and log-scale histograms.

use crate::time::SimDuration;

/// Streaming mean/min/max/variance (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_secs());
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Sample variance (n-1 denominator); zero for fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// Power-of-two bucketed histogram for latencies/sizes spanning decades.
#[derive(Debug, Clone)]
pub struct Log2Histogram {
    /// buckets[i] counts values v with 2^i <= v < 2^(i+1); buckets[0]
    /// also counts 0.
    buckets: Vec<u64>,
    total: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Log2Histogram {
    pub fn new() -> Self {
        Log2Histogram {
            buckets: vec![0; 64],
            total: 0,
        }
    }

    pub fn record(&mut self, value: u64) {
        let idx = if value == 0 {
            0
        } else {
            63 - value.leading_zeros() as usize
        };
        self.buckets[idx] += 1;
        self.total += 1;
    }

    pub fn count(&self) -> u64 {
        self.total
    }

    /// Value at or below which `q` (0..=1) of samples fall, reported as
    /// the upper bound of the containing bucket.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return if i >= 63 { u64::MAX } else { (1u64 << (i + 1)) - 1 };
            }
        }
        u64::MAX
    }

    /// Nonempty buckets as (lower_bound, count) pairs.
    pub fn nonempty(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (if i == 0 { 0 } else { 1u64 << i }, c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic_moments() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        // Population variance is 4.0; sample variance = 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn summary_empty_is_zeroed() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn summary_single_sample() {
        let mut s = Summary::new();
        s.record(3.5);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let mut h = Log2Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1024] {
            h.record(v);
        }
        let ne = h.nonempty();
        // 0 and 1 share bucket 0; 2,3 in bucket [2,4); 4,7 in [4,8); 8 in
        // [8,16); 1024 alone.
        assert_eq!(ne, vec![(0, 2), (2, 2), (4, 2), (8, 1), (1024, 1)]);
        assert_eq!(h.count(), 8);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Log2Histogram::new();
        for _ in 0..99 {
            h.record(10); // bucket [8,16)
        }
        h.record(1 << 20);
        assert_eq!(h.quantile(0.5), 15);
        assert_eq!(h.quantile(0.99), 15);
        assert!(h.quantile(1.0) >= 1 << 20);
    }

    #[test]
    fn histogram_empty_quantile_is_zero() {
        let h = Log2Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn histogram_handles_max_value() {
        let mut h = Log2Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.quantile(1.0), u64::MAX);
    }
}
