//! Optical circuit switching model.
//!
//! The keynote names "optical switching" among the networking advances
//! that will shape future clusters. An optical circuit switch carries data
//! at very high bandwidth with negligible per-hop processing, but a
//! circuit between two endpoints must first be *established* — a MEMS
//! mirror settle or wavelength assignment taking tens of microseconds —
//! and the switch holds only a bounded number of simultaneous circuits.
//!
//! [`CircuitNetwork`] models this: per-(src,dst) circuits with a setup
//! cost, an LRU-bounded circuit table (evicting a circuit tears it down),
//! and full link bandwidth once a circuit is up. Experiment F7 contrasts
//! it with packet switching to find the message-size crossover where
//! setup cost is amortized.

use crate::link::{Generation, LinkModel};
use crate::time::{SimDuration, SimTime};

/// Configuration of the optical circuit switch.
#[derive(Debug, Clone, Copy)]
pub struct CircuitConfig {
    /// Time to establish a new circuit (mirror settle / lambda assign).
    pub setup: SimDuration,
    /// Maximum simultaneously held circuits (wavelengths / mirror pairs).
    pub max_circuits: usize,
    /// Data-plane model once the circuit is up.
    pub link: LinkModel,
}

impl Default for CircuitConfig {
    fn default() -> Self {
        CircuitConfig {
            setup: SimDuration::from_us(30),
            max_circuits: 64,
            link: Generation::Optical.link_model(),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Circuit {
    src: u32,
    dst: u32,
    /// Circuit is usable from this time (setup completes).
    ready_at: SimTime,
    /// Data currently scheduled on the circuit up to this time.
    busy_until: SimTime,
    last_used: SimTime,
}

/// Outcome of a circuit-switched transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CircuitDelivery {
    pub arrival: SimTime,
    /// Whether this transfer had to establish a new circuit.
    pub setup_paid: bool,
}

pub struct CircuitNetwork {
    cfg: CircuitConfig,
    circuits: Vec<Circuit>,
    setups: u64,
    reuses: u64,
    evictions: u64,
}

impl CircuitNetwork {
    pub fn new(cfg: CircuitConfig) -> Self {
        CircuitNetwork {
            cfg,
            circuits: Vec::new(),
            setups: 0,
            reuses: 0,
            evictions: 0,
        }
    }

    pub fn config(&self) -> CircuitConfig {
        self.cfg
    }

    /// Transfer `bytes` from `src` to `dst`, establishing a circuit if one
    /// is not already held.
    pub fn transfer(&mut self, now: SimTime, src: u32, dst: u32, bytes: u64) -> CircuitDelivery {
        let xfer = self.cfg.link.message_time(bytes, 1);
        if let Some(c) = self
            .circuits
            .iter_mut()
            .find(|c| c.src == src && c.dst == dst)
        {
            self.reuses += 1;
            let start = now.max(c.ready_at).max(c.busy_until);
            let arrival = start + xfer;
            c.busy_until = arrival;
            c.last_used = now;
            return CircuitDelivery {
                arrival,
                setup_paid: false,
            };
        }
        // Need a new circuit; evict the least-recently-used if full.
        if self.circuits.len() >= self.cfg.max_circuits {
            let (idx, _) = self
                .circuits
                .iter()
                .enumerate()
                .min_by_key(|(_, c)| c.last_used)
                .expect("non-empty when full");
            self.circuits.swap_remove(idx);
            self.evictions += 1;
        }
        self.setups += 1;
        let ready = now + self.cfg.setup;
        let arrival = ready + xfer;
        self.circuits.push(Circuit {
            src,
            dst,
            ready_at: ready,
            busy_until: arrival,
            last_used: now,
        });
        CircuitDelivery {
            arrival,
            setup_paid: true,
        }
    }

    pub fn setups(&self) -> u64 {
        self.setups
    }

    pub fn reuses(&self) -> u64 {
        self.reuses
    }

    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Message size at which a cold circuit transfer matches a packet
    /// network's delivery time (the amortization crossover), by bisection
    /// over message size against the given packet-switched model.
    pub fn crossover_bytes(&self, packet_model: &LinkModel, hops: u32) -> u64 {
        let cold =
            |bytes: u64| (self.cfg.setup + self.cfg.link.message_time(bytes, 1)).as_secs();
        let pkt = |bytes: u64| packet_model.message_time(bytes, hops).as_secs();
        // If the circuit never wins below 1 GiB, report the cap.
        let cap = 1u64 << 30;
        if cold(cap) >= pkt(cap) {
            return cap;
        }
        let (mut lo, mut hi) = (1u64, cap);
        while lo + 1 < hi {
            let mid = lo + (hi - lo) / 2;
            if cold(mid) < pkt(mid) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        hi
    }
}

// ---------------------------------------------------------------------
// Scheduled circuits
// ---------------------------------------------------------------------

/// Configuration of the *scheduled* circuit plane: unlike
/// [`CircuitNetwork`]'s implicit LRU table, callers explicitly reserve a
/// circuit (paying reconfiguration latency), run transfers on it, and
/// release it — the reservation discipline collectives use.
#[derive(Debug, Clone, Copy)]
pub struct CircuitSchedulerConfig {
    /// Reconfiguration latency charged on every reservation before the
    /// circuit becomes usable (MEMS mirror settle / lambda assignment).
    pub reconfig: SimDuration,
    /// Maximum simultaneously reserved circuits.
    pub max_circuits: usize,
    /// Data-plane model once the circuit is up.
    pub link: LinkModel,
}

impl Default for CircuitSchedulerConfig {
    fn default() -> Self {
        CircuitSchedulerConfig {
            reconfig: SimDuration::from_us(30),
            max_circuits: 64,
            link: Generation::Optical.link_model(),
        }
    }
}

/// A granted circuit reservation. The token is unique per scheduler
/// lifetime; a released or preempted token can never be used again.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reservation {
    pub token: u64,
    pub src: u32,
    pub dst: u32,
    /// First instant data may flow (reserve time + reconfiguration).
    pub ready_at: SimTime,
}

/// Why a circuit operation was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CircuitError {
    /// The token is not currently reserved (never granted, already
    /// released, or preempted).
    Inactive,
}

/// One entry in the scheduler's append-only event ledger. The sentinel
/// circuit-conservation audit replays this log to prove: reservations
/// never exceed capacity, every reserve has exactly one matching
/// release/preempt, no transfer runs outside its reservation window, and
/// reconfiguration latency is actually charged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CircuitEvent {
    Reserve {
        token: u64,
        src: u32,
        dst: u32,
        at: SimTime,
        ready_at: SimTime,
    },
    Transfer {
        token: u64,
        at: SimTime,
        start: SimTime,
        arrival: SimTime,
        bytes: u64,
    },
    Release {
        token: u64,
        at: SimTime,
    },
    /// `token` was forcibly torn down at `at` to make room for a new
    /// reservation (only idle circuits are preemptible).
    Preempt {
        token: u64,
        at: SimTime,
    },
}

#[derive(Debug, Clone, Copy)]
struct Held {
    token: u64,
    reserved_at: SimTime,
    ready_at: SimTime,
    busy_until: SimTime,
}

/// First-class scheduled circuit resource: explicit reserve / transfer /
/// release with reconfiguration latency and bounded capacity, plus an
/// event ledger for conservation auditing.
pub struct CircuitScheduler {
    cfg: CircuitSchedulerConfig,
    held: Vec<Held>,
    next_token: u64,
    log: Vec<CircuitEvent>,
    reserves: u64,
    releases: u64,
    transfers: u64,
    preemptions: u64,
}

impl CircuitScheduler {
    pub fn new(cfg: CircuitSchedulerConfig) -> Self {
        CircuitScheduler {
            cfg,
            held: Vec::new(),
            next_token: 0,
            log: Vec::new(),
            reserves: 0,
            releases: 0,
            transfers: 0,
            preemptions: 0,
        }
    }

    pub fn config(&self) -> CircuitSchedulerConfig {
        self.cfg
    }

    /// Currently reserved circuits.
    pub fn active_count(&self) -> usize {
        self.held.len()
    }

    /// Reserve a circuit `src -> dst`, or `None` when the switch is at
    /// capacity. The circuit is usable from `ready_at = now + reconfig`.
    pub fn try_reserve(&mut self, now: SimTime, src: u32, dst: u32) -> Option<Reservation> {
        if self.held.len() >= self.cfg.max_circuits {
            return None;
        }
        Some(self.grant(now, src, dst))
    }

    /// Reserve a circuit, preempting the oldest *idle* reservation
    /// (`busy_until <= now`) if the switch is full. Returns `None` only
    /// when every held circuit is still carrying data.
    pub fn reserve_preempting(&mut self, now: SimTime, src: u32, dst: u32) -> Option<Reservation> {
        if self.held.len() >= self.cfg.max_circuits {
            let victim = self
                .held
                .iter()
                .enumerate()
                .filter(|(_, h)| h.busy_until <= now)
                .min_by_key(|(_, h)| (h.reserved_at, h.token))
                .map(|(i, _)| i)?;
            let h = self.held.remove(victim);
            self.preemptions += 1;
            self.log.push(CircuitEvent::Preempt { token: h.token, at: now });
        }
        Some(self.grant(now, src, dst))
    }

    fn grant(&mut self, now: SimTime, src: u32, dst: u32) -> Reservation {
        let token = self.next_token;
        self.next_token += 1;
        let ready_at = now + self.cfg.reconfig;
        self.held.push(Held {
            token,
            reserved_at: now,
            ready_at,
            busy_until: ready_at,
        });
        self.reserves += 1;
        self.log.push(CircuitEvent::Reserve {
            token,
            src,
            dst,
            at: now,
            ready_at,
        });
        Reservation {
            token,
            src,
            dst,
            ready_at,
        }
    }

    /// Run `bytes` over a reserved circuit. Starts no earlier than the
    /// reservation's `ready_at` (reconfiguration) and the circuit's
    /// previous transfer (serialization); returns the arrival time.
    pub fn transfer(
        &mut self,
        now: SimTime,
        res: &Reservation,
        bytes: u64,
    ) -> Result<SimTime, CircuitError> {
        let h = self
            .held
            .iter_mut()
            .find(|h| h.token == res.token)
            .ok_or(CircuitError::Inactive)?;
        let start = now.max(h.ready_at).max(h.busy_until);
        let arrival = start + self.cfg.link.message_time(bytes, 1);
        h.busy_until = arrival;
        self.transfers += 1;
        self.log.push(CircuitEvent::Transfer {
            token: res.token,
            at: now,
            start,
            arrival,
            bytes,
        });
        Ok(arrival)
    }

    /// Release a reservation, freeing its capacity slot.
    pub fn release(&mut self, now: SimTime, res: &Reservation) -> Result<(), CircuitError> {
        let idx = self
            .held
            .iter()
            .position(|h| h.token == res.token)
            .ok_or(CircuitError::Inactive)?;
        self.held.remove(idx);
        self.releases += 1;
        self.log.push(CircuitEvent::Release {
            token: res.token,
            at: now,
        });
        Ok(())
    }

    /// When the circuit holding `token` finishes its queued transfers
    /// (`None` if inactive). Schedules use this to time releases.
    pub fn busy_until(&self, token: u64) -> Option<SimTime> {
        self.held.iter().find(|h| h.token == token).map(|h| h.busy_until)
    }

    /// The append-only event ledger.
    pub fn log(&self) -> &[CircuitEvent] {
        &self.log
    }

    pub fn reserves(&self) -> u64 {
        self.reserves
    }

    pub fn releases(&self) -> u64 {
        self.releases
    }

    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    pub fn preemptions(&self) -> u64 {
        self.preemptions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> CircuitNetwork {
        CircuitNetwork::new(CircuitConfig::default())
    }

    #[test]
    fn first_transfer_pays_setup_second_does_not() {
        let mut n = net();
        let d1 = n.transfer(SimTime::ZERO, 0, 1, 4096);
        assert!(d1.setup_paid);
        let d2 = n.transfer(d1.arrival, 0, 1, 4096);
        assert!(!d2.setup_paid);
        let warm = d2.arrival.since(d1.arrival);
        let cold = d1.arrival.since(SimTime::ZERO);
        assert!(cold.as_ps() > warm.as_ps() + SimDuration::from_us(25).as_ps());
        assert_eq!(n.setups(), 1);
        assert_eq!(n.reuses(), 1);
    }

    #[test]
    fn reverse_direction_is_a_distinct_circuit() {
        let mut n = net();
        let d1 = n.transfer(SimTime::ZERO, 0, 1, 100);
        let d2 = n.transfer(d1.arrival, 1, 0, 100);
        assert!(d2.setup_paid);
        assert_eq!(n.setups(), 2);
    }

    #[test]
    fn lru_eviction_when_full() {
        let mut n = CircuitNetwork::new(CircuitConfig {
            max_circuits: 2,
            ..CircuitConfig::default()
        });
        let mut t = SimTime::ZERO;
        t = n.transfer(t, 0, 1, 10).arrival; // circuit A
        t = n.transfer(t, 0, 2, 10).arrival; // circuit B
        t = n.transfer(t, 0, 1, 10).arrival; // touch A
        t = n.transfer(t, 0, 3, 10).arrival; // evicts B (LRU)
        assert_eq!(n.evictions(), 1);
        // A survives, B does not.
        assert!(!n.transfer(t, 0, 1, 10).setup_paid);
        let t2 = n.transfer(t, 0, 2, 10);
        assert!(t2.setup_paid);
    }

    #[test]
    fn back_to_back_transfers_queue_on_circuit() {
        let mut n = net();
        let d1 = n.transfer(SimTime::ZERO, 0, 1, 1 << 20);
        let d2 = n.transfer(SimTime::ZERO, 0, 1, 1 << 20);
        assert!(d2.arrival > d1.arrival);
    }

    #[test]
    fn crossover_exists_vs_infiniband() {
        let n = net();
        let ib = Generation::InfiniBand4x.link_model();
        let x = n.crossover_bytes(&ib, 4);
        // With 30us setup and 5x the bandwidth, the crossover sits in the
        // tens-of-kilobytes range.
        assert!(
            (4_096..4_194_304).contains(&x),
            "crossover = {x} bytes"
        );
        // Below crossover packet wins, above circuit wins.
        let cold = |b: u64| {
            (n.config().setup + n.config().link.message_time(b, 1)).as_secs()
        };
        assert!(cold(x / 4) > ib.message_time(x / 4, 4).as_secs());
        assert!(cold(x * 4) < ib.message_time(x * 4, 4).as_secs());
    }

    #[test]
    fn crossover_caps_when_circuit_never_wins() {
        // A circuit with absurd setup against a fast packet net never wins.
        let n = CircuitNetwork::new(CircuitConfig {
            setup: SimDuration::from_secs(10),
            ..CircuitConfig::default()
        });
        let ib = Generation::Optical.link_model();
        assert_eq!(n.crossover_bytes(&ib, 1), 1 << 30);
    }

    // -- scheduled circuits ------------------------------------------

    fn sched(max: usize) -> CircuitScheduler {
        CircuitScheduler::new(CircuitSchedulerConfig {
            max_circuits: max,
            ..CircuitSchedulerConfig::default()
        })
    }

    #[test]
    fn scheduler_charges_reconfiguration_latency() {
        let mut s = sched(4);
        let t0 = SimTime::ZERO;
        let r = s.try_reserve(t0, 0, 1).unwrap();
        assert_eq!(r.ready_at, t0 + s.config().reconfig);
        // A transfer issued immediately cannot start before ready_at.
        let arrival = s.transfer(t0, &r, 4096).unwrap();
        assert_eq!(arrival, r.ready_at + s.config().link.message_time(4096, 1));
    }

    #[test]
    fn scheduler_enforces_capacity() {
        let mut s = sched(2);
        let t0 = SimTime::ZERO;
        let a = s.try_reserve(t0, 0, 1).unwrap();
        let _b = s.try_reserve(t0, 2, 3).unwrap();
        assert!(s.try_reserve(t0, 4, 5).is_none());
        s.release(t0, &a).unwrap();
        assert!(s.try_reserve(t0, 4, 5).is_some());
        assert_eq!(s.active_count(), 2);
    }

    #[test]
    fn scheduler_serializes_transfers_on_one_circuit() {
        let mut s = sched(1);
        let t0 = SimTime::ZERO;
        let r = s.try_reserve(t0, 0, 1).unwrap();
        let first = s.transfer(t0, &r, 1 << 20).unwrap();
        // Second transfer issued at the same instant queues behind the first.
        let second = s.transfer(t0, &r, 1 << 20).unwrap();
        assert_eq!(second, first + s.config().link.message_time(1 << 20, 1));
        assert_eq!(s.busy_until(r.token), Some(second));
    }

    #[test]
    fn scheduler_rejects_traffic_on_released_circuit() {
        let mut s = sched(2);
        let t0 = SimTime::ZERO;
        let r = s.try_reserve(t0, 0, 1).unwrap();
        s.release(r.ready_at, &r).unwrap();
        assert_eq!(s.transfer(r.ready_at, &r, 64), Err(CircuitError::Inactive));
        assert_eq!(s.release(r.ready_at, &r), Err(CircuitError::Inactive));
        // A fresh reservation gets a fresh token; the stale one stays dead.
        let r2 = s.try_reserve(r.ready_at, 0, 1).unwrap();
        assert_ne!(r2.token, r.token);
    }

    #[test]
    fn scheduler_preempts_oldest_idle_only() {
        let mut s = sched(2);
        let t0 = SimTime::ZERO;
        let a = s.try_reserve(t0, 0, 1).unwrap();
        let b = s.try_reserve(t0 + SimDuration::from_us(1), 2, 3).unwrap();
        // Keep `a` busy far into the future; `b` is idle after reconfig.
        let a_done = s.transfer(t0, &a, 1 << 30).unwrap();
        let now = b.ready_at + SimDuration::from_us(5);
        assert!(now < a_done);
        let c = s.reserve_preempting(now, 4, 5).unwrap();
        // `b` (idle) was evicted even though `a` is older.
        assert_eq!(s.transfer(now, &b, 64), Err(CircuitError::Inactive));
        assert!(s.transfer(now, &a, 64).is_ok());
        assert!(s.transfer(now, &c, 64).is_ok());
        assert_eq!(s.preemptions(), 1);
        assert!(s
            .log()
            .iter()
            .any(|e| matches!(e, CircuitEvent::Preempt { token, .. } if *token == b.token)));
    }

    #[test]
    fn scheduler_preemption_fails_when_all_busy() {
        let mut s = sched(1);
        let t0 = SimTime::ZERO;
        let a = s.try_reserve(t0, 0, 1).unwrap();
        let done = s.transfer(t0, &a, 1 << 30).unwrap();
        assert!(s.reserve_preempting(t0 + SimDuration::from_us(50), 2, 3).is_none());
        // Once the transfer drains it becomes preemptible.
        assert!(s.reserve_preempting(done, 2, 3).is_some());
    }

    #[test]
    fn scheduler_ledger_records_full_lifecycle() {
        let mut s = sched(2);
        let t0 = SimTime::ZERO;
        let r = s.try_reserve(t0, 7, 9).unwrap();
        let arrival = s.transfer(t0, &r, 1024).unwrap();
        s.release(arrival, &r).unwrap();
        let log = s.log();
        assert_eq!(log.len(), 3);
        assert!(matches!(
            log[0],
            CircuitEvent::Reserve { token, src: 7, dst: 9, at, ready_at }
                if token == r.token && at == t0 && ready_at == r.ready_at
        ));
        assert!(matches!(
            log[1],
            CircuitEvent::Transfer { token, start, arrival: a, bytes: 1024, .. }
                if token == r.token && start == r.ready_at && a == arrival
        ));
        assert!(matches!(
            log[2],
            CircuitEvent::Release { token, at } if token == r.token && at == arrival
        ));
        assert_eq!((s.reserves(), s.transfers(), s.releases()), (1, 1, 1));
    }
}
