//! Optical circuit switching model.
//!
//! The keynote names "optical switching" among the networking advances
//! that will shape future clusters. An optical circuit switch carries data
//! at very high bandwidth with negligible per-hop processing, but a
//! circuit between two endpoints must first be *established* — a MEMS
//! mirror settle or wavelength assignment taking tens of microseconds —
//! and the switch holds only a bounded number of simultaneous circuits.
//!
//! [`CircuitNetwork`] models this: per-(src,dst) circuits with a setup
//! cost, an LRU-bounded circuit table (evicting a circuit tears it down),
//! and full link bandwidth once a circuit is up. Experiment F7 contrasts
//! it with packet switching to find the message-size crossover where
//! setup cost is amortized.

use crate::link::{Generation, LinkModel};
use crate::time::{SimDuration, SimTime};

/// Configuration of the optical circuit switch.
#[derive(Debug, Clone, Copy)]
pub struct CircuitConfig {
    /// Time to establish a new circuit (mirror settle / lambda assign).
    pub setup: SimDuration,
    /// Maximum simultaneously held circuits (wavelengths / mirror pairs).
    pub max_circuits: usize,
    /// Data-plane model once the circuit is up.
    pub link: LinkModel,
}

impl Default for CircuitConfig {
    fn default() -> Self {
        CircuitConfig {
            setup: SimDuration::from_us(30),
            max_circuits: 64,
            link: Generation::Optical.link_model(),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Circuit {
    src: u32,
    dst: u32,
    /// Circuit is usable from this time (setup completes).
    ready_at: SimTime,
    /// Data currently scheduled on the circuit up to this time.
    busy_until: SimTime,
    last_used: SimTime,
}

/// Outcome of a circuit-switched transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CircuitDelivery {
    pub arrival: SimTime,
    /// Whether this transfer had to establish a new circuit.
    pub setup_paid: bool,
}

pub struct CircuitNetwork {
    cfg: CircuitConfig,
    circuits: Vec<Circuit>,
    setups: u64,
    reuses: u64,
    evictions: u64,
}

impl CircuitNetwork {
    pub fn new(cfg: CircuitConfig) -> Self {
        CircuitNetwork {
            cfg,
            circuits: Vec::new(),
            setups: 0,
            reuses: 0,
            evictions: 0,
        }
    }

    pub fn config(&self) -> CircuitConfig {
        self.cfg
    }

    /// Transfer `bytes` from `src` to `dst`, establishing a circuit if one
    /// is not already held.
    pub fn transfer(&mut self, now: SimTime, src: u32, dst: u32, bytes: u64) -> CircuitDelivery {
        let xfer = self.cfg.link.message_time(bytes, 1);
        if let Some(c) = self
            .circuits
            .iter_mut()
            .find(|c| c.src == src && c.dst == dst)
        {
            self.reuses += 1;
            let start = now.max(c.ready_at).max(c.busy_until);
            let arrival = start + xfer;
            c.busy_until = arrival;
            c.last_used = now;
            return CircuitDelivery {
                arrival,
                setup_paid: false,
            };
        }
        // Need a new circuit; evict the least-recently-used if full.
        if self.circuits.len() >= self.cfg.max_circuits {
            let (idx, _) = self
                .circuits
                .iter()
                .enumerate()
                .min_by_key(|(_, c)| c.last_used)
                .expect("non-empty when full");
            self.circuits.swap_remove(idx);
            self.evictions += 1;
        }
        self.setups += 1;
        let ready = now + self.cfg.setup;
        let arrival = ready + xfer;
        self.circuits.push(Circuit {
            src,
            dst,
            ready_at: ready,
            busy_until: arrival,
            last_used: now,
        });
        CircuitDelivery {
            arrival,
            setup_paid: true,
        }
    }

    pub fn setups(&self) -> u64 {
        self.setups
    }

    pub fn reuses(&self) -> u64 {
        self.reuses
    }

    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Message size at which a cold circuit transfer matches a packet
    /// network's delivery time (the amortization crossover), by bisection
    /// over message size against the given packet-switched model.
    pub fn crossover_bytes(&self, packet_model: &LinkModel, hops: u32) -> u64 {
        let cold =
            |bytes: u64| (self.cfg.setup + self.cfg.link.message_time(bytes, 1)).as_secs();
        let pkt = |bytes: u64| packet_model.message_time(bytes, hops).as_secs();
        // If the circuit never wins below 1 GiB, report the cap.
        let cap = 1u64 << 30;
        if cold(cap) >= pkt(cap) {
            return cap;
        }
        let (mut lo, mut hi) = (1u64, cap);
        while lo + 1 < hi {
            let mid = lo + (hi - lo) / 2;
            if cold(mid) < pkt(mid) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> CircuitNetwork {
        CircuitNetwork::new(CircuitConfig::default())
    }

    #[test]
    fn first_transfer_pays_setup_second_does_not() {
        let mut n = net();
        let d1 = n.transfer(SimTime::ZERO, 0, 1, 4096);
        assert!(d1.setup_paid);
        let d2 = n.transfer(d1.arrival, 0, 1, 4096);
        assert!(!d2.setup_paid);
        let warm = d2.arrival.since(d1.arrival);
        let cold = d1.arrival.since(SimTime::ZERO);
        assert!(cold.as_ps() > warm.as_ps() + SimDuration::from_us(25).as_ps());
        assert_eq!(n.setups(), 1);
        assert_eq!(n.reuses(), 1);
    }

    #[test]
    fn reverse_direction_is_a_distinct_circuit() {
        let mut n = net();
        let d1 = n.transfer(SimTime::ZERO, 0, 1, 100);
        let d2 = n.transfer(d1.arrival, 1, 0, 100);
        assert!(d2.setup_paid);
        assert_eq!(n.setups(), 2);
    }

    #[test]
    fn lru_eviction_when_full() {
        let mut n = CircuitNetwork::new(CircuitConfig {
            max_circuits: 2,
            ..CircuitConfig::default()
        });
        let mut t = SimTime::ZERO;
        t = n.transfer(t, 0, 1, 10).arrival; // circuit A
        t = n.transfer(t, 0, 2, 10).arrival; // circuit B
        t = n.transfer(t, 0, 1, 10).arrival; // touch A
        t = n.transfer(t, 0, 3, 10).arrival; // evicts B (LRU)
        assert_eq!(n.evictions(), 1);
        // A survives, B does not.
        assert!(!n.transfer(t, 0, 1, 10).setup_paid);
        let t2 = n.transfer(t, 0, 2, 10);
        assert!(t2.setup_paid);
    }

    #[test]
    fn back_to_back_transfers_queue_on_circuit() {
        let mut n = net();
        let d1 = n.transfer(SimTime::ZERO, 0, 1, 1 << 20);
        let d2 = n.transfer(SimTime::ZERO, 0, 1, 1 << 20);
        assert!(d2.arrival > d1.arrival);
    }

    #[test]
    fn crossover_exists_vs_infiniband() {
        let n = net();
        let ib = Generation::InfiniBand4x.link_model();
        let x = n.crossover_bytes(&ib, 4);
        // With 30us setup and 5x the bandwidth, the crossover sits in the
        // tens-of-kilobytes range.
        assert!(
            (4_096..4_194_304).contains(&x),
            "crossover = {x} bytes"
        );
        // Below crossover packet wins, above circuit wins.
        let cold = |b: u64| {
            (n.config().setup + n.config().link.message_time(b, 1)).as_secs()
        };
        assert!(cold(x / 4) > ib.message_time(x / 4, 4).as_secs());
        assert!(cold(x * 4) < ib.message_time(x * 4, 4).as_secs());
    }

    #[test]
    fn crossover_caps_when_circuit_never_wins() {
        // A circuit with absurd setup against a fast packet net never wins.
        let n = CircuitNetwork::new(CircuitConfig {
            setup: SimDuration::from_secs(10),
            ..CircuitConfig::default()
        });
        let ib = Generation::Optical.link_model();
        assert_eq!(n.crossover_bytes(&ib, 1), 1 << 30);
    }
}
