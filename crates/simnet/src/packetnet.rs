//! Packet-level simulation over arbitrary routed topologies.
//!
//! The general-topology companion to `switch.rs`'s single crossbar:
//! every packet traverses its route link by link through output-queued
//! switches, with per-link FIFO serialization, cut-through or
//! store-and-forward forwarding, and per-hop propagation. This is the
//! highest-fidelity network model in the crate; its role is to validate
//! the fast flow-level model (`network.rs`) on multi-hop topologies —
//! the cross-validation tests at the bottom are the deliverable.

use crate::engine::{run, Scheduler, World};
use crate::link::{LinkId, LinkModel};
use crate::packet::{segment, Packet, Reassembler};
use crate::time::{SimDuration, SimTime};
use crate::topology::Topology;
use std::collections::VecDeque;

/// A message to inject.
#[derive(Debug, Clone, Copy)]
pub struct Injection {
    pub at: SimTime,
    pub src: u32,
    pub dst: u32,
    pub bytes: u64,
}

/// A completed message delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    pub msg_id: u64,
    pub src: u32,
    pub dst: u32,
    pub bytes: u64,
    pub at: SimTime,
}

/// A packet annotated with its route progress.
#[derive(Debug, Clone)]
struct RoutedPacket {
    pkt: Packet,
    route: std::sync::Arc<Vec<LinkId>>,
    /// Index of the link this packet is queued on / traversing.
    hop: usize,
}

#[derive(Debug)]
enum Ev {
    /// A packet is ready to contend for the link at its current hop.
    Enqueue(RoutedPacket),
    /// The link finished serializing its current packet.
    LinkFree(LinkId),
    /// A packet's tail fully arrived at the final host.
    Deliver(RoutedPacket),
}

struct PacketNet {
    topo: Topology,
    model: LinkModel,
    queues: Vec<VecDeque<RoutedPacket>>,
    busy: Vec<bool>,
    reasm: Reassembler,
    meta: std::collections::HashMap<u64, (u32, u32)>, // msg_id -> (src, dst)
    completions: Vec<Completion>,
}

impl PacketNet {
    fn ser(&self, pkt: &Packet) -> SimDuration {
        self.model.serialize(pkt.wire_bytes(&self.model))
    }

    fn fwd_delay(&self, pkt: &Packet) -> SimDuration {
        // How long after a link starts serializing before the next hop
        // can begin: cut-through forwards once the header is through,
        // store-and-forward only after the whole packet.
        let hdr = self.model.serialize(self.model.header_bytes as u64);
        let lat = SimDuration::from_ps(self.model.hop_latency);
        if self.model.cut_through {
            hdr + lat
        } else {
            self.ser(pkt) + lat
        }
    }

    /// Start serializing the head packet of `link` if idle.
    fn try_start(&mut self, sched: &mut Scheduler<Ev>, link: LinkId) {
        let li = link.0 as usize;
        if self.busy[li] {
            return;
        }
        let Some(rp) = self.queues[li].pop_front() else {
            return;
        };
        self.busy[li] = true;
        let ser = self.ser(&rp.pkt);
        let fwd = self.fwd_delay(&rp.pkt);
        let lat = SimDuration::from_ps(self.model.hop_latency);
        sched.after(ser, Ev::LinkFree(link));
        let last_hop = rp.hop + 1 == rp.route.len();
        if last_hop {
            // Tail arrives at the destination host after full
            // serialization plus propagation.
            let mut done = rp;
            done.hop += 1;
            sched.after(ser + lat, Ev::Deliver(done));
        } else {
            let mut next = rp;
            next.hop += 1;
            sched.after(fwd, Ev::Enqueue(next));
        }
    }
}

impl World for PacketNet {
    type Event = Ev;

    fn handle(&mut self, sched: &mut Scheduler<Ev>, ev: Ev) {
        match ev {
            Ev::Enqueue(rp) => {
                let link = rp.route[rp.hop];
                self.queues[link.0 as usize].push_back(rp);
                self.try_start(sched, link);
            }
            Ev::LinkFree(link) => {
                self.busy[link.0 as usize] = false;
                self.try_start(sched, link);
            }
            Ev::Deliver(rp) => {
                if let Some(msg) = self.reasm.push(rp.pkt) {
                    let (src, dst) = self.meta[&msg.msg_id];
                    self.completions.push(Completion {
                        msg_id: msg.msg_id,
                        src,
                        dst,
                        bytes: msg.bytes,
                        at: sched.now(),
                    });
                }
            }
        }
    }
}

/// Simulate `injections` at packet granularity; returns completions
/// sorted by arrival time. Loopback (src == dst) is not modeled here —
/// it never touches the network.
pub fn simulate_packets(
    topo: Topology,
    model: LinkModel,
    injections: &[Injection],
) -> Vec<Completion> {
    let n_links = topo.link_count();
    let mut world = PacketNet {
        topo,
        model,
        queues: (0..n_links).map(|_| VecDeque::new()).collect(),
        busy: vec![false; n_links],
        reasm: Reassembler::new(),
        meta: std::collections::HashMap::new(),
        completions: Vec::new(),
    };
    // Roughly one in-flight event per link at steady state.
    let mut sched = Scheduler::with_capacity(n_links);
    for (id, inj) in injections.iter().enumerate() {
        assert_ne!(inj.src, inj.dst, "loopback is not a network transfer");
        let route = std::sync::Arc::new(world.topo.route(inj.src, inj.dst));
        world.meta.insert(id as u64, (inj.src, inj.dst));
        for pkt in segment(id as u64, inj.src, inj.dst, inj.bytes, &world.model) {
            sched.at(
                inj.at,
                Ev::Enqueue(RoutedPacket {
                    pkt,
                    route: std::sync::Arc::clone(&route),
                    hop: 0,
                }),
            );
        }
    }
    run(&mut world, &mut sched, None);
    let mut done = world.completions;
    done.sort_by_key(|c| (c.at, c.msg_id));
    done
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::Generation;
    use crate::network::Network;
    use crate::topology::TopologyKind;

    fn inj(src: u32, dst: u32, bytes: u64) -> Injection {
        Injection {
            at: SimTime::ZERO,
            src,
            dst,
            bytes,
        }
    }

    #[test]
    fn single_transfer_matches_analytic_time() {
        for g in [Generation::GigabitEthernet, Generation::InfiniBand4x] {
            let m = g.link_model();
            for (kind, src, dst) in [
                (TopologyKind::FatTree { k: 4 }, 0u32, 15u32), // 6 hops
                (TopologyKind::Torus2D { w: 4, h: 4 }, 0, 5),  // 2 hops
                (TopologyKind::Ring { hosts: 8 }, 0, 3),       // 3 hops
            ] {
                let topo = Topology::new(kind);
                let hops = topo.hops(src, dst);
                let bytes = 20_000u64;
                let done = simulate_packets(topo, m, &[inj(src, dst, bytes)]);
                assert_eq!(done.len(), 1);
                let sim = done[0].at.since(SimTime::ZERO);
                let analytic = m.message_time(bytes, hops);
                let ratio = sim.as_secs() / analytic.as_secs();
                assert!(
                    (0.8..1.3).contains(&ratio),
                    "{g:?} {kind:?}: packet {sim} vs analytic {analytic} (ratio {ratio})"
                );
            }
        }
    }

    #[test]
    fn shared_fat_tree_downlink_halves_throughput() {
        let m = Generation::InfiniBand4x.link_model();
        let bytes = 1 << 20;
        let solo = simulate_packets(
            Topology::new(TopologyKind::FatTree { k: 4 }),
            m,
            &[inj(4, 0, bytes)],
        );
        let pair = simulate_packets(
            Topology::new(TopologyKind::FatTree { k: 4 }),
            m,
            &[inj(4, 0, bytes), inj(8, 0, bytes)],
        );
        let ratio = pair.last().unwrap().at.as_secs() / solo[0].at.as_secs();
        assert!(
            (1.7..2.3).contains(&ratio),
            "two flows into one host: ratio {ratio}"
        );
    }

    #[test]
    fn disjoint_torus_neighbors_do_not_contend() {
        // Every even host sends one hop east simultaneously: all links
        // disjoint, so all complete in one uncontended transfer time.
        let m = Generation::Myrinet2000.link_model();
        let topo = Topology::new(TopologyKind::Torus2D { w: 4, h: 4 });
        let injections: Vec<Injection> = (0..16u32)
            .filter(|h| h % 2 == 0)
            .map(|h| {
                let row = h / 4;
                inj(h, row * 4 + (h + 1) % 4, 50_000)
            })
            .collect();
        let done = simulate_packets(topo, m, &injections);
        assert_eq!(done.len(), injections.len());
        let first = done[0].at;
        let last = done.last().unwrap().at;
        assert_eq!(first, last, "disjoint transfers must not serialize");
    }

    #[test]
    fn flow_model_tracks_packet_model_under_congestion() {
        // The deliverable: the fast flow model agrees with the
        // packet-level reference on a congested fat tree within 35%.
        let m = Generation::GigabitEthernet.link_model();
        let mk_topo = || Topology::new(TopologyKind::FatTree { k: 4 });
        let bytes = 256 * 1024;
        // Incast: 6 senders, one receiver.
        let injections: Vec<Injection> =
            (1..7u32).map(|s| inj(s + 8, 2, bytes)).collect();
        let pkt = simulate_packets(mk_topo(), m, &injections);
        let t_pkt = pkt.last().unwrap().at.as_secs();
        let mut flow = Network::new(mk_topo(), m);
        let t_flow = injections
            .iter()
            .map(|i| flow.transfer(i.at, i.src, i.dst, i.bytes).arrival.as_secs())
            .fold(0.0, f64::max);
        let ratio = t_flow / t_pkt;
        assert!(
            (0.65..1.35).contains(&ratio),
            "flow {t_flow} vs packet {t_pkt}: ratio {ratio}"
        );
    }

    #[test]
    fn interleaved_messages_all_complete() {
        let m = Generation::InfiniBand4x.link_model();
        let topo = Topology::new(TopologyKind::FatTree { k: 4 });
        let injections: Vec<Injection> = (0..16u32)
            .flat_map(|s| (0..16u32).filter(move |&d| d != s).map(move |d| inj(s, d, 4096)))
            .collect();
        let done = simulate_packets(topo, m, &injections);
        assert_eq!(done.len(), 16 * 15, "every message must be delivered");
        // Per-destination arrival counts are uniform.
        let mut per_dst = [0u32; 16];
        for c in &done {
            per_dst[c.dst as usize] += 1;
        }
        assert!(per_dst.iter().all(|&c| c == 15));
    }

    #[test]
    fn cut_through_beats_store_and_forward_multihop() {
        let mut sf = Generation::Myrinet2000.link_model();
        sf.cut_through = false;
        let ct = Generation::Myrinet2000.link_model();
        let mk = || Topology::new(TopologyKind::Ring { hosts: 16 });
        let far = 8u32; // 8 hops around the ring
        let t_ct = simulate_packets(mk(), ct, &[inj(0, far, 4096)])[0].at;
        let t_sf = simulate_packets(mk(), sf, &[inj(0, far, 4096)])[0].at;
        assert!(t_ct < t_sf, "cut-through {t_ct} vs s&f {t_sf}");
    }

    #[test]
    fn deterministic_across_runs() {
        let m = Generation::GigabitEthernet.link_model();
        let injections: Vec<Injection> = (0..8u32).map(|s| inj(s, (s + 3) % 16, 30_000)).collect();
        let a = simulate_packets(Topology::new(TopologyKind::FatTree { k: 4 }), m, &injections);
        let b = simulate_packets(Topology::new(TopologyKind::FatTree { k: 4 }), m, &injections);
        assert_eq!(a, b);
    }
}
