//! Flow-level network model with per-link contention.
//!
//! [`Network`] charges each message's serialization time against every
//! link on its route, tracking per-link `busy_until` horizons. It is the
//! fast model used by the scaling experiments (thousands of nodes);
//! `switch.rs` holds a packet-level reference model used to validate its
//! behaviour in the small.
//!
//! Callers must present transfers in non-decreasing time order (the
//! discrete-event executors do this by construction); the model then
//! yields deterministic, contention-aware delivery times.

use crate::fault::{FaultEvent, FaultInjector, FaultPlan, FaultVerdict};
use crate::link::{LinkId, LinkModel, LinkState};
use crate::time::{SimDuration, SimTime};
use crate::topology::Topology;
use polaris_obs::{Counter, Obs, Subject};

/// Result of presenting one transfer to the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// When the last byte arrives at the destination NIC.
    pub arrival: SimTime,
    /// Whether fault injection dropped the message (arrival is then the
    /// time the loss would have been detected at the sender's timeout).
    pub dropped: bool,
    /// Whether the payload arrived damaged (a CRC check at the
    /// receiver would fail; the NIC layer surfaces this as an error
    /// completion).
    pub corrupted: bool,
}

/// Loss-injection configuration.
#[derive(Debug, Clone, Copy)]
pub struct LossConfig {
    /// Probability that a given message is dropped.
    pub drop_prob: f64,
    /// Seed for the deterministic drop stream.
    pub seed: u64,
}

/// Bandwidth used for rank-local (loopback) transfers: a 2002-era memory
/// copy, 2 GB/s.
const LOCAL_COPY_BPS: u64 = 2_000_000_000;

/// Cached counter handles for the transfer hot path (one registry
/// lookup at attach time, atomic bumps afterwards).
struct NetObs {
    obs: Obs,
    transfers: Counter,
    payload_bytes: Counter,
    delivered: Counter,
    dropped: Counter,
    corrupted: Counter,
}

pub struct Network {
    topo: Topology,
    model: LinkModel,
    links: Vec<LinkState>,
    faults: Option<FaultInjector>,
    transfers: u64,
    payload_bytes: u64,
    dropped: u64,
    corrupted: u64,
    obs: Option<NetObs>,
    /// Route buffer for the fault-injection path only: link-scoped fault
    /// rules judge the whole route as a slice. The fault-free hot path
    /// streams hops straight off [`Topology::route_plan`] and never
    /// materializes a route.
    route_scratch: Vec<LinkId>,
}

impl Network {
    pub fn new(topo: Topology, model: LinkModel) -> Self {
        let n = topo.link_count();
        Network {
            topo,
            model,
            links: vec![LinkState::default(); n],
            faults: None,
            transfers: 0,
            payload_bytes: 0,
            dropped: 0,
            corrupted: 0,
            obs: None,
            route_scratch: Vec::new(),
        }
    }

    /// Attach an observability plane. Transfer/drop/corruption counters
    /// land in the registry under `net_*`, the attached fault injector
    /// (if any) starts mirroring its replay log into the same plane,
    /// and [`Network::publish_obs`] exports per-link occupancy.
    pub fn set_obs(&mut self, obs: Obs) {
        if let Some(inj) = &mut self.faults {
            inj.set_obs(obs.clone());
        }
        self.obs = Some(NetObs {
            transfers: obs.counter("net_transfers_total", &[]),
            payload_bytes: obs.counter("net_payload_bytes_total", &[]),
            delivered: obs.counter("net_delivered_total", &[]),
            dropped: obs.counter("net_dropped_total", &[]),
            corrupted: obs.counter("net_corrupted_total", &[]),
            obs,
        });
    }

    /// Publish per-link state (bytes carried, busy picoseconds) into
    /// the registry as gauges. Call at scrape/export points; link
    /// counts can reach thousands, so this is not done per transfer.
    pub fn publish_obs(&self) {
        let Some(no) = &self.obs else { return };
        for (i, l) in self.links.iter().enumerate() {
            let idx = i.to_string();
            no.obs
                .gauge("net_link_bytes", &[("link", &idx)])
                .set(l.bytes_carried as f64);
            no.obs
                .gauge("net_link_busy_ps", &[("link", &idx)])
                .set(l.busy_time.as_ps() as f64);
        }
    }

    /// Attach a [`FaultPlan`]: every subsequent transfer is judged by
    /// its deterministic injector, and injected events accumulate in
    /// [`Network::fault_log`].
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        let mut inj = FaultInjector::new(plan);
        if let Some(no) = &self.obs {
            inj.set_obs(no.obs.clone());
        }
        self.faults = Some(inj);
        self
    }

    /// Uniform i.i.d. loss — kept as a convenience wrapper over
    /// [`Network::with_faults`] for the single-knob callers.
    pub fn with_loss(self, cfg: LossConfig) -> Self {
        self.with_faults(FaultPlan::new(cfg.seed).uniform_drop(cfg.drop_prob))
    }

    /// Replay log of every fault injected so far (empty without a plan).
    pub fn fault_log(&self) -> &[FaultEvent] {
        self.faults.as_ref().map_or(&[], |f| f.log())
    }

    /// Whether `node` is crashed under the attached plan at `now`.
    pub fn node_crashed(&self, node: u32, now: SimTime) -> bool {
        self.faults.as_ref().is_some_and(|f| f.node_crashed(node, now))
    }

    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    pub fn model(&self) -> &LinkModel {
        &self.model
    }

    /// Present a transfer of `bytes` payload from `src` to `dst` starting
    /// at `now`; returns the contention-aware delivery time.
    pub fn transfer(&mut self, now: SimTime, src: u32, dst: u32, bytes: u64) -> Delivery {
        self.transfers += 1;
        self.payload_bytes += bytes;
        if let Some(no) = &self.obs {
            no.transfers.inc();
            no.payload_bytes.add(bytes);
        }
        if src == dst {
            // Loopback: a local memory copy, never on the wire and
            // exempt from fault injection.
            let t = SimDuration::from_secs_f64(bytes as f64 / LOCAL_COPY_BPS as f64);
            if let Some(no) = &self.obs {
                no.delivered.inc();
            }
            return Delivery {
                arrival: now + t,
                dropped: false,
                corrupted: false,
            };
        }
        // Split the borrow: the topology stays immutably borrowed for the
        // route plan while link occupancy is charged against `links`.
        let Network {
            topo,
            model,
            links,
            faults,
            dropped: dropped_total,
            corrupted: corrupted_total,
            obs,
            route_scratch,
            ..
        } = self;
        let mut corrupted = false;
        if let Some(inj) = faults {
            // Link-scoped fault rules judge the route as a slice; only
            // chaos runs (small worlds) pay for the materialization.
            topo.route_into(src, dst, route_scratch);
            match inj.judge(now, src, dst, route_scratch) {
                FaultVerdict::Deliver => {}
                FaultVerdict::DeliverCorrupted => {
                    *corrupted_total += 1;
                    if let Some(no) = &obs {
                        no.corrupted.inc();
                    }
                    corrupted = true;
                }
                FaultVerdict::Drop(_) => {
                    *dropped_total += 1;
                    if let Some(no) = &obs {
                        no.dropped.inc();
                    }
                    // The sender learns of the loss only after a timeout;
                    // model that as the nominal delivery time
                    // (retransmission policy layers on top).
                    let nominal = now + model.message_time(bytes, route_scratch.len() as u32);
                    return Delivery {
                        arrival: nominal,
                        dropped: true,
                        corrupted: false,
                    };
                }
            }
        }
        let ser = model.serialize_payload(bytes);
        let wire_bytes = model.wire_bytes(bytes);
        // Per-hop forwarding cost of the message head: for cut-through the
        // head moves on after the header is through; store-and-forward
        // re-serializes the first packet.
        let fwd = if model.cut_through {
            model.serialize(model.header_bytes as u64)
        } else {
            model.serialize(bytes.min(model.mtu as u64) + model.header_bytes as u64)
        };
        let hop_lat = SimDuration::from_ps(model.hop_latency);
        // Stream the route plan charging occupancy; `extra` accumulates
        // queueing delay beyond the uncontended schedule. No route vector
        // exists on this path — each hop's link id is computed on the fly.
        let mut extra = SimDuration::ZERO;
        let mut hops = 0u32;
        for (i, link) in topo.route_plan(src, dst).enumerate() {
            let nominal_head = now + extra + (hop_lat + fwd).saturating_mul(i as u64);
            let st = &mut links[link.0 as usize];
            let start = nominal_head.max(st.busy_until);
            extra += start.since(nominal_head);
            st.busy_until = start + ser;
            st.bytes_carried += wire_bytes;
            st.busy_time += ser;
            hops += 1;
        }
        let arrival = now + extra + model.message_time(bytes, hops);
        if let Some(no) = &self.obs {
            no.delivered.inc();
            no.obs.instant(
                arrival.as_ps(),
                Subject::Node(dst),
                "net_deliver",
                &[
                    ("src", src as u64),
                    ("bytes", bytes),
                    ("corrupted", corrupted as u64),
                ],
            );
        }
        Delivery {
            arrival,
            dropped: false,
            corrupted,
        }
    }

    /// Uncontended transfer time (does not disturb link state).
    pub fn nominal_time(&self, src: u32, dst: u32, bytes: u64) -> SimDuration {
        if src == dst {
            SimDuration::from_secs_f64(bytes as f64 / LOCAL_COPY_BPS as f64)
        } else {
            self.model.message_time(bytes, self.topo.hops(src, dst))
        }
    }

    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    pub fn payload_bytes(&self) -> u64 {
        self.payload_bytes
    }

    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    pub fn corrupted(&self) -> u64 {
        self.corrupted
    }

    /// Peak link utilization over the interval `[0, horizon]`.
    pub fn peak_link_utilization(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            return 0.0;
        }
        self.links
            .iter()
            .map(|l| l.busy_time.as_ps() as f64 / horizon.as_ps() as f64)
            .fold(0.0, f64::max)
    }

    /// Total bytes carried across all links (payload + headers, counted
    /// once per traversed link).
    pub fn total_link_bytes(&self) -> u64 {
        self.links.iter().map(|l| l.bytes_carried).sum()
    }

    /// Reset link occupancy and rewind the fault injector, but keep
    /// topology/model/plan (new experiment run; replays are identical).
    pub fn reset(&mut self) {
        for l in &mut self.links {
            *l = LinkState::default();
        }
        if let Some(inj) = &mut self.faults {
            inj.reset();
        }
        self.transfers = 0;
        self.payload_bytes = 0;
        self.dropped = 0;
        self.corrupted = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::Generation;
    use crate::topology::TopologyKind;

    fn net(kind: TopologyKind, g: Generation) -> Network {
        Network::new(Topology::new(kind), g.link_model())
    }

    #[test]
    fn uncontended_matches_analytic_model() {
        let mut n = net(
            TopologyKind::Crossbar { hosts: 4 },
            Generation::InfiniBand4x,
        );
        let d = n.transfer(SimTime::ZERO, 0, 1, 4096);
        let expect = n.model().message_time(4096, 2);
        assert_eq!(d.arrival, SimTime::ZERO + expect);
        assert!(!d.dropped);
    }

    #[test]
    fn loopback_is_fast_and_off_the_wire() {
        let mut n = net(TopologyKind::Crossbar { hosts: 4 }, Generation::FastEthernet);
        let d = n.transfer(SimTime::ZERO, 2, 2, 1 << 20);
        assert!(d.arrival < SimTime::ZERO + n.model().message_time(1 << 20, 2));
        assert_eq!(n.total_link_bytes(), 0);
    }

    #[test]
    fn contention_serializes_same_destination() {
        let mut n = net(
            TopologyKind::Crossbar { hosts: 4 },
            Generation::GigabitEthernet,
        );
        let bytes = 1 << 20;
        // Two senders target node 0 at the same instant: the second must
        // wait roughly a full serialization on the shared downlink.
        let d1 = n.transfer(SimTime::ZERO, 1, 0, bytes);
        let d2 = n.transfer(SimTime::ZERO, 2, 0, bytes);
        let ser = n.model().serialize_payload(bytes);
        assert!(d2.arrival.since(d1.arrival) >= SimDuration::from_ps(ser.as_ps() * 9 / 10));
    }

    #[test]
    fn disjoint_paths_do_not_interfere() {
        let mut n = net(
            TopologyKind::Crossbar { hosts: 8 },
            Generation::GigabitEthernet,
        );
        let d1 = n.transfer(SimTime::ZERO, 0, 1, 1 << 20);
        let d2 = n.transfer(SimTime::ZERO, 2, 3, 1 << 20);
        assert_eq!(d1.arrival, d2.arrival);
    }

    #[test]
    fn later_transfer_on_free_link_is_unaffected() {
        let mut n = net(
            TopologyKind::Crossbar { hosts: 4 },
            Generation::GigabitEthernet,
        );
        n.transfer(SimTime::ZERO, 0, 1, 1 << 20);
        let late = SimTime::ZERO + SimDuration::from_secs(1);
        let d = n.transfer(late, 0, 1, 4096);
        assert_eq!(d.arrival, late + n.model().message_time(4096, 2));
    }

    #[test]
    fn loss_injection_is_deterministic_and_calibrated() {
        let mk = || {
            net(TopologyKind::Ring { hosts: 4 }, Generation::Myrinet2000).with_loss(LossConfig {
                drop_prob: 0.2,
                seed: 99,
            })
        };
        let mut a = mk();
        let mut b = mk();
        let mut drops = 0;
        for i in 0..1000 {
            let t = SimTime(i * 1_000_000);
            let da = a.transfer(t, 0, 1, 100);
            let db = b.transfer(t, 0, 1, 100);
            assert_eq!(da, db);
            if da.dropped {
                drops += 1;
            }
        }
        assert!((150..250).contains(&drops), "drops = {drops}");
        assert_eq!(a.dropped(), drops);
    }

    #[test]
    fn fault_plan_replay_is_bit_identical() {
        use crate::fault::FaultPlan;
        let plan = FaultPlan::new(1234)
            .uniform_drop(0.05)
            .corrupt(0.05)
            .flap_link(0, SimTime(10_000_000), 5_000_000, 20_000_000);
        let run = |n: &mut Network| {
            let mut out = Vec::new();
            for i in 0..500u64 {
                out.push(n.transfer(SimTime(i * 1_000_000), 0, 1, 512));
            }
            out
        };
        let mut a = net(TopologyKind::Ring { hosts: 4 }, Generation::Myrinet2000)
            .with_faults(plan.clone());
        let first = run(&mut a);
        let log1 = a.fault_log().to_vec();
        assert!(a.dropped() > 0 && a.corrupted() > 0);
        // Same plan in a fresh network: identical deliveries and log.
        let mut b = net(TopologyKind::Ring { hosts: 4 }, Generation::Myrinet2000)
            .with_faults(plan);
        assert_eq!(run(&mut b), first);
        assert_eq!(b.fault_log(), &log1[..]);
        // reset() rewinds the injector too.
        a.reset();
        assert_eq!(run(&mut a), first);
        assert_eq!(a.fault_log(), &log1[..]);
    }

    #[test]
    fn crashed_node_loses_all_traffic() {
        use crate::fault::FaultPlan;
        let crash_at = SimTime(1_000_000);
        let mut n = net(TopologyKind::Crossbar { hosts: 4 }, Generation::InfiniBand4x)
            .with_faults(FaultPlan::new(1).crash_node(2, crash_at));
        assert!(!n.transfer(SimTime::ZERO, 0, 2, 64).dropped);
        assert!(n.transfer(crash_at, 0, 2, 64).dropped);
        assert!(n.transfer(crash_at, 2, 3, 64).dropped);
        assert!(!n.transfer(crash_at, 0, 1, 64).dropped);
        assert!(n.node_crashed(2, crash_at));
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let mut n = net(TopologyKind::Ring { hosts: 4 }, Generation::Myrinet2000);
        n.transfer(SimTime::ZERO, 0, 2, 1000);
        assert_eq!(n.transfers(), 1);
        assert_eq!(n.payload_bytes(), 1000);
        assert!(n.total_link_bytes() >= 2 * 1000); // two hops
        n.reset();
        assert_eq!(n.transfers(), 0);
        assert_eq!(n.total_link_bytes(), 0);
    }

    #[test]
    fn utilization_bounded_by_one_under_saturation() {
        let mut n = net(
            TopologyKind::Crossbar { hosts: 2 },
            Generation::FastEthernet,
        );
        let mut t = SimTime::ZERO;
        for _ in 0..50 {
            let d = n.transfer(t, 0, 1, 1 << 16);
            t = d.arrival;
        }
        let u = n.peak_link_utilization(t);
        assert!(u > 0.5 && u <= 1.0, "utilization = {u}");
    }

    #[test]
    fn faster_generation_delivers_sooner() {
        for (slow, fast) in [
            (Generation::FastEthernet, Generation::GigabitEthernet),
            (Generation::GigabitEthernet, Generation::InfiniBand4x),
        ] {
            let mut a = net(TopologyKind::Crossbar { hosts: 2 }, slow);
            let mut b = net(TopologyKind::Crossbar { hosts: 2 }, fast);
            let da = a.transfer(SimTime::ZERO, 0, 1, 1 << 16);
            let db = b.transfer(SimTime::ZERO, 0, 1, 1 << 16);
            assert!(db.arrival < da.arrival);
        }
    }
}
