//! # polaris-simnet
//!
//! Deterministic discrete-event simulation of commodity-cluster
//! interconnects: the substrate under Polaris's scaling experiments.
//!
//! The crate provides three layers:
//!
//! 1. **Engine** ([`engine`], [`event`], [`time`]): a minimal
//!    event-queue/clock/dispatch core with picosecond resolution and
//!    bit-reproducible tie-breaking.
//! 2. **Interconnect models** ([`link`], [`topology`]): parameterized
//!    link models with presets for the interconnect generations the
//!    CLUSTER 2002 keynote names (Fast Ethernet through InfiniBand and
//!    optical switching), and routed topologies (crossbar, ring, torus,
//!    fat tree).
//! 3. **Network simulators**: a fast flow-level contention model
//!    ([`network`]) used at scale, a packet-level output-queued reference
//!    ([`switch`], [`packet`]) used to validate it, and an optical
//!    circuit-switching model ([`circuit`]).
//!
//! ```
//! use polaris_simnet::prelude::*;
//!
//! let topo = Topology::new(TopologyKind::FatTree { k: 4 });
//! let mut net = Network::new(topo, Generation::InfiniBand4x.link_model());
//! let d = net.transfer(SimTime::ZERO, 0, 15, 64 * 1024);
//! assert!(d.arrival > SimTime::ZERO);
//! ```

pub mod channel;
pub mod circuit;
pub mod engine;
pub mod error;
pub mod event;
pub mod fasthash;
pub mod fault;
pub mod link;
pub mod network;
pub mod packet;
pub mod packetnet;
pub mod rng;
pub mod shard;
pub mod stats;
pub mod switch;
pub mod time;
pub mod topology;

/// Commonly used items.
pub mod prelude {
    pub use crate::channel::ShardChannel;
    pub use crate::circuit::{
        CircuitConfig, CircuitError, CircuitEvent, CircuitNetwork, CircuitScheduler,
        CircuitSchedulerConfig, Reservation,
    };
    pub use crate::engine::{run, RunStats, Scheduler, World};
    pub use crate::error::SimError;
    pub use crate::fasthash::{FastHashMap, FastHashSet};
    pub use crate::fault::{
        DropCause, FaultAction, FaultEvent, FaultInjector, FaultKind, FaultPlan, FaultRule,
        FaultScope, FaultVerdict,
    };
    pub use crate::link::{Generation, LinkId, LinkModel};
    pub use crate::network::{Delivery, LossConfig, Network};
    pub use crate::packetnet::{simulate_packets, Completion, Injection};
    pub use crate::rng::SplitMix64;
    pub use crate::event::{EventQueue, QueueSnapshot};
    pub use crate::shard::{
        Lookahead, Partition, ShardCtx, ShardRunStats, ShardSim, ShardSnapshot, ShardWorld,
    };
    pub use crate::stats::{Log2Histogram, Summary};
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::topology::{RoutePlan, Routing, Topology, TopologyKind, Vertex};
}
