//! Deterministic event queue.
//!
//! The queue is keyed by `(time, sequence)`: the monotonically increasing
//! sequence number breaks same-time ties in insertion order, which makes
//! simulation runs bit-for-bit reproducible regardless of the queue's
//! internals. Two implementations share that contract:
//!
//! * [`EventQueue`] — a calendar queue (rotating bucket wheel over time,
//!   with a far-future spill heap) specialized for the near-monotone
//!   insert pattern of link/switch events. Pushes append to a bucket in
//!   O(1); pops drain one bucket at a time, sorting each small batch by
//!   `(time, seq)` once. Same-timestamp bursts — the common case in
//!   symmetric collectives, where every rank schedules at the same
//!   instant — collapse into a single bucket drained in one sort.
//! * [`reference::HeapQueue`] — the original binary-heap implementation,
//!   kept as the ordering oracle for the determinism property suite
//!   (`tests/event_queue.rs`) and as the baseline side of the
//!   event-queue microbenchmark (`figures -- perf`).
//!
//! The calendar queue adapts its bucket width and count to the live
//! event population (classic Brown calendar-queue resizing), so it stays
//! O(1) amortized whether events are nanoseconds or milliseconds apart.
//!
//! # Storage layout
//!
//! The wheel, drain batch, and spill heaps hold 24-byte Copy [`Handle`]s
//! (`time`, `seq`, arena slot); event payloads live in a slab arena and
//! are written exactly once on push and read exactly once on pop. Every
//! sort, heap sift, and bucket migration therefore moves fixed-size
//! handles instead of whole events — for the fat enum payloads the NIC
//! and collective models schedule, that is the difference between a
//! cache-resident drain loop and one that streams the full event bodies
//! through every `rebuild`/`advance`. Freed slots recycle through a free
//! list, so steady-state churn performs zero allocations.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::mem::MaybeUninit;

/// Index entry for one scheduled event: the ordering key plus the arena
/// slot holding the payload. Deliberately `Copy` and payload-free so the
/// calendar's sorts and heap operations never touch event bodies.
#[derive(Clone, Copy)]
struct Handle {
    time: SimTime,
    seq: u64,
    slot: u32,
}

impl Handle {
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

impl PartialEq for Handle {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for Handle {}

impl PartialOrd for Handle {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Handle {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other.key().cmp(&self.key())
    }
}

/// Slab of event payloads addressed by [`Handle::slot`].
///
/// Invariant: a slot is initialized iff exactly one live `Handle` in the
/// owning queue's containers names it. `alloc` initializes, `take` reads
/// out and recycles; the queue's `Drop` impl drops whatever is still
/// live.
struct Arena<E> {
    slots: Vec<MaybeUninit<E>>,
    free: Vec<u32>,
}

impl<E> Arena<E> {
    fn with_capacity(n: usize) -> Self {
        Arena {
            slots: Vec::with_capacity(n),
            free: Vec::new(),
        }
    }

    #[inline]
    fn alloc(&mut self, event: E) -> u32 {
        match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize] = MaybeUninit::new(event);
                slot
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("arena slot overflow");
                self.slots.push(MaybeUninit::new(event));
                slot
            }
        }
    }

    /// Read the payload out of `slot` and recycle it.
    ///
    /// # Safety
    /// `slot` must come from a `Handle` just removed from the queue's
    /// containers (so it is initialized and will not be read again).
    #[inline]
    unsafe fn take(&mut self, slot: u32) -> E {
        let e = unsafe { self.slots[slot as usize].assume_init_read() };
        self.free.push(slot);
        e
    }

    /// Drop the payload in `slot` without recycling (queue teardown).
    ///
    /// # Safety
    /// Same contract as [`Arena::take`].
    unsafe fn drop_slot(&mut self, slot: u32) {
        unsafe { self.slots[slot as usize].assume_init_drop() }
    }
}

/// Smallest wheel size; must be a power of two.
const MIN_BUCKETS: usize = 64;
/// Largest wheel size; bounds rebuild cost and memory.
const MAX_BUCKETS: usize = 1 << 16;
/// Resize up when the wheel population exceeds `buckets * GROW_FACTOR`.
const GROW_FACTOR: usize = 2;
/// Bucket width target: ~this many live events per bucket. One event
/// per bucket minimizes sort work but maximizes `advance` calls and
/// scatters the working set across the wheel; a small batch amortizes
/// the cursor scan and keeps the drained bucket cache-hot while its
/// sort stays trivial.
const TARGET_OCCUPANCY: u64 = 8;
/// A drained bucket holding at least this many events at *distinct*
/// timestamps means the bucket width is too coarse for the live event
/// density: re-fit it. (Same-timestamp bursts are excluded — they are
/// the symmetric-collective common case and a single bucket is exactly
/// where we want them.) Well above TARGET_OCCUPANCY so a healthy wheel
/// never re-fits on a chance cluster.
const CROWDED_BATCH: usize = 4 * TARGET_OCCUPANCY as usize;

/// A time-ordered queue of events with deterministic FIFO tie-breaking.
///
/// Calendar-queue layout:
///
/// * `wheel[i]` holds handles whose bucket index `k = time >> shift`
///   satisfies `k & mask == i` and `epoch <= k < epoch + nbuckets`.
///   Within a window of `nbuckets` a slot maps to exactly one `k`, so a
///   bucket never mixes events from different wheel laps.
/// * `current` is the bucket being drained, sorted *descending* by
///   `(time, seq)` so `pop` is a `Vec::pop` from the tail.
/// * `behind` holds handles pushed "behind the cursor" (same-instant
///   follow-ups, past-clamped events) in a small min-heap; `pop` takes
///   whichever of `current`/`behind` is earlier, so global order is
///   preserved without an O(batch) merge-insert per follow-up.
/// * `far` spills handles beyond the wheel horizon; they migrate into
///   the wheel as the cursor approaches (checked once per bucket
///   advance).
/// * `arena` owns the payloads; every container above stores handles.
pub struct EventQueue<E> {
    wheel: Vec<Vec<Handle>>,
    /// Occupancy bitmap, one bit per bucket, for O(nbuckets/64) scans.
    occupied: Vec<u64>,
    /// log2 of the bucket width in picoseconds.
    shift: u32,
    /// `nbuckets - 1`; nbuckets is a power of two.
    mask: u64,
    /// Bucket index (`time >> shift`) of the cursor: every event in the
    /// wheel or `far` has `k >= epoch`; every event in `current` has
    /// `k < epoch`.
    epoch: u64,
    /// Drain batch, sorted descending by `(time, seq)`; popped from the
    /// tail.
    current: Vec<Handle>,
    /// Events pushed behind the cursor, merged with `current` at pop
    /// time. Stays small: it only ever holds same-instant follow-ups
    /// and past-clamped events that have not fired yet.
    behind: BinaryHeap<Handle>,
    /// Events beyond the wheel horizon, ordered by `(time, seq)`.
    far: BinaryHeap<Handle>,
    /// Payload slab addressed by handle slots.
    arena: Arena<E>,
    /// Events in `wheel` (excluding `current` and `far`).
    wheel_len: usize,
    len: usize,
    next_seq: u64,
    scheduled_total: u64,
    /// Population outgrew the wheel; double it at the next `advance`.
    grow_pending: bool,
    /// A crowded mixed-time bucket was drained; re-fit the bucket width
    /// at the next `advance`.
    refit_pending: bool,
    /// The last width re-fit changed nothing — stop re-trying until the
    /// geometry changes, so a pathological distribution cannot force an
    /// O(n) rebuild per batch.
    refit_futile: bool,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Pre-size the wheel for an expected live population of `capacity`
    /// events (the wheel still adapts if the estimate is wrong).
    pub fn with_capacity(capacity: usize) -> Self {
        let nbuckets = capacity.next_power_of_two().clamp(MIN_BUCKETS, MAX_BUCKETS);
        EventQueue {
            wheel: (0..nbuckets).map(|_| Vec::new()).collect(),
            occupied: vec![0u64; nbuckets / 64],
            // 2^14 ps ≈ 16 ns buckets: a sensible default for link-rate
            // events; adapted on the first rebuild either way.
            shift: 14,
            mask: (nbuckets - 1) as u64,
            epoch: 0,
            current: Vec::new(),
            behind: BinaryHeap::new(),
            far: BinaryHeap::new(),
            arena: Arena::with_capacity(capacity),
            wheel_len: 0,
            len: 0,
            next_seq: 0,
            scheduled_total: 0,
            grow_pending: false,
            refit_pending: false,
            refit_futile: false,
        }
    }

    #[inline]
    fn nbuckets(&self) -> usize {
        self.wheel.len()
    }

    #[inline]
    fn set_occupied(&mut self, idx: usize) {
        self.occupied[idx / 64] |= 1u64 << (idx % 64);
    }

    #[inline]
    fn clear_occupied(&mut self, idx: usize) {
        self.occupied[idx / 64] &= !(1u64 << (idx % 64));
    }

    /// Schedule `event` to fire at absolute time `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.push_with_seq(time, seq, event);
    }

    /// Schedule `event` at `time` with a caller-supplied tie-break key
    /// in place of the internal sequence counter.
    ///
    /// This is the sharded engine's entry point: cross-shard events
    /// carry globally-defined keys (rank, per-rank sequence) so that the
    /// (time, key) total order — and therefore the simulation outcome —
    /// is independent of how many shards the model is split across and
    /// of the order events happened to cross the shard channels.
    ///
    /// Keys must be unique per (time, key) pair; a queue should be fed
    /// either exclusively through `push` or exclusively through
    /// `push_keyed`, never both, or the internal counter could collide
    /// with caller keys.
    pub fn push_keyed(&mut self, time: SimTime, key: u64, event: E) {
        self.push_with_seq(time, key, event);
    }

    #[inline]
    fn push_with_seq(&mut self, time: SimTime, seq: u64, event: E) {
        self.scheduled_total += 1;
        let slot = self.arena.alloc(event);
        self.insert(Handle { time, seq, slot });
        self.len += 1;
        if self.wheel_len > self.nbuckets() * GROW_FACTOR && self.nbuckets() < MAX_BUCKETS {
            // Deferred to the next `advance`, when `current` is empty:
            // rebuilding re-bases the cursor, which is only safe with no
            // partially drained batch in flight.
            self.grow_pending = true;
        }
    }

    fn insert(&mut self, h: Handle) {
        if self.len == 0 {
            // Empty queue: rebase the cursor directly onto the event.
            debug_assert!(self.current.is_empty() && self.behind.is_empty());
            self.epoch = h.time.0 >> self.shift;
        }
        let k = h.time.0 >> self.shift;
        if k < self.epoch {
            // Behind the cursor: a same-instant follow-up or an event in
            // the window being drained. Pops consult this heap alongside
            // the staged batch.
            self.behind.push(h);
        } else if k - self.epoch < self.nbuckets() as u64 {
            let idx = (k & self.mask) as usize;
            self.wheel[idx].push(h);
            self.set_occupied(idx);
            self.wheel_len += 1;
        } else {
            self.far.push(h);
        }
    }

    /// True when the earliest pending event sits in `behind` rather than
    /// the staged batch. Callers guarantee at least one side is
    /// non-empty.
    #[inline]
    fn behind_is_next(&self) -> bool {
        match (self.behind.peek(), self.current.last()) {
            (Some(b), Some(c)) => b.key() < c.key(),
            (Some(_), None) => true,
            _ => false,
        }
    }

    /// Pull the next handle out of the staged batch / behind heap.
    /// Callers must have staged a batch (the `pop` preamble).
    #[inline]
    fn pop_handle(&mut self) -> Handle {
        let h = if self.behind_is_next() {
            self.behind.pop().expect("checked non-empty")
        } else {
            self.current.pop().expect("advance staged a batch")
        };
        self.len -= 1;
        h
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.current.is_empty() && !self.advance() && self.behind.is_empty() {
            return None;
        }
        let h = self.pop_handle();
        // SAFETY: `h` was just removed from the queue's containers.
        Some((h.time, unsafe { self.arena.take(h.slot) }))
    }

    /// Remove and return the earliest event together with its tie-break
    /// key. The speculative shard executor uses the key to journal
    /// popped events so a rollback can re-insert them under the exact
    /// `(time, key)` identity they were scheduled with.
    pub fn pop_entry(&mut self) -> Option<(SimTime, u64, E)> {
        if self.current.is_empty() && !self.advance() && self.behind.is_empty() {
            return None;
        }
        let h = self.pop_handle();
        // SAFETY: `h` was just removed from the queue's containers.
        Some((h.time, h.seq, unsafe { self.arena.take(h.slot) }))
    }

    /// Time of the earliest pending event without removing it.
    ///
    /// Takes `&mut self` because finding the minimum may advance the
    /// wheel cursor and stage the next drain batch.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.peek_entry().map(|(t, _)| t)
    }

    /// `(time, key)` of the earliest pending event without removing it.
    ///
    /// The sharded engine compares this against inbound cross-shard
    /// events to decide whether a speculative window survived the merge.
    pub fn peek_entry(&mut self) -> Option<(SimTime, u64)> {
        if self.current.is_empty() && !self.advance() && self.behind.is_empty() {
            return None;
        }
        if self.behind_is_next() {
            self.behind.peek().map(|h| (h.time, h.seq))
        } else {
            self.current.last().map(|h| (h.time, h.seq))
        }
    }

    /// Pop the earliest event only if it fires exactly at `time`.
    ///
    /// After `peek_time` has staged a batch, every event at that instant
    /// is in the batch or in `behind` (same-time events share a bucket;
    /// same-instant follow-ups land behind the cursor), so this is a
    /// compare and a tail pop — the engine's same-timestamp drain loop.
    pub fn pop_at(&mut self, time: SimTime) -> Option<(SimTime, E)> {
        // Stage a batch if none is in flight: popping the last staged
        // event can empty the queue entirely, and a push right after
        // rebases the cursor and lands in the wheel — visible only
        // through `advance`, exactly as in `pop`.
        if self.current.is_empty() && !self.advance() && self.behind.is_empty() {
            return None;
        }
        let h = if self.behind_is_next() {
            if self.behind.peek()?.time != time {
                return None;
            }
            self.behind.pop().expect("peeked")
        } else {
            if self.current.last()?.time != time {
                return None;
            }
            self.current.pop().expect("checked non-empty")
        };
        self.len -= 1;
        // SAFETY: `h` was just removed from the queue's containers.
        Some((h.time, unsafe { self.arena.take(h.slot) }))
    }

    /// Pull far events that entered the horizon, find the next occupied
    /// bucket, and stage it as the new drain batch. Returns false when
    /// the queue is empty.
    fn advance(&mut self) -> bool {
        debug_assert!(self.current.is_empty());
        if self.len == 0 {
            return false;
        }
        if self.grow_pending || self.refit_pending {
            let grow = self.grow_pending && self.nbuckets() < MAX_BUCKETS;
            self.grow_pending = false;
            self.refit_pending = false;
            let before = self.shift;
            self.rebuild(if grow {
                self.nbuckets() * 2
            } else {
                self.nbuckets()
            });
            self.refit_futile = self.shift == before && !grow;
        }
        if self.wheel_len == 0 && self.far.is_empty() {
            // Everything pending sits behind the cursor; nothing to
            // stage.
            return false;
        }
        if self.wheel_len == 0 {
            // Everything lives in `far`: rebase the wheel onto its min.
            let min_k = self.far.peek().expect("len > 0").time.0 >> self.shift;
            self.epoch = min_k;
        }
        self.refill_from_far();
        debug_assert!(self.wheel_len > 0);
        // Scan for the next occupied bucket via the bitmap, a word at a
        // time. Guaranteed to hit within nbuckets steps.
        loop {
            let idx = (self.epoch & self.mask) as usize;
            let bit = idx % 64;
            let word = self.occupied[idx / 64] >> bit;
            if word == 0 {
                // Skip to the next bitmap word boundary.
                self.epoch += (64 - bit) as u64;
                continue;
            }
            self.epoch += u64::from(word.trailing_zeros());
            let idx = (self.epoch & self.mask) as usize;
            // Drain rather than steal: the bucket keeps its allocation
            // for the next lap, and `current` reuses its own — zero
            // allocations per batch at steady state.
            {
                let EventQueue { wheel, current, .. } = self;
                let bucket = &mut wheel[idx];
                debug_assert!(!bucket.is_empty());
                current.append(bucket);
            }
            self.wheel_len -= self.current.len();
            self.clear_occupied(idx);
            // Descending so `pop` drains earliest-first from the tail.
            // Sorting moves 24-byte handles, never event payloads.
            self.current.sort_unstable_by_key(|h| std::cmp::Reverse(h.key()));
            // Cursor moves past the drained bucket.
            self.epoch += 1;
            // Crowding check: many events at distinct times sharing one
            // bucket means each pop is paying for a large sort — the
            // width no longer fits the density.
            if !self.refit_futile
                && self.current.len() >= CROWDED_BATCH
                && self.current.first().map(|h| h.time) != self.current.last().map(|h| h.time)
            {
                self.refit_pending = true;
            }
            return true;
        }
    }

    /// Migrate far events whose bucket fell inside the horizon.
    fn refill_from_far(&mut self) {
        let horizon = self.epoch + self.nbuckets() as u64;
        while let Some(top) = self.far.peek() {
            let k = top.time.0 >> self.shift;
            if k >= horizon {
                break;
            }
            let h = self.far.pop().expect("peeked");
            debug_assert!(k >= self.epoch);
            let idx = (k & self.mask) as usize;
            self.wheel[idx].push(h);
            self.set_occupied(idx);
            self.wheel_len += 1;
        }
    }

    /// Rebuild the wheel with `nbuckets` buckets and a bucket width
    /// re-fit to the live population. Only called from `advance` with
    /// `current` empty: rebuilding re-bases the cursor onto the earliest
    /// remaining event, which would reorder a partially drained batch
    /// against pushes landing near the new epoch boundary.
    ///
    /// Moves handles only — payloads stay put in the arena, so a rebuild
    /// of a queue of fat events costs the same as one of unit events.
    fn rebuild(&mut self, nbuckets: usize) {
        debug_assert!(self.current.is_empty());
        let nbuckets = nbuckets.min(MAX_BUCKETS);
        let mut entries: Vec<Handle> = Vec::with_capacity(self.wheel_len + self.far.len());
        for b in &mut self.wheel {
            entries.append(b);
        }
        entries.extend(std::mem::take(&mut self.far));
        self.occupied.iter_mut().for_each(|w| *w = 0);
        self.wheel_len = 0;
        if self.nbuckets() != nbuckets {
            self.wheel = (0..nbuckets).map(|_| Vec::new()).collect();
            self.occupied = vec![0u64; nbuckets / 64];
            self.mask = (nbuckets - 1) as u64;
        }
        if let (Some(min), Some(max)) = (
            entries.iter().map(|e| e.time.0).min(),
            entries.iter().map(|e| e.time.0).max(),
        ) {
            // Aim for ~TARGET_OCCUPANCY live events per bucket, but
            // never so narrow that the wheel horizon (nbuckets * width)
            // stops covering the live span with slack — otherwise events
            // cycle through the far heap and its O(log n) cost comes
            // back.
            let span = (max - min).max(1);
            let per_batch = span.saturating_mul(TARGET_OCCUPANCY) / entries.len() as u64;
            let per_horizon = (2 * span) / nbuckets as u64;
            let width = per_batch.max(per_horizon).max(1);
            // Ceiling log2: the realized width is the power of two >= the
            // target, keeping the horizon guarantee.
            self.shift = (64 - (width - 1).leading_zeros()).min(40);
            self.epoch = min >> self.shift;
        }
        for h in entries {
            let k = h.time.0 >> self.shift;
            debug_assert!(k >= self.epoch);
            if k - self.epoch < nbuckets as u64 {
                let idx = (k & self.mask) as usize;
                self.wheel[idx].push(h);
                self.set_occupied(idx);
                self.wheel_len += 1;
            } else {
                self.far.push(h);
            }
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of events ever scheduled (for run statistics).
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }
}

// ---------------------------------------------------------------------
// Snapshot / restore
// ---------------------------------------------------------------------

/// Portable snapshot of an [`EventQueue`]: every pending entry in
/// `(time, key)` order, plus the counters that make pushes after a
/// restore reproduce the original queue's tie-break sequence.
///
/// Entries are stored behind their stable `(time, key)` identities in
/// parallel arrays — arena slot numbers, wheel geometry, and cursor
/// position (all of which depend on allocation and drain history) never
/// escape into a snapshot. Because pop order is a pure function of the
/// `(time, key)` total order, a queue restored from a snapshot pops the
/// byte-identical event sequence the original would have, whatever
/// internal layout either happens to hold.
#[derive(Debug, Clone, PartialEq)]
pub struct QueueSnapshot<E> {
    /// Entry times, ascending by `(time, key)`.
    pub times: Vec<u64>,
    /// Entry tie-break keys, parallel to `times`.
    pub keys: Vec<u64>,
    /// Entry payloads, parallel to `times`.
    pub events: Vec<E>,
    /// Internal sequence counter, so post-restore `push` calls tie-break
    /// exactly as post-snapshot pushes would have.
    pub next_seq: u64,
    /// Lifetime scheduling statistic, preserved across restore.
    pub scheduled_total: u64,
}

impl<E> QueueSnapshot<E> {
    pub fn len(&self) -> usize {
        self.times.len()
    }

    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }
}

impl<E: Clone> EventQueue<E> {
    /// Capture every pending entry in `(time, key)` order. Non-consuming
    /// (payloads are cloned): the queue keeps running after the snapshot
    /// — the checkpoint pattern of a long simulation.
    pub fn snapshot(&self) -> QueueSnapshot<E> {
        let mut handles: Vec<Handle> = Vec::with_capacity(self.len);
        for bucket in &self.wheel {
            handles.extend_from_slice(bucket);
        }
        handles.extend_from_slice(&self.current);
        handles.extend(self.behind.iter().copied());
        handles.extend(self.far.iter().copied());
        debug_assert_eq!(handles.len(), self.len, "containers must cover len");
        handles.sort_unstable_by_key(|h| h.key());
        let mut times = Vec::with_capacity(handles.len());
        let mut keys = Vec::with_capacity(handles.len());
        let mut events = Vec::with_capacity(handles.len());
        for h in handles {
            times.push(h.time.0);
            keys.push(h.seq);
            // SAFETY: `h` is live in exactly one container, so its slot
            // is initialized; the payload is only borrowed for a clone.
            events.push(unsafe { self.arena.slots[h.slot as usize].assume_init_ref() }.clone());
        }
        QueueSnapshot {
            times,
            keys,
            events,
            next_seq: self.next_seq,
            scheduled_total: self.scheduled_total,
        }
    }
}

impl<E> EventQueue<E> {
    /// Rebuild a queue from a snapshot. The result pops the identical
    /// `(time, key, event)` sequence the snapshotted queue would have,
    /// and assigns subsequent `push` calls the same internal sequence
    /// numbers — restored runs are bit-identical to uninterrupted ones.
    pub fn from_snapshot(snap: QueueSnapshot<E>) -> Self {
        assert!(
            snap.times.len() == snap.keys.len() && snap.keys.len() == snap.events.len(),
            "queue snapshot arrays must be parallel ({}/{}/{})",
            snap.times.len(),
            snap.keys.len(),
            snap.events.len()
        );
        let mut q = EventQueue::with_capacity(snap.times.len());
        let mut prev: Option<(u64, u64)> = None;
        for ((&t, &k), e) in snap.times.iter().zip(&snap.keys).zip(snap.events) {
            debug_assert!(
                prev.is_none_or(|p| p < (t, k)),
                "snapshot entries must be strictly ordered by (time, key)"
            );
            prev = Some((t, k));
            q.push_with_seq(SimTime(t), k, e);
        }
        q.next_seq = snap.next_seq;
        q.scheduled_total = snap.scheduled_total;
        q
    }
}

impl<E: serde::Serialize> serde::Serialize for QueueSnapshot<E> {
    fn to_value(&self) -> serde::value::Value {
        use serde::value::Value;
        // Hand-written (the vendored derive does not support generics):
        // field-ordered object matching the struct declaration.
        Value::Object(vec![
            ("times".to_string(), self.times.to_value()),
            ("keys".to_string(), self.keys.to_value()),
            ("events".to_string(), self.events.to_value()),
            ("next_seq".to_string(), self.next_seq.to_value()),
            ("scheduled_total".to_string(), self.scheduled_total.to_value()),
        ])
    }
}

impl<E: serde::Deserialize> serde::Deserialize for QueueSnapshot<E> {
    fn from_value(v: &serde::value::Value) -> Result<Self, serde::DeError> {
        let snap = QueueSnapshot {
            times: Vec::<u64>::from_value(v.field("times")?)?,
            keys: Vec::<u64>::from_value(v.field("keys")?)?,
            events: Vec::<E>::from_value(v.field("events")?)?,
            next_seq: u64::from_value(v.field("next_seq")?)?,
            scheduled_total: u64::from_value(v.field("scheduled_total")?)?,
        };
        if snap.times.len() != snap.keys.len() || snap.keys.len() != snap.events.len() {
            return Err(serde::DeError::new(
                "queue snapshot arrays are not parallel",
            ));
        }
        Ok(snap)
    }
}

impl<E> Drop for EventQueue<E> {
    fn drop(&mut self) {
        if !std::mem::needs_drop::<E>() {
            return;
        }
        // Every live handle names an initialized arena slot exactly
        // once; walk all containers and drop the payloads in place.
        let wheel = std::mem::take(&mut self.wheel);
        for h in wheel
            .into_iter()
            .flatten()
            .chain(self.current.drain(..))
            .chain(std::mem::take(&mut self.behind))
            .chain(std::mem::take(&mut self.far))
        {
            // SAFETY: the handle was live and is visited exactly once.
            unsafe { self.arena.drop_slot(h.slot) };
        }
    }
}

/// The original binary-heap queue, kept as the ordering oracle for the
/// determinism suite and the baseline side of the `figures -- perf`
/// event-queue microbenchmark.
pub mod reference {
    use super::SimTime;
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    /// AoS entry: the reference queue stores payloads inline, exactly as
    /// the pre-arena implementation did — that contrast *is* the
    /// baseline the `eventq` benchmark measures.
    struct Entry<E> {
        time: SimTime,
        seq: u64,
        event: E,
    }

    impl<E> Entry<E> {
        #[inline]
        fn key(&self) -> (SimTime, u64) {
            (self.time, self.seq)
        }
    }

    impl<E> PartialEq for Entry<E> {
        fn eq(&self, other: &Self) -> bool {
            self.key() == other.key()
        }
    }
    impl<E> Eq for Entry<E> {}

    impl<E> PartialOrd for Entry<E> {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }

    impl<E> Ord for Entry<E> {
        fn cmp(&self, other: &Self) -> Ordering {
            // Reversed: BinaryHeap is a max-heap, we want earliest-first.
            other.key().cmp(&self.key())
        }
    }

    /// Binary-heap `(time, seq)` queue: the pre-calendar implementation.
    pub struct HeapQueue<E> {
        heap: BinaryHeap<Entry<E>>,
        next_seq: u64,
    }

    impl<E> Default for HeapQueue<E> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<E> HeapQueue<E> {
        pub fn new() -> Self {
            HeapQueue {
                heap: BinaryHeap::new(),
                next_seq: 0,
            }
        }

        pub fn push(&mut self, time: SimTime, event: E) {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.heap.push(Entry { time, seq, event });
        }

        pub fn pop(&mut self) -> Option<(SimTime, E)> {
            self.heap.pop().map(|s| (s.time, s.event))
        }

        pub fn peek_time(&self) -> Option<SimTime> {
            self.heap.peek().map(|s| s.time)
        }

        pub fn len(&self) -> usize {
            self.heap.len()
        }

        pub fn is_empty(&self) -> bool {
            self.heap.is_empty()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(30), "c");
        q.push(SimTime(10), "a");
        q.push(SimTime(20), "b");
        assert_eq!(q.pop(), Some((SimTime(10), "a")));
        assert_eq!(q.pop(), Some((SimTime(20), "b")));
        assert_eq!(q.pop(), Some((SimTime(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((SimTime(5), i)));
        }
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(10), 1);
        q.push(SimTime(5), 0);
        assert_eq!(q.pop(), Some((SimTime(5), 0)));
        q.push(SimTime(7), 2);
        assert_eq!(q.pop(), Some((SimTime(7), 2)));
        assert_eq!(q.pop(), Some((SimTime(10), 1)));
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime(42), ());
        assert_eq!(q.peek_time(), Some(SimTime(42)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn peek_entry_exposes_time_and_key() {
        let mut q = EventQueue::new();
        q.push_keyed(SimTime(9), 77, "x");
        q.push_keyed(SimTime(4), 12, "y");
        assert_eq!(q.peek_entry(), Some((SimTime(4), 12)));
        assert_eq!(q.pop_entry(), Some((SimTime(4), 12, "y")));
        assert_eq!(q.pop_entry(), Some((SimTime(9), 77, "x")));
        assert_eq!(q.pop_entry(), None);
    }

    #[test]
    fn counts_scheduled_events() {
        let mut q = EventQueue::new();
        q.push(SimTime(1), ());
        q.push(SimTime(2), ());
        q.pop();
        assert_eq!(q.scheduled_total(), 2);
    }

    #[test]
    fn keyed_pushes_order_by_key_not_arrival() {
        // The same events fed in two different arrival orders must pop
        // identically — the property cross-shard channel merges rely on.
        let feed = |order: &[usize]| {
            let evs = [
                (SimTime(10), 7u64, "a"),
                (SimTime(10), 3, "b"),
                (SimTime(5), 9, "c"),
                (SimTime(10), 5, "d"),
                (SimTime(20), 1, "e"),
            ];
            let mut q = EventQueue::new();
            for &i in order {
                let (t, k, e) = evs[i];
                q.push_keyed(t, k, e);
            }
            let mut out = Vec::new();
            while let Some((t, e)) = q.pop() {
                out.push((t, e));
            }
            out
        };
        let a = feed(&[0, 1, 2, 3, 4]);
        let b = feed(&[4, 2, 3, 0, 1]);
        assert_eq!(a, b);
        assert_eq!(
            a,
            vec![
                (SimTime(5), "c"),
                (SimTime(10), "b"),
                (SimTime(10), "d"),
                (SimTime(10), "a"),
                (SimTime(20), "e"),
            ]
        );
    }

    #[test]
    fn same_instant_follow_up_lands_behind_batch() {
        // Drain a same-time batch partially, then push another event at
        // that instant: it must come after the batch's remaining events.
        let mut q = EventQueue::new();
        q.push(SimTime(5), 0);
        q.push(SimTime(5), 1);
        assert_eq!(q.pop(), Some((SimTime(5), 0)));
        q.push(SimTime(5), 2);
        assert_eq!(q.pop(), Some((SimTime(5), 1)));
        assert_eq!(q.pop(), Some((SimTime(5), 2)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn past_clamped_push_is_delivered_in_order() {
        // An event pushed at a time the cursor already passed (the
        // Scheduler clamps to `now`) must still come out before later
        // events.
        let mut q = EventQueue::new();
        q.push(SimTime(1_000_000), "late");
        q.push(SimTime(500), "early");
        assert_eq!(q.pop(), Some((SimTime(500), "early")));
        // Cursor is now past 500's bucket; push behind it.
        q.push(SimTime(500), "clamped");
        assert_eq!(q.pop(), Some((SimTime(500), "clamped")));
        assert_eq!(q.pop(), Some((SimTime(1_000_000), "late")));
    }

    #[test]
    fn far_future_events_survive_horizon_crossing() {
        let mut q = EventQueue::new();
        q.push(SimTime(0), "now");
        q.push(SimTime(u64::MAX / 2), "far");
        q.push(SimTime(1 << 40), "mid");
        assert_eq!(q.pop(), Some((SimTime(0), "now")));
        assert_eq!(q.pop(), Some((SimTime(1 << 40), "mid")));
        assert_eq!(q.pop(), Some((SimTime(u64::MAX / 2), "far")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn wide_time_range_orders_correctly() {
        // Mixed magnitudes force rebuilds and far-heap migration.
        let mut q = EventQueue::new();
        let times: Vec<u64> = (0..2000)
            .map(|i| (i * 2654435761u64) % 1_000_000_000_000)
            .collect();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime(t), i);
        }
        let mut sorted: Vec<(u64, usize)> = times
            .iter()
            .copied()
            .enumerate()
            .map(|(i, t)| (t, i))
            .collect();
        sorted.sort();
        for (t, i) in sorted {
            assert_eq!(q.pop(), Some((SimTime(t), i)));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn matches_reference_heap_on_mixed_workload() {
        use crate::rng::SplitMix64;
        let mut cal = EventQueue::new();
        let mut heap = reference::HeapQueue::new();
        let mut rng = SplitMix64::new(0xfeed);
        let mut now = 0u64;
        for step in 0..5000u64 {
            if rng.next_below(4) < 3 {
                // Near-monotone insert, with frequent exact ties.
                let dt = if rng.chance(0.3) {
                    0
                } else {
                    rng.next_below(100_000)
                };
                cal.push(SimTime(now + dt), step);
                heap.push(SimTime(now + dt), step);
            } else {
                let a = cal.pop();
                let b = heap.pop();
                assert_eq!(a, b, "divergence at step {step}");
                if let Some((t, _)) = a {
                    now = t.0;
                }
            }
        }
        loop {
            let a = cal.pop();
            let b = heap.pop();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn with_capacity_behaves_identically() {
        let mut q = EventQueue::with_capacity(4096);
        for i in 0..100u64 {
            q.push(SimTime(i % 7), i);
        }
        let mut last = (SimTime(0), 0u64);
        let mut n = 0;
        while let Some((t, i)) = q.pop() {
            assert!((t, i) >= last, "order violated");
            last = (t, i);
            n += 1;
        }
        assert_eq!(n, 100);
    }

    #[test]
    fn arena_slots_recycle_under_churn() {
        // Steady-state push/pop churn must not grow the payload slab
        // past the peak live population — freed slots come back through
        // the free list instead of appending.
        let mut q = EventQueue::new();
        for i in 0..64u64 {
            q.push(SimTime(i), i);
        }
        let peak = q.arena.slots.len();
        for round in 0..100u64 {
            for _ in 0..32 {
                q.pop();
            }
            for i in 0..32u64 {
                q.push(SimTime(64 + round * 32 + i), i);
            }
        }
        assert_eq!(q.arena.slots.len(), peak, "arena grew under churn");
    }

    /// Drop correctness: queued events must drop exactly once whether
    /// popped or abandoned mid-batch.
    #[test]
    fn drops_are_balanced() {
        use std::rc::Rc;
        let marker = Rc::new(());
        {
            let mut q = EventQueue::new();
            for i in 0..500u64 {
                q.push(SimTime(i % 13), Rc::clone(&marker));
            }
            for _ in 0..250 {
                q.pop();
            }
            // 250 popped (dropped here), 250 still queued.
            assert_eq!(Rc::strong_count(&marker), 251);
        }
        assert_eq!(Rc::strong_count(&marker), 1);
    }

    /// Same, but abandoning events in every container at once: staged
    /// batch, behind heap, wheel, and far heap.
    #[test]
    fn drops_balance_across_all_containers() {
        use std::rc::Rc;
        let marker = Rc::new(());
        {
            let mut q = EventQueue::new();
            q.push(SimTime(100), Rc::clone(&marker));
            q.push(SimTime(100), Rc::clone(&marker));
            q.push(SimTime(u64::MAX / 2), Rc::clone(&marker)); // far
            q.pop(); // stages the t=100 bucket, pops one
            q.push(SimTime(100), Rc::clone(&marker)); // behind the cursor
            q.push(SimTime(200), Rc::clone(&marker)); // wheel
            assert_eq!(Rc::strong_count(&marker), 5);
        }
        assert_eq!(Rc::strong_count(&marker), 1);
    }
}
