//! Deterministic event queue.
//!
//! A binary heap keyed by `(time, sequence)`. The monotonically increasing
//! sequence number breaks ties in insertion order, which makes simulation
//! runs bit-for-bit reproducible regardless of heap internals.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered queue of events with deterministic FIFO tie-breaking.
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    scheduled_total: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            scheduled_total: 0,
        }
    }

    /// Schedule `event` to fire at absolute time `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// Time of the earliest pending event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (for run statistics).
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(30), "c");
        q.push(SimTime(10), "a");
        q.push(SimTime(20), "b");
        assert_eq!(q.pop(), Some((SimTime(10), "a")));
        assert_eq!(q.pop(), Some((SimTime(20), "b")));
        assert_eq!(q.pop(), Some((SimTime(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((SimTime(5), i)));
        }
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(10), 1);
        q.push(SimTime(5), 0);
        assert_eq!(q.pop(), Some((SimTime(5), 0)));
        q.push(SimTime(7), 2);
        assert_eq!(q.pop(), Some((SimTime(7), 2)));
        assert_eq!(q.pop(), Some((SimTime(10), 1)));
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime(42), ());
        assert_eq!(q.peek_time(), Some(SimTime(42)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn counts_scheduled_events() {
        let mut q = EventQueue::new();
        q.push(SimTime(1), ());
        q.push(SimTime(2), ());
        q.pop();
        assert_eq!(q.scheduled_total(), 2);
    }
}
