//! `figures` — regenerate the evaluation tables.
//!
//! Usage: `cargo run --release -p polaris-bench -- [all|f1|f2|f3|f4|f5|t2|f6|f7|a2]...`
//!        `cargo run --release -p polaris-bench -- [--jobs N] ...`
//!        `cargo run --release -p polaris-bench -- --check-output [path]`
//!        `cargo run --release -p polaris-bench -- perf [--update|--check]`
//!
//! Prints each table and writes `target/figures/<id>.json`. Sweeps fan
//! out over `--jobs` worker threads (or `POLARIS_JOBS`); output is
//! byte-identical at any job count. `--check-output` regenerates every
//! table and diffs the result against the committed snapshot
//! (`figures_output.txt` by default), exiting nonzero on drift. The
//! `perf` subcommand runs the wall-clock harness instead (see
//! [`polaris_bench::perf`]): it emits the `BENCH_simwall.json` report
//! and, with `--check`, gates against the committed baseline.

use polaris_bench::{all_experiments, perf, sweep};
use std::path::PathBuf;

/// Counting allocator so `perf` can report allocations per message.
/// Counting is one relaxed atomic increment per allocation — noise for
/// the figure generators, load-bearing for the perf report.
#[global_allocator]
static ALLOCATOR: perf::CountingAlloc = perf::CountingAlloc;

/// Compare the regenerated output with the committed snapshot; report
/// the first divergent table on mismatch. Wall-clock tables (see
/// [`polaris_bench::WALL_CLOCK_TABLES`]) are shape-checked only.
fn check_output(path: &str) -> i32 {
    let expected = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("--check-output: cannot read {path}: {e}");
            return 2;
        }
    };
    match polaris_bench::check_figures_output(&expected) {
        Ok(()) => {
            eprintln!("--check-output: {path} is up to date");
            0
        }
        Err(report) => {
            eprintln!("--check-output: {path} {report}");
            1
        }
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // `--jobs N` may appear anywhere (before experiment ids or modes).
    if let Some(i) = args.iter().position(|a| a == "--jobs") {
        let n = args
            .get(i + 1)
            .and_then(|s| s.parse::<usize>().ok())
            .unwrap_or_else(|| {
                eprintln!("--jobs requires a positive integer");
                std::process::exit(2);
            });
        sweep::set_jobs(n);
        args.drain(i..i + 2);
    }
    if let Some(i) = args.iter().position(|a| a == "--check-output") {
        let path = args
            .get(i + 1)
            .cloned()
            .unwrap_or_else(|| "figures_output.txt".to_string());
        std::process::exit(check_output(&path));
    }
    if args.first().map(String::as_str) == Some("perf") {
        std::process::exit(perf::run_perf(&args[1..]));
    }
    let wanted: Vec<String> = if args.is_empty() || args.iter().any(|a| a == "all") {
        all_experiments().iter().map(|(id, _)| id.to_string()).collect()
    } else {
        args
    };
    let out_dir = PathBuf::from("target/figures");
    let mut ran = 0;
    for (id, gen) in all_experiments() {
        if !wanted.iter().any(|w| w.eq_ignore_ascii_case(id)) {
            continue;
        }
        ran += 1;
        let t0 = std::time::Instant::now();
        for table in gen() {
            table.print();
            if let Err(e) = table.save_json(&out_dir) {
                eprintln!("warning: could not save {}: {e}", table.id);
            }
        }
        eprintln!("[{id} regenerated in {:?}]\n", t0.elapsed());
    }
    if ran == 0 {
        eprintln!("unknown experiment id(s) {wanted:?}; known: f1 f2 f3 f4 f5 t2 f6 f7 f8 f9 f10 f11 f12 f13 f14 a2 all perf");
        std::process::exit(2);
    }
    eprintln!("JSON series written to {}", out_dir.display());
}
