//! `figures` — regenerate the evaluation tables.
//!
//! Usage: `cargo run --release -p polaris-bench -- [all|f1|f2|f3|f4|f5|t2|f6|f7|a2]...`
//!        `cargo run --release -p polaris-bench -- perf [--update|--check]`
//!
//! Prints each table and writes `target/figures/<id>.json`. The `perf`
//! subcommand runs the wall-clock harness instead (see
//! [`polaris_bench::perf`]): it emits the `BENCH_simwall.json` report
//! and, with `--check`, gates against the committed baseline.

use polaris_bench::{all_experiments, perf};
use std::path::PathBuf;

/// Counting allocator so `perf` can report allocations per message.
/// Counting is one relaxed atomic increment per allocation — noise for
/// the figure generators, load-bearing for the perf report.
#[global_allocator]
static ALLOCATOR: perf::CountingAlloc = perf::CountingAlloc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("perf") {
        std::process::exit(perf::run_perf(&args[1..]));
    }
    let wanted: Vec<String> = if args.is_empty() || args.iter().any(|a| a == "all") {
        all_experiments().iter().map(|(id, _)| id.to_string()).collect()
    } else {
        args
    };
    let out_dir = PathBuf::from("target/figures");
    let mut ran = 0;
    for (id, gen) in all_experiments() {
        if !wanted.iter().any(|w| w.eq_ignore_ascii_case(id)) {
            continue;
        }
        ran += 1;
        let t0 = std::time::Instant::now();
        for table in gen() {
            table.print();
            if let Err(e) = table.save_json(&out_dir) {
                eprintln!("warning: could not save {}: {e}", table.id);
            }
        }
        eprintln!("[{id} regenerated in {:?}]\n", t0.elapsed());
    }
    if ran == 0 {
        eprintln!("unknown experiment id(s) {wanted:?}; known: f1 f2 f3 f4 f5 t2 f6 f7 f8 f9 f10 a2 all perf");
        std::process::exit(2);
    }
    eprintln!("JSON series written to {}", out_dir.display());
}
