//! # polaris-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! constructed evaluation (see DESIGN.md / EXPERIMENTS.md): the
//! `figures` binary prints the tables and dumps machine-readable JSON to
//! `target/figures/`, and the Criterion benches under `benches/` measure
//! the executable stack's wall-clock behaviour.

pub mod figures;
pub mod perf;
pub mod table;

use table::Table;

/// A figure/table generator.
pub type Generator = fn() -> Vec<Table>;

/// All experiments, in index order, as (id, generator) pairs.
pub fn all_experiments() -> Vec<(&'static str, Generator)> {
    vec![
        ("f1", figures::f1_projection::generate),
        ("f2", figures::f2_p2p::generate),
        ("f3", figures::f3_collectives::generate),
        ("f4", figures::f4_roofline::generate),
        ("f5", figures::f5_halo::generate),
        ("t2", figures::t2_rms::generate),
        ("f6", figures::f6_checkpoint::generate),
        ("f7", figures::f7_optical::generate),
        ("f8", figures::f8_decade::generate),
        ("f9", figures::f9_placement::generate),
        ("f10", figures::f10_sustained::generate),
        ("f11", figures::f11_chaos::generate),
        ("a2", figures::a2_threshold::generate),
    ]
}
